// Table 1: Comparison of distributed computing platforms for campus GPU
// sharing — plus a quantified churn-tolerance experiment.
//
// The paper's Table 1 is a qualitative matrix; we print it verbatim from
// the traits model, then back its key rows (Provider Autonomy, Voluntary
// Participation, Fault Tolerance Model) with numbers: the same workload +
// churn trace replayed under GPUnion, a Kubernetes-like orchestrator, a
// Slurm-like reservation system and manual coordination.
#include <cstdio>

#include "baseline/traits.h"
#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

struct ChurnOutcome {
  int completed = 0;
  int submitted = 0;
  double wasted_gpu_hours = 0;  // recomputation from lost work
  double mean_downtime_s = 0;
  int sessions_served = 0;
};

ChurnOutcome run(baseline::Preset preset, const workload::Trace& trace,
                 const std::vector<workload::Interruption>& churn,
                 util::SimTime horizon, std::uint64_t seed) {
  Scenario scenario = make_scenario(preset, seed, [](CampusConfig& config) {
    config.coordinator.heartbeat_interval = 10.0;
    config.agent_defaults.telemetry_interval = 600.0;
    config.scrape_interval = 600.0;
  });
  replay_trace(scenario, trace);
  inject_churn(scenario, churn);
  enable_give_up(scenario, util::days(2));
  scenario.env->run_until(horizon);

  ChurnOutcome outcome;
  const auto& stats = scenario.coordinator().stats();
  outcome.completed = stats.training_completed;
  outcome.submitted = stats.training_submitted;
  outcome.sessions_served = stats.sessions_served;
  for_each_job(scenario.coordinator(),
               [&](const std::string&, const sched::JobRecord& record) {
                 outcome.wasted_gpu_hours += record.lost_work_seconds / 3600.0;
               });
  util::SampleSet downtimes;
  for (const auto& record : scenario.coordinator().migrations().records()) {
    if (record.resumed() && !record.was_migrate_back) {
      downtimes.add(record.downtime());
    }
  }
  outcome.mean_downtime_s = downtimes.mean();
  return outcome;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Table 1 — Comparison of distributed computing platforms",
         "qualitative matrix (§2) + quantified churn tolerance");

  std::printf("\n%s\n", baseline::render_table1().c_str());

  std::printf("Quantified churn tolerance: identical 10-day workload and "
              "churn trace\n(1.5 interruptions/day/node) replayed under each "
              "platform's semantics.\n\n");

  const std::uint64_t seed = 31337;
  const util::SimTime horizon = util::days(10);
  std::vector<workload::GroupDemand> groups(2);
  groups[0].name = "vision";
  groups[0].owned_nodes = {Platform::machine_id_for("ws-vision-0"),
                           Platform::machine_id_for("ws-vision-1"),
                           Platform::machine_id_for("ws-vision-2"),
                           Platform::machine_id_for("ws-vision-3"),
                           Platform::machine_id_for("ws-vision-4")};
  groups[0].burst_jobs_per_day = 10.0;
  groups[0].idle_jobs_per_day = 2.0;
  groups[0].burst_days = 4.0;
  groups[0].gap_days = 5.0;
  groups[0].sessions_per_day = 5.0;
  groups[0].duration_scale = 0.5;
  groups[1].name = "nlp";
  groups[1].owned_nodes = {Platform::machine_id_for("ws-nlp-0"),
                           Platform::machine_id_for("ws-nlp-1"),
                           Platform::machine_id_for("ws-nlp-2"),
                           Platform::machine_id_for("srv-nlp-big")};
  groups[1].burst_jobs_per_day = 8.0;
  groups[1].idle_jobs_per_day = 2.0;
  groups[1].burst_days = 4.0;
  groups[1].gap_days = 5.0;
  groups[1].phase_days = 4.0;
  groups[1].sessions_per_day = 4.0;
  groups[1].duration_scale = 0.5;
  const auto trace =
      workload::generate_campus_trace(groups, horizon, util::Rng(seed));

  workload::InterruptionModel model;
  model.events_per_day = 1.5;
  CampusConfig fleet = paper_campus();
  std::vector<std::string> machines;
  for (const auto& node : fleet.nodes) {
    machines.push_back(Platform::machine_id_for(node.spec.hostname));
  }
  const auto churn = workload::generate_interruptions(
      machines, horizon, model, util::Rng(seed + 1));

  std::printf("%-18s %12s %14s %14s %12s\n", "platform", "completed",
              "wasted GPU-h", "mean downtime", "sessions");
  row_divider(76);
  for (auto preset :
       {baseline::Preset::kGpunion, baseline::Preset::kKubernetes,
        baseline::Preset::kSlurm, baseline::Preset::kManual}) {
    const auto outcome = run(preset, trace, churn, horizon, seed);
    std::printf("%-18s %7d/%-4d %14.1f %12.0f s %12d\n",
                std::string(baseline::preset_name(preset)).c_str(),
                outcome.completed, outcome.submitted,
                outcome.wasted_gpu_hours, outcome.mean_downtime_s,
                outcome.sessions_served);
  }
  row_divider(76);
  std::printf("Expected shape: GPUnion completes the most with the least "
              "wasted work\n(checkpoint restore + migrate-back); K8s/Slurm "
              "restart from scratch;\nmanual silos strand demand and recover "
              "only after human resubmission.\n\n");
  return 0;
}
