// Figure 2: Research-group GPU utilization comparison.
//
// Paper (§4): after six weeks of GPUnion on an 11-server campus, average
// GPU utilization rose from 34% to 67%, and interactive debugging sessions
// increased by 40% versus the manual-coordination phase.
//
// Reproduction: one six-week campus workload trace (bursty experiment
// cycles per group, diurnal student sessions, a GPU-less "theory" group)
// replayed twice over the same fleet — once under per-lab manual silos,
// once under GPUnion.  The utilization delta comes from the mechanisms the
// paper names: idle-capacity harvesting across group boundaries, access for
// groups with no hardware, and hardware-requirement matching (40 GB models
// can only run on another lab's A100/A6000).
//
// Calibration constants (documented in DESIGN.md): per-group demand is
// sized so that silos land near the paper's 34% baseline; all *relative*
// results are emergent.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

std::vector<workload::GroupDemand> campus_demand() {
  // owned_nodes carry machine ids so owner-reclaim can find home machines.
  auto machine = [](const std::string& hostname) {
    return Platform::machine_id_for(hostname);
  };

  workload::GroupDemand vision;
  vision.name = "vision";
  vision.owned_nodes = {machine("ws-vision-0"), machine("ws-vision-1"),
                        machine("ws-vision-2"), machine("ws-vision-3"),
                        machine("ws-vision-4")};
  vision.burst_jobs_per_day = 13.5;
  vision.idle_jobs_per_day = 0.7;
  vision.burst_days = 7.0;
  vision.gap_days = 14.0;
  vision.phase_days = 0.0;
  vision.sessions_per_day = 7.0;
  vision.profile_mix = {0.50, 0.35, 0.12, 0.03};

  workload::GroupDemand nlp;
  nlp.name = "nlp";
  nlp.owned_nodes = {machine("ws-nlp-0"), machine("ws-nlp-1"),
                     machine("ws-nlp-2"), machine("srv-nlp-big")};
  nlp.burst_jobs_per_day = 9.8;
  nlp.idle_jobs_per_day = 0.7;
  nlp.burst_days = 7.0;
  nlp.gap_days = 14.0;
  nlp.phase_days = 4.0;
  nlp.sessions_per_day = 6.0;
  nlp.profile_mix = {0.15, 0.25, 0.45, 0.15};

  workload::GroupDemand mlsys;
  mlsys.name = "mlsys";
  mlsys.owned_nodes = {machine("srv-mlsys-0")};
  mlsys.burst_jobs_per_day = 17.7;
  mlsys.idle_jobs_per_day = 1.1;
  mlsys.burst_days = 7.0;
  mlsys.gap_days = 14.0;
  mlsys.phase_days = 9.0;
  mlsys.sessions_per_day = 4.0;
  mlsys.profile_mix = {0.25, 0.30, 0.30, 0.15};

  workload::GroupDemand bio;
  bio.name = "bio";
  bio.owned_nodes = {machine("srv-bio-0")};
  bio.burst_jobs_per_day = 1.85;
  bio.idle_jobs_per_day = 0.2;
  bio.burst_days = 7.0;
  bio.gap_days = 14.0;
  bio.phase_days = 13.0;
  bio.sessions_per_day = 2.0;
  bio.profile_mix = {0.10, 0.20, 0.45, 0.25};

  // The access-barrier population (§1): students and a group with no GPUs.
  workload::GroupDemand theory;
  theory.name = "theory";
  theory.burst_jobs_per_day = 32.0;
  theory.idle_jobs_per_day = 32.0;  // steady, no experiment cycle
  theory.burst_days = 1.0;
  theory.gap_days = 0.0;
  theory.sessions_per_day = 5.0;
  theory.profile_mix = {0.65, 0.30, 0.05, 0.0};
  theory.duration_scale = 0.6;

  return {vision, nlp, mlsys, bio, theory};
}

struct RunResult {
  double fleet_utilization = 0;
  std::map<std::string, double> per_node;
  int sessions_served = 0;
  int sessions_denied = 0;
  int training_completed = 0;
  int training_abandoned = 0;
  double mean_queue_wait_min = 0;
};

RunResult run(baseline::Preset preset, const workload::Trace& trace,
              util::SimTime horizon, std::uint64_t seed) {
  Scenario scenario = make_scenario(preset, seed, [](CampusConfig& config) {
    // Six simulated weeks: coarse control-plane cadence keeps the event
    // count tractable; the 3-miss rule scales with the interval.
    config.coordinator.heartbeat_interval = 60.0;
    config.agent_defaults.telemetry_interval = 600.0;
    config.scrape_interval = 600.0;
  });
  replay_trace(scenario, trace);
  // Users abandon training jobs that have queued for three days.
  enable_give_up(scenario, util::days(3));

  // Light real-world churn during the GPUnion phase: providers occasionally
  // reboot or take machines home (manual mode has no agents to leave).
  if (preset == baseline::Preset::kGpunion) {
    workload::InterruptionModel churn;
    churn.events_per_day = 0.15;
    inject_churn(scenario,
                 workload::generate_interruptions(
                     scenario.platform->machine_ids(), horizon, churn,
                     util::Rng(seed ^ 0x9e3779b9)));
  }

  scenario.env->run_until(horizon);

  RunResult result;
  result.fleet_utilization = scenario.platform->fleet_utilization(0, horizon);
  result.per_node = scenario.platform->per_node_utilization(0, horizon);
  const auto& stats = scenario.coordinator().stats();
  result.sessions_served = stats.sessions_served;
  result.sessions_denied = stats.sessions_denied;
  result.training_completed = stats.training_completed;
  result.training_abandoned =
      count_phase(scenario, sched::JobPhase::kCancelled);
  result.mean_queue_wait_min = stats.queue_wait.mean() / 60.0;
  return result;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Figure 2 — Research group GPU utilization comparison",
         "\"average GPU utilization of all servers increased from 34% to "
         "67%\"; \"interactive debugging sessions increased by 40%\" (§4)");

  const util::SimTime horizon = util::weeks(6);
  const std::uint64_t seed = 20251117;
  const auto trace =
      workload::generate_campus_trace(campus_demand(), horizon,
                                      util::Rng(seed));
  const auto stats = workload::summarize(trace);
  std::printf("\nWorkload: %d training jobs (%.0f reference-GPU-hours), "
              "%d interactive session requests over 6 weeks\n",
              stats.training_jobs, stats.total_training_hours,
              stats.interactive_sessions);

  const RunResult manual = run(baseline::Preset::kManual, trace, horizon, seed);
  const RunResult gpunion =
      run(baseline::Preset::kGpunion, trace, horizon, seed);

  std::printf("\nPer-node GPU utilization (six-week average):\n");
  row_divider();
  std::printf("%-14s %10s %10s\n", "node", "manual", "GPUnion");
  row_divider();
  for (const auto& [hostname, manual_util] : manual.per_node) {
    std::printf("%-14s %9.1f%% %9.1f%%\n", hostname.c_str(),
                manual_util * 100.0, gpunion.per_node.at(hostname) * 100.0);
  }
  row_divider();
  std::printf("%-14s %9.1f%% %9.1f%%   (paper: 34%% -> 67%%)\n",
              "fleet average", manual.fleet_utilization * 100.0,
              gpunion.fleet_utilization * 100.0);

  std::printf("\nInteractive sessions (six weeks):\n");
  row_divider();
  std::printf("%-28s %10s %10s\n", "", "manual", "GPUnion");
  std::printf("%-28s %10d %10d\n", "sessions served",
              manual.sessions_served, gpunion.sessions_served);
  std::printf("%-28s %10d %10d\n", "sessions denied (gave up)",
              manual.sessions_denied, gpunion.sessions_denied);
  const double session_gain =
      manual.sessions_served == 0
          ? 0.0
          : 100.0 * (gpunion.sessions_served - manual.sessions_served) /
                manual.sessions_served;
  std::printf("%-28s %20.1f%%  (paper: +40%%)\n", "session increase",
              session_gain);

  std::printf("\nTraining outcomes:\n");
  row_divider();
  std::printf("%-28s %10s %10s\n", "", "manual", "GPUnion");
  std::printf("%-28s %10d %10d\n", "jobs completed",
              manual.training_completed, gpunion.training_completed);
  std::printf("%-28s %10d %10d\n", "jobs abandoned in queue",
              manual.training_abandoned, gpunion.training_abandoned);
  std::printf("%-28s %9.0fm %9.0fm\n", "mean wait to first GPU",
              manual.mean_queue_wait_min, gpunion.mean_queue_wait_min);
  std::printf("\n");
  return 0;
}
