// Ablation: checkpoint-interval trade-off.
//
// §4: "Memory-intensive models showed higher sensitivity to interruption
// due to longer checkpoint creation times, suggesting the value of
// workload-specific checkpoint strategies."  §2: GPUnion offers "checkpoint
// frequency optimization for intensive memory training".
//
// This ablation sweeps the checkpoint interval under fixed churn and
// reports both sides of the trade-off: work lost to interruptions (shorter
// intervals win) vs checkpoint overhead — serialization pauses and backup
// bytes (longer intervals win) — for a small-state CNN and a large-state
// transformer.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

struct AblationResult {
  double completion_hours = 0;
  double lost_work_min = 0;
  double checkpoint_gib = 0;
  int checkpoints = 0;
  int interruptions = 0;
};

AblationResult run(const workload::NamedProfile& profile,
                   util::Duration interval, std::uint64_t seed) {
  Scenario scenario = make_scenario(
      baseline::Preset::kGpunion, seed, [](CampusConfig& config) {
        config.nodes.clear();
        config.nodes.push_back({hw::server_2xa100("srv-a"), "lab"});
        config.nodes.push_back({hw::server_2xa100("srv-b"), "lab"});
        config.agent_defaults.telemetry_interval = 600.0;
        config.scrape_interval = 600.0;
      });
  auto& env = *scenario.env;

  Client client(*scenario.platform, "lab");
  SubmitOptions options;
  options.checkpoint_interval = interval;
  auto job_id = client.submit_training(profile, 24.0, options);
  if (!job_id.ok()) return {};

  // Four emergency interruptions across the run, 30 min downtime each.
  for (int k = 0; k < 4; ++k) {
    env.schedule_at(util::hours(4.0 + 7.0 * k), [&scenario, job = *job_id] {
      const auto* record = scenario.coordinator().job(job);
      if (record == nullptr || record->phase != sched::JobPhase::kRunning) {
        return;
      }
      workload::Interruption event;
      event.machine_id = record->node;
      event.kind = agent::DepartureKind::kEmergency;
      event.downtime = util::minutes(30);
      scenario.platform->inject_interruption(event);
    });
  }
  env.run_until(util::days(8));

  AblationResult result;
  const auto* record = scenario.coordinator().job(*job_id);
  if (record == nullptr || record->phase != sched::JobPhase::kCompleted) {
    return {};
  }
  result.completion_hours =
      (record->completed_at - record->submitted_at) / 3600.0;
  result.lost_work_min = record->lost_work_seconds / 60.0;
  result.interruptions = record->interruptions;
  result.checkpoint_gib =
      static_cast<double>(scenario.platform->network().bytes_sent(
          net::TrafficClass::kCheckpoint)) /
      (1ULL << 30);
  return result;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Ablation — checkpoint interval trade-off",
         "workload-specific checkpoint strategies (§2, §4)");

  std::printf("\nSetup: 24 reference-hour job, 4 emergency interruptions, "
              "two A100 nodes.\n");
  for (const auto* profile :
       {&workload::cnn_small(), &workload::transformer_large()}) {
    std::printf("\n%s (state %.1f GiB):\n", profile->name.c_str(),
                static_cast<double>(profile->state.state_bytes) /
                    (1ULL << 30));
    row_divider();
    std::printf("%12s %14s %14s %16s\n", "interval", "completion",
                "lost work", "backup volume");
    row_divider();
    for (double minutes : {2.5, 5.0, 10.0, 20.0, 40.0}) {
      const auto result = run(*profile, util::minutes(minutes), 4242);
      if (result.completion_hours == 0) {
        std::printf("%9.1f min   (did not complete)\n", minutes);
        continue;
      }
      std::printf("%9.1f min %12.2f h %10.1f min %12.2f GiB\n", minutes,
                  result.completion_hours, result.lost_work_min,
                  result.checkpoint_gib);
    }
    row_divider();
  }
  std::printf("\nExpected shape: lost work grows with the interval; backup "
              "volume and\nserialization overhead grow as it shrinks; the "
              "sweet spot sits lower for\nsmall-state models than for "
              "memory-intensive ones.\n\n");
  return 0;
}
