// Federation at scale: multi-campus regions under churn, with a
// full-region outage absorbed by the rest of the federation — run under
// BOTH topologies (brokerless mesh vs. legacy single-broker hub) for an
// A/B, plus a broker-death A/B that shows exactly what dies with the hub.
//
// ROADMAP "broker replication / region-to-region direct gossip": PR 3's
// federation funneled every digest and placement query through one
// FederationBroker.  The mesh topology replicates the region directory at
// every gateway via peer-to-peer gossip and answers placement queries
// locally.  This bench drives the REAL federated platform (regional
// coordinators, agents, campus LANs, WAN, gateways, and — in hub mode —
// the broker):
//
//   - 3 regions (2k + 1k + 1k nodes) under churn, full mode, per
//     topology: outage absorption, hub fan-in vs. mesh gossip volume,
//     placement-query broker round-trips (mesh: zero, by count);
//   - broker-death A/B (no churn, long horizon): the hub is killed just
//     before a full-campus outage.  Mesh completes every displaced job;
//     hub mode strands them pending with nobody to ask;
//   - consistency checks: federation stats must agree with per-region
//     coordinator records (withdrawals, admissions, provenance).
//
// Emits machine-readable BENCH_federation.json (override with --out).
// `--smoke` shrinks to 2-3 small regions for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gpunion/federated_platform.h"
#include "util/logging.h"
#include "workload/profiles.h"
#include "workload/provider_behavior.h"

namespace gpunion::bench {
namespace {

struct RegionSpec {
  std::string name;
  int nodes = 0;
};

struct RegionResult {
  std::string name;
  int nodes = 0;
  int gpus = 0;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_withdrawn = 0;
  int interruptions = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t digests_published = 0;
  std::uint64_t forwards_admitted_out = 0;
  std::uint64_t forwards_returned = 0;
  std::uint64_t remote_admitted_in = 0;
  std::uint64_t remote_refused = 0;
  std::uint64_t cross_campus_migrations_in = 0;
  std::uint64_t checkpoints_shipped = 0;
  /// Jobs displaced from the outage region that finished here (counted via
  /// DB provenance against this region's coordinator records).
  int absorbed_from_outage = 0;
  double mean_sched_latency_s = 0;
};

struct FederationRunResult {
  std::string topology;
  double horizon_s = 0;
  double wall_s = 0;
  std::string outage_region;
  double outage_at_s = 0;
  double broker_killed_at_s = -1;
  std::vector<RegionResult> regions;
  // Hub-side totals (zero under mesh: there is no hub).
  std::uint64_t broker_digests = 0;
  std::uint64_t broker_rankings = 0;
  double digest_age_mean_s = 0;
  double digest_age_max_s = 0;
  // Mesh-side totals.
  std::uint64_t local_rankings = 0;
  std::uint64_t gossips_sent = 0;
  std::uint64_t chain_loops_avoided = 0;
  // Hub fan-in comparison.
  std::uint64_t total_heartbeats = 0;   // what a single hub would have seen
  std::uint64_t broker_messages = 0;    // what the federation hub saw
  double fanin_ratio = 0;               // heartbeats / broker messages
  std::uint64_t forward_timeouts = 0;
  // Cross-campus outcome.
  std::uint64_t cross_campus_migrations = 0;
  int absorbed_completed = 0;
  /// Live non-terminal jobs at the horizon, federation-wide (the
  /// broker-death A/B's stall signal: a healthy run drains to ~0).
  int stranded_nonterminal = 0;
  // WAN accounting.
  std::uint64_t federation_wan_bytes = 0;
  double peak_federation_utilization = 0;
  /// Per-peer WAN pairs (mesh gossip + shipments; hub adds broker pairs).
  std::vector<std::pair<std::string, std::uint64_t>> wan_peer_bytes;
  // Consistency checks (federation stats vs coordinator records).
  bool withdrawals_consistent = false;
  bool admissions_consistent = false;
  bool migrations_consistent = false;
  bool provenance_consistent = false;
  bool consistency_pass = false;
};

CampusConfig region_campus(const std::string& name, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(name + "-ws-" + std::to_string(i)),
         "group-" + name + "-" + std::to_string(i % 8)});
  }
  config.storage.push_back({"nas-" + name, 512ULL << 40});
  config.coordinator.heartbeat_interval = 2.0;
  config.coordinator.heartbeat_miss_threshold = 3;
  config.agent_defaults.heartbeat_interval = 2.0;
  // Isolate the federated control plane, as in bench_scalability_campus.
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

FederationRunResult run_federation(const std::vector<RegionSpec>& specs,
                                   federation::FederationTopology topology,
                                   double horizon,
                                   const std::string& outage_region,
                                   double outage_at, double broker_kill_at,
                                   double churn_per_day, double wan_gbps,
                                   std::uint64_t seed) {
  FederationRunResult r;
  r.topology = std::string(federation::federation_topology_name(topology));
  r.horizon_s = horizon;
  r.outage_region = outage_region;
  r.outage_at_s = outage_at;
  r.broker_killed_at_s = broker_kill_at;

  sim::Environment env(seed);
  FederationConfig config;
  config.topology = topology;
  for (const auto& spec : specs) {
    federation::RegionPolicy policy;
    policy.digest_interval = 10.0;
    policy.forward_after = 30.0;
    policy.forward_timeout = 30.0;
    policy.forward_retry_backoff = 60.0;
    policy.max_remote_jobs = 1024;
    // An outage burst queues dozens of multi-GB shipments FIFO on the WAN
    // channel; reservations must outlive that backlog.
    policy.reservation_ttl = 180.0;
    config.regions.push_back(
        {spec.name, region_campus(spec.name, spec.nodes), policy});
  }
  // Inter-campus research WAN (Internet2-class links between campuses);
  // the federation channel is capped well below the line rate.
  config.wan.base_latency = 0.010;  // 10 ms inter-campus RTT scale
  config.wan.backbone_gbps = 2.5 * wan_gbps;
  config.wan.default_access_gbps = 2.5 * wan_gbps;
  config.wan.federation_wan_gbps = wan_gbps;
  config.metrics_interval = 1e9;
  FederatedPlatform fed(env, config);

  r.wall_s = wall_seconds([&] {
    fed.start();
    env.run_until(5.0);

    // Campus images are pre-staged on every node (the overnight rollout a
    // real deployment does); this bench measures the federation control
    // plane and WAN checkpoint shipping, not cold image distribution.
    for (const auto& spec : specs) {
      auto& platform = fed.region(spec.name);
      for (const auto& machine_id : platform.machine_ids()) {
        auto* provider = platform.agent(machine_id);
        provider->runtime().mark_image_cached("pytorch:2.3-cuda12.1");
        provider->runtime().mark_image_cached("jupyter-dl:latest");
      }
    }

    // Load per region: one short training job per four nodes, one
    // interactive session per sixteen, like the single-campus scalability
    // bench — plus churn across every region.
    for (const auto& spec : specs) {
      auto& coordinator = fed.region(spec.name).coordinator();
      for (int i = 0; i < spec.nodes / 4; ++i) {
        auto job = workload::make_training_job(
            spec.name + "-train-" + std::to_string(i), workload::cnn_small(),
            /*hours=*/0.02 + 0.02 * (i % 4),
            "group-" + spec.name + "-" + std::to_string(i % 8), env.now());
        job.checkpoint_interval = 30.0;
        (void)coordinator.submit(std::move(job));
      }
      for (int i = 0; i < spec.nodes / 16; ++i) {
        (void)coordinator.submit(workload::make_interactive_session(
            spec.name + "-sess-" + std::to_string(i), 0.05,
            "group-" + spec.name + "-" + std::to_string(i % 8), env.now()));
      }
    }
    if (churn_per_day > 0) {
      std::uint64_t churn_seed = seed + 1;
      for (const auto& spec : specs) {
        workload::InterruptionModel model;
        model.events_per_day = churn_per_day;
        model.min_downtime = 60.0;
        model.max_downtime = 600.0;
        model.temporary_downtime = 120.0;
        auto& platform = fed.region(spec.name);
        auto interruptions = workload::generate_interruptions(
            platform.machine_ids(), horizon, model, util::Rng(churn_seed++));
        for (const auto& event : interruptions) {
          if (spec.name == outage_region && event.at >= outage_at) {
            continue;  // the whole campus is dark by then anyway
          }
          env.schedule_at(
              std::max(event.at, env.now()),
              [&platform, event] { platform.inject_interruption(event); });
        }
      }
    }

    if (broker_kill_at >= 0) {
      env.schedule_at(broker_kill_at, [&fed] { fed.kill_broker(); });
    }
    env.schedule_at(outage_at, [&fed, outage_region, horizon] {
      // Dark until past the horizon: the displaced load has nowhere to go
      // but the other campuses.
      fed.inject_region_outage(outage_region, 2.0 * horizon);
    });
    env.run_until(horizon);
  });

  // --- Harvest --------------------------------------------------------------
  std::uint64_t forwards_admitted_total = 0;
  std::uint64_t transfers_delivered_total = 0;
  std::uint64_t remote_jobs_taken_total = 0;
  std::uint64_t remote_admitted_total = 0;
  std::uint64_t reservations_expired_total = 0;
  bool withdrawals_ok = true;
  bool provenance_ok = true;
  for (const auto& spec : specs) {
    auto& platform = fed.region(spec.name);
    auto& gateway = fed.gateway(spec.name);
    const auto& coordinator_stats = platform.coordinator().stats();
    const auto& gw = gateway.stats();
    RegionResult region;
    region.name = spec.name;
    region.nodes = spec.nodes;
    region.gpus = platform.total_gpus();
    region.jobs_submitted = coordinator_stats.jobs_submitted;
    region.jobs_completed = coordinator_stats.jobs_completed;
    region.jobs_withdrawn = coordinator_stats.jobs_withdrawn;
    region.interruptions = coordinator_stats.interruptions;
    region.heartbeats = coordinator_stats.heartbeats_processed;
    region.digests_published = gw.digests_published;
    region.forwards_admitted_out = gw.forwards_admitted;
    region.forwards_returned = gw.forwards_returned;
    region.remote_admitted_in = gw.remote_admitted;
    region.remote_refused = gw.remote_refused_policy +
                            gw.remote_refused_cap +
                            gw.remote_refused_capacity +
                            gw.remote_refused_duplicate;
    region.cross_campus_migrations_in = gw.cross_campus_migrations_in;
    region.checkpoints_shipped = gw.checkpoints_shipped;
    region.mean_sched_latency_s = coordinator_stats.queue_wait.mean();

    const auto operational = platform.coordinator().operational_stats();
    // Withdrawn-but-undelivered forwards live at the gateway, not in any
    // coordinator — without them a transfer stuck in its retry loop at
    // the horizon would not count as stranded.
    r.stranded_nonterminal += operational.pending + operational.dispatching +
                              operational.running +
                              gateway.withdrawn_in_flight();

    // Consistency (per-region coordinator records vs federation stats):
    // every withdrawal either was delivered to another region, returned
    // home (refusals, transfer bounces), or is still in flight at the
    // horizon.
    const std::uint64_t accounted =
        gw.transfers_delivered + gw.forwards_returned +
        static_cast<std::uint64_t>(gateway.withdrawn_in_flight());
    if (static_cast<std::uint64_t>(region.jobs_withdrawn) != accounted) {
      withdrawals_ok = false;
    }
    // Provenance: one executor row per admitted transfer, and for each
    // job whose LATEST row names this region as executor the coordinator
    // must still know the job — unless it is mid-chained-forward (the
    // gateway holds it in flight, correct protocol behavior at any cut).
    int executed_here = 0;
    for (const auto& row : platform.database().provenance_log()) {
      if (row.executing_region != spec.name) continue;
      ++executed_here;
      const db::JobProvenance* latest =
          platform.database().provenance(row.job_id);
      if (latest != &row) continue;  // superseded hop record
      const sched::JobRecord* record = platform.coordinator().job(row.job_id);
      if (record == nullptr && !gateway.forwarding(row.job_id)) {
        provenance_ok = false;
      }
      if (row.origin_region == outage_region && record != nullptr &&
          record->phase == sched::JobPhase::kCompleted) {
        ++region.absorbed_from_outage;
      }
    }
    if (executed_here != static_cast<int>(gw.remote_jobs_taken)) {
      provenance_ok = false;
    }

    forwards_admitted_total += gw.forwards_admitted;
    transfers_delivered_total += gw.transfers_delivered;
    remote_jobs_taken_total += gw.remote_jobs_taken;
    remote_admitted_total += gw.remote_admitted;
    reservations_expired_total += gw.reservations_expired;
    r.total_heartbeats += region.heartbeats;
    r.forward_timeouts += gw.forward_timeouts;
    r.absorbed_completed += region.absorbed_from_outage;
    r.regions.push_back(std::move(region));
  }

  const FederatedStats fed_stats = fed.stats();
  r.broker_digests = fed_stats.broker_digests_received;
  r.broker_rankings = fed_stats.broker_ranking_requests;
  r.digest_age_mean_s = fed_stats.digest_age_mean;
  r.digest_age_max_s = fed_stats.digest_age_max;
  r.local_rankings = fed_stats.local_rankings;
  r.gossips_sent = fed_stats.gossips_sent;
  r.chain_loops_avoided = fed_stats.chain_loops_avoided;
  r.broker_messages = r.broker_digests + r.broker_rankings;
  r.fanin_ratio = r.broker_messages == 0
                      ? 0
                      : static_cast<double>(r.total_heartbeats) /
                            static_cast<double>(r.broker_messages);
  r.cross_campus_migrations = fed_stats.cross_campus_migrations;
  r.federation_wan_bytes =
      fed.wan().bytes_sent(net::TrafficClass::kFederation);
  r.peak_federation_utilization = fed.wan().peak_class_utilization(
      {net::TrafficClass::kFederation}, 0, horizon);
  for (const auto& [pair, bytes] : fed.wan().federation_peer_bytes()) {
    r.wan_peer_bytes.push_back({pair.first + "<->" + pair.second, bytes});
  }

  r.withdrawals_consistent = withdrawals_ok;
  // A transfer the origin counts delivered is exactly one the target
  // counts hosted — the ack protocol makes hand-offs atomic (an undrained
  // in-flight ack at the horizon would show up in withdrawn_in_flight and
  // is checked above).
  r.admissions_consistent =
      transfers_delivered_total == remote_jobs_taken_total &&
      forwards_admitted_total >= transfers_delivered_total;
  // At quiescence every delivered checkpoint shipment seeded exactly one
  // cross-campus resume (shipped is counted at the origin's delivery ack,
  // migrations at the target's submit — the same hand-offs).
  r.migrations_consistent =
      fed_stats.cross_campus_migrations == fed_stats.checkpoints_shipped &&
      fed_stats.checkpoints_shipped <= forwards_admitted_total;
  r.provenance_consistent = provenance_ok;
  r.consistency_pass = r.withdrawals_consistent && r.admissions_consistent &&
                       r.migrations_consistent && r.provenance_consistent;
  return r;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void print_run(const FederationRunResult& r) {
  std::printf("\n[%s] Per-region results (%.0f sim-s horizon, %.1f s wall; "
              "outage: %s at t=%.0f s%s):\n\n",
              r.topology.c_str(), r.horizon_s, r.wall_s,
              r.outage_region.c_str(), r.outage_at_s,
              r.broker_killed_at_s >= 0 ? ", broker KILLED" : "");
  std::printf("%8s %6s %9s %9s %9s %8s %8s %8s %9s %9s\n", "region", "nodes",
              "beats", "submit", "complete", "fwd-out", "adm-in", "refused",
              "ckpt-out", "absorbed");
  row_divider(96);
  for (const auto& region : r.regions) {
    std::printf(
        "%8s %6d %9llu %9d %9d %8llu %8llu %8llu %9llu %9d\n",
        region.name.c_str(), region.nodes,
        static_cast<unsigned long long>(region.heartbeats),
        region.jobs_submitted, region.jobs_completed,
        static_cast<unsigned long long>(region.forwards_admitted_out),
        static_cast<unsigned long long>(region.remote_admitted_in),
        static_cast<unsigned long long>(region.remote_refused),
        static_cast<unsigned long long>(region.checkpoints_shipped),
        region.absorbed_from_outage);
  }
  if (r.topology == "hub") {
    std::printf(
        "\nHub fan-in: regional coordinators absorbed %llu heartbeats; the "
        "global broker saw\n%llu messages (%llu digests + %llu rankings) — "
        "%.0fx less traffic at the hub.\n",
        static_cast<unsigned long long>(r.total_heartbeats),
        static_cast<unsigned long long>(r.broker_messages),
        static_cast<unsigned long long>(r.broker_digests),
        static_cast<unsigned long long>(r.broker_rankings), r.fanin_ratio);
  } else {
    std::printf(
        "\nMesh: %llu placement queries answered from local replicas (0 "
        "broker round-trips),\n%llu directory pushes between gateways "
        "(O(regions) bytes each, no hub to die).\n",
        static_cast<unsigned long long>(r.local_rankings),
        static_cast<unsigned long long>(r.gossips_sent));
  }
  std::printf(
      "\nOutage absorption: %d displaced jobs from %s completed in other "
      "regions\n(%llu cross-campus checkpoint migrations, %.2f GB over the "
      "WAN, peak %.1f%% of backbone;\n%d non-terminal jobs stranded at the "
      "horizon).\n",
      r.absorbed_completed, r.outage_region.c_str(),
      static_cast<unsigned long long>(r.cross_campus_migrations),
      static_cast<double>(r.federation_wan_bytes) / 1e9,
      100.0 * r.peak_federation_utilization, r.stranded_nonterminal);
  std::printf("Digest staleness at ranking time: mean %.1f s, max %.1f s.\n",
              r.digest_age_mean_s, r.digest_age_max_s);
  std::printf(
      "Consistency: withdrawals %s, admissions %s, migrations %s, "
      "provenance %s -> %s\n",
      r.withdrawals_consistent ? "OK" : "FAIL",
      r.admissions_consistent ? "OK" : "FAIL",
      r.migrations_consistent ? "OK" : "FAIL",
      r.provenance_consistent ? "OK" : "FAIL",
      r.consistency_pass ? "PASS" : "FAIL");
}

void write_run(std::ofstream& out, const std::string& indent,
               const FederationRunResult& r) {
  out << indent << "\"topology\": \"" << r.topology << "\",\n";
  out << indent << "\"horizon_s\": " << r.horizon_s << ",\n";
  out << indent << "\"wall_s\": " << r.wall_s << ",\n";
  out << indent << "\"outage_region\": \"" << r.outage_region << "\",\n";
  out << indent << "\"outage_at_s\": " << r.outage_at_s << ",\n";
  out << indent << "\"broker_killed_at_s\": " << r.broker_killed_at_s
      << ",\n";
  out << indent << "\"regions\": [\n";
  for (std::size_t i = 0; i < r.regions.size(); ++i) {
    const auto& region = r.regions[i];
    out << indent << "  {\"name\": \"" << region.name << "\""
        << ", \"nodes\": " << region.nodes << ", \"gpus\": " << region.gpus
        << ", \"jobs_submitted\": " << region.jobs_submitted
        << ", \"jobs_completed\": " << region.jobs_completed
        << ", \"jobs_withdrawn\": " << region.jobs_withdrawn
        << ", \"interruptions\": " << region.interruptions
        << ", \"heartbeats\": " << region.heartbeats
        << ", \"digests_published\": " << region.digests_published
        << ", \"forwards_admitted_out\": " << region.forwards_admitted_out
        << ", \"forwards_returned\": " << region.forwards_returned
        << ", \"remote_admitted_in\": " << region.remote_admitted_in
        << ", \"remote_refused\": " << region.remote_refused
        << ", \"cross_campus_migrations_in\": "
        << region.cross_campus_migrations_in
        << ", \"checkpoints_shipped\": " << region.checkpoints_shipped
        << ", \"absorbed_from_outage\": " << region.absorbed_from_outage
        << ", \"mean_sched_latency_s\": " << region.mean_sched_latency_s
        << "}" << (i + 1 < r.regions.size() ? "," : "") << "\n";
  }
  out << indent << "],\n";
  out << indent << "\"placement_queries\": {\"broker_roundtrips\": "
      << r.broker_rankings << ", \"local_rankings\": " << r.local_rankings
      << ", \"chain_loops_avoided\": " << r.chain_loops_avoided << "},\n";
  out << indent << "\"hub_fanin\": {\"total_heartbeats\": "
      << r.total_heartbeats << ", \"broker_messages\": " << r.broker_messages
      << ", \"ratio\": " << r.fanin_ratio << "},\n";
  out << indent << "\"gossip\": {\"pushes_sent\": " << r.gossips_sent
      << ", \"digest_age_mean_s\": " << r.digest_age_mean_s
      << ", \"digest_age_max_s\": " << r.digest_age_max_s << "},\n";
  out << indent << "\"outage_absorption\": {\"cross_campus_migrations\": "
      << r.cross_campus_migrations
      << ", \"absorbed_completed\": " << r.absorbed_completed
      << ", \"stranded_nonterminal\": " << r.stranded_nonterminal
      << ", \"forward_timeouts\": " << r.forward_timeouts
      << ", \"federation_wan_bytes\": " << r.federation_wan_bytes
      << ", \"peak_federation_utilization\": "
      << r.peak_federation_utilization << "},\n";
  out << indent << "\"wan_peer_bytes\": [";
  for (std::size_t i = 0; i < r.wan_peer_bytes.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "{\"pair\": \""
        << r.wan_peer_bytes[i].first << "\", \"bytes\": "
        << r.wan_peer_bytes[i].second << "}";
  }
  out << "],\n";
  out << indent << "\"consistency\": {\"withdrawals\": "
      << (r.withdrawals_consistent ? "true" : "false")
      << ", \"admissions\": " << (r.admissions_consistent ? "true" : "false")
      << ", \"migrations\": " << (r.migrations_consistent ? "true" : "false")
      << ", \"provenance\": " << (r.provenance_consistent ? "true" : "false")
      << ", \"pass\": " << (r.consistency_pass ? "true" : "false") << "}\n";
}

void write_json(const std::string& path, const std::string& mode,
                const FederationRunResult& mesh,
                const FederationRunResult& hub,
                const FederationRunResult& mesh_kill,
                const FederationRunResult& hub_kill) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"federation\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"scenarios\": {\n";
  out << "    \"mesh\": {\n";
  write_run(out, "      ", mesh);
  out << "    },\n";
  out << "    \"hub\": {\n";
  write_run(out, "      ", hub);
  out << "    }\n";
  out << "  },\n";
  out << "  \"broker_kill_ab\": {\n";
  out << "    \"mesh\": {\n";
  write_run(out, "      ", mesh_kill);
  out << "    },\n";
  out << "    \"hub\": {\n";
  write_run(out, "      ", hub_kill);
  out << "    },\n";
  out << "    \"verdict\": {\"mesh_completes_all_displaced\": "
      << (mesh_kill.absorbed_completed > 0 &&
                  mesh_kill.stranded_nonterminal == 0
              ? "true"
              : "false")
      << ", \"hub_stalls\": "
      << (hub_kill.absorbed_completed == 0 &&
                  hub_kill.stranded_nonterminal > 0
              ? "true"
              : "false")
      << ", \"mesh_broker_roundtrips\": " << mesh.broker_rankings +
             mesh_kill.broker_rankings
      << "}\n";
  out << "  }\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  bool smoke = false;
  std::string out_path = "BENCH_federation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  banner("Federation — brokerless mesh vs. single-broker hub, gossip, "
         "cross-campus migration",
         "beyond the paper: SHARY-style federation of GPUnion campuses");

  using federation::FederationTopology;
  const std::vector<RegionSpec> big =
      smoke ? std::vector<RegionSpec>{{"north", 80}, {"south", 40}}
            : std::vector<RegionSpec>{{"north", 2000}, {"south", 1000},
                                      {"east", 1000}};
  const std::vector<RegionSpec> small =
      smoke ? std::vector<RegionSpec>{{"north", 48}, {"south", 24}}
            : std::vector<RegionSpec>{{"north", 300}, {"south", 150},
                                      {"east", 150}};
  const double horizon = smoke ? 420.0 : 480.0;
  // Long enough for a healthy federation to fully drain, so any non-zero
  // stranded count is the broker's death and nothing else.
  const double kill_horizon = 900.0;
  const double wan_gbps = smoke ? 1.0 : 40.0;
  const double kill_wan_gbps = smoke ? 1.0 : 10.0;

  // Headline A/B: identical churny outage scenario under both topologies.
  FederationRunResult mesh = run_federation(
      big, FederationTopology::kMesh, horizon, "south",
      /*outage_at=*/smoke ? 120.0 : 150.0, /*broker_kill_at=*/-1,
      /*churn_per_day=*/24.0, wan_gbps, /*seed=*/1234);
  print_run(mesh);
  FederationRunResult hub = run_federation(
      big, FederationTopology::kHub, horizon, "south",
      /*outage_at=*/smoke ? 120.0 : 150.0, /*broker_kill_at=*/-1,
      /*churn_per_day=*/24.0, wan_gbps, /*seed=*/1234);
  print_run(hub);

  // Broker-death A/B: no churn (isolate the variable), long horizon so a
  // healthy federation fully drains.  The hub dies 10 s before the outage.
  FederationRunResult mesh_kill = run_federation(
      small, FederationTopology::kMesh, kill_horizon, "south",
      /*outage_at=*/150.0, /*broker_kill_at=*/140.0,
      /*churn_per_day=*/0.0, kill_wan_gbps, /*seed=*/4321);
  print_run(mesh_kill);
  FederationRunResult hub_kill = run_federation(
      small, FederationTopology::kHub, kill_horizon, "south",
      /*outage_at=*/150.0, /*broker_kill_at=*/140.0,
      /*churn_per_day=*/0.0, kill_wan_gbps, /*seed=*/4321);
  print_run(hub_kill);

  std::printf(
      "\nBroker-death verdict: mesh absorbed %d displaced jobs with %d "
      "stranded;\nhub absorbed %d with %d stranded (forward timeouts: "
      "%llu).\nMesh steady-state placement queries: %llu, all answered "
      "locally (%llu broker round-trips).\n",
      mesh_kill.absorbed_completed, mesh_kill.stranded_nonterminal,
      hub_kill.absorbed_completed, hub_kill.stranded_nonterminal,
      static_cast<unsigned long long>(hub_kill.forward_timeouts),
      static_cast<unsigned long long>(mesh_kill.local_rankings +
                                      mesh.local_rankings),
      static_cast<unsigned long long>(mesh_kill.broker_rankings +
                                      mesh.broker_rankings));

  write_json(out_path, smoke ? "smoke" : "full", mesh, hub, mesh_kill,
             hub_kill);

  const bool pass =
      mesh.consistency_pass && hub.consistency_pass &&
      mesh_kill.consistency_pass && hub_kill.consistency_pass &&
      mesh.absorbed_completed > 0 && hub.absorbed_completed > 0 &&
      mesh.broker_rankings == 0 && mesh.local_rankings > 0 &&
      mesh_kill.absorbed_completed > 0 &&
      mesh_kill.stranded_nonterminal == 0 &&
      hub_kill.absorbed_completed == 0 && hub_kill.stranded_nonterminal > 0;
  return pass ? 0 : 1;
}
