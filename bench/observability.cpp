// Observability bench: what end-to-end tracing costs and what it buys.
//
// Three experiments, emitted as machine-readable BENCH_observability.json
// (override with --out; `--smoke` shrinks everything for CI):
//
//   1. Tracing overhead A/B — the scalability suite's churn campus (10k
//      nodes full, 1k smoke) run twice with the same seed: tracer disabled
//      vs. enabled.  The paper-facing claim is that always-on causal
//      tracing costs < 5% wall time on the control plane's worst case.
//
//   2. Per-stage latency breakdown of a cross-region forwarded job — the
//      mesh suite's chained A -> B -> C scenario (bravo dies hosting
//      alpha's displaced job, charlie finishes it).  The job's ONE trace
//      is decomposed into stage totals: where a forwarded job's lifetime
//      actually goes (queue, WAN transfer, remote run...).  The full trace
//      is also written as Chrome/Perfetto JSON next to the report — open
//      it in ui.perfetto.dev.
//
//   3. Actor-lane profile — the same churn campus under the parallel
//      runtime with lane profiling on: per-shard busy/idle split,
//      critical-path attribution and exclusive-event stalls.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gpunion/federated_platform.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace gpunion::bench {
namespace {

// ---------------------------------------------------------------------------
// 1. Tracing overhead A/B on the churn campus
// ---------------------------------------------------------------------------

/// Process CPU seconds.  The overhead gate compares CPU, not wall: the A/B
/// arms run single-threaded (kDeterministic), so CPU time measures the
/// work tracing adds while staying immune to co-tenant preemption on a
/// shared box — where wall clock alone swings ±10% run to run.
double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

CampusConfig churn_campus(int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("ws-" + std::to_string(i)),
         "group-" + std::to_string(i % 16)});
  }
  config.storage.push_back({"nas-campus", 512ULL << 40});
  config.coordinator.heartbeat_interval = 2.0;
  config.coordinator.heartbeat_miss_threshold = 3;
  config.coordinator.strategy = std::string(sched::kRoundRobin);
  config.agent_defaults.heartbeat_interval = 2.0;
  // Telemetry and scrapes off the hot path: the A/B isolates tracing.
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

struct ChurnRun {
  double wall_s = 0;
  double cpu_s = 0;
  int jobs_completed = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  sim::ProfilerReport profile;
};

/// One full churn-campus run: jobs on a quarter of the fleet, churn across
/// all of it.  Identical seed + config in both arms — only `tracing`
/// differs.
ChurnRun run_churn_campus(int nodes, double horizon, double churn_per_day,
                          std::uint64_t seed, bool tracing,
                          const sim::EnvConfig& exec = {}) {
  ChurnRun r;
  sim::Environment env(seed, exec);
  Platform platform(env, churn_campus(nodes));
  platform.tracer().set_enabled(tracing);
  const double cpu_start = process_cpu_seconds();
  r.wall_s = wall_seconds([&] {
    platform.start();
    env.run_until(5.0);
    auto& coordinator = platform.coordinator();
    for (int i = 0; i < nodes / 4; ++i) {
      auto job = workload::make_training_job(
          "train-" + std::to_string(i), workload::cnn_small(),
          /*hours=*/0.02 + 0.02 * (i % 4), "group-" + std::to_string(i % 16),
          env.now());
      job.checkpoint_interval = 120.0;
      (void)coordinator.submit(std::move(job));
    }
    for (int i = 0; i < nodes / 16; ++i) {
      (void)coordinator.submit(workload::make_interactive_session(
          "sess-" + std::to_string(i), 0.05,
          "group-" + std::to_string(i % 16), env.now()));
    }
    workload::InterruptionModel model;
    model.events_per_day = churn_per_day;
    model.min_downtime = 60.0;
    model.max_downtime = 600.0;
    model.temporary_downtime = 120.0;
    auto interruptions = workload::generate_interruptions(
        platform.machine_ids(), horizon, model, util::Rng(seed + 1));
    for (const auto& event : interruptions) {
      platform.schedule_interruption(std::max(event.at, env.now()), event);
    }
    env.run_until(horizon);
  });
  r.cpu_s = process_cpu_seconds() - cpu_start;
  r.jobs_completed = platform.coordinator().stats().jobs_completed;
  r.heartbeats = platform.coordinator().stats().heartbeats_processed;
  r.spans_recorded = platform.tracer().recorded();
  r.spans_dropped = platform.tracer().dropped();
  r.profile = env.lane_profile();
  return r;
}

struct OverheadResult {
  int nodes = 0;
  double horizon_s = 0;
  int repetitions = 0;
  double baseline_wall_s = 0;  // best-of-N, tracer off
  double traced_wall_s = 0;    // best-of-N, tracer on
  double baseline_cpu_s = 0;   // best-of-N process CPU, tracer off
  double traced_cpu_s = 0;     // best-of-N process CPU, tracer on
  double overhead_wall_pct = 0;
  double overhead_cpu_pct = 0;  // the gated number
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t heartbeats = 0;
  int jobs_completed_off = 0;
  int jobs_completed_on = 0;
};

OverheadResult measure_overhead(int nodes, double horizon,
                                double churn_per_day, int reps,
                                std::uint64_t seed) {
  OverheadResult r;
  r.nodes = nodes;
  r.horizon_s = horizon;
  r.repetitions = reps;
  r.baseline_wall_s = 1e300;
  r.traced_wall_s = 1e300;
  r.baseline_cpu_s = 1e300;
  r.traced_cpu_s = 1e300;
  // Each repetition runs the two arms back to back, so a paired delta
  // cancels the minute-scale load drift a shared box shows (the drift
  // between whole runs here dwarfs the true tracing cost).  The overhead
  // estimate is the MEDIAN of the paired CPU deltas — robust to a single
  // repetition landing on a co-tenant's burst.
  std::vector<double> wall_deltas, cpu_deltas;
  for (int rep = 0; rep < reps; ++rep) {
    const ChurnRun off =
        run_churn_campus(nodes, horizon, churn_per_day, seed, false);
    const ChurnRun on =
        run_churn_campus(nodes, horizon, churn_per_day, seed, true);
    wall_deltas.push_back(100.0 * (on.wall_s - off.wall_s) / off.wall_s);
    cpu_deltas.push_back(100.0 * (on.cpu_s - off.cpu_s) / off.cpu_s);
    r.baseline_wall_s = std::min(r.baseline_wall_s, off.wall_s);
    r.traced_wall_s = std::min(r.traced_wall_s, on.wall_s);
    r.baseline_cpu_s = std::min(r.baseline_cpu_s, off.cpu_s);
    r.traced_cpu_s = std::min(r.traced_cpu_s, on.cpu_s);
    r.jobs_completed_off = off.jobs_completed;
    r.jobs_completed_on = on.jobs_completed;
    r.heartbeats = on.heartbeats;
    r.spans_recorded = on.spans_recorded;
    r.spans_dropped = on.spans_dropped;
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  r.overhead_wall_pct = median(wall_deltas);
  r.overhead_cpu_pct = median(cpu_deltas);
  return r;
}

// ---------------------------------------------------------------------------
// 2. Cross-region forwarded job: per-stage latency breakdown
// ---------------------------------------------------------------------------

CampusConfig region_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

struct StageStat {
  std::string stage;
  int count = 0;
  double total_s = 0;
  double mean_s = 0;
};

struct ForwardBreakdown {
  bool completed_in_charlie = false;
  std::size_t span_count = 0;
  int regions_in_trace = 0;
  std::vector<StageStat> stages;   // trace order of first appearance
  std::string perfetto_json;       // the whole trace, ready for ui.perfetto.dev
};

ForwardBreakdown forwarded_job_breakdown() {
  sim::Environment env(23);
  FederationConfig config;
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  config.regions.push_back({"alpha", region_campus("alpha", 1), policy});
  config.regions.push_back({"bravo", region_campus("bravo", 2), policy});
  config.regions.push_back({"charlie", region_campus("charlie", 2), policy});
  config.links.push_back({"alpha", "bravo", 0.002});
  config.links.push_back({"alpha", "charlie", 0.030});
  config.links.push_back({"bravo", "charlie", 0.030});
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  auto training = [&](const std::string& id, double seconds) {
    auto job = workload::make_training_job(id, workload::cnn_small(),
                                           seconds / 3600.0, "group-alpha",
                                           env.now());
    job.checkpoint_interval = 30.0;
    return job;
  };
  // Alpha's only GPU is pinned; "wanderer" overflows to bravo, bravo dies
  // hosting it, charlie finishes it: one trace, three regions, two WAN hops.
  (void)fed.region("alpha").coordinator().submit(training("pin", 2000.0));
  (void)fed.region("alpha").coordinator().submit(training("wanderer", 600.0));
  env.run_until(200.0);
  fed.inject_region_outage("bravo", 5000.0);
  env.run_until(1200.0);

  ForwardBreakdown b;
  const sched::JobRecord* record =
      fed.region("charlie").coordinator().job("wanderer");
  b.completed_in_charlie =
      record != nullptr && record->phase == sched::JobPhase::kCompleted;
  const auto spans =
      fed.tracer().trace(obs::Tracer::trace_for_job("wanderer"));
  b.span_count = spans.size();
  std::map<std::string, std::size_t> by_stage;
  std::map<std::string, int> regions;
  for (const obs::Span& span : spans) {
    auto [it, fresh] = by_stage.try_emplace(span.stage, b.stages.size());
    if (fresh) b.stages.push_back({span.stage, 0, 0, 0});
    StageStat& stat = b.stages[it->second];
    ++stat.count;
    stat.total_s += span.duration();
    const auto dash = span.actor.rfind('-');
    if (dash != std::string::npos) ++regions[span.actor.substr(dash + 1)];
  }
  for (StageStat& stat : b.stages) {
    stat.mean_s = stat.count == 0 ? 0 : stat.total_s / stat.count;
  }
  b.regions_in_trace = static_cast<int>(regions.size());
  b.perfetto_json = obs::perfetto_trace_json(spans);
  return b;
}

// ---------------------------------------------------------------------------
// 3. Actor-lane profile under the parallel runtime
// ---------------------------------------------------------------------------

sim::ProfilerReport profile_lanes(int nodes, double horizon,
                                  double churn_per_day, unsigned workers,
                                  std::uint64_t seed) {
  sim::EnvConfig exec;
  exec.mode = sim::ExecutionMode::kParallel;
  exec.worker_threads = workers;
  exec.profile_lanes = true;
  return run_churn_campus(nodes, horizon, churn_per_day, seed,
                          /*tracing=*/true, exec)
      .profile;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void write_json(const std::string& path, const std::string& trace_path,
                const std::string& mode, const OverheadResult& overhead,
                const ForwardBreakdown& breakdown,
                const sim::ProfilerReport& profile) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"observability\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"tracing_overhead\": {\"nodes\": " << overhead.nodes
      << ", \"horizon_s\": " << overhead.horizon_s
      << ", \"repetitions\": " << overhead.repetitions
      << ", \"baseline_wall_s\": " << overhead.baseline_wall_s
      << ", \"traced_wall_s\": " << overhead.traced_wall_s
      << ", \"baseline_cpu_s\": " << overhead.baseline_cpu_s
      << ", \"traced_cpu_s\": " << overhead.traced_cpu_s
      << ", \"overhead_wall_pct\": " << overhead.overhead_wall_pct
      << ", \"overhead_cpu_pct\": " << overhead.overhead_cpu_pct
      << ", \"target_pct\": 5.0"
      << ", \"spans_recorded\": " << overhead.spans_recorded
      << ", \"spans_dropped\": " << overhead.spans_dropped
      << ", \"heartbeats\": " << overhead.heartbeats << "},\n";
  out << "  \"forwarded_job\": {\"completed_in_charlie\": "
      << (breakdown.completed_in_charlie ? "true" : "false")
      << ", \"span_count\": " << breakdown.span_count
      << ", \"regions_in_trace\": " << breakdown.regions_in_trace
      << ", \"trace_artifact\": \"" << trace_path << "\", \"stages\": [\n";
  for (std::size_t i = 0; i < breakdown.stages.size(); ++i) {
    const StageStat& stat = breakdown.stages[i];
    out << "    {\"stage\": \"" << stat.stage
        << "\", \"count\": " << stat.count
        << ", \"total_s\": " << stat.total_s
        << ", \"mean_s\": " << stat.mean_s << "}"
        << (i + 1 < breakdown.stages.size() ? "," : "") << "\n";
  }
  out << "  ]},\n";
  out << "  \"lane_profile\": {\"windows\": " << profile.windows
      << ", \"exclusive_events\": " << profile.exclusive_events
      << ", \"exclusive_stall_s\": " << profile.exclusive_stall_s
      << ", \"shards\": [\n";
  for (std::size_t i = 0; i < profile.shards.size(); ++i) {
    const sim::LaneProfile& shard = profile.shards[i];
    out << "    {\"shard\": " << shard.shard
        << ", \"lanes\": " << shard.lanes.size()
        << ", \"events\": " << shard.events
        << ", \"busy_s\": " << shard.busy_s
        << ", \"idle_s\": " << shard.idle_s
        << ", \"critical_windows\": " << shard.critical_windows
        << ", \"critical_busy_s\": " << shard.critical_busy_s
        << ", \"max_queue_depth\": " << shard.max_queue_depth << "}"
        << (i + 1 < profile.shards.size() ? "," : "") << "\n";
  }
  out << "  ]}\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  bool smoke = false;
  std::string out_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  std::string trace_path = out_path;
  const auto dot = trace_path.rfind(".json");
  if (dot != std::string::npos) trace_path.resize(dot);
  trace_path += ".trace.json";

  banner("Observability — tracing overhead, forwarded-job latency anatomy, "
         "lane profile",
         "cost and value of end-to-end causal tracing in GPUnion");

  // 1. Tracing overhead A/B.
  const int nodes = smoke ? 1000 : 10000;
  const double horizon = smoke ? 60.0 : 120.0;
  const double churn_per_day = 8.0;
  const int reps = 5;
  const OverheadResult overhead =
      measure_overhead(nodes, horizon, churn_per_day, reps, /*seed=*/42);
  std::printf("\nTracing overhead (%d nodes, %.0f sim-s churn campus, "
              "median of %d paired A/B deltas; wall/cpu columns are "
              "best-of-%d):\n\n",
              overhead.nodes, overhead.horizon_s, overhead.repetitions,
              overhead.repetitions);
  std::printf("%16s %12s %12s %12s %10s\n", "arm", "wall-s", "cpu-s",
              "spans", "dropped");
  row_divider(66);
  std::printf("%16s %12.3f %12.3f %12s %10s\n", "tracer off",
              overhead.baseline_wall_s, overhead.baseline_cpu_s, "-", "-");
  std::printf("%16s %12.3f %12.3f %12llu %10llu\n", "tracer on",
              overhead.traced_wall_s, overhead.traced_cpu_s,
              static_cast<unsigned long long>(overhead.spans_recorded),
              static_cast<unsigned long long>(overhead.spans_dropped));
  std::printf("\nOverhead: %+.2f%% CPU (gated, target < 5%%), %+.2f%% "
              "wall\n",
              overhead.overhead_cpu_pct, overhead.overhead_wall_pct);

  // 2. Forwarded-job per-stage breakdown.
  const ForwardBreakdown breakdown = forwarded_job_breakdown();
  std::printf("\nCross-region forwarded job (alpha -> bravo -> charlie), "
              "one trace, %zu spans, %d regions:\n\n",
              breakdown.span_count, breakdown.regions_in_trace);
  std::printf("%22s %7s %12s %12s\n", "stage", "count", "total-s", "mean-s");
  row_divider(58);
  for (const StageStat& stat : breakdown.stages) {
    std::printf("%22s %7d %12.3f %12.3f\n", stat.stage.c_str(), stat.count,
                stat.total_s, stat.mean_s);
  }
  std::ofstream trace_out(trace_path);
  if (trace_out) {
    trace_out << breakdown.perfetto_json;
    std::printf("\nPerfetto trace: %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }

  // 3. Lane profile under the parallel runtime.
  const int profile_nodes = smoke ? 500 : 2000;
  const sim::ProfilerReport profile = profile_lanes(
      profile_nodes, horizon, churn_per_day, /*workers=*/4, /*seed=*/42);
  std::printf("\nActor-lane profile (%d nodes, 4 workers, parallel mode): "
              "%llu windows, %llu exclusive events, %.3f s exclusive "
              "stall:\n\n",
              profile_nodes,
              static_cast<unsigned long long>(profile.windows),
              static_cast<unsigned long long>(profile.exclusive_events),
              profile.exclusive_stall_s);
  std::printf("%6s %6s %10s %10s %10s %9s %10s\n", "shard", "lanes",
              "events", "busy-s", "idle-s", "critical", "max-depth");
  row_divider(68);
  for (const sim::LaneProfile& shard : profile.shards) {
    std::printf("%6zu %6zu %10llu %10.3f %10.3f %9llu %10zu\n", shard.shard,
                shard.lanes.size(),
                static_cast<unsigned long long>(shard.events), shard.busy_s,
                shard.idle_s,
                static_cast<unsigned long long>(shard.critical_windows),
                shard.max_queue_depth);
  }

  write_json(out_path, trace_path, smoke ? "smoke" : "full", overhead,
             breakdown, profile);

  std::uint64_t profiled_events = 0;
  for (const auto& shard : profile.shards) profiled_events += shard.events;
  // The < 5% claim is gated on the full 10k-node run; smoke arms are
  // ~0.2 s of CPU, where allocator warmup alone swings a few percent, so
  // CI only rejects a blowup.
  const double overhead_gate = smoke ? 25.0 : 5.0;
  const bool pass = overhead.overhead_cpu_pct < overhead_gate &&
                    overhead.spans_recorded > 0 &&
                    overhead.jobs_completed_off == overhead.jobs_completed_on &&
                    breakdown.completed_in_charlie &&
                    breakdown.regions_in_trace >= 3 &&
                    breakdown.span_count > 0 && profile.enabled &&
                    profile.windows > 0 && profiled_events > 0;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
