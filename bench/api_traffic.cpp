// Request-plane traffic bench: million-user open-loop admission.
//
// The ROADMAP's north star is "idle campus GPUs serving millions of
// users"; this bench measures whether the tenant-facing request plane
// (src/api/) holds up at that population.  Three experiments:
//
//   1. admission at scale — an open-loop Zipf-distributed stream from a
//      1M-tenant population into a standalone ApiServer (counting sink in
//      place of the scheduler core, so the request plane alone is on the
//      clock): p50/p99/p999 modeled admission latency (accept -> DRF
//      dispatch) and rejection rates.  The p999 must stay under 10 modeled
//      ms — the threshold drain keeps burst latency batch-bound instead of
//      interval-bound.
//   2. end-to-end campus — the same traffic shape (scaled down) through a
//      real Platform: API -> coordinator -> agents, with completions.
//   3. backpressure ladder — offered load at 1x/2x/4x of the admission
//      rate: rejections must rise with load while the API-side queue depth
//      stays bounded (the kOverloaded + retry-after contract, as opposed
//      to unbounded buffering).
//
// Emits machine-readable BENCH_api.json (override with --out); `--smoke`
// shrinks everything for CI.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "api/api_server.h"
#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

/// Zipf(1) rank from a 1..n population via the log-uniform approximation:
/// rank = exp(u ln n) has pdf proportional to 1/rank.
std::uint64_t zipf_rank(util::Rng& rng, std::uint64_t n) {
  const double u = rng.uniform(0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::exp(u * std::log(static_cast<double>(n))));
  return std::min<std::uint64_t>(n, std::max<std::uint64_t>(1, rank));
}

workload::JobSpec tiny_job(const std::string& id, util::SimTime now) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         /*hours=*/0.02, "bench", now);
  job.checkpoint_interval = 120.0;
  return job;
}

struct AdmissionResult {
  std::uint64_t population = 0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t distinct_tenants = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  double reject_rate = 0;
  std::uint64_t group_commits = 0;
  double wall_s = 0;
};

/// Experiment 1: the request plane alone, 1M-tenant Zipf stream, open loop.
AdmissionResult run_admission_at_scale(std::uint64_t population,
                                       double arrival_rate,
                                       double horizon_s) {
  sim::Environment env(1);
  api::ApiConfig config;
  config.enabled = true;
  config.admission_rate = arrival_rate * 1.25;  // headroom: reject tail only
  config.admission_burst = arrival_rate * 0.25;
  config.drain_interval = 0.005;
  config.drain_batch = 128;
  config.default_quota.max_in_flight = 1 << 20;  // sink mode: no core limit
  config.default_quota.max_queued = 64;
  api::ApiServer api(env, config);
  std::uint64_t sunk = 0;
  api.set_dispatch([&sunk](workload::JobSpec, double, obs::TraceContext) {
    ++sunk;
    return util::Status();
  });
  api.set_capacity({1e18, 1e18});
  api.start();

  util::Rng rng(7);
  std::set<std::uint64_t> distinct;
  std::uint64_t offered = 0;
  std::uint64_t next_id = 0;
  // Open loop: every 10 modeled ms a Poisson burst arrives regardless of
  // how the plane is doing (nobody waits for replies).
  const double tick = 0.01;
  std::function<void()> pump = [&] {
    const int arrivals = rng.poisson(arrival_rate * tick);
    for (int i = 0; i < arrivals; ++i) {
      const std::uint64_t rank = zipf_rank(rng, population);
      distinct.insert(rank);
      ++offered;
      (void)api.submit("u" + std::to_string(rank),
                       tiny_job("req-" + std::to_string(next_id++),
                                env.now()));
    }
    if (env.now() + tick < horizon_s) {
      env.schedule_at(env.now() + tick, pump);
    }
  };
  env.schedule_at(tick, pump);

  AdmissionResult result;
  result.wall_s = wall_seconds([&] {
    env.run_until(horizon_s + 1.0);
    api.drain_to_quiescence();
  });

  const api::ApiStats& stats = api.stats();
  const util::SampleSet& latency = api.admission_latency();
  result.population = population;
  result.offered = offered;
  result.accepted = stats.totals.accepted;
  result.dispatched = stats.totals.dispatched;
  result.rejected_overloaded = stats.totals.rejected_overloaded;
  result.distinct_tenants = distinct.size();
  result.p50_ms = latency.percentile(50) * 1e3;
  result.p99_ms = latency.percentile(99) * 1e3;
  result.p999_ms = latency.percentile(99.9) * 1e3;
  result.max_ms = latency.max() * 1e3;
  result.reject_rate =
      offered ? static_cast<double>(stats.totals.rejected_overloaded) /
                    static_cast<double>(offered)
              : 0.0;
  result.group_commits = stats.group_commits;
  std::printf("  %9llu tenants  %7llu offered  %7llu dispatched  "
              "p50 %.2f ms  p99 %.2f ms  p999 %.2f ms  reject %.1f%%\n",
              static_cast<unsigned long long>(population),
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(result.dispatched),
              result.p50_ms, result.p99_ms, result.p999_ms,
              result.reject_rate * 100.0);
  return result;
}

struct CampusResult {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double p99_admission_ms = 0;
  double wall_s = 0;
};

/// Experiment 2: the same traffic shape through a real campus end to end.
CampusResult run_campus_end_to_end(int nodes, double arrival_rate,
                                   double horizon_s) {
  sim::Environment env(2);
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("bench-" + std::to_string(i)), "bench"});
  }
  config.storage.push_back({"nas-bench", 256ULL << 30});
  config.agent_defaults.telemetry_interval = 600.0;
  config.scrape_interval = 600.0;
  config.db.shard_count = 4;
  config.db.write_behind = true;
  config.api.enabled = true;
  config.api.admission_rate = std::max(10.0, arrival_rate * 1.25);
  config.api.admission_burst = std::max(10.0, arrival_rate * 0.25);
  config.api.drain_interval = 0.05;
  config.api.drain_batch = 64;
  config.api.default_quota.max_in_flight = 8;
  config.api.default_quota.max_queued = 32;
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  util::Rng rng(3);
  std::uint64_t offered = 0;
  std::uint64_t next_id = 0;
  const double tick = 0.05;
  std::function<void()> pump = [&] {
    const int arrivals = rng.poisson(arrival_rate * tick);
    for (int i = 0; i < arrivals; ++i) {
      ++offered;
      (void)platform.api().submit(
          "u" + std::to_string(zipf_rank(rng, 1000)),
          tiny_job("job-" + std::to_string(next_id++), env.now()));
    }
    if (env.now() + tick < 5.0 + horizon_s) {
      env.schedule_at(env.now() + tick, pump);
    }
  };
  env.schedule_at(5.0 + tick, pump);

  CampusResult result;
  result.wall_s = wall_seconds([&] {
    env.run_until(5.0 + horizon_s + 600.0);  // let dispatched work finish
    platform.api().drain_to_quiescence();
  });
  const api::ApiStats& stats = platform.api().stats();
  result.offered = offered;
  result.accepted = stats.totals.accepted;
  result.dispatched = stats.totals.dispatched;
  result.completed = stats.totals.completed;
  result.rejected =
      stats.totals.rejected_overloaded + stats.totals.rejected_quota;
  result.p99_admission_ms =
      platform.api().admission_latency().percentile(99) * 1e3;
  std::printf("  %d nodes  %llu offered  %llu dispatched  %llu completed  "
              "p99 admission %.1f ms\n",
              nodes, static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(result.dispatched),
              static_cast<unsigned long long>(result.completed),
              result.p99_admission_ms);
  return result;
}

struct OverloadResult {
  double multiplier = 1.0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overloaded = 0;
  double reject_rate = 0;
  std::size_t max_total_queued = 0;
  std::size_t max_tenant_queued = 0;
  double mean_retry_after_s = 0;
};

/// Experiment 3: offered load at `multiplier` x the admission rate.  The
/// contract under overload: rejections rise, queue depth stays bounded.
OverloadResult run_overload(double multiplier, double base_rate,
                            double horizon_s) {
  sim::Environment env(4);
  api::ApiConfig config;
  config.enabled = true;
  config.admission_rate = base_rate;
  config.admission_burst = base_rate * 0.25;
  config.drain_interval = 0.005;
  config.drain_batch = 128;
  config.default_quota.max_in_flight = 1 << 20;
  config.default_quota.max_queued = 64;
  api::ApiServer api(env, config);
  api.set_dispatch([](workload::JobSpec, double, obs::TraceContext) {
    return util::Status();
  });
  api.set_capacity({1e18, 1e18});
  api.start();

  util::Rng rng(9);
  OverloadResult result;
  result.multiplier = multiplier;
  util::RunningStats retry_after;
  std::uint64_t next_id = 0;
  const double tick = 0.01;
  std::function<void()> pump = [&] {
    const int arrivals = rng.poisson(base_rate * multiplier * tick);
    for (int i = 0; i < arrivals; ++i) {
      ++result.offered;
      auto outcome = api.submit(
          "u" + std::to_string(zipf_rank(rng, 100000)),
          tiny_job("o" + std::to_string(next_id++), env.now()));
      if (outcome.outcome == api::AdmitOutcome::kOverloaded) {
        retry_after.add(outcome.retry_after);
      }
    }
    if (env.now() + tick < horizon_s) {
      env.schedule_at(env.now() + tick, pump);
    }
  };
  env.schedule_at(tick, pump);
  env.run_until(horizon_s + 1.0);
  api.drain_to_quiescence();

  const api::ApiStats& stats = api.stats();
  result.accepted = stats.totals.accepted;
  result.rejected_overloaded = stats.totals.rejected_overloaded;
  result.reject_rate =
      result.offered ? static_cast<double>(result.rejected_overloaded) /
                           static_cast<double>(result.offered)
                     : 0.0;
  result.max_total_queued = stats.max_total_queued;
  result.max_tenant_queued = stats.max_tenant_queued;
  result.mean_retry_after_s = retry_after.mean();
  std::printf("  %.0fx load  %7llu offered  reject %.1f%%  max queue %zu  "
              "mean retry-after %.3f s\n",
              multiplier, static_cast<unsigned long long>(result.offered),
              result.reject_rate * 100.0, result.max_total_queued,
              result.mean_retry_after_s);
  return result;
}

void write_json(const std::string& path, const std::string& mode,
                const AdmissionResult& scale, const CampusResult& campus,
                const std::vector<OverloadResult>& ladder) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"api_traffic\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"admission_at_scale\": {\n";
  out << "    \"tenant_population\": " << scale.population << ",\n";
  out << "    \"offered\": " << scale.offered << ",\n";
  out << "    \"accepted\": " << scale.accepted << ",\n";
  out << "    \"dispatched\": " << scale.dispatched << ",\n";
  out << "    \"distinct_tenants\": " << scale.distinct_tenants << ",\n";
  out << "    \"admission_latency_p50_ms\": " << scale.p50_ms << ",\n";
  out << "    \"admission_latency_p99_ms\": " << scale.p99_ms << ",\n";
  out << "    \"admission_latency_p999_ms\": " << scale.p999_ms << ",\n";
  out << "    \"admission_latency_max_ms\": " << scale.max_ms << ",\n";
  out << "    \"reject_rate\": " << scale.reject_rate << ",\n";
  out << "    \"group_commits\": " << scale.group_commits << ",\n";
  out << "    \"wall_s\": " << scale.wall_s << "\n";
  out << "  },\n";
  out << "  \"campus_end_to_end\": {\n";
  out << "    \"offered\": " << campus.offered << ",\n";
  out << "    \"accepted\": " << campus.accepted << ",\n";
  out << "    \"dispatched\": " << campus.dispatched << ",\n";
  out << "    \"completed\": " << campus.completed << ",\n";
  out << "    \"rejected\": " << campus.rejected << ",\n";
  out << "    \"admission_latency_p99_ms\": " << campus.p99_admission_ms
      << ",\n";
  out << "    \"wall_s\": " << campus.wall_s << "\n";
  out << "  },\n";
  out << "  \"overload_ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i];
    out << "    {\"multiplier\": " << r.multiplier
        << ", \"offered\": " << r.offered
        << ", \"accepted\": " << r.accepted
        << ", \"rejected_overloaded\": " << r.rejected_overloaded
        << ", \"reject_rate\": " << r.reject_rate
        << ", \"max_total_queued\": " << r.max_total_queued
        << ", \"max_tenant_queued\": " << r.max_tenant_queued
        << ", \"mean_retry_after_s\": " << r.mean_retry_after_s << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  util::Logger::instance().set_level(util::LogLevel::kError);
  bool smoke = false;
  std::string out_path = "BENCH_api.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::banner("Request plane — million-user admission traffic",
                "north star: idle campus GPUs serving millions of users");

  std::printf("\n[1] open-loop Zipf admission, standalone request plane\n");
  const auto scale = bench::run_admission_at_scale(
      smoke ? 10'000 : 1'000'000, smoke ? 1000.0 : 4000.0,
      smoke ? 10.0 : 60.0);

  // Arrival rate sized to the campus: each tiny job holds one GPU for
  // ~72 modeled seconds, so nodes/72 is the saturation rate.
  std::printf("\n[2] end-to-end campus (API -> coordinator -> agents)\n");
  const auto campus = bench::run_campus_end_to_end(
      smoke ? 8 : 24, smoke ? 0.08 : 0.25, smoke ? 600.0 : 1200.0);

  std::printf("\n[3] backpressure ladder (offered / admission capacity)\n");
  std::vector<bench::OverloadResult> ladder;
  const double base_rate = smoke ? 500.0 : 2000.0;
  const double horizon = smoke ? 10.0 : 30.0;
  for (double multiplier : {1.0, 2.0, 4.0}) {
    ladder.push_back(bench::run_overload(multiplier, base_rate, horizon));
  }

  bench::write_json(out_path, smoke ? "smoke" : "full", scale, campus,
                    ladder);
  return 0;
}
