// Ablation: placement strategies under churn + fractional sharing.
//
// §3.2: "The scheduler implements multiple allocation strategies, including
// distribution for fairness and assignment based on priority ...
// incorporating provider reliability predictions and degradation
// mechanisms."  Experiment 1 replays one workload + churn trace under every
// registered PlacementStrategy and reports completion, interruptions
// suffered, queue wait and lost work — quantifying what reliability-aware
// placement buys.
//
// Experiment 2 is the fractional-sharing head-to-head: an interactive-heavy
// campus day (bursty Jupyter sessions that waste dedicated GPUs) under
// whole-GPU best_fit vs nvshare-style packed_sharing, reporting delivered
// fleet utilization and sessions served.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

struct StrategyOutcome {
  int completed = 0;
  int submitted = 0;
  int interruptions = 0;
  double lost_work_hours = 0;
  double mean_wait_min = 0;
};

StrategyOutcome run(const std::string& strategy,
                    const workload::Trace& trace,
                    const std::vector<workload::Interruption>& churn,
                    util::SimTime horizon, std::uint64_t seed) {
  Scenario scenario = make_scenario(
      baseline::Preset::kGpunion, seed, [&strategy](CampusConfig& config) {
        config.coordinator.strategy = strategy;
        config.coordinator.heartbeat_interval = 10.0;
        config.agent_defaults.telemetry_interval = 600.0;
        config.scrape_interval = 600.0;
      });
  replay_trace(scenario, trace);
  inject_churn(scenario, churn);
  scenario.env->run_until(horizon);

  StrategyOutcome outcome;
  const auto& stats = scenario.coordinator().stats();
  outcome.completed = stats.training_completed;
  outcome.submitted = stats.training_submitted;
  outcome.interruptions = stats.interruptions;
  outcome.mean_wait_min = stats.queue_wait.mean() / 60.0;
  for_each_job(scenario.coordinator(),
               [&](const std::string&, const sched::JobRecord& record) {
                 outcome.lost_work_hours += record.lost_work_seconds / 3600.0;
               });
  return outcome;
}

struct SharingOutcome {
  double utilization = 0;
  int sessions_served = 0;
  int sessions_denied = 0;
  int training_completed = 0;
};

SharingOutcome run_interactive_heavy(const std::string& strategy,
                                     const workload::Trace& trace,
                                     util::SimTime horizon,
                                     std::uint64_t seed) {
  Scenario scenario = make_scenario(
      baseline::Preset::kGpunion, seed, [&strategy](CampusConfig& config) {
        config.coordinator.strategy = strategy;
        config.coordinator.heartbeat_interval = 10.0;
        config.agent_defaults.telemetry_interval = 600.0;
        config.scrape_interval = 600.0;
      });
  replay_trace(scenario, trace);
  scenario.env->run_until(horizon);

  SharingOutcome outcome;
  const auto& stats = scenario.coordinator().stats();
  // Sessions still running at the horizon also count as served (but not
  // running training jobs).
  int running_sessions = 0;
  for (const auto& [job_id, record] : scenario.coordinator().jobs()) {
    if (record.phase == sched::JobPhase::kRunning &&
        record.spec.type == workload::JobType::kInteractive) {
      ++running_sessions;
    }
  }
  outcome.sessions_served = stats.sessions_served + running_sessions;
  outcome.sessions_denied = stats.sessions_denied;
  outcome.training_completed = stats.training_completed;
  outcome.utilization = scenario.platform->fleet_utilization(0.0, horizon);
  return outcome;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Ablation — placement strategies under churn",
         "multiple allocation strategies + reliability prediction (§3.2)");

  const std::uint64_t seed = 555;
  const util::SimTime horizon = util::days(7);

  std::vector<workload::GroupDemand> groups(1);
  groups[0].name = "vision";
  groups[0].burst_jobs_per_day = 40.0;
  groups[0].idle_jobs_per_day = 40.0;  // steady load
  groups[0].burst_days = 1.0;
  groups[0].gap_days = 0.0;
  groups[0].sessions_per_day = 4.0;
  groups[0].duration_scale = 0.4;
  const auto trace =
      workload::generate_campus_trace(groups, horizon, util::Rng(seed));

  // Churn concentrated on the most attractive node (the 8x4090 server)
  // plus two workstations: capacity-greedy strategies keep walking into
  // the churn; reliability-aware placement learns to route around it.
  const std::vector<std::string> flaky = {
      Platform::machine_id_for("srv-mlsys-0"),
      Platform::machine_id_for("ws-vision-0"),
      Platform::machine_id_for("ws-vision-1")};
  workload::InterruptionModel model;
  model.events_per_day = 4.0;
  model.min_downtime = util::minutes(20);
  model.max_downtime = util::hours(1);
  const auto churn = workload::generate_interruptions(flaky, horizon, model,
                                                      util::Rng(seed + 1));

  std::printf("\nSetup: steady 40 jobs/day for 7 days on the paper fleet; "
              "the 8x4090 server and\ntwo workstations suffer 4 "
              "interruptions/day each; the rest are steady.\n\n");
  std::printf("%-20s %12s %14s %12s %12s\n", "strategy", "completed",
              "interruptions", "lost work", "mean wait");
  row_divider(76);
  for (const auto& strategy :
       sched::PlacementStrategyFactory::instance().names()) {
    const auto outcome = run(strategy, trace, churn, horizon, seed);
    std::printf("%-20s %7d/%-4d %14d %10.1f h %10.1f m\n", strategy.c_str(),
                outcome.completed, outcome.submitted, outcome.interruptions,
                outcome.lost_work_hours, outcome.mean_wait_min);
  }
  row_divider(76);
  std::printf("Expected shape: reliability-aware placement suffers the "
              "fewest interruptions\nand loses the least work, at a small "
              "queue-wait premium over round-robin.\n");

  banner("Fractional GPU sharing — interactive-heavy profile",
         "whole-GPU allocation wastes bursty sessions (nvshare scenario)");

  // Interactive-heavy campus day: every group's students hammer Jupyter;
  // moderate training demand rides along.  Sessions are bursty (duty cycle
  // ~0.35), so a dedicated whole GPU mostly idles.
  std::vector<workload::GroupDemand> interactive_groups(3);
  interactive_groups[0].name = "vision";
  interactive_groups[1].name = "nlp";
  interactive_groups[2].name = "theory";
  for (auto& group : interactive_groups) {
    group.burst_jobs_per_day = 10.0;
    group.idle_jobs_per_day = 10.0;
    group.burst_days = 1.0;
    group.gap_days = 0.0;
    group.sessions_per_day = 100.0;  // interactive-heavy
    group.duration_scale = 0.8;
  }
  const util::SimTime sharing_horizon = util::days(2);
  const auto interactive_trace = workload::generate_campus_trace(
      interactive_groups, sharing_horizon, util::Rng(seed + 2));

  std::printf("\nSetup: 3 groups x 100 sessions/day + 10 training jobs/day "
              "each for 2 days on the\npaper fleet; no churn.  Utilization "
              "is *delivered* compute (sessions deliver\ntheir duty cycle, "
              "not their reservation).\n\n");
  std::printf("%-20s %14s %10s %10s %10s\n", "strategy", "utilization",
              "served", "denied", "trained");
  row_divider(70);
  double best_fit_utilization = 0;
  double packed_utilization = 0;
  for (const auto& strategy :
       {std::string(sched::kBestFit), std::string(sched::kPackedSharing)}) {
    const auto outcome =
        run_interactive_heavy(strategy, interactive_trace, sharing_horizon,
                              seed);
    if (strategy == sched::kBestFit) {
      best_fit_utilization = outcome.utilization;
    } else {
      packed_utilization = outcome.utilization;
    }
    std::printf("%-20s %13.1f%% %10d %10d %10d\n", strategy.c_str(),
                100.0 * outcome.utilization, outcome.sessions_served,
                outcome.sessions_denied, outcome.training_completed);
  }
  row_divider(70);
  std::printf("packed_sharing vs best_fit delivered utilization: %+.1f pp "
              "(%s)\n\n",
              100.0 * (packed_utilization - best_fit_utilization),
              packed_utilization > best_fit_utilization
                  ? "fractional sharing wins"
                  : "UNEXPECTED: whole-GPU allocation won");
  return 0;
}
