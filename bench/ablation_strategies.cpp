// Ablation: allocation strategies under churn.
//
// §3.2: "The scheduler implements multiple allocation strategies, including
// distribution for fairness and assignment based on priority ...
// incorporating provider reliability predictions and degradation
// mechanisms."  This ablation replays one workload + churn trace under each
// strategy and reports completion, interruptions suffered, queue wait and
// lost work — quantifying what reliability-aware placement buys.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

struct StrategyOutcome {
  int completed = 0;
  int submitted = 0;
  int interruptions = 0;
  double lost_work_hours = 0;
  double mean_wait_min = 0;
};

StrategyOutcome run(sched::AllocationStrategy strategy,
                    const workload::Trace& trace,
                    const std::vector<workload::Interruption>& churn,
                    util::SimTime horizon, std::uint64_t seed) {
  Scenario scenario = make_scenario(
      baseline::Preset::kGpunion, seed, [strategy](CampusConfig& config) {
        config.coordinator.strategy = strategy;
        config.coordinator.heartbeat_interval = 10.0;
        config.agent_defaults.telemetry_interval = 600.0;
        config.scrape_interval = 600.0;
      });
  replay_trace(scenario, trace);
  inject_churn(scenario, churn);
  scenario.env->run_until(horizon);

  StrategyOutcome outcome;
  const auto& stats = scenario.coordinator().stats();
  outcome.completed = stats.training_completed;
  outcome.submitted = stats.training_submitted;
  outcome.interruptions = stats.interruptions;
  outcome.mean_wait_min = stats.queue_wait.mean() / 60.0;
  for (const auto& [job_id, record] : scenario.coordinator().jobs()) {
    outcome.lost_work_hours += record.lost_work_seconds / 3600.0;
  }
  return outcome;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Ablation — allocation strategies under churn",
         "multiple allocation strategies + reliability prediction (§3.2)");

  const std::uint64_t seed = 555;
  const util::SimTime horizon = util::days(7);

  std::vector<workload::GroupDemand> groups(1);
  groups[0].name = "vision";
  groups[0].burst_jobs_per_day = 40.0;
  groups[0].idle_jobs_per_day = 40.0;  // steady load
  groups[0].burst_days = 1.0;
  groups[0].gap_days = 0.0;
  groups[0].sessions_per_day = 4.0;
  groups[0].duration_scale = 0.4;
  const auto trace =
      workload::generate_campus_trace(groups, horizon, util::Rng(seed));

  // Churn concentrated on the most attractive node (the 8x4090 server)
  // plus two workstations: capacity-greedy strategies keep walking into
  // the churn; reliability-aware placement learns to route around it.
  const std::vector<std::string> flaky = {
      Platform::machine_id_for("srv-mlsys-0"),
      Platform::machine_id_for("ws-vision-0"),
      Platform::machine_id_for("ws-vision-1")};
  workload::InterruptionModel model;
  model.events_per_day = 4.0;
  model.min_downtime = util::minutes(20);
  model.max_downtime = util::hours(1);
  const auto churn = workload::generate_interruptions(flaky, horizon, model,
                                                      util::Rng(seed + 1));

  std::printf("\nSetup: steady 40 jobs/day for 7 days on the paper fleet; "
              "the 8x4090 server and\ntwo workstations suffer 4 "
              "interruptions/day each; the rest are steady.\n\n");
  std::printf("%-20s %12s %14s %12s %12s\n", "strategy", "completed",
              "interruptions", "lost work", "mean wait");
  row_divider(76);
  for (auto strategy :
       {sched::AllocationStrategy::kRoundRobin,
        sched::AllocationStrategy::kLeastLoaded,
        sched::AllocationStrategy::kBestFit,
        sched::AllocationStrategy::kReliabilityAware}) {
    const auto outcome = run(strategy, trace, churn, horizon, seed);
    std::printf("%-20s %7d/%-4d %14d %10.1f h %10.1f m\n",
                std::string(sched::allocation_strategy_name(strategy)).c_str(),
                outcome.completed, outcome.submitted, outcome.interruptions,
                outcome.lost_work_hours, outcome.mean_wait_min);
  }
  row_divider(76);
  std::printf("Expected shape: reliability-aware placement suffers the "
              "fewest interruptions\nand loses the least work, at a small "
              "queue-wait premium over round-robin.\n\n");
  return 0;
}
