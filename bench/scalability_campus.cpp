// §5.2 scalability push: full simulated campus runs at 1k/4k/10k nodes.
//
// The paper validates the coordinator to ~50 nodes and concedes that
// "beyond 200 nodes, heartbeat monitoring and database contention could
// become bottlenecks".  This bench drives the REAL platform (coordinator,
// agents, network, database) at 1,000 / 4,000 / 10,000 nodes under churn
// and reports the quantities that bound that claim:
//   - scheduling latency (submit -> first dispatch accept),
//   - heartbeat-sweep cost (expiry-ordered: work per sweep is O(expired)),
//   - database op rate with and without batched heartbeat writes,
//   - event-queue health (tombstone compaction).
//
// It also times the heartbeat-processing hot path head-to-head against a
// faithful replica of the pre-index implementation (full job-map scan with
// a nested membership loop; full-directory sweep) over identical state —
// the before/after that the indexes buy.
//
// PR 6 adds the parallel-execution-core sweep: the same campus under
// kDeterministic (legacy single-thread order) and kParallel with 1/2/4/8
// workers, reporting wall clock, per-worker CPU busy time, the critical-path
// "ideal parallel wall" (sum over conservative windows of the busiest
// worker's CPU time) and the exposed speedup total_busy/ideal — the honest
// concurrency number on a machine with fewer cores than workers — plus a
// 100k-node completion run.
//
// PR 4 adds the sharded-vs-single-writer A/B: the same campus run under
// the legacy DB config (1 writer, every mutation synchronous) and under
// the sharded write-behind config (>= 4 writer shards, per-decision
// mutations absorbed by the ledger), reporting the decision-path op-rate
// cut and the modeled M/M/1 decision-path latency for both.
//
// Emits machine-readable BENCH_scalability.json (override with --out).
// `--smoke` shrinks everything for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/harness.h"
#include "gpunion/federated_platform.h"
#include "sched/heartbeat_monitor.h"
#include "util/logging.h"
#include "workload/profiles.h"
#include "workload/provider_behavior.h"

namespace gpunion::bench {
namespace {

// ---------------------------------------------------------------------------
// Head-to-head: heartbeat-processing path, legacy full scan vs indexed.
// ---------------------------------------------------------------------------

/// The coordinator-side job state both implementations reconcile over.
struct ReconcileFixture {
  struct Rec {
    std::string node;
    bool running = false;  // terminal history records are !running
  };
  // Legacy shape: one map holding every record ever submitted.
  std::map<std::string, Rec> all_jobs;
  // Indexed shape: per-node live ids (terminal records retired away).
  std::unordered_map<std::string, std::vector<std::string>> by_node;
  std::vector<std::string> machines;
  // Each machine's heartbeat job list (what the agent reports hosting).
  std::unordered_map<std::string, std::vector<std::string>> beat_lists;
};

/// `nodes` machines, one running job per machine, plus `history_per_node`
/// terminal records each — the state an overnight campus accumulates.
ReconcileFixture make_reconcile_fixture(int nodes, int history_per_node) {
  ReconcileFixture f;
  f.machines.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const std::string machine = "m-" + std::to_string(100000 + n);
    f.machines.push_back(machine);
    const std::string live = "job-" + machine;
    f.all_jobs[live] = {machine, true};
    f.by_node[machine].push_back(live);
    f.beat_lists[machine].push_back(live);
    for (int h = 0; h < history_per_node; ++h) {
      f.all_jobs["done-" + machine + "-" + std::to_string(h)] =
          {machine, false};
    }
  }
  return f;
}

/// Pre-PR reconcile: scan EVERY record per heartbeat; membership through
/// the nested O(records_on_node x running_jobs) string-compare loop.
std::size_t legacy_reconcile(const ReconcileFixture& f,
                             const std::string& machine) {
  std::size_t missing = 0;
  const auto& hosted = f.beat_lists.at(machine);
  for (const auto& [job_id, rec] : f.all_jobs) {
    if (!rec.running || rec.node != machine) continue;
    bool found = false;
    for (const auto& running : hosted) {
      if (running == job_id) {
        found = true;
        break;
      }
    }
    if (!found) ++missing;
  }
  return missing;
}

/// Indexed reconcile: per-node id list + hash-set membership.
std::size_t indexed_reconcile(const ReconcileFixture& f,
                              const std::string& machine) {
  std::size_t missing = 0;
  auto node_jobs = f.by_node.find(machine);
  if (node_jobs == f.by_node.end()) return 0;
  const auto& hosted_list = f.beat_lists.at(machine);
  const std::unordered_set<std::string_view> hosted(hosted_list.begin(),
                                                    hosted_list.end());
  for (const auto& job_id : node_jobs->second) {
    if (!hosted.contains(std::string_view(job_id))) ++missing;
  }
  return missing;
}

struct HeartbeatPathResult {
  int nodes = 0;
  int total_records = 0;
  int active_records = 0;
  double legacy_us_per_beat = 0;
  double indexed_us_per_beat = 0;
  double speedup = 0;
};

HeartbeatPathResult time_heartbeat_path(int nodes, int history_per_node) {
  const ReconcileFixture f = make_reconcile_fixture(nodes, history_per_node);
  HeartbeatPathResult r;
  r.nodes = nodes;
  r.total_records = static_cast<int>(f.all_jobs.size());
  r.active_records = nodes;
  // One full heartbeat round (every machine beats once), repeated until
  // the slower side has run for a meaningful interval.
  std::size_t sink = 0;
  const int legacy_rounds = 3;
  const double legacy_s = wall_seconds([&] {
    for (int round = 0; round < legacy_rounds; ++round) {
      for (const auto& machine : f.machines) {
        sink += legacy_reconcile(f, machine);
      }
    }
  });
  const int indexed_rounds = 50;
  const double indexed_s = wall_seconds([&] {
    for (int round = 0; round < indexed_rounds; ++round) {
      for (const auto& machine : f.machines) {
        sink += indexed_reconcile(f, machine);
      }
    }
  });
  if (sink != 0) std::printf("(reconcile sink %zu)\n", sink);
  r.legacy_us_per_beat =
      legacy_s * 1e6 / (static_cast<double>(legacy_rounds) * nodes);
  r.indexed_us_per_beat =
      indexed_s * 1e6 / (static_cast<double>(indexed_rounds) * nodes);
  r.speedup = r.legacy_us_per_beat / std::max(1e-9, r.indexed_us_per_beat);
  return r;
}

struct SweepResult {
  int nodes = 0;
  double legacy_us_per_sweep = 0;
  double indexed_us_per_sweep = 0;
  double speedup = 0;
};

/// Pre-PR sweep (full directory scan) vs the expiry-ordered monitor, both
/// over an N-node directory with zero expirations (the steady state: the
/// sweep fires every 2 s, losses are rare).
SweepResult time_sweep(int nodes) {
  sim::Environment env;
  sched::Directory directory;
  sched::HeartbeatMonitor monitor(env, directory, 2.0, 3, nullptr);
  for (int i = 0; i < nodes; ++i) {
    const std::string machine_id = "m-" + std::to_string(100000 + i);
    sched::NodeInfo info;
    info.machine_id = machine_id;
    info.status = db::NodeStatus::kActive;
    info.accepting = true;
    info.gpu_count = 1;
    info.last_heartbeat = 0.0;
    directory.upsert(std::move(info));
    monitor.observe(machine_id, 0.0);
  }
  SweepResult r;
  r.nodes = nodes;
  std::size_t sink = 0;
  const int rounds = 200;
  const double deadline = monitor.detection_deadline();
  const double legacy_s = wall_seconds([&] {
    for (int round = 0; round < rounds; ++round) {
      // Faithful replica of the old HeartbeatMonitor::sweep.
      std::vector<std::string> lost;
      for (const sched::NodeInfo* node : directory.all()) {
        if (node->status != db::NodeStatus::kActive) continue;
        if (0.0 - node->last_heartbeat > deadline) {
          lost.push_back(node->machine_id);
        }
      }
      sink += lost.size();
    }
  });
  const double indexed_s = wall_seconds([&] {
    for (int round = 0; round < rounds; ++round) {
      sink += monitor.sweep().size();
    }
  });
  if (sink != 0) std::printf("(sweep sink %zu)\n", sink);
  r.legacy_us_per_sweep = legacy_s * 1e6 / rounds;
  r.indexed_us_per_sweep = indexed_s * 1e6 / rounds;
  r.speedup =
      r.legacy_us_per_sweep / std::max(1e-9, r.indexed_us_per_sweep);
  return r;
}

// ---------------------------------------------------------------------------
// Full campus simulation at scale.
// ---------------------------------------------------------------------------

struct CampusRunResult {
  int nodes = 0;
  double sim_horizon_s = 0;
  double wall_s = 0;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int interruptions = 0;
  std::uint64_t heartbeats = 0;
  double mean_sched_latency_s = 0;
  double p99_sched_latency_s = 0;
  double db_ops_per_sim_s = 0;
  double db_ops_per_sim_s_unbatched_equiv = 0;
  std::uint64_t sweep_entries_examined = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t event_compactions = 0;
  std::size_t live_jobs_at_end = 0;
  std::size_t archived_jobs_at_end = 0;
  double wall_us_per_heartbeat = 0;
  // Sharded-DB / write-behind accounting (PR 4).
  int db_shards = 0;
  bool db_write_behind = false;
  int decisions = 0;  // dispatches sent
  double db_sync_ops_per_sim_s = 0;
  double hottest_shard_ops_per_sim_s = 0;
  double decision_ops_per_decision = 0;  // sync decision-path ops / decision
  std::uint64_t ledger_absorbed = 0;
  std::uint64_t ledger_flushes = 0;
  std::uint64_t ledger_shard_commits = 0;
  // Execution-core accounting (PR 6).
  std::string exec_mode = "deterministic";
  int regions = 1;  // >1: federated run (one control-plane actor per region)
  int workers = 0;
  std::uint64_t windows = 0;
  std::uint64_t exclusive_events = 0;
  std::uint64_t causality_clamps = 0;
  double total_busy_s = 0;       // summed worker CPU time
  double ideal_wall_s = 0;       // critical path across windows
  double exposed_speedup = 0;    // total_busy / ideal (kParallel only)
  std::size_t processed_events = 0;
};

/// Execution-core counters shared by the single-campus and federated runs.
void fill_exec_stats(CampusRunResult& r, const sim::Environment& env) {
  r.exec_mode = env.mode() == sim::ExecutionMode::kParallel ? "parallel"
                                                            : "deterministic";
  r.workers = static_cast<int>(env.worker_count());
  r.processed_events = env.processed_events();
  const sim::ParallelStats& ps = env.parallel_stats();
  r.windows = ps.windows;
  r.exclusive_events = ps.exclusive_events;
  r.causality_clamps = ps.causality_clamps;
  r.total_busy_s = ps.total_busy_s;
  r.ideal_wall_s = ps.ideal_wall_s;
  r.exposed_speedup =
      ps.ideal_wall_s > 0 ? ps.total_busy_s / ps.ideal_wall_s : 0.0;
}

CampusConfig synthetic_campus(int nodes, const db::DbConfig& db) {
  CampusConfig config;
  config.db = db;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("ws-" + std::to_string(i)),
         "group-" + std::to_string(i % 16)});
  }
  config.storage.push_back({"nas-campus", 512ULL << 40});
  config.coordinator.heartbeat_interval = 2.0;
  config.coordinator.heartbeat_miss_threshold = 3;
  config.coordinator.strategy = std::string(sched::kRoundRobin);
  config.agent_defaults.heartbeat_interval = 2.0;
  // Telemetry and scrapes off the hot path: this bench isolates the
  // heartbeat + scheduling + churn control plane.
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

CampusRunResult run_campus(int nodes, double horizon, double churn_per_day,
                           std::uint64_t seed,
                           const db::DbConfig& db = db::DbConfig{},
                           const sim::EnvConfig& exec = sim::EnvConfig{}) {
  CampusRunResult r;
  r.nodes = nodes;
  r.sim_horizon_s = horizon;

  sim::Environment env(seed, exec);
  Platform platform(env, synthetic_campus(nodes, db));
  r.wall_s = wall_seconds([&] {
    platform.start();
    env.run_until(5.0);

    // Load: one short training job per four nodes, one interactive
    // session per sixteen — enough to keep placement and completion
    // traffic flowing throughout the horizon.
    auto& coordinator = platform.coordinator();
    const int training = nodes / 4;
    for (int i = 0; i < training; ++i) {
      auto job = workload::make_training_job(
          "train-" + std::to_string(i), workload::cnn_small(),
          /*hours=*/0.02 + 0.02 * (i % 4), "group-" + std::to_string(i % 16),
          env.now());
      job.checkpoint_interval = 120.0;
      (void)coordinator.submit(std::move(job));
    }
    for (int i = 0; i < nodes / 16; ++i) {
      (void)coordinator.submit(workload::make_interactive_session(
          "sess-" + std::to_string(i), 0.05,
          "group-" + std::to_string(i % 16), env.now()));
    }

    // Churn across the whole fleet.
    workload::InterruptionModel model;
    model.events_per_day = churn_per_day;
    model.min_downtime = 60.0;
    model.max_downtime = 600.0;
    model.temporary_downtime = 120.0;
    auto interruptions = workload::generate_interruptions(
        platform.machine_ids(), horizon, model, util::Rng(seed + 1));
    for (const auto& event : interruptions) {
      // Exclusive in kParallel (interruptions touch the coordinator AND an
      // agent); an ordinary event in kDeterministic — same legacy order.
      platform.schedule_interruption(std::max(event.at, env.now()), event);
    }
    env.run_until(horizon);
  });

  const auto& stats = platform.coordinator().stats();
  const auto& monitor = platform.coordinator().heartbeat_monitor();
  r.jobs_submitted = stats.jobs_submitted;
  r.jobs_completed = stats.jobs_completed;
  r.interruptions = stats.interruptions;
  r.heartbeats = stats.heartbeats_processed;
  r.mean_sched_latency_s = stats.queue_wait.mean();
  r.p99_sched_latency_s = stats.queue_wait.percentile(99);
  r.db_ops_per_sim_s =
      static_cast<double>(platform.database().op_count()) / horizon;
  // Exact counterfactual: every coalesced touch would have been one op.
  r.db_ops_per_sim_s_unbatched_equiv =
      (static_cast<double>(platform.database().op_count()) +
       static_cast<double>(stats.heartbeat_db_touches_coalesced) -
       static_cast<double>(stats.heartbeat_db_flushes)) /
      horizon;
  r.sweep_entries_examined = monitor.total_examined();
  r.sweeps = monitor.sweeps();
  r.event_compactions = env.queue_stats().compactions;
  const db::ShardedDatabase& database = platform.database();
  r.db_shards = database.shard_count();
  r.db_write_behind = database.config().write_behind;
  r.decisions = stats.dispatches_sent;
  r.db_sync_ops_per_sim_s =
      static_cast<double>(database.sync_op_count()) / horizon;
  std::uint64_t hottest = 0;
  for (const std::uint64_t ops : database.shard_op_counts()) {
    hottest = std::max(hottest, ops);
  }
  r.hottest_shard_ops_per_sim_s = static_cast<double>(hottest) / horizon;
  r.decision_ops_per_decision =
      r.decisions == 0 ? 0.0
                       : static_cast<double>(database.decision_path_sync_ops()) /
                             static_cast<double>(r.decisions);
  r.ledger_absorbed = database.ledger().stats().absorbed;
  r.ledger_flushes = database.ledger().stats().flushes;
  r.ledger_shard_commits = database.ledger().stats().shard_commits;
  const auto operational = platform.coordinator().operational_stats();
  r.live_jobs_at_end = static_cast<std::size_t>(operational.live_jobs);
  r.archived_jobs_at_end =
      static_cast<std::size_t>(operational.archived_jobs);
  r.wall_us_per_heartbeat =
      r.heartbeats == 0
          ? 0
          : r.wall_s * 1e6 / static_cast<double>(r.heartbeats);
  fill_exec_stats(r, env);
  return r;
}

/// The same control-plane workload split across `region_count` federated
/// campuses (one coordinator/database/gateway actor set per region, joined
/// by the WAN).  A single campus has exactly ONE control-plane actor, so
/// its heartbeat fan-in IS the critical path no matter how many workers
/// run — this is the configuration where the runtime has genuinely
/// concurrent control planes to spread across workers.
CampusRunResult run_federated_exec(int total_nodes, int region_count,
                                   double horizon, double churn_per_day,
                                   std::uint64_t seed,
                                   const sim::EnvConfig& exec) {
  CampusRunResult r;
  r.nodes = total_nodes;
  r.regions = region_count;
  r.sim_horizon_s = horizon;

  sim::Environment env(seed, exec);
  FederationConfig config;
  const int per_region = total_nodes / region_count;
  for (int g = 0; g < region_count; ++g) {
    const std::string name = "campus-" + std::to_string(g);
    CampusConfig campus = synthetic_campus(per_region, db::DbConfig{});
    for (auto& node : campus.nodes) {
      node.spec.hostname = name + "-" + node.spec.hostname;
    }
    campus.storage.front().id = "nas-" + name;
    federation::RegionPolicy policy;
    policy.digest_interval = 10.0;
    config.regions.push_back({name, std::move(campus), policy});
  }
  config.wan.base_latency = 0.010;
  config.metrics_interval = 1e9;
  FederatedPlatform fed(env, config);

  r.wall_s = wall_seconds([&] {
    fed.start();
    env.run_until(5.0);
    for (std::size_t g = 0; g < fed.region_count(); ++g) {
      Platform& platform = fed.region(g);
      auto& coordinator = platform.coordinator();
      for (int i = 0; i < per_region / 4; ++i) {
        auto job = workload::make_training_job(
            "train-" + std::to_string(g) + "-" + std::to_string(i),
            workload::cnn_small(), /*hours=*/0.02 + 0.02 * (i % 4),
            "group-" + std::to_string(i % 16), env.now());
        job.checkpoint_interval = 120.0;
        (void)coordinator.submit(std::move(job));
      }
      workload::InterruptionModel model;
      model.events_per_day = churn_per_day;
      model.min_downtime = 60.0;
      model.max_downtime = 600.0;
      model.temporary_downtime = 120.0;
      auto interruptions = workload::generate_interruptions(
          platform.machine_ids(), horizon, model, util::Rng(seed + 1 + g));
      for (const auto& event : interruptions) {
        platform.schedule_interruption(std::max(event.at, env.now()), event);
      }
    }
    env.run_until(horizon);
  });

  for (std::size_t g = 0; g < fed.region_count(); ++g) {
    const auto& stats = fed.region(g).coordinator().stats();
    r.jobs_submitted += stats.jobs_submitted;
    r.jobs_completed += stats.jobs_completed;
    r.interruptions += stats.interruptions;
    r.heartbeats += stats.heartbeats_processed;
  }
  fill_exec_stats(r, env);
  return r;
}

// ---------------------------------------------------------------------------
// Sharded-vs-single-writer A/B (the PR 2 "next scalability wall").
// ---------------------------------------------------------------------------

/// M/M/1 sojourn time, saturation-clamped: at/over the service rate the
/// true latency is unbounded, so the model reports the wait at rho = 0.99
/// and flags the run saturated (the honest headline is the flag; the
/// clamped number keeps the reduction factor finite and recordable).
double mm1_wait_clamped(double lambda, double mu, bool* saturated) {
  if (lambda >= mu) {
    *saturated = true;
    lambda = 0.99 * mu;
  }
  return 1.0 / (mu - lambda);
}

struct DbAbResult {
  int nodes = 0;
  CampusRunResult legacy;   // 1 writer, write-behind off
  CampusRunResult sharded;  // >= 4 writers, write-behind on
  double mu = 0;            // per-writer service rate
  double legacy_rho = 0;    // single writer utilization
  double sharded_rho = 0;   // hottest shard utilization
  bool legacy_saturated = false;
  bool sharded_saturated = false;
  /// Modeled decision-path DB latency: (sync decision-path ops per
  /// decision) x (M/M/1 wait at the serving writer's measured op rate).
  double legacy_decision_latency_s = 0;
  double sharded_decision_latency_s = 0;
  double latency_reduction = 0;  // legacy / sharded
  double decision_op_cut = 0;    // decision-path ops per decision, legacy/sharded
  double op_rate_cut = 0;        // total charged op rate, legacy/sharded
};

DbAbResult run_db_ab(int nodes, double horizon, double churn_per_day,
                     std::uint64_t seed, int shards) {
  db::DbConfig legacy;
  legacy.shard_count = 1;
  legacy.write_behind = false;
  db::DbConfig sharded;
  sharded.shard_count = shards;
  sharded.write_behind = true;

  DbAbResult ab;
  ab.nodes = nodes;
  ab.legacy = run_campus(nodes, horizon, churn_per_day, seed, legacy);
  ab.sharded = run_campus(nodes, horizon, churn_per_day, seed, sharded);
  ab.mu = 1.0 / legacy.op_service_time;
  ab.legacy_rho = ab.legacy.hottest_shard_ops_per_sim_s / ab.mu;
  ab.sharded_rho = ab.sharded.hottest_shard_ops_per_sim_s / ab.mu;
  const double legacy_wait = mm1_wait_clamped(
      ab.legacy.hottest_shard_ops_per_sim_s, ab.mu, &ab.legacy_saturated);
  const double sharded_wait = mm1_wait_clamped(
      ab.sharded.hottest_shard_ops_per_sim_s, ab.mu, &ab.sharded_saturated);
  ab.legacy_decision_latency_s =
      ab.legacy.decision_ops_per_decision * legacy_wait;
  ab.sharded_decision_latency_s =
      ab.sharded.decision_ops_per_decision * sharded_wait;
  ab.latency_reduction =
      ab.sharded_decision_latency_s <= 0
          ? 0
          : ab.legacy_decision_latency_s / ab.sharded_decision_latency_s;
  ab.decision_op_cut =
      ab.sharded.decision_ops_per_decision <= 0
          ? 0
          : ab.legacy.decision_ops_per_decision /
                ab.sharded.decision_ops_per_decision;
  ab.op_rate_cut = ab.sharded.db_ops_per_sim_s <= 0
                       ? 0
                       : ab.legacy.db_ops_per_sim_s /
                             ab.sharded.db_ops_per_sim_s;
  return ab;
}

/// What the LEGACY load would cost at N writer lanes (even split): the
/// pure shard-count ablation, holding the workload fixed.
struct ShardModelPoint {
  int shards = 0;
  double per_shard_ops_per_s = 0;
  double rho = 0;
  bool saturated = false;
  double wait_ms = 0;
};

std::vector<ShardModelPoint> shard_model(const DbAbResult& ab) {
  std::vector<ShardModelPoint> out;
  for (const int shards : {1, 2, 4, 8, 16}) {
    ShardModelPoint p;
    p.shards = shards;
    p.per_shard_ops_per_s =
        ab.legacy.db_ops_per_sim_s / static_cast<double>(shards);
    p.rho = p.per_shard_ops_per_s / ab.mu;
    p.wait_ms =
        mm1_wait_clamped(p.per_shard_ops_per_s, ab.mu, &p.saturated) * 1000.0;
    out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void print_campus(const CampusRunResult& r) {
  std::printf(
      "%7d %9.0f %8.1f %9llu %10.2f %10.2f %11.0f %13.0f %9llu %8zu\n",
      r.nodes, r.sim_horizon_s, r.wall_s,
      static_cast<unsigned long long>(r.heartbeats),
      r.mean_sched_latency_s * 1000.0, r.p99_sched_latency_s * 1000.0,
      r.db_ops_per_sim_s, r.db_ops_per_sim_s_unbatched_equiv,
      static_cast<unsigned long long>(r.sweep_entries_examined),
      r.archived_jobs_at_end);
}

void write_json(const std::string& path, const std::string& mode,
                const std::vector<HeartbeatPathResult>& paths,
                const std::vector<SweepResult>& sweeps,
                const std::vector<CampusRunResult>& runs,
                const std::vector<DbAbResult>& db_abs,
                const std::vector<CampusRunResult>& exec_runs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"scalability\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"heartbeat_path\": [\n";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    out << "    {\"nodes\": " << p.nodes
        << ", \"total_records\": " << p.total_records
        << ", \"active_records\": " << p.active_records
        << ", \"legacy_us_per_beat\": " << p.legacy_us_per_beat
        << ", \"indexed_us_per_beat\": " << p.indexed_us_per_beat
        << ", \"speedup\": " << p.speedup << "}"
        << (i + 1 < paths.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"heartbeat_sweep\": [\n";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const auto& s = sweeps[i];
    out << "    {\"nodes\": " << s.nodes
        << ", \"legacy_us_per_sweep\": " << s.legacy_us_per_sweep
        << ", \"indexed_us_per_sweep\": " << s.indexed_us_per_sweep
        << ", \"speedup\": " << s.speedup << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"campus_runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    out << "    {\"nodes\": " << r.nodes
        << ", \"sim_horizon_s\": " << r.sim_horizon_s
        << ", \"wall_s\": " << r.wall_s
        << ", \"jobs_submitted\": " << r.jobs_submitted
        << ", \"jobs_completed\": " << r.jobs_completed
        << ", \"interruptions\": " << r.interruptions
        << ", \"heartbeats\": " << r.heartbeats
        << ", \"mean_sched_latency_s\": " << r.mean_sched_latency_s
        << ", \"p99_sched_latency_s\": " << r.p99_sched_latency_s
        << ", \"db_ops_per_sim_s\": " << r.db_ops_per_sim_s
        << ", \"db_ops_per_sim_s_unbatched_equiv\": "
        << r.db_ops_per_sim_s_unbatched_equiv
        << ", \"sweeps\": " << r.sweeps
        << ", \"sweep_entries_examined\": " << r.sweep_entries_examined
        << ", \"event_compactions\": " << r.event_compactions
        << ", \"live_jobs_at_end\": " << r.live_jobs_at_end
        << ", \"archived_jobs_at_end\": " << r.archived_jobs_at_end
        << ", \"db_shards\": " << r.db_shards
        << ", \"db_write_behind\": " << (r.db_write_behind ? "true" : "false")
        << ", \"db_sync_ops_per_sim_s\": " << r.db_sync_ops_per_sim_s
        << ", \"ledger_absorbed\": " << r.ledger_absorbed
        << ", \"ledger_flushes\": " << r.ledger_flushes
        << ", \"wall_us_per_heartbeat\": " << r.wall_us_per_heartbeat << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"execution\": {\n";
  out << "    \"hw_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "    \"note\": \"ideal_parallel_wall_s is the critical path: per "
         "conservative window, the busiest worker's CPU time; "
         "exposed_speedup = total_busy_s / ideal_parallel_wall_s.  Wall "
         "clock only reflects it when hw_concurrency >= workers.\",\n";
  out << "    \"runs\": [\n";
  for (std::size_t i = 0; i < exec_runs.size(); ++i) {
    const auto& r = exec_runs[i];
    out << "      {\"mode\": \"" << r.exec_mode << "\""
        << ", \"regions\": " << r.regions
        << ", \"workers\": " << r.workers
        << ", \"nodes\": " << r.nodes
        << ", \"sim_horizon_s\": " << r.sim_horizon_s
        << ", \"wall_s\": " << r.wall_s
        << ", \"processed_events\": " << r.processed_events
        << ", \"total_busy_s\": " << r.total_busy_s
        << ", \"ideal_parallel_wall_s\": " << r.ideal_wall_s
        << ", \"exposed_speedup\": " << r.exposed_speedup
        << ", \"windows\": " << r.windows
        << ", \"exclusive_events\": " << r.exclusive_events
        << ", \"causality_clamps\": " << r.causality_clamps
        << ", \"heartbeats\": " << r.heartbeats
        << ", \"jobs_completed\": " << r.jobs_completed << "}"
        << (i + 1 < exec_runs.size() ? "," : "") << "\n";
  }
  out << "    ]\n";
  out << "  },\n";
  out << "  \"db_sharding\": [\n";
  auto emit_side = [&out](const char* name, const CampusRunResult& r) {
    out << "      \"" << name << "\": {\"shards\": " << r.db_shards
        << ", \"write_behind\": " << (r.db_write_behind ? "true" : "false")
        << ", \"decisions\": " << r.decisions
        << ", \"db_ops_per_sim_s\": " << r.db_ops_per_sim_s
        << ", \"db_sync_ops_per_sim_s\": " << r.db_sync_ops_per_sim_s
        << ", \"hottest_shard_ops_per_sim_s\": "
        << r.hottest_shard_ops_per_sim_s
        << ", \"decision_ops_per_decision\": " << r.decision_ops_per_decision
        << ", \"ledger_absorbed\": " << r.ledger_absorbed
        << ", \"ledger_flushes\": " << r.ledger_flushes
        << ", \"ledger_shard_commits\": " << r.ledger_shard_commits << "}";
  };
  for (std::size_t i = 0; i < db_abs.size(); ++i) {
    const auto& ab = db_abs[i];
    out << "    {\"nodes\": " << ab.nodes
        << ", \"sim_horizon_s\": " << ab.legacy.sim_horizon_s
        << ", \"writer_service_rate_ops_per_s\": " << ab.mu << ",\n";
    emit_side("legacy", ab.legacy);
    out << ",\n";
    emit_side("sharded", ab.sharded);
    out << ",\n";
    out << "      \"legacy_rho\": " << ab.legacy_rho
        << ", \"legacy_saturated\": "
        << (ab.legacy_saturated ? "true" : "false")
        << ", \"sharded_rho\": " << ab.sharded_rho
        << ", \"sharded_saturated\": "
        << (ab.sharded_saturated ? "true" : "false")
        << ",\n      \"modeled_decision_path_latency_legacy_s\": "
        << ab.legacy_decision_latency_s
        << ", \"modeled_decision_path_latency_sharded_s\": "
        << ab.sharded_decision_latency_s
        << ",\n      \"decision_latency_reduction\": " << ab.latency_reduction
        << ", \"decision_op_cut\": " << ab.decision_op_cut
        << ", \"op_rate_cut\": " << ab.op_rate_cut << ",\n";
    out << "      \"shard_model\": [";
    const auto model = shard_model(ab);
    for (std::size_t j = 0; j < model.size(); ++j) {
      const auto& p = model[j];
      out << "{\"shards\": " << p.shards << ", \"rho\": " << p.rho
          << ", \"saturated\": " << (p.saturated ? "true" : "false")
          << ", \"wait_ms\": " << p.wait_ms << "}"
          << (j + 1 < model.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < db_abs.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  bool smoke = false;
  std::string out_path = "BENCH_scalability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  banner("Scalability — O(active) control plane at 1k/4k/10k nodes",
         "§5.2 (beyond the paper's 50-node validation)");

  // Heartbeat-processing hot path, before vs after, over identical state.
  std::printf("\nHeartbeat-processing path (reconcile): legacy full job-map "
              "scan + nested\nmembership loop vs per-node index + hash set, "
              "10x terminal history per node.\n\n");
  std::printf("%7s %14s %14s %16s %9s\n", "nodes", "records",
              "legacy us/beat", "indexed us/beat", "speedup");
  row_divider(64);
  std::vector<HeartbeatPathResult> paths;
  for (int nodes : smoke ? std::vector<int>{200, 400}
                         : std::vector<int>{1000, 4000, 10000}) {
    auto r = time_heartbeat_path(nodes, /*history_per_node=*/10);
    paths.push_back(r);
    std::printf("%7d %14d %14.2f %16.3f %8.1fx\n", r.nodes, r.total_records,
                r.legacy_us_per_beat, r.indexed_us_per_beat, r.speedup);
  }

  std::printf("\nHeartbeat sweep: legacy full-directory scan vs "
              "expiry-ordered pop (steady\nstate, zero expirations).\n\n");
  std::printf("%7s %16s %16s %9s\n", "nodes", "legacy us/sweep",
              "indexed us/sweep", "speedup");
  row_divider(52);
  std::vector<SweepResult> sweeps;
  for (int nodes : smoke ? std::vector<int>{200, 400}
                         : std::vector<int>{1000, 4000, 10000}) {
    auto r = time_sweep(nodes);
    sweeps.push_back(r);
    std::printf("%7d %16.2f %16.3f %8.1fx\n", r.nodes, r.legacy_us_per_sweep,
                r.indexed_us_per_sweep, r.speedup);
  }

  // Full campus runs.
  std::printf("\nFull campus simulation under churn (real coordinator, "
              "agents, network, DB):\n\n");
  std::printf("%7s %9s %8s %9s %10s %10s %11s %13s %9s %8s\n", "nodes",
              "sim-s", "wall-s", "beats", "sched-ms", "p99-ms",
              "db-ops/s", "db-unbatched", "swept", "archive");
  row_divider(104);
  std::vector<CampusRunResult> runs;
  const std::vector<std::pair<int, double>> scales =
      smoke ? std::vector<std::pair<int, double>>{{100, 60.0}, {200, 60.0}}
            : std::vector<std::pair<int, double>>{
                  {1000, 300.0}, {4000, 180.0}, {10000, 120.0}};
  for (const auto& [nodes, horizon] : scales) {
    auto r = run_campus(nodes, horizon, /*churn_per_day=*/24.0, 1234);
    runs.push_back(r);
    print_campus(r);
  }

  std::printf("\nsched-ms/p99-ms in sim-milliseconds; db-unbatched = exact op rate "
              "had every heartbeat\nwritten through (batched flushes "
              "coalesce them); swept = total expiry-pops across\nall sweeps "
              "(legacy scanned nodes x sweeps).\n");

  // Parallel execution core: the same campus under kDeterministic and
  // kParallel at 1/2/4/8 workers, plus a large completion run.
  std::printf("\nParallel execution core (threaded actor runtime, sharded "
              "event queue):\nexposed speedup = summed worker CPU busy / "
              "critical path across windows\n(wall clock only tracks it "
              "when the machine has >= workers cores; this host\nhas %u).\n\n",
              std::thread::hardware_concurrency());
  std::printf("%14s %8s %8s %7s %8s %8s %8s %9s %8s %8s\n", "mode",
              "regions", "workers", "nodes", "wall-s", "busy-s", "ideal-s",
              "speedup", "windows", "clamps");
  row_divider(98);
  std::vector<CampusRunResult> exec_runs;
  const int sweep_nodes = smoke ? 200 : 10000;
  const double sweep_horizon = smoke ? 60.0 : 120.0;
  auto print_exec = [](const CampusRunResult& r) {
    std::printf("%14s %8d %8d %7d %8.2f %8.2f %8.2f %8.2fx %8llu %8llu\n",
                r.exec_mode.c_str(), r.regions, r.workers, r.nodes, r.wall_s,
                r.total_busy_s, r.ideal_wall_s, r.exposed_speedup,
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.causality_clamps));
  };
  {
    auto r = run_campus(sweep_nodes, sweep_horizon, /*churn_per_day=*/24.0,
                        1234);
    exec_runs.push_back(r);
    print_exec(r);
  }
  for (const int workers : {1, 2, 4, 8}) {
    sim::EnvConfig exec;
    exec.mode = sim::ExecutionMode::kParallel;
    exec.worker_threads = static_cast<std::size_t>(workers);
    auto r = run_campus(sweep_nodes, sweep_horizon, /*churn_per_day=*/24.0,
                        1234, db::DbConfig{}, exec);
    exec_runs.push_back(r);
    print_exec(r);
  }
  // The same fleet split across 4 federated campuses: one control-plane
  // actor (coordinator + database + gateway) per region instead of one
  // total.  A single campus's coordinator IS the critical path regardless
  // of worker count; this is the shape with genuine control-plane
  // concurrency for the runtime to expose.
  std::printf("\n");
  {
    sim::EnvConfig det;
    auto r = run_federated_exec(sweep_nodes, /*region_count=*/4,
                                sweep_horizon, /*churn_per_day=*/24.0, 1234,
                                det);
    exec_runs.push_back(r);
    print_exec(r);
  }
  for (const int workers : {1, 2, 4, 8}) {
    sim::EnvConfig exec;
    exec.mode = sim::ExecutionMode::kParallel;
    exec.worker_threads = static_cast<std::size_t>(workers);
    auto r = run_federated_exec(sweep_nodes, /*region_count=*/4,
                                sweep_horizon, /*churn_per_day=*/24.0, 1234,
                                exec);
    exec_runs.push_back(r);
    print_exec(r);
  }
  {
    // Completion run at an order of magnitude beyond the sweep: does the
    // runtime hold together at 100k actors?
    const int large_nodes = smoke ? 400 : 100000;
    const double large_horizon = smoke ? 30.0 : 30.0;
    sim::EnvConfig exec;
    exec.mode = sim::ExecutionMode::kParallel;
    exec.worker_threads = 4;
    auto r = run_campus(large_nodes, large_horizon, /*churn_per_day=*/4.0,
                        1234, db::DbConfig{}, exec);
    exec_runs.push_back(r);
    print_exec(r);
  }

  // Sharded-vs-single-writer A/B: identical campus + churn + seed, legacy
  // DB (1 writer, all writes synchronous) vs sharded write-behind.
  std::printf("\nSharded multi-writer DB + write-behind ledger vs legacy "
              "single writer\n(same campus, churn and seed; modeled "
              "decision-path latency = sync decision\nops/decision x M/M/1 "
              "wait at the hottest writer, rho clamped at 0.99):\n\n");
  std::printf("%7s %10s %10s %9s %9s %12s %12s %10s\n", "nodes", "ops/s-1w",
              "ops/s-shd", "rho-1w", "rho-shd", "lat-1w-ms", "lat-shd-ms",
              "reduction");
  row_divider(88);
  std::vector<DbAbResult> db_abs;
  const std::vector<std::pair<int, double>> ab_scales =
      smoke ? std::vector<std::pair<int, double>>{{100, 60.0}, {200, 60.0}}
            : std::vector<std::pair<int, double>>{{1000, 300.0},
                                                  {4000, 180.0}};
  for (const auto& [nodes, horizon] : ab_scales) {
    auto ab = run_db_ab(nodes, horizon, /*churn_per_day=*/24.0, 1234,
                        /*shards=*/4);
    db_abs.push_back(ab);
    std::printf("%7d %10.0f %10.0f %8.2f%s %8.2f%s %12.2f %12.3f %9.1fx\n",
                ab.nodes, ab.legacy.db_ops_per_sim_s,
                ab.sharded.db_ops_per_sim_s, ab.legacy_rho,
                ab.legacy_saturated ? "!" : " ", ab.sharded_rho,
                ab.sharded_saturated ? "!" : " ",
                ab.legacy_decision_latency_s * 1000.0,
                ab.sharded_decision_latency_s * 1000.0,
                ab.latency_reduction);
  }
  std::printf("\n'!' marks a saturated writer (rho >= 1: the M/M/1 wait is "
              "unbounded; the\nlatency shown is the rho=0.99 clamp).  "
              "reduction = legacy/sharded modeled\ndecision-path latency.\n");

  write_json(out_path, smoke ? "smoke" : "full", paths, sweeps, runs, db_abs,
             exec_runs);
  return 0;
}
