// Crash-consistency & recovery bench: what a control-plane crash costs
// and what the WAL + recovery replay machinery preserves.
//
// Three experiments, emitted as machine-readable BENCH_recovery.json
// (override with --out; `--smoke` shrinks everything for CI):
//
//   1. WAL replay micro-sweep — recovery latency vs. log depth.  A
//      write-behind database accumulates N acked-but-unflushed ledger
//      records, then crash_and_recover() rebuilds from durable state.
//      Reports wall time and per-record replay cost at each depth.
//
//   2. Campus crash campaign — each named crash point (pre-ack,
//      post-ack-pre-flush, mid-group-commit) fired three times into a
//      live campus draining a job backlog.  Reports jobs preserved
//      (completed == submitted, the exactly-once contract), WAL records
//      replayed, and the makespan penalty vs. an identical crash-free
//      run — i.e. what three control-plane crashes actually cost users.
//
//   3. Region rejoin A/B — a federated region's control plane crashes
//      and restarts; time until its directory regains the full
//      federation view, with the anti-entropy pull on vs. push-gossip
//      only.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "db/sharded_database.h"
#include "gpunion/federated_platform.h"
#include "sim/fault_injector.h"
#include "util/logging.h"
#include "workload/profiles.h"

namespace gpunion::bench {
namespace {

// ---------------------------------------------------------------------------
// 1. WAL replay micro-sweep
// ---------------------------------------------------------------------------

struct SweepPoint {
  std::size_t depth = 0;        // records in the WAL at the crash
  std::size_t replayed = 0;     // records recovery actually re-applied
  double recover_us = 0;        // wall time of crash_and_recover()
  double us_per_record = 0;
};

SweepPoint sweep_at_depth(std::size_t depth) {
  db::DbConfig config;
  config.shard_count = 8;
  config.write_behind = true;
  config.flush_threshold = depth + 1;  // never auto-flush during the fill
  db::ShardedDatabase database(config);
  db::NodeRecord node;
  node.machine_id = "m-0";
  node.hostname = "host-0";
  node.gpu_count = 2;
  (void)database.upsert_node(node);
  database.flush_ledger();

  // Fill the log with the deferred mutations a busy coordinator produces:
  // allocations opening, queue rows, provenance hops.
  double now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    now += 0.1;
    switch (i % 3) {
      case 0:
        database.open_allocation("job-" + std::to_string(i), "m-0", {0}, now);
        break;
      case 1:
        database.enqueue_request({"job-" + std::to_string(i), 0, now});
        break;
      default:
        database.record_provenance(
            {"job-" + std::to_string(i), "home", "home", now, ""});
        break;
    }
  }

  SweepPoint point;
  point.depth = database.wal().depth();
  db::RecoveryReport report;
  point.recover_us =
      1e6 * wall_seconds([&] { report = database.crash_and_recover(); });
  point.replayed = report.replayed;
  point.us_per_record =
      point.replayed == 0 ? 0 : point.recover_us / point.replayed;
  return point;
}

// ---------------------------------------------------------------------------
// 2. Campus crash campaign
// ---------------------------------------------------------------------------

CampusConfig crash_campus(int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back({hw::workstation_3090("cr-" + std::to_string(i)),
                            "group-" + std::to_string(i % 4)});
  }
  config.storage.push_back({"nas-cr", 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  config.db.shard_count = 4;
  config.db.write_behind = true;
  config.db.flush_threshold = 1u << 20;  // interval commits only
  config.db.flush_interval = 30.0;
  return config;
}

struct CampaignOutcome {
  std::string point;            // crash-point name ("" = crash-free baseline)
  int submitted = 0;
  int completed = 0;
  int recoveries = 0;
  std::uint64_t crashes_fired = 0;
  std::uint64_t wal_replayed = 0;
  double makespan_s = 0;        // last job completion, sim time
  double wall_s = 0;
  bool jobs_preserved = false;  // completed == submitted, conservation holds
};

/// One campaign: `jobs` short training jobs drain through `nodes` machines
/// while `point` (if non-empty) fires three times, each 0.1 s after a
/// fresh submission wave so the dirty crash points find a dirty WAL.
CampaignOutcome run_campaign(int nodes, int jobs, const std::string& point,
                             std::uint64_t seed) {
  CampaignOutcome outcome;
  outcome.point = point;
  sim::Environment env(seed);
  Platform platform(env, crash_campus(nodes));

  outcome.wall_s = wall_seconds([&] {
    platform.start();
    platform.register_crash_points(/*downtime=*/1.5);
    env.run_until(5.0);

    util::Rng rng(seed * 977 + 13);
    auto submit_batch = [&](int count) {
      for (int i = 0; i < count && outcome.submitted < jobs; ++i) {
        auto job = workload::make_training_job(
            "job-" + std::to_string(outcome.submitted), workload::cnn_small(),
            rng.uniform(0.01, 0.03),
            "group-" + std::to_string(outcome.submitted % 4), env.now());
        job.checkpoint_interval = 30.0;
        (void)platform.coordinator().submit(std::move(job));
        ++outcome.submitted;
      }
    };
    submit_batch(jobs - 6);
    for (double at : {20.0, 80.0, 140.0}) {
      env.schedule_at(at - 0.1, [&] { submit_batch(2); });
      if (!point.empty()) {
        platform.fault_injector().inject_at(at, point);
      }
    }
    env.run_until(1800.0);
  });

  const auto& stats = platform.coordinator().stats();
  outcome.completed = stats.jobs_completed;
  outcome.recoveries = platform.coordinator().recovery_stats().recoveries;
  outcome.crashes_fired = platform.fault_injector().total_fired();
  outcome.wal_replayed = platform.database().wal().stats().replayed;
  for (const auto& [job_id, record] : platform.coordinator().archive()) {
    outcome.makespan_s = std::max(outcome.makespan_s, record.completed_at);
  }
  outcome.jobs_preserved =
      outcome.completed == outcome.submitted &&
      stats.jobs_submitted ==
          static_cast<int>(platform.coordinator().jobs().size() +
                           platform.coordinator().archive().size()) +
              stats.jobs_withdrawn;
  return outcome;
}

// ---------------------------------------------------------------------------
// 3. Region rejoin A/B (anti-entropy pull vs. push gossip)
// ---------------------------------------------------------------------------

struct RejoinResult {
  double pull_s = -1;   // rejoin time with the anti-entropy pull
  double push_s = -1;   // rejoin time with push gossip only
};

double measure_rejoin(int regions, bool anti_entropy) {
  sim::Environment env(23);
  FederationConfig config;
  for (int i = 0; i < regions; ++i) {
    const std::string name = "r" + std::to_string(i);
    federation::RegionPolicy policy;
    policy.digest_interval = 5.0;
    policy.anti_entropy_pull = anti_entropy;
    config.regions.push_back(RegionConfig{name, crash_campus(1), policy});
  }
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(40.0);
  if (fed.gateway("r0").directory().entries().size() !=
      static_cast<std::size_t>(regions)) {
    return -1;  // never converged in the first place
  }
  const double downtime = 1.0;
  fed.crash_region_control_plane("r0", downtime);
  const double recovered_at = env.now() + downtime;
  const double deadline = recovered_at + 120.0;
  while (fed.gateway("r0").directory().entries().size() !=
         static_cast<std::size_t>(regions)) {
    if (env.now() >= deadline) return -1;
    env.run_until(env.now() + 0.01);
  }
  return env.now() - recovered_at;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void write_json(const std::string& path, const std::string& mode,
                const std::vector<SweepPoint>& sweep,
                const CampaignOutcome& baseline,
                const std::vector<CampaignOutcome>& campaigns,
                const RejoinResult& rejoin) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"recovery\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"wal_replay_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << "    {\"wal_depth\": " << sweep[i].depth
        << ", \"replayed\": " << sweep[i].replayed
        << ", \"recover_us\": " << sweep[i].recover_us
        << ", \"us_per_record\": " << sweep[i].us_per_record << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  auto write_campaign = [&out](const CampaignOutcome& c) {
    out << "{\"point\": \"" << (c.point.empty() ? "none" : c.point) << "\""
        << ", \"submitted\": " << c.submitted
        << ", \"completed\": " << c.completed
        << ", \"recoveries\": " << c.recoveries
        << ", \"crashes_fired\": " << c.crashes_fired
        << ", \"wal_replayed\": " << c.wal_replayed
        << ", \"makespan_s\": " << c.makespan_s
        << ", \"wall_s\": " << c.wall_s
        << ", \"jobs_preserved\": " << (c.jobs_preserved ? "true" : "false")
        << "}";
  };
  out << "  \"crash_free_baseline\": ";
  write_campaign(baseline);
  out << ",\n";
  out << "  \"crash_campaigns\": [\n";
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    out << "    ";
    write_campaign(campaigns[i]);
    out << (i + 1 < campaigns.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"region_rejoin\": {\"anti_entropy_pull_s\": " << rejoin.pull_s
      << ", \"push_gossip_s\": " << rejoin.push_s << ", \"speedup\": "
      << (rejoin.pull_s > 0 ? rejoin.push_s / rejoin.pull_s : 0) << "}\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  bool smoke = false;
  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  banner("Crash recovery — WAL replay cost, crash-point campaigns, region "
         "rejoin",
         "robustness of the GPUnion control plane (crash-consistent ledger)");

  // 1. WAL replay sweep.
  const std::vector<std::size_t> depths =
      smoke ? std::vector<std::size_t>{0, 256, 1024}
            : std::vector<std::size_t>{0, 256, 1024, 4096, 16384, 65536};
  std::vector<SweepPoint> sweep;
  std::printf("\nWAL replay sweep (crash_and_recover wall time vs. log "
              "depth):\n\n");
  std::printf("%10s %10s %12s %14s\n", "depth", "replayed", "recover-us",
              "us/record");
  row_divider(50);
  bool sweep_ok = true;
  for (const std::size_t depth : depths) {
    sweep.push_back(sweep_at_depth(depth));
    const auto& point = sweep.back();
    std::printf("%10zu %10zu %12.1f %14.3f\n", point.depth, point.replayed,
                point.recover_us, point.us_per_record);
    if (point.replayed != depth) sweep_ok = false;
  }

  // 2. Campus crash campaigns vs. crash-free baseline.
  const int nodes = smoke ? 4 : 16;
  const int jobs = smoke ? 10 : 40;
  const std::uint64_t seed = 42;
  const CampaignOutcome baseline = run_campaign(nodes, jobs, "", seed);
  std::vector<CampaignOutcome> campaigns;
  for (const auto point :
       {sim::kCrashPreAck, sim::kCrashPostAckPreFlush,
        sim::kCrashMidGroupCommit}) {
    campaigns.push_back(run_campaign(nodes, jobs, std::string(point), seed));
  }
  std::printf("\nCrash campaigns (%d jobs, %d nodes, 3 crashes @1.5 s "
              "downtime each):\n\n",
              jobs, nodes);
  std::printf("%26s %7s %9s %9s %9s %11s %10s\n", "point", "jobs",
              "complete", "recover", "replayed", "makespan-s", "preserved");
  row_divider(88);
  auto print_campaign = [](const CampaignOutcome& c) {
    std::printf("%26s %7d %9d %9d %9llu %11.1f %10s\n",
                c.point.empty() ? "none (baseline)" : c.point.c_str(),
                c.submitted, c.completed, c.recoveries,
                static_cast<unsigned long long>(c.wal_replayed), c.makespan_s,
                c.jobs_preserved ? "yes" : "NO");
  };
  print_campaign(baseline);
  bool campaigns_ok = baseline.jobs_preserved;
  std::uint64_t replayed_dirty = 0;
  double worst_penalty = 0;
  for (const auto& campaign : campaigns) {
    print_campaign(campaign);
    campaigns_ok = campaigns_ok && campaign.jobs_preserved &&
                   campaign.recoveries == 3;
    if (campaign.point != sim::kCrashPreAck) {
      replayed_dirty += campaign.wal_replayed;
    }
    worst_penalty =
        std::max(worst_penalty, campaign.makespan_s - baseline.makespan_s);
  }
  std::printf("\nMakespan penalty of 3 control-plane crashes: worst %.1f "
              "sim-s over a %.1f s crash-free makespan.\n",
              worst_penalty, baseline.makespan_s);

  // 3. Region rejoin A/B.
  const int regions = smoke ? 3 : 5;
  RejoinResult rejoin;
  rejoin.pull_s = measure_rejoin(regions, /*anti_entropy=*/true);
  rejoin.push_s = measure_rejoin(regions, /*anti_entropy=*/false);
  std::printf("\nRegion rejoin (%d regions, directory back to full view "
              "after restart):\n  anti-entropy pull: %.2f s\n  push gossip "
              "only: %.2f s\n",
              regions, rejoin.pull_s, rejoin.push_s);

  write_json(out_path, smoke ? "smoke" : "full", sweep, baseline, campaigns,
             rejoin);

  const bool pass = sweep_ok && campaigns_ok && replayed_dirty > 0 &&
                    rejoin.pull_s > 0 && rejoin.push_s > 0 &&
                    rejoin.pull_s < rejoin.push_s;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
