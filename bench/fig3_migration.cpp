// Figure 3: Migration performance under different interruption scenarios.
//
// Paper (§4): 20 deep-learning training jobs (CNN + transformer) across 2
// volunteer provider nodes over one week; interruption frequency varied
// from 0.5 to 3.2 events/day/node over three scenario classes:
//   - scheduled departure:    94% migrated within the specified time,
//                             minimal data loss
//   - emergency departure:    work loss equivalent to the checkpoint
//                             interval
//   - temporary unavailability: 67% of displaced workloads migrated back
//                             to their original node on provider return
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

/// Two volunteer multi-GPU providers plus four workstations as refuge
/// capacity (the paper's volunteers sat inside the larger campus).
/// Least-loaded placement concentrates the jobs on the big volunteers.
void shrink_fleet(CampusConfig& config) {
  config.nodes.clear();
  config.nodes.push_back({hw::server_8x4090("srv-mlsys-0"), "mlsys"});
  config.nodes.push_back({hw::server_4xa6000("srv-nlp-big"), "nlp"});
  for (int i = 0; i < 10; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("ws-refuge-" + std::to_string(i)), "campus"});
  }
  config.coordinator.strategy = std::string(sched::kLeastLoaded);
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 600.0;
  config.scrape_interval = 600.0;
}

struct ScenarioResult {
  double success_rate = 0;
  double mean_downtime_s = 0;
  double p95_downtime_s = 0;
  double mean_lost_work_min = 0;
  int interruptions = 0;
};

struct Fig3Result {
  std::map<agent::DepartureKind, ScenarioResult> by_cause;
  double migrate_back_rate = 0;
  int jobs_completed = 0;
  int total_interruptions = 0;
};

Fig3Result run_one(double events_per_day, std::uint64_t seed) {
  Scenario scenario =
      make_scenario(baseline::Preset::kGpunion, seed, shrink_fleet);
  auto& env = *scenario.env;
  const util::SimTime horizon = util::days(7);

  // The two "volunteer" providers under churn: the big training boxes.
  const std::vector<std::string> volunteers = {
      Platform::machine_id_for("srv-mlsys-0"),
      Platform::machine_id_for("srv-nlp-big")};

  // 20 DL jobs, CNN + transformer mix, sized so the volunteers stay loaded
  // all week (multi-day training runs, as in the paper's experiment).
  Client mlsys_client(*scenario.platform, "mlsys");
  util::Rng job_rng(seed ^ 0xabcd);
  for (int i = 0; i < 14; ++i) {
    const auto& profile = i % 2 == 0 ? workload::cnn_large()
                                     : workload::transformer_small();
    const double hours = job_rng.uniform(60.0, 130.0);
    const double at = job_rng.uniform(0.0, util::days(1));
    env.schedule_at(at, [&mlsys_client, profile, hours] {
      SubmitOptions options;
      options.checkpoint_interval = util::minutes(10);
      (void)mlsys_client.submit_training(profile, hours, options);
    });
  }

  workload::InterruptionModel model;
  model.events_per_day = events_per_day;
  model.min_downtime = util::minutes(30);
  model.max_downtime = util::hours(4);
  model.temporary_downtime = util::minutes(25);
  inject_churn(scenario,
               workload::generate_interruptions(volunteers, horizon, model,
                                                util::Rng(seed + 7)));
  env.run_until(horizon);

  Fig3Result result;
  const auto& tracker = scenario.coordinator().migrations();
  const util::Duration window =
      scenario.coordinator().config().migration_success_window;
  for (auto cause : {agent::DepartureKind::kScheduled,
                     agent::DepartureKind::kEmergency,
                     agent::DepartureKind::kTemporary}) {
    ScenarioResult& entry = result.by_cause[cause];
    entry.success_rate = tracker.success_rate(cause, window);
    const auto downtimes = tracker.downtimes(cause);
    entry.mean_downtime_s = downtimes.median();
    entry.p95_downtime_s = downtimes.percentile(95);
    entry.mean_lost_work_min = tracker.lost_work_minutes(cause).mean();
    entry.interruptions =
        static_cast<int>(tracker.by_cause(cause).size());
  }
  result.migrate_back_rate =
      scenario.coordinator().stats().migrate_back_rate();
  result.jobs_completed = scenario.coordinator().stats().training_completed;
  result.total_interruptions =
      static_cast<int>(tracker.interruption_count());
  return result;
}

/// Aggregates several seeded replications (the paper averaged over a week
/// of live churn; we average over independent weeks).
Fig3Result run(double events_per_day, std::uint64_t base_seed,
               int replications = 6) {
  Fig3Result total;
  double migrate_back_sum = 0;
  int migrate_back_runs = 0;
  for (int r = 0; r < replications; ++r) {
    const Fig3Result one =
        run_one(events_per_day, base_seed + static_cast<std::uint64_t>(r));
    for (const auto& [cause, entry] : one.by_cause) {
      ScenarioResult& acc = total.by_cause[cause];
      // Weight rates by event counts so empty replications don't skew.
      acc.success_rate = (acc.success_rate * acc.interruptions +
                          entry.success_rate * entry.interruptions);
      acc.mean_downtime_s = (acc.mean_downtime_s * acc.interruptions +
                             entry.mean_downtime_s * entry.interruptions);
      acc.mean_lost_work_min =
          (acc.mean_lost_work_min * acc.interruptions +
           entry.mean_lost_work_min * entry.interruptions);
      acc.interruptions += entry.interruptions;
      if (acc.interruptions > 0) {
        acc.success_rate /= acc.interruptions;
        acc.mean_downtime_s /= acc.interruptions;
        acc.mean_lost_work_min /= acc.interruptions;
      }
    }
    if (one.migrate_back_rate > 0) {
      migrate_back_sum += one.migrate_back_rate;
      ++migrate_back_runs;
    }
    total.jobs_completed += one.jobs_completed;
    total.total_interruptions += one.total_interruptions;
  }
  total.migrate_back_rate =
      migrate_back_runs == 0 ? 0.0 : migrate_back_sum / migrate_back_runs;
  return total;
}

const char* cause_label(agent::DepartureKind k) {
  switch (k) {
    case agent::DepartureKind::kScheduled: return "scheduled departure";
    case agent::DepartureKind::kEmergency: return "emergency departure";
    case agent::DepartureKind::kTemporary: return "temporary unavail.";
    default: return "?";
  }
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("Figure 3 — Migration performance under interruption scenarios",
         "\"94% of workloads successfully migrated\"; \"work loss equivalent "
         "to the checkpoint interval\"; \"67% ... migrated back\" (§4)");

  std::printf("\nSetup: 14 multi-day DL training jobs (CNN large + "
              "transformer small) on 2 volunteer\nproviders (8x4090 + "
              "4xA6000) with 10 refuge workstations; 6 replicated weeks\n"
              "per rate; checkpoint interval 10 min, migration-success "
              "window 10 min.\n");

  const std::vector<double> rates = {0.5, 1.0, 2.0, 3.2};
  for (double rate : rates) {
    const auto result = run(rate, 9000 + static_cast<std::uint64_t>(rate * 10));
    std::printf("\nInterruption rate: %.1f events/day/node "
                "(6 weeks aggregated: %d interruptions, %d/84 jobs done)\n",
                rate, result.total_interruptions, result.jobs_completed);
    row_divider();
    std::printf("%-22s %8s %12s %12s %12s\n", "scenario", "events",
                "success", "downtime", "lost work");
    row_divider();
    for (const auto& [cause, entry] : result.by_cause) {
      std::printf("%-22s %8d %11.0f%% %10.0f s %9.1f min\n",
                  cause_label(cause), entry.interruptions,
                  entry.success_rate * 100.0, entry.mean_downtime_s,
                  entry.mean_lost_work_min);
    }
    row_divider();
    std::printf("migrate-back after temporary unavailability: %.0f%%  "
                "(paper: 67%%)\n", result.migrate_back_rate * 100.0);
  }

  std::printf("\nPaper anchors: scheduled ~94%% success / minimal loss; "
              "emergency loss ~ checkpoint interval (expected ~5 min mean "
              "for a 10-min interval); temporary ~67%% migrate-back.\n\n");
  return 0;
}
