// §4 "Network Traffic Analysis": checkpoint backup traffic vs campus
// bandwidth.
//
// Paper: "the incremental checkpointing mechanism produces negligible
// network overhead, with backup traffic consuming less than 2% of available
// campus bandwidth during peak operation periods.  The incremental nature of
// state synchronization — where only modified memory pages and file system
// deltas are transmitted — ensures that GPUnion's resilience mechanisms
// operate transparently."
//
// Reproduction: a busy day on the full campus (every GPU loaded with
// checkpointing training jobs) with per-class byte accounting on the
// simulated 10 Gbps backbone; run twice — incremental chains vs
// full-snapshot-every-time — to isolate the incremental mechanism.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

struct TrafficResult {
  double peak_backbone_pct = 0;
  double mean_backbone_pct = 0;
  double backup_lag_min = 0;
  std::map<net::TrafficClass, double> gib_by_class;
  int checkpoints_written = 0;
};

TrafficResult run(bool incremental, std::uint64_t seed) {
  Scenario scenario = make_scenario(
      baseline::Preset::kGpunion, seed, [incremental](CampusConfig& config) {
        config.coordinator.heartbeat_interval = 2.0;
        config.agent_defaults.telemetry_interval = 30.0;
        // Scavenger-class budget for backups: 1.8% of the 10 Gbps backbone.
        config.network.backup_pace_gbps = 0.18;
        // full_every = 1 disables deltas entirely.
        config.checkpoint_store.full_every = incremental ? 8 : 1;
      });
  auto& env = *scenario.env;
  const util::SimTime horizon = util::days(1);

  // Saturate the fleet: one checkpointing job per GPU, mixed profiles,
  // submissions staggered over the first hour (real users are not
  // synchronized, so neither are their checkpoint clocks).
  Client client(*scenario.platform, "campus");
  util::Rng rng(seed);
  const auto& profiles = workload::all_profiles();
  for (int i = 0; i < 22; ++i) {
    const auto& profile = profiles[static_cast<std::size_t>(i) % 3];
    const double at = rng.uniform(0.0, 3600.0);
    env.schedule_at(at, [&client, &profile] {
      SubmitOptions options;
      options.checkpoint_interval = util::minutes(15);
      options.preferred_storage = {"nas-campus"};
      (void)client.submit_training(profile, 60.0, options);
    });
  }
  env.run_until(horizon);

  TrafficResult result;
  auto& network = scenario.platform->network();
  // The paper's claim is about *backup* traffic specifically: measure the
  // checkpoint + migration classes against backbone capacity.  Skip the
  // warm-up hour (image pulls dominate it by design).
  result.peak_backbone_pct =
      network.peak_class_utilization({net::TrafficClass::kCheckpoint,
                                      net::TrafficClass::kMigration},
                                     3600.0, horizon) *
      100.0;
  result.mean_backbone_pct =
      network.mean_backbone_utilization(0, horizon) * 100.0;
  result.backup_lag_min = network.backup_lag(horizon) / 60.0;
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(net::TrafficClass::kClassCount); ++c) {
    const auto klass = static_cast<net::TrafficClass>(c);
    result.gib_by_class[klass] =
        static_cast<double>(network.bytes_sent(klass)) / (1ULL << 30);
  }
  for_each_job(scenario.coordinator(),
               [&](const std::string& job_id, const sched::JobRecord&) {
                 result.checkpoints_written += static_cast<int>(
                     scenario.platform->checkpoint_store().chain(job_id)
                         .size());
               });
  return result;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("§4 Network Traffic Analysis — backup traffic vs campus bandwidth",
         "\"backup traffic consuming less than 2% of available campus "
         "bandwidth during peak operation periods\"");

  std::printf("\nSetup: all 22 GPUs running checkpointing training jobs for "
              "24 h,\ncheckpoints to the campus NAS every 15 min, 10 Gbps "
              "backbone, 60 s accounting\nbuckets; peak measured on the "
              "backup classes (checkpoint + migration).\n");

  const auto incremental = run(/*incremental=*/true, 777);
  const auto full = run(/*incremental=*/false, 777);

  std::printf("\n%-34s %14s %14s\n", "", "incremental", "full-snapshot");
  row_divider();
  std::printf("%-34s %13.2f%% %13.2f%%\n",
              "peak backup utilization (60s)",
              incremental.peak_backbone_pct, full.peak_backbone_pct);
  std::printf("%-34s %13.3f%% %13.3f%%\n", "mean backbone utilization",
              incremental.mean_backbone_pct, full.mean_backbone_pct);
  std::printf("%-34s %12.1f m %12.1f m\n",
              "backup backlog at 24 h", incremental.backup_lag_min,
              full.backup_lag_min);
  row_divider();
  std::printf("Bytes moved in 24 h by traffic class (GiB):\n");
  for (const auto& [klass, incremental_gib] : incremental.gib_by_class) {
    const double full_gib = full.gib_by_class.at(klass);
    if (incremental_gib < 0.001 && full_gib < 0.001) continue;
    std::printf("  %-32s %14.2f %14.2f\n",
                std::string(net::traffic_class_name(klass)).c_str(),
                incremental_gib, full_gib);
  }
  row_divider();
  std::printf("Paper anchor: incremental backup peak < 2%% of campus "
              "bandwidth; the\nincremental mechanism should cut checkpoint "
              "bytes by roughly the dirty\nfraction (~25-45%% of state) "
              "plus the periodic full snapshots.\n\n");
  return 0;
}
