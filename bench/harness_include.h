// Convenience umbrella for bench binaries (keeps per-bench includes short).
#pragma once

#include <functional>
#include <map>

#include "bench/harness.h"
#include "util/logging.h"
