// §5.2 Scalability: coordinator capacity vs fleet size.
//
// Paper: "the central coordinator handles up to 50 nodes with sub-second
// scheduling latency.  However, beyond 200 nodes, heartbeat monitoring and
// database contention could become bottlenecks."
//
// Two measurements:
//  (1) real micro-benchmark (google-benchmark): wall-clock cost of one
//      placement decision through the indexed ClusterView vs the legacy
//      full directory rescan, and of one heartbeat-monitor sweep over an
//      N-node directory;
//  (2) analytic control-plane model: heartbeat + telemetry + scheduling DB
//      operations per second against the database's M/M/1 service model,
//      reporting end-to-end scheduling latency per fleet size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>
#include <thread>
#include <vector>

#include "db/database.h"
#include "sched/directory.h"
#include "sched/heartbeat_monitor.h"
#include "sched/placement_engine.h"
#include "sched/policy.h"
#include "sched/strategies.h"
#include "sim/environment.h"
#include "sim/sharded_event_queue.h"
#include "workload/profiles.h"

namespace gpunion::bench {
namespace {

void populate_directory(sched::Directory& directory, int nodes) {
  // A saturated campus: most nodes are busy (placement decisions happen at
  // full queues), only every 8th has capacity — the regime where an index
  // beats rescanning the fleet per decision.
  for (int i = 0; i < nodes; ++i) {
    sched::NodeInfo info;
    info.machine_id = "m-" + std::to_string(100000 + i);
    info.owner_group = "g" + std::to_string(i % 8);
    info.gpu_count = 1 + i % 8;
    info.free_gpus = i % 8 == 0 ? info.gpu_count : 0;
    info.gpu_memory_gb = i % 2 == 0 ? 24.0 : 48.0;
    info.compute_capability = 8.6;
    info.gpu_tflops = 35.6;
    info.status = db::NodeStatus::kActive;
    info.accepting = true;
    info.last_heartbeat = 0.0;
    directory.upsert(std::move(info));
  }
}

/// Placement through the indexed engine.  Steady state: only the dispatch
/// target's bucket entry moves between decisions (dirty-node invalidation),
/// never a full rescan.
void BM_PlacementDecisionIndexed(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sched::Directory directory;
  populate_directory(directory, nodes);
  sched::ReliabilityPredictor reliability;
  sched::PlatformPolicy policy;
  sched::PlacementEngine engine(directory, reliability, policy,
                                std::string(sched::kRoundRobin));
  const workload::JobSpec job = workload::make_training_job(
      "bench-job", workload::cnn_small(), 4.0, "g1", 0.0);
  for (auto _ : state) {
    auto decision = engine.place(job, "", 0.0);
    benchmark::DoNotOptimize(decision);
    if (decision) {
      // Mimic the dispatch/complete cycle so the dirty set stays small.
      directory.reserve_gpus(decision->node->machine_id, 1);
      directory.release_gpus(decision->node->machine_id, 1);
    }
  }
  state.SetLabel(std::to_string(nodes) + " nodes");
}
BENCHMARK(BM_PlacementDecisionIndexed)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

/// The legacy O(fleet) path: full rescan + eligibility per decision.
void BM_PlacementDecisionFullScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sched::Directory directory;
  populate_directory(directory, nodes);
  sched::ReliabilityPredictor reliability;
  auto strategy = sched::PlacementStrategyFactory::instance().create(
      std::string(sched::kRoundRobin));
  const workload::JobSpec job = workload::make_training_job(
      "bench-job", workload::cnn_small(), 4.0, "g1", 0.0);
  const sched::PlacementContext context{&reliability, 0.0};
  for (auto _ : state) {
    std::vector<const sched::NodeInfo*> eligible;
    for (const sched::NodeInfo* node : directory.schedulable()) {
      if (sched::node_eligible(*node, job, true, reliability, 0.0, false)) {
        eligible.push_back(node);
      }
    }
    benchmark::DoNotOptimize(
        strategy->select(eligible, job, context, false));
  }
  state.SetLabel(std::to_string(nodes) + " nodes");
}
BENCHMARK(BM_PlacementDecisionFullScan)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

/// Expiry-ordered sweep: steady state (no expirations) pops nothing, so
/// the cost is O(1) regardless of fleet size.
void BM_HeartbeatSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Environment env;
  sched::Directory directory;
  populate_directory(directory, nodes);
  sched::HeartbeatMonitor monitor(env, directory, 2.0, 3, nullptr);
  for (int i = 0; i < nodes; ++i) {
    monitor.observe("m-" + std::to_string(100000 + i), 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.sweep());
  }
  state.SetLabel(std::to_string(nodes) + " nodes");
}
BENCHMARK(BM_HeartbeatSweep)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

/// The pre-PR sweep shape: every sweep walks the whole directory.
void BM_HeartbeatSweepFullScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sched::Directory directory;
  populate_directory(directory, nodes);
  const double deadline = 6.0;
  for (auto _ : state) {
    std::vector<std::string> lost;
    for (const sched::NodeInfo* node : directory.all()) {
      if (node->status != db::NodeStatus::kActive) continue;
      if (0.0 - node->last_heartbeat > deadline) {
        lost.push_back(node->machine_id);
      }
    }
    benchmark::DoNotOptimize(lost);
  }
  state.SetLabel(std::to_string(nodes) + " nodes");
}
BENCHMARK(BM_HeartbeatSweepFullScan)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

void BM_DatabaseHeartbeatTouch(benchmark::State& state) {
  db::SystemDatabase database;
  for (int i = 0; i < 400; ++i) {
    db::NodeRecord record;
    record.machine_id = "m-" + std::to_string(i);
    record.gpu_count = 4;
    (void)database.upsert_node(std::move(record));
  }
  int i = 0;
  for (auto _ : state) {
    (void)database.touch_heartbeat("m-" + std::to_string(i++ % 400), 1.0);
  }
}
BENCHMARK(BM_DatabaseHeartbeatTouch);

// ---------------------------------------------------------------------------
// Event-queue microbenches: single binary heap vs the sharded queue the
// parallel execution core uses (per-shard lanes, finely locked).
// ---------------------------------------------------------------------------

constexpr double kQueueInf = std::numeric_limits<double>::infinity();

/// Steady-state push/cancel/pop cycle on the legacy single heap.
void BM_EventQueuePushCancelPop(benchmark::State& state) {
  sim::EventQueue queue;
  double t = 0;
  for (auto _ : state) {
    t += 1.0;
    const sim::EventId cancelled = queue.push(t, [] {});
    queue.push(t + 0.5, [] {});
    queue.cancel(cancelled);
    benchmark::DoNotOptimize(queue.pop());  // skims the tombstone
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_EventQueuePushCancelPop);

/// Same cycle through the sharded queue (single caller): the locking and
/// id-encoding overhead the parallel core pays per op, at 1 / 8 shards.
void BM_ShardedQueuePushCancelPop(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  sim::ShardedEventQueue queue(shards);
  double t = 0;
  std::size_t shard = 0;
  sim::EventQueue::Event event;
  for (auto _ : state) {
    t += 1.0;
    shard = (shard + 1) % shards;
    const sim::EventId cancelled = queue.push(shard, t, [] {});
    queue.push(shard, t + 0.5, [] {});
    queue.cancel(cancelled);
    queue.shard_try_pop(shard, kQueueInf, &event);
    benchmark::DoNotOptimize(event);
  }
  state.SetItemsProcessed(state.iterations() * 3);
  state.SetLabel(std::to_string(shards) + " shards");
}
BENCHMARK(BM_ShardedQueuePushCancelPop)->Arg(1)->Arg(8);

/// Contended throughput: 4 threads, each pushing onto a neighbour's shard
/// and draining its own.  1 shard = everything behind one mutex (the
/// single-heap shape); 8 shards = the parallel core's fine-grained locking.
void BM_ShardedQueueContention(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  for (auto _ : state) {
    sim::ShardedEventQueue queue(shards);
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int thread_index = 0; thread_index < kThreads; ++thread_index) {
      pool.emplace_back([&queue, shards, thread_index] {
        const std::size_t own =
            static_cast<std::size_t>(thread_index) % shards;
        const std::size_t peer =
            static_cast<std::size_t>(thread_index + 1) % shards;
        sim::EventQueue::Event event;
        for (int i = 0; i < kOpsPerThread; ++i) {
          queue.push(peer, 1.0 + i, [] {});
          queue.shard_try_pop(own, kQueueInf, &event);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }
  state.SetItemsProcessed(state.iterations() * kThreads * kOpsPerThread * 2);
  state.SetLabel(std::to_string(shards) + " shards, 4 threads");
}
BENCHMARK(BM_ShardedQueueContention)->Arg(1)->Arg(8)->UseRealTime();

/// Tombstone-compaction stress: cancel nearly everything, then pop — the
/// skim has to chew through the tombstones and the amortized compaction
/// has to keep the heap from growing without bound.
void BM_EventQueueTombstoneCompaction(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      ids.push_back(queue.push(1.0 + i, [] {}));
    }
    for (int i = 0; i + 1 < batch; ++i) queue.cancel(ids[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(queue.pop());
    benchmark::DoNotOptimize(queue.compactions());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueTombstoneCompaction)->Arg(1024)->Arg(8192);

/// The same stress sharded: cancels hash across shards, so compaction work
/// is per-shard and a hot shard cannot stall the others' lanes.
void BM_ShardedQueueTombstoneCompaction(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  constexpr std::size_t kShards = 8;
  sim::EventQueue::Event event;
  for (auto _ : state) {
    sim::ShardedEventQueue queue(kShards);
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      ids.push_back(queue.push(static_cast<std::size_t>(i) % kShards,
                               1.0 + i, [] {}));
    }
    for (int i = 0; i + 1 < batch; ++i) queue.cancel(ids[static_cast<std::size_t>(i)]);
    queue.shard_try_pop((static_cast<std::size_t>(batch) - 1) % kShards,
                        kQueueInf, &event);
    benchmark::DoNotOptimize(queue.compactions());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel("8 shards");
}
BENCHMARK(BM_ShardedQueueTombstoneCompaction)->Arg(1024)->Arg(8192);

void print_control_plane_model() {
  std::printf("\nControl-plane load model (analytic, from the database's "
              "M/M/1 service model):\n");
  std::printf("legacy: heartbeats every 2 s write through (6 DB ops each); "
              "batched: one\ncoalesced flush per interval (heartbeats cost "
              "~1 op per 2 s + 5 amortized ops).\nTelemetry every 30 s; "
              "~0.2 scheduling decisions/node/s at 10 DB ops each.\n\n");
  std::printf("%8s %14s %14s %16s %16s\n", "nodes", "legacy ops/s",
              "batched ops/s", "legacy sched", "batched sched");
  for (int i = 0; i < 74; ++i) std::printf("-");
  std::printf("\n");
  db::SystemDatabase database;  // service rate 1/0.8 ms = 1250 ops/s
  auto sched_latency = [&database](double ops) -> double {
    const double db_latency = database.estimated_latency(ops);
    if (db_latency >= util::kNever) return util::kNever;
    // One scheduling decision touches ~10 DB rows plus the decision itself.
    return db_latency * 1000.0 * 10.0 + 0.1;
  };
  for (int nodes : {10, 25, 50, 100, 200, 400, 1000, 4000, 10000}) {
    const double telemetry_ops = nodes / 30.0;
    const double scheduling_ops = nodes * 0.2 * 10.0 / 2.0;
    const double legacy_ops =
        nodes / 2.0 * 6.0 + telemetry_ops + scheduling_ops;
    // Batching collapses the per-beat touch into one flush per interval;
    // the other ~5 per-beat reads amortize across the batch as well.
    const double batched_ops = 0.5 + nodes / 2.0 * 0.05 + telemetry_ops +
                               scheduling_ops;
    const double legacy_ms = sched_latency(legacy_ops);
    const double batched_ms = sched_latency(batched_ops);
    std::printf("%8d %14.0f %14.0f ", nodes, legacy_ops, batched_ops);
    if (legacy_ms >= util::kNever) {
      std::printf("%16s ", "saturated");
    } else {
      std::printf("%13.1f ms ", legacy_ms);
    }
    if (batched_ms >= util::kNever) {
      std::printf("%16s\n", "saturated");
    } else {
      std::printf("%13.1f ms\n", batched_ms);
    }
  }
  std::printf("\nPaper anchors: sub-second scheduling latency at <= 50 "
              "nodes; the legacy\nwrite-through model hits the M/M/1 knee "
              "beyond ~200 nodes — matching \"beyond\n200 nodes ... could "
              "become bottlenecks\".  Batching removes heartbeats as the\n"
              "first wall (the knee moves ~4x out); past ~2k nodes the "
              "modeled per-decision\nscheduler writes become the next "
              "bottleneck — that is the remaining limit the\nROADMAP "
              "records.  bench_scalability_campus measures the real system "
              "end-to-end.\n\n");
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  std::printf("================================================================\n");
  std::printf("Scalability — coordinator capacity vs fleet size (§5.2)\n");
  std::printf("================================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gpunion::bench::print_control_plane_model();
  return 0;
}
