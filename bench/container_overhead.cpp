// §3.3 claim: containerized execution with GPU passthrough delivers
// near-native performance with strict isolation.
//
// Two parts:
//  (1) google-benchmark micro-benchmarks of the runtime's control
//      operations (verify+create, start/kill cycle, kill-switch over a
//      loaded node) — the costs a provider actually pays;
//  (2) the throughput-overhead table: effective training throughput under
//      each execution mode.  Container passthrough overhead (1%) is this
//      runtime's configured model; the VM/API-remoting reference points are
//      literature constants included for context, as the paper argues
//      against full virtualization.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "container/runtime.h"
#include "hw/node.h"
#include "util/sha256.h"

namespace gpunion::bench {
namespace {

container::Image bench_image() {
  static const container::Image image = container::make_image(
      "pytorch", "2.3-cuda12.1", "nvidia/cuda:12.1-runtime", 6ULL << 30,
      "layers");
  return image;
}

container::ImageRegistry make_registry() {
  container::ImageRegistry registry;
  registry.allow_base("nvidia/cuda:12.1-runtime");
  (void)registry.push(bench_image());
  return registry;
}

container::ContainerConfig bench_config(int gpu) {
  container::ContainerConfig config;
  config.image = bench_image();
  config.limits.gpu_indices = {gpu};
  config.limits.gpu_memory_gb = 16.0;
  config.limits.host_memory_gb = 2.0;
  config.limits.cpu_cores = 1.0;
  return config;
}

void BM_VerifyAndCreate(benchmark::State& state) {
  hw::NodeModel node(hw::server_8x4090("srv"));
  const auto registry = make_registry();
  container::ContainerRuntime runtime(node, registry);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto id = runtime.create(bench_config(0), "job-" + std::to_string(i++),
                             0.9, 0.0);
    benchmark::DoNotOptimize(id);
    if (id.ok()) (void)runtime.kill(*id, 0.0);
  }
}
BENCHMARK(BM_VerifyAndCreate);

void BM_StartStopCycle(benchmark::State& state) {
  hw::NodeModel node(hw::server_8x4090("srv"));
  const auto registry = make_registry();
  container::ContainerRuntime runtime(node, registry);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto id = runtime.create(bench_config(0), "job-" + std::to_string(i++),
                             0.9, 0.0);
    (void)runtime.start(*id, 0.0);
    (void)runtime.exit(*id, 1.0);
  }
}
BENCHMARK(BM_StartStopCycle);

void BM_KillSwitchLoadedNode(benchmark::State& state) {
  hw::NodeModel node(hw::server_8x4090("srv"));
  const auto registry = make_registry();
  for (auto _ : state) {
    state.PauseTiming();
    container::ContainerRuntime runtime(node, registry);
    for (int gpu = 0; gpu < 8; ++gpu) {
      auto id = runtime.create(bench_config(gpu),
                               "job-" + std::to_string(gpu), 0.9, 0.0);
      (void)runtime.start(*id, 0.0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(runtime.kill_all(1.0));
  }
}
BENCHMARK(BM_KillSwitchLoadedNode);

void BM_Sha256ImageDigest(benchmark::State& state) {
  // Digest verification cost over a 1 MiB manifest chunk.
  const std::string chunk(1 << 20, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Sha256::hex_of(chunk));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_Sha256ImageDigest);

void print_overhead_table() {
  hw::NodeModel node(hw::server_8x4090("srv"));
  const auto registry = make_registry();
  container::ContainerRuntime runtime(node, registry);

  std::printf("\nEffective training throughput by execution mode "
              "(reference GPU = 1.00):\n");
  for (int i = 0; i < 64; ++i) std::printf("-");
  std::printf("\n%-36s %12s %14s\n", "execution mode", "throughput",
              "startup cost");
  const double container = 1.0 - runtime.gpu_overhead_fraction();
  std::printf("%-36s %12.3f %12.1f s\n", "bare metal (no isolation)", 1.000,
              0.0);
  std::printf("%-36s %12.3f %12.1f s   <- GPUnion\n",
              "OCI container + GPU passthrough", container,
              runtime.startup_overhead());
  std::printf("%-36s %12.3f %12.1f s\n",
              "full VM + PCIe passthrough (ref.)", 0.95, 45.0);
  std::printf("%-36s %12.3f %12.1f s\n", "GPU API remoting (ref.)", 0.82,
              5.0);
  for (int i = 0; i < 64; ++i) std::printf("-");
  std::printf("\nPaper anchor: containers provide \"near-native GPU "
              "performance by allowing\nuser workloads to access the GPU "
              "directly, avoiding the overhead of full\nvirtualization\" "
              "(§3.3).  VM / API-remoting rows are literature reference\n"
              "points, not measurements of this runtime.\n\n");
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  std::printf("================================================================\n");
  std::printf("Container execution overhead (§3.3)\n");
  std::printf("================================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gpunion::bench::print_overhead_table();
  return 0;
}
