// Time-slice sharing bench: interactive-heavy mix, nvshare mode vs the
// PR 1 packed_sharing (spatial fractional slots) baseline vs no sharing.
//
// The scenario the paper's campus actually faces: many bursty notebook
// sessions with working sets too large for a fractional slot's per-tenant
// VRAM cap.  Spatial sharing must fall back to whole devices for those;
// nvshare-style time-slicing keeps packing them — each tenant gets FULL
// device memory and the scheduler rotates residency per quantum, paying a
// modeled swap cost (working sets over the host-RAM link) at each rotation.
//
// Three arms on an identical fleet and identical submission trace:
//   - adaptive_sharing  : time-slice seats (+ fractional/whole fallback)
//   - packed_sharing    : PR 1 spatial slots (+ whole fallback)
//   - round_robin       : whole devices only
//
// Reported per arm: sessions completed/expired, session start latency
// (queue wait p50/p95), delivered fleet utilization, and the swap-overhead
// ledger (total swap seconds, worst single-rotation swap, quantum
// widenings, thrash evictions) — thrash avoidance must keep the worst
// swap within the thrash fraction of the (possibly widened) quantum under
// 2x memory oversubscription.
//
// Emits machine-readable BENCH_timeslice.json (override with --out);
// `--smoke` shrinks the scenario for CI.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness_include.h"
#include "sched/strategies.h"
#include "util/stats.h"

namespace gpunion::bench {
namespace {

struct MixConfig {
  int workstations = 8;
  int sessions = 64;
  double submit_window_s = 1800.0;
  double horizon_s = 3.0 * 3600.0;
  int seats_per_gpu = 4;
  double oversub_ratio = 2.0;
  double host_swap_gbps = 12.0;
};

struct ArmResult {
  std::string strategy;
  int submitted = 0;
  int completed = 0;
  int denied = 0;      // session request timed out in queue (access failure)
  int disrupted = 0;   // session killed by churn/eviction
  int unfinished = 0;  // still live at the horizon
  double queue_wait_p50_s = 0;
  double queue_wait_p95_s = 0;
  double fleet_utilization = 0;
  // swap-overhead ledger summed over agents
  std::uint64_t quanta = 0;
  std::uint64_t swaps = 0;
  double swap_seconds = 0;
  double max_swap_per_quantum = 0;
  double max_quantum_s = 0;
  std::uint64_t quantum_widenings = 0;
  std::uint64_t thrash_evictions = 0;
  double wall_s = 0;
};

/// One arm: the given strategy over an identical fleet + session trace.
ArmResult run_arm(const std::string& strategy, const MixConfig& mix) {
  ArmResult result;
  result.strategy = strategy;

  sim::Environment env(11);
  CampusConfig config;
  for (int i = 0; i < mix.workstations; ++i) {
    config.nodes.push_back(
        {hw::with_timeslicing(
             hw::workstation_3090("bench-" + std::to_string(i)),
             mix.seats_per_gpu, mix.oversub_ratio, mix.host_swap_gbps),
         "bench"});
  }
  config.storage.push_back({"nas-bench", 256ULL << 30});
  config.coordinator.strategy = strategy;
  config.agent_defaults.telemetry_interval = 600.0;
  config.scrape_interval = 600.0;
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  // Interactive-heavy mix: bursty sessions, working sets alternating
  // between slot-sized (6 GB, fits the 24/4 fractional cap) and
  // notebook-with-a-real-model sized (10-12 GB — spatial slots cannot host
  // these, time-slice seats can).  Deterministic trace, identical per arm.
  util::Rng rng(23);
  const double session_memory[] = {6.0, 10.0, 12.0, 6.0};
  for (int i = 0; i < mix.sessions; ++i) {
    const double at =
        5.0 + rng.uniform(0.0, mix.submit_window_s);
    const double hours = 0.25 + 0.25 * static_cast<double>(rng.next_u64() % 3);
    const double memory_gb = session_memory[i % 4];
    env.schedule_at(at, [&platform, &env, i, hours, memory_gb] {
      auto job = workload::make_interactive_session(
          "sess-" + std::to_string(i), hours, "bench", env.now());
      job.requirements.gpu_memory_gb = memory_gb;
      (void)platform.coordinator().submit(std::move(job));
    });
  }
  result.submitted = mix.sessions;

  result.wall_s = wall_seconds([&] { env.run_until(mix.horizon_s); });

  util::SampleSet queue_wait;
  for_each_job(platform.coordinator(),
               [&](const std::string&, const sched::JobRecord& record) {
                 if (record.phase == sched::JobPhase::kCompleted) {
                   ++result.completed;
                 } else if (record.phase == sched::JobPhase::kDenied) {
                   ++result.denied;
                 } else if (record.phase ==
                            sched::JobPhase::kSessionDisrupted) {
                   ++result.disrupted;
                 } else {
                   ++result.unfinished;
                 }
                 if (record.first_dispatched_at >= 0) {
                   queue_wait.add(record.first_dispatched_at -
                                  record.submitted_at);
                 }
               });
  result.queue_wait_p50_s = queue_wait.percentile(50);
  result.queue_wait_p95_s = queue_wait.percentile(95);
  result.fleet_utilization =
      platform.fleet_utilization(5.0, mix.horizon_s);
  for (const auto& machine_id : platform.machine_ids()) {
    const agent::ProviderAgent* a = platform.agent(machine_id);
    if (a == nullptr) continue;
    const agent::TimesliceStats& stats = a->timeslice_stats();
    result.quanta += stats.quanta;
    result.swaps += stats.swaps;
    result.swap_seconds += stats.swap_seconds;
    result.max_swap_per_quantum =
        std::max(result.max_swap_per_quantum, stats.max_swap_per_quantum);
    result.quantum_widenings += stats.quantum_widenings;
    result.thrash_evictions += stats.thrash_evictions;
    // Workstations have one GPU; its (possibly widened) quantum.
    result.max_quantum_s =
        std::max(result.max_quantum_s, a->slicer().quantum(0));
  }

  std::printf("  %-17s %3d/%3d done (%2d denied)  wait p50 %6.0f s  "
              "p95 %6.0f s  util %.3f  swap %6.1f s (max/q %.1f s)  "
              "widen %llu  evict %llu\n",
              strategy.c_str(), result.completed, result.submitted,
              result.denied, result.queue_wait_p50_s, result.queue_wait_p95_s,
              result.fleet_utilization, result.swap_seconds,
              result.max_swap_per_quantum,
              static_cast<unsigned long long>(result.quantum_widenings),
              static_cast<unsigned long long>(result.thrash_evictions));
  return result;
}

void write_json(const std::string& path, const std::string& mode,
                const MixConfig& mix, const std::vector<ArmResult>& arms) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"timeslice\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"scenario\": {\n";
  out << "    \"workstations\": " << mix.workstations << ",\n";
  out << "    \"sessions\": " << mix.sessions << ",\n";
  out << "    \"submit_window_s\": " << mix.submit_window_s << ",\n";
  out << "    \"horizon_s\": " << mix.horizon_s << ",\n";
  out << "    \"timeslice_seats_per_gpu\": " << mix.seats_per_gpu << ",\n";
  out << "    \"oversub_ratio\": " << mix.oversub_ratio << ",\n";
  out << "    \"host_swap_gbps\": " << mix.host_swap_gbps << "\n";
  out << "  },\n";
  out << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& r = arms[i];
    out << "    {\n";
    out << "      \"strategy\": \"" << r.strategy << "\",\n";
    out << "      \"sessions_submitted\": " << r.submitted << ",\n";
    out << "      \"sessions_completed\": " << r.completed << ",\n";
    out << "      \"sessions_denied\": " << r.denied << ",\n";
    out << "      \"sessions_disrupted\": " << r.disrupted << ",\n";
    out << "      \"sessions_unfinished\": " << r.unfinished << ",\n";
    out << "      \"queue_wait_p50_s\": " << r.queue_wait_p50_s << ",\n";
    out << "      \"queue_wait_p95_s\": " << r.queue_wait_p95_s << ",\n";
    out << "      \"fleet_utilization\": " << r.fleet_utilization << ",\n";
    out << "      \"timeslice_quanta\": " << r.quanta << ",\n";
    out << "      \"timeslice_swaps\": " << r.swaps << ",\n";
    out << "      \"swap_seconds\": " << r.swap_seconds << ",\n";
    out << "      \"max_swap_per_quantum_s\": " << r.max_swap_per_quantum
        << ",\n";
    out << "      \"max_quantum_s\": " << r.max_quantum_s << ",\n";
    out << "      \"quantum_widenings\": " << r.quantum_widenings << ",\n";
    out << "      \"thrash_evictions\": " << r.thrash_evictions << ",\n";
    out << "      \"wall_s\": " << r.wall_s << "\n";
    out << "    }" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace gpunion::bench

int main(int argc, char** argv) {
  using namespace gpunion;
  util::Logger::instance().set_level(util::LogLevel::kError);
  bool smoke = false;
  std::string out_path = "BENCH_timeslice.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::banner("Time-sliced GPU sharing - interactive mix A/B",
                "nvshare mode (related work) on the paper's campus fleet");

  bench::MixConfig mix;
  if (smoke) {
    mix.workstations = 4;
    mix.sessions = 16;
    mix.submit_window_s = 600.0;
    mix.horizon_s = 3600.0;
  }

  std::printf("\n%d workstations, %d sessions over %.0f s "
              "(%d seats/GPU, %.1fx oversubscription, %.0f GB/s swap)\n\n",
              mix.workstations, mix.sessions, mix.submit_window_s,
              mix.seats_per_gpu, mix.oversub_ratio, mix.host_swap_gbps);

  std::vector<bench::ArmResult> arms;
  arms.push_back(bench::run_arm(std::string(sched::kAdaptiveSharing), mix));
  arms.push_back(bench::run_arm(std::string(sched::kPackedSharing), mix));
  arms.push_back(bench::run_arm(std::string(sched::kRoundRobin), mix));

  bench::write_json(out_path, smoke ? "smoke" : "full", mix, arms);
  return 0;
}
