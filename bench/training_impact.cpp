// §4 "Training Impact": interruption count vs total training time.
//
// Paper: "Jobs experiencing 2-4 interruptions showed only 3-7% increases in
// total training time compared to uninterrupted execution.  Memory-intensive
// models showed higher sensitivity to interruption due to longer checkpoint
// creation times."
//
// Reproduction: one job per workload profile runs alone on a two-node
// fleet; exactly K emergency interruptions are injected at spaced times.
// Total completion time is compared against the K=0 run of the same
// profile.  Each interruption costs: heartbeat detection (3 x 2 s), restore
// transfer of the checkpoint chain, container startup, and recomputation
// since the last periodic checkpoint.
#include <cstdio>

#include "bench/harness_include.h"

namespace gpunion::bench {
namespace {

void two_node_fleet(CampusConfig& config) {
  config.nodes.clear();
  // Volunteer lab servers on ordinary 1 GbE office drops, so restoring a
  // multi-GiB transformer checkpoint costs real minutes (the "longer
  // checkpoint creation times" sensitivity the paper reports).
  hw::NodeSpec a = hw::server_2xa100("srv-a");
  hw::NodeSpec b = hw::server_2xa100("srv-b");
  a.access_link_gbps = 1.0;
  b.access_link_gbps = 1.0;
  config.nodes.push_back({a, "lab"});
  config.nodes.push_back({b, "lab"});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 600.0;
  config.scrape_interval = 600.0;
}

/// Runs `profile` with `interruptions` forced provider failures; returns
/// wall-clock completion time in hours, or -1 if it did not finish.
///
/// The fleet is kept busy with filler jobs (as in the paper's loaded
/// two-volunteer setup), so a displaced job usually has to wait out the
/// provider's downtime rather than hop to an idle GPU.
double run_once(const workload::NamedProfile& profile, int interruptions,
                std::uint64_t seed) {
  Scenario scenario =
      make_scenario(baseline::Preset::kGpunion, seed, two_node_fleet);
  auto& env = *scenario.env;

  Client client(*scenario.platform, "lab");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(20);
  const double hours = 24.0;
  auto job_id = client.submit_training(profile, hours, options);
  if (!job_id.ok()) return -1.0;

  // Fillers occupy the remaining three GPUs for the whole experiment.
  for (int i = 0; i < 3; ++i) {
    SubmitOptions filler_options;
    filler_options.checkpoint_interval = util::minutes(20);
    (void)client.submit_training(workload::cnn_large(), 80.0,
                                 filler_options);
  }

  // Interruptions spaced through the expected ~44 h wall runtime: whichever
  // node hosts the measured job fails, then returns 30 minutes later.
  for (int k = 0; k < interruptions; ++k) {
    const double at =
        util::hours(4.0 + 36.0 * k / std::max(1, interruptions));
    env.schedule_at(at, [&scenario, job = *job_id] {
      const auto* record = scenario.coordinator().job(job);
      if (record == nullptr ||
          record->phase != sched::JobPhase::kRunning) {
        return;
      }
      workload::Interruption event;
      event.machine_id = record->node;
      event.kind = agent::DepartureKind::kEmergency;
      event.downtime = util::minutes(30);
      scenario.platform->inject_interruption(event);
    });
  }

  env.run_until(util::days(8));
  const auto* record = scenario.coordinator().job(*job_id);
  if (record == nullptr ||
      record->phase != sched::JobPhase::kCompleted) {
    return -1.0;
  }
  return (record->completed_at - record->submitted_at) / 3600.0;
}

}  // namespace
}  // namespace gpunion::bench

int main() {
  using namespace gpunion;
  using namespace gpunion::bench;
  util::Logger::instance().set_level(util::LogLevel::kError);

  banner("§4 Training Impact — interruptions vs total training time",
         "\"Jobs experiencing 2-4 interruptions showed only 3-7% increases "
         "in total training time\"; memory-intensive models more sensitive");

  std::printf("\nSetup: 24 reference-hour jobs, checkpoint interval 20 min, "
              "emergency interruptions with 30 min provider downtime.\n\n");
  std::printf("%-20s %8s", "profile (state)", "base");
  for (int k : {1, 2, 3, 4, 6}) std::printf("   +%d intr", k);
  std::printf("\n");
  row_divider(76);

  for (const auto& profile : workload::all_profiles()) {
    // Skip profiles that exceed the A100 pair only if VRAM-incompatible.
    const double base =
        run_once(profile, 0, 1234);
    if (base < 0) {
      std::printf("%-20s  (did not complete)\n", profile.name.c_str());
      continue;
    }
    std::printf("%-20s %7.2fh", profile.name.c_str(), base);
    for (int k : {1, 2, 3, 4, 6}) {
      const double with_interruptions = run_once(profile, k, 1234);
      if (with_interruptions < 0) {
        std::printf("   %8s", "n/a");
      } else {
        std::printf("   %+7.1f%%",
                    100.0 * (with_interruptions - base) / base);
      }
    }
    std::printf("\n");
  }
  row_divider(76);
  std::printf("Paper anchor: 2-4 interruptions -> +3-7%%; larger state "
              "(transformer) sits at the high end of the band.\n\n");
  return 0;
}
