// Shared experiment-harness helpers for the bench/ binaries.
//
// Each bench regenerates one table or figure from the paper.  The helpers
// here keep the scenario wiring (campus + trace replay + churn injection)
// and the table formatting consistent across experiments.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.h"
#include "gpunion/client.h"
#include "gpunion/platform.h"
#include "workload/generator.h"
#include "workload/provider_behavior.h"

namespace gpunion::bench {

/// Prints a centred experiment banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row_divider(int width = 72) {
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

/// Wall-clock time of one callable, seconds.
inline double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A running platform with its environment and the preset applied.
struct Scenario {
  std::unique_ptr<sim::Environment> env;
  std::unique_ptr<Platform> platform;
  baseline::Preset preset = baseline::Preset::kGpunion;

  sched::Coordinator& coordinator() { return platform->coordinator(); }
};

/// Builds and starts a campus under `preset`.  `mutate` may adjust the
/// config (fleet size, intervals) before construction.
inline Scenario make_scenario(
    baseline::Preset preset, std::uint64_t seed,
    const std::function<void(CampusConfig&)>& mutate = {}) {
  Scenario scenario;
  scenario.preset = preset;
  scenario.env = std::make_unique<sim::Environment>(seed);
  CampusConfig config = paper_campus();
  baseline::apply_preset(config, preset);
  if (mutate) mutate(config);
  scenario.platform = std::make_unique<Platform>(*scenario.env, config);
  scenario.platform->start();
  scenario.env->run_until(5.0);
  return scenario;
}

/// Schedules a submission trace (adapted to the preset) into the scenario.
inline void replay_trace(Scenario& scenario, const workload::Trace& trace) {
  for (const auto& event : trace) {
    auto job = baseline::adapt_job(event.job, scenario.preset);
    scenario.env->schedule_at(
        std::max(event.at, scenario.env->now()), [&scenario, job]() mutable {
          (void)scenario.coordinator().submit(std::move(job));
        });
  }
}

/// Schedules churn events into the scenario.
inline void inject_churn(Scenario& scenario,
                         const std::vector<workload::Interruption>& events) {
  for (const auto& event : events) {
    scenario.env->schedule_at(
        std::max(event.at, scenario.env->now()),
        [&scenario, event] { scenario.platform->inject_interruption(event); });
  }
}

/// Gives up on training jobs that have queued longer than `patience`
/// (users abandon work they cannot run — the latent-demand effect that
/// separates silos from sharing in Fig. 2).
inline void enable_give_up(Scenario& scenario, util::Duration patience,
                           util::Duration sweep_every = 3600.0) {
  auto* env = scenario.env.get();
  auto* platform = scenario.platform.get();
  auto sweep = std::make_shared<std::function<void()>>();
  *sweep = [env, platform, patience, sweep] {
    auto& coordinator = platform->coordinator();
    std::vector<std::string> to_cancel;
    for (const auto& [job_id, record] : coordinator.jobs()) {
      if (record.phase == sched::JobPhase::kPending &&
          record.first_dispatched_at < 0 &&
          env->now() - record.submitted_at > patience) {
        to_cancel.push_back(job_id);
      }
    }
    for (const auto& job_id : to_cancel) {
      (void)coordinator.cancel(job_id);
    }
    env->schedule_after(3600.0, *sweep);
  };
  env->schedule_after(sweep_every, *sweep);
}

/// Applies `fn(job_id, record)` to every record, live and archived.
template <typename Fn>
void for_each_job(const sched::Coordinator& coordinator, Fn&& fn) {
  for (const auto& [job_id, record] : coordinator.jobs()) fn(job_id, record);
  for (const auto& [job_id, record] : coordinator.archive()) {
    fn(job_id, record);
  }
}

/// Count of jobs in phase `phase` (terminal phases live in the archive).
inline int count_phase(const Scenario& scenario, sched::JobPhase phase) {
  int n = 0;
  for_each_job(scenario.platform->coordinator(),
               [&](const std::string&, const sched::JobRecord& record) {
                 if (record.phase == phase) ++n;
               });
  return n;
}

}  // namespace gpunion::bench
