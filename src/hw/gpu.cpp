#include "hw/gpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gpunion::hw {

std::string_view gpu_arch_name(GpuArch arch) {
  switch (arch) {
    case GpuArch::kRtx3090: return "RTX3090";
    case GpuArch::kRtx4090: return "RTX4090";
    case GpuArch::kA100: return "A100";
    case GpuArch::kA6000: return "A6000";
  }
  return "unknown";
}

const GpuSpec& gpu_spec(GpuArch arch) {
  static const GpuSpec kRtx3090{GpuArch::kRtx3090, "NVIDIA GeForce RTX 3090",
                                24.0, 8.6, 35.6, 350.0, 25.0};
  static const GpuSpec kRtx4090{GpuArch::kRtx4090, "NVIDIA GeForce RTX 4090",
                                24.0, 8.9, 82.6, 450.0, 22.0};
  static const GpuSpec kA100{GpuArch::kA100, "NVIDIA A100 80GB PCIe",
                             80.0, 8.0, 19.5, 300.0, 40.0};
  static const GpuSpec kA6000{GpuArch::kA6000, "NVIDIA RTX A6000",
                              48.0, 8.6, 38.7, 300.0, 25.0};
  switch (arch) {
    case GpuArch::kRtx3090: return kRtx3090;
    case GpuArch::kRtx4090: return kRtx4090;
    case GpuArch::kA100: return kA100;
    case GpuArch::kA6000: return kA6000;
  }
  return kRtx3090;
}

GpuDevice::GpuDevice(GpuArch arch, int index)
    : spec_(&gpu_spec(arch)), index_(index) {}

const std::string& GpuDevice::holder() const {
  static const std::string kNone;
  return holders_.empty() ? kNone : holders_.begin()->first;
}

void GpuDevice::refresh_aggregates(util::SimTime now) {
  temp_at_change_c_ = temperature_c(now);
  last_change_ = now;
  memory_used_gb_ = 0;
  double util_sum = 0;
  for (const auto& [id, tenant] : holders_) {
    if (timeslice_ && id != resident_) continue;  // swapped out to host RAM
    memory_used_gb_ += tenant.memory_gb;
    util_sum += tenant.utilization;
  }
  // Co-resident tenants cannot drive the device past saturation.
  utilization_ = std::min(1.0, util_sum);
}

double GpuDevice::tenant_memory_total_gb() const {
  double total = 0;
  for (const auto& [id, tenant] : holders_) total += tenant.memory_gb;
  return total;
}

util::Status GpuDevice::allocate(const std::string& workload_id,
                                 double memory_gb, double utilization,
                                 util::SimTime now) {
  if (allocated()) {
    return util::failed_precondition_error("GPU " + std::to_string(index_) +
                                           " already allocated");
  }
  if (memory_gb > spec_->memory_gb) {
    return util::resource_exhausted_error("footprint exceeds VRAM on GPU " +
                                          std::to_string(index_));
  }
  if (utilization < 0 || utilization > 1.0) {
    return util::invalid_argument_error("utilization out of [0,1]");
  }
  exclusive_ = true;
  holders_[workload_id] = Tenant{memory_gb, utilization};
  refresh_aggregates(now);
  return util::Status::ok();
}

util::Status GpuDevice::allocate_shared(const std::string& workload_id,
                                        double memory_gb, double utilization,
                                        util::SimTime now) {
  if (exclusive_ || timeslice_) {
    return util::failed_precondition_error(
        "GPU " + std::to_string(index_) + " not in spatial-share mode");
  }
  if (holders_.contains(workload_id)) {
    return util::already_exists_error("workload already on this GPU");
  }
  if (memory_used_gb_ + memory_gb > spec_->memory_gb) {
    return util::resource_exhausted_error(
        "shared footprints exceed VRAM on GPU " + std::to_string(index_));
  }
  if (utilization < 0 || utilization > 1.0) {
    return util::invalid_argument_error("utilization out of [0,1]");
  }
  holders_[workload_id] = Tenant{memory_gb, utilization};
  refresh_aggregates(now);
  return util::Status::ok();
}

util::Status GpuDevice::allocate_timeslice(const std::string& workload_id,
                                           double working_set_gb,
                                           double utilization,
                                           util::SimTime now) {
  if (exclusive_ || (!holders_.empty() && !timeslice_)) {
    return util::failed_precondition_error(
        "GPU " + std::to_string(index_) + " not in time-slice mode");
  }
  if (holders_.contains(workload_id)) {
    return util::already_exists_error("workload already on this GPU");
  }
  if (working_set_gb > spec_->memory_gb) {
    return util::resource_exhausted_error(
        "working set exceeds VRAM on GPU " + std::to_string(index_));
  }
  if (utilization < 0 || utilization > 1.0) {
    return util::invalid_argument_error("utilization out of [0,1]");
  }
  timeslice_ = true;
  holders_[workload_id] = Tenant{working_set_gb, utilization};
  if (resident_.empty()) resident_ = workload_id;
  refresh_aggregates(now);
  return util::Status::ok();
}

util::Status GpuDevice::set_resident(const std::string& workload_id,
                                     util::SimTime now) {
  if (!timeslice_) {
    return util::failed_precondition_error("GPU not in time-slice mode");
  }
  if (!holders_.contains(workload_id)) {
    return util::not_found_error("workload not on this GPU");
  }
  resident_ = workload_id;
  refresh_aggregates(now);
  return util::Status::ok();
}

void GpuDevice::release(util::SimTime now) {
  holders_.clear();
  exclusive_ = false;
  timeslice_ = false;
  resident_.clear();
  refresh_aggregates(now);
}

bool GpuDevice::release_holder(const std::string& workload_id,
                               util::SimTime now) {
  auto it = holders_.find(workload_id);
  if (it == holders_.end()) return false;
  holders_.erase(it);
  if (holders_.empty()) {
    exclusive_ = false;
    timeslice_ = false;
    resident_.clear();
  } else if (resident_ == workload_id) {
    resident_ = holders_.begin()->first;  // next tenant inherits residency
  }
  refresh_aggregates(now);
  return true;
}

double GpuDevice::steady_temperature() const {
  return 36.0 + 42.0 * utilization_;  // 36 C idle -> 78 C at 100%
}

double GpuDevice::temperature_c(util::SimTime now) const {
  constexpr double kThermalTau = 90.0;  // seconds
  const double target = steady_temperature();
  const double dt = now - last_change_;
  return target + (temp_at_change_c_ - target) * std::exp(-dt / kThermalTau);
}

double GpuDevice::power_watts() const {
  return spec_->idle_watts +
         (spec_->tdp_watts - spec_->idle_watts) * utilization_;
}

}  // namespace gpunion::hw
