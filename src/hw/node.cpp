#include "hw/node.h"

#include <algorithm>
#include <cassert>

namespace gpunion::hw {

NodeSpec workstation_3090(std::string hostname) {
  return NodeSpec{std::move(hostname), {GpuArch::kRtx3090}, 16, 64.0, 2000.0,
                  1.0};
}

NodeSpec server_8x4090(std::string hostname) {
  return NodeSpec{std::move(hostname),
                  std::vector<GpuArch>(8, GpuArch::kRtx4090), 64, 512.0,
                  8000.0, 10.0};
}

NodeSpec server_2xa100(std::string hostname) {
  return NodeSpec{std::move(hostname),
                  std::vector<GpuArch>(2, GpuArch::kA100), 32, 256.0, 4000.0,
                  10.0};
}

NodeSpec server_4xa6000(std::string hostname) {
  return NodeSpec{std::move(hostname),
                  std::vector<GpuArch>(4, GpuArch::kA6000), 48, 384.0, 4000.0,
                  10.0};
}

NodeSpec with_timeslicing(NodeSpec spec, int tenants_per_gpu,
                          double oversub_ratio, double host_swap_gbps) {
  spec.timeslice_tenants_per_gpu = tenants_per_gpu;
  spec.timeslice_oversub_ratio = oversub_ratio;
  spec.host_swap_gbps = host_swap_gbps;
  return spec;
}

NodeModel::NodeModel(NodeSpec spec) : spec_(std::move(spec)) {
  gpus_.reserve(spec_.gpus.size());
  for (std::size_t i = 0; i < spec_.gpus.size(); ++i) {
    gpus_.emplace_back(spec_.gpus[i], static_cast<int>(i));
  }
}

std::vector<int> NodeModel::free_gpus() const {
  std::vector<int> out;
  for (const auto& gpu : gpus_) {
    if (!gpu.allocated()) out.push_back(gpu.index());
  }
  return out;
}

int NodeModel::free_gpu_count() const {
  int n = 0;
  for (const auto& gpu : gpus_) {
    if (!gpu.allocated()) ++n;
  }
  return n;
}

std::optional<std::vector<int>> NodeModel::find_gpus(
    int count, double min_memory_gb, double min_compute_capability) const {
  std::vector<int> picked;
  for (const auto& gpu : gpus_) {
    if (gpu.allocated()) continue;
    if (gpu.spec().memory_gb < min_memory_gb) continue;
    if (gpu.spec().compute_capability < min_compute_capability) continue;
    picked.push_back(gpu.index());
    if (static_cast<int>(picked.size()) == count) return picked;
  }
  return std::nullopt;
}

double NodeModel::share_memory_cap(std::size_t gpu_index) const {
  if (spec_.share_memory_cap_gb > 0) return spec_.share_memory_cap_gb;
  const int slots = std::max(1, spec_.share_slots_per_gpu);
  return gpus_.at(gpu_index).spec().memory_gb / slots;
}

std::optional<int> NodeModel::find_share_slot(
    double memory_gb, double min_compute_capability) const {
  if (spec_.share_slots_per_gpu <= 1) return std::nullopt;
  const GpuDevice* best = nullptr;
  for (const auto& gpu : gpus_) {
    if (gpu.exclusively_allocated() || gpu.time_sliced()) continue;
    if (gpu.holder_count() >= spec_.share_slots_per_gpu) continue;
    if (gpu.spec().compute_capability < min_compute_capability) continue;
    if (memory_gb > share_memory_cap(static_cast<std::size_t>(gpu.index()))) {
      continue;
    }
    if (gpu.memory_used_gb() + memory_gb > gpu.spec().memory_gb) continue;
    // Pack: most tenants first so whole devices stay free; index ties.
    if (best == nullptr || gpu.holder_count() > best->holder_count()) {
      best = &gpu;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->index();
}

util::Status NodeModel::allocate_shared(int index,
                                        const std::string& workload_id,
                                        double memory_gb, double utilization,
                                        util::SimTime now) {
  if (index < 0 || static_cast<std::size_t>(index) >= gpus_.size()) {
    return util::invalid_argument_error("GPU index out of range");
  }
  if (spec_.share_slots_per_gpu <= 1) {
    return util::failed_precondition_error("GPU sharing disabled on " +
                                           spec_.hostname);
  }
  GpuDevice& gpu = gpus_[static_cast<std::size_t>(index)];
  if (gpu.exclusively_allocated()) {
    return util::failed_precondition_error(
        "GPU " + std::to_string(index) + " on " + spec_.hostname +
        " exclusively allocated to " + gpu.holder());
  }
  if (gpu.holder_count() >= spec_.share_slots_per_gpu) {
    return util::resource_exhausted_error(
        "GPU " + std::to_string(index) + " on " + spec_.hostname +
        " has no free share slot");
  }
  if (memory_gb > share_memory_cap(static_cast<std::size_t>(index))) {
    return util::resource_exhausted_error(
        "footprint exceeds the shared-tenant memory cap on GPU " +
        std::to_string(index));
  }
  if (gpu.memory_used_gb() + memory_gb > gpu.spec().memory_gb) {
    return util::resource_exhausted_error(
        "shared footprints would oversubscribe VRAM of GPU " +
        std::to_string(index));
  }
  return gpu.allocate_shared(workload_id, memory_gb, utilization, now);
}

std::optional<int> NodeModel::find_timeslice_slot(
    double working_set_gb, double min_compute_capability) const {
  if (spec_.timeslice_tenants_per_gpu <= 1) return std::nullopt;
  const GpuDevice* best = nullptr;
  for (const auto& gpu : gpus_) {
    if (gpu.exclusively_allocated()) continue;
    if (gpu.holder_count() > 0 && !gpu.time_sliced()) continue;  // spatial
    if (gpu.holder_count() >= spec_.timeslice_tenants_per_gpu) continue;
    if (gpu.spec().compute_capability < min_compute_capability) continue;
    if (working_set_gb > gpu.spec().memory_gb) continue;
    if (gpu.tenant_memory_total_gb() + working_set_gb >
        spec_.timeslice_oversub_ratio * gpu.spec().memory_gb) {
      continue;
    }
    // Pack: most tenants first so whole devices stay free; index ties.
    if (best == nullptr || gpu.holder_count() > best->holder_count()) {
      best = &gpu;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->index();
}

util::Status NodeModel::allocate_timeslice(int index,
                                           const std::string& workload_id,
                                           double working_set_gb,
                                           double utilization,
                                           util::SimTime now) {
  if (index < 0 || static_cast<std::size_t>(index) >= gpus_.size()) {
    return util::invalid_argument_error("GPU index out of range");
  }
  if (spec_.timeslice_tenants_per_gpu <= 1) {
    return util::failed_precondition_error("time-slicing disabled on " +
                                           spec_.hostname);
  }
  GpuDevice& gpu = gpus_[static_cast<std::size_t>(index)];
  if (gpu.exclusively_allocated() ||
      (gpu.holder_count() > 0 && !gpu.time_sliced())) {
    return util::failed_precondition_error(
        "GPU " + std::to_string(index) + " on " + spec_.hostname +
        " not available for time-slicing");
  }
  if (gpu.holder_count() >= spec_.timeslice_tenants_per_gpu) {
    return util::resource_exhausted_error(
        "GPU " + std::to_string(index) + " on " + spec_.hostname +
        " has no free time-slice seat");
  }
  if (gpu.tenant_memory_total_gb() + working_set_gb >
      spec_.timeslice_oversub_ratio * gpu.spec().memory_gb) {
    return util::resource_exhausted_error(
        "working sets would exceed the oversubscription ratio on GPU " +
        std::to_string(index));
  }
  return gpu.allocate_timeslice(workload_id, working_set_gb, utilization, now);
}

util::Status NodeModel::allocate(const std::vector<int>& indices,
                                 const std::string& workload_id,
                                 double memory_gb, double utilization,
                                 util::SimTime now) {
  if (indices.empty()) {
    return util::invalid_argument_error("no GPU indices given");
  }
  for (int idx : indices) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= gpus_.size()) {
      return util::invalid_argument_error("GPU index out of range");
    }
    const auto& gpu = gpus_[static_cast<std::size_t>(idx)];
    if (gpu.allocated()) {
      return util::failed_precondition_error(
          "GPU " + std::to_string(idx) + " on " + spec_.hostname +
          " already allocated to " + gpu.holder());
    }
    if (memory_gb > gpu.spec().memory_gb) {
      return util::resource_exhausted_error(
          "footprint exceeds VRAM of GPU " + std::to_string(idx));
    }
  }
  for (int idx : indices) {
    GPUNION_RETURN_IF_ERROR(gpus_[static_cast<std::size_t>(idx)].allocate(
        workload_id, memory_gb, utilization, now));
  }
  return util::Status();
}

int NodeModel::release(const std::string& workload_id, util::SimTime now) {
  int released = 0;
  for (auto& gpu : gpus_) {
    if (gpu.release_holder(workload_id, now)) ++released;
  }
  return released;
}

int NodeModel::free_shared_slot_count() const {
  if (spec_.share_slots_per_gpu <= 1) return 0;
  int slots = 0;
  for (const auto& gpu : gpus_) {
    if (gpu.exclusively_allocated() || gpu.time_sliced() ||
        gpu.holder_count() == 0) {
      continue;
    }
    slots += std::max(0, spec_.share_slots_per_gpu - gpu.holder_count());
  }
  return slots;
}

int NodeModel::free_timeslice_slot_count() const {
  if (spec_.timeslice_tenants_per_gpu <= 1) return 0;
  int seats = 0;
  for (const auto& gpu : gpus_) {
    if (!gpu.time_sliced()) continue;
    seats += std::max(0, spec_.timeslice_tenants_per_gpu - gpu.holder_count());
  }
  return seats;
}

double NodeModel::busy_fraction() const {
  if (gpus_.empty()) return 0.0;
  double busy = 0;
  const int slots = std::max(1, spec_.share_slots_per_gpu);
  for (const auto& gpu : gpus_) {
    if (gpu.exclusively_allocated()) {
      busy += 1.0;
    } else if (gpu.time_sliced()) {
      busy += gpu.resident().empty() ? 0.0 : 1.0;
    } else if (gpu.holder_count() > 0) {
      // A shared GPU with 1 of N occupied slots is 1/N busy, not 100%.
      busy += std::min(1.0, static_cast<double>(gpu.holder_count()) / slots);
    }
  }
  return busy / static_cast<double>(gpus_.size());
}

}  // namespace gpunion::hw
