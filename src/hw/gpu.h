// GPU hardware catalog and device state.
//
// Models the fleet from the paper's deployment (§4): RTX 3090 workstations,
// an 8x RTX 4090 server, 2x A100 and 4x A6000 servers.  Specs carry the
// attributes the scheduler's compatibility constraints use — memory capacity
// and CUDA compute capability — plus throughput/power figures that drive the
// workload and telemetry models.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/time.h"

namespace gpunion::hw {

enum class GpuArch { kRtx3090, kRtx4090, kA100, kA6000 };

std::string_view gpu_arch_name(GpuArch arch);

struct GpuSpec {
  GpuArch arch;
  std::string name;
  double memory_gb;            // device memory capacity
  double compute_capability;   // CUDA CC, e.g. 8.6
  double fp32_tflops;          // relative training throughput
  double tdp_watts;            // board power at full load
  double idle_watts;           // board power when idle
};

/// Catalog entry for an architecture (same figures as vendor datasheets).
const GpuSpec& gpu_spec(GpuArch arch);

/// One physical GPU in a node.  Tracks the workloads occupying it and enough
/// state to synthesize NVML-style telemetry (utilization, memory,
/// temperature with first-order thermal dynamics, power).
///
/// Three tenancy modes (nvshare-style sharing, §3.3 / related work):
///  - exclusive: one workload owns the whole device (classic allocation);
///  - spatial shared: up to N tenants co-reside, each within a VRAM budget;
///  - time-sliced: full-memory tenants take turns — exactly one is RESIDENT
///    at a time, the rest live swapped out to host RAM (nvshare's UVM
///    oversubscription).  Modes never mix on one device.
class GpuDevice {
 public:
  GpuDevice(GpuArch arch, int index);

  const GpuSpec& spec() const { return *spec_; }
  int index() const { return index_; }

  /// Busy in either mode (not free for an exclusive allocation).
  bool allocated() const { return exclusive_ || !holders_.empty(); }
  bool exclusively_allocated() const { return exclusive_; }
  /// Number of co-resident tenants (1 for an exclusive allocation).
  int holder_count() const { return static_cast<int>(holders_.size()); }
  /// First holder in id order (the sole holder when exclusive); empty when
  /// free.
  const std::string& holder() const;
  bool holds(const std::string& workload_id) const {
    return holders_.contains(workload_id);
  }

  /// Marks the device busy with `workload_id` using `memory_gb` of VRAM.
  /// Requires the device to be completely free and the footprint to fit —
  /// checked errors, not debug asserts, so release builds cannot silently
  /// oversubscribe when a caller skips the node model's pre-check.
  util::Status allocate(const std::string& workload_id, double memory_gb,
                        double utilization, util::SimTime now);

  /// Adds `workload_id` as a shared tenant.  Requires the device to not be
  /// exclusively held or time-sliced and the footprint to fit the remaining
  /// VRAM; slot count and per-tenant memory caps are the node model's to
  /// enforce.
  util::Status allocate_shared(const std::string& workload_id,
                               double memory_gb, double utilization,
                               util::SimTime now);

  /// Adds `workload_id` as a time-sliced tenant with a full-VRAM footprint
  /// of `working_set_gb` (its hot pages; the rest can stay swapped out).
  /// Puts the device in time-slice mode; the first tenant becomes resident.
  /// Tenant-count and oversubscription-ratio caps are the node model's to
  /// enforce.
  util::Status allocate_timeslice(const std::string& workload_id,
                                  double working_set_gb, double utilization,
                                  util::SimTime now);

  /// Time-slice mode only: makes `workload_id` the resident tenant (the one
  /// whose pages are on-device and whose kernels run this quantum).
  util::Status set_resident(const std::string& workload_id, util::SimTime now);

  bool time_sliced() const { return timeslice_; }
  /// Resident tenant id in time-slice mode; empty otherwise or when free.
  const std::string& resident() const { return resident_; }

  /// Frees the device entirely.
  void release(util::SimTime now);

  /// Removes one tenant (exclusive or shared); returns false when
  /// `workload_id` is not on this device.
  bool release_holder(const std::string& workload_id, util::SimTime now);

  /// VRAM in use.  In time-slice mode only the resident tenant's working
  /// set is on-device (the others are swapped out to host RAM).
  double memory_used_gb() const { return memory_used_gb_; }
  /// Sum of all tenants' footprints, resident or not — in time-slice mode
  /// this may exceed the device VRAM (that is the oversubscription).
  double tenant_memory_total_gb() const;
  double utilization() const { return utilization_; }

  /// Thermal model: exponential approach from the current temperature to
  /// the load-dependent steady state (idle ~36 C, full load ~78 C,
  /// time constant ~90 s).
  double temperature_c(util::SimTime now) const;
  double power_watts() const;

 private:
  double steady_temperature() const;
  void refresh_aggregates(util::SimTime now);

  struct Tenant {
    double memory_gb = 0;
    double utilization = 0;
  };

  const GpuSpec* spec_;
  int index_;
  std::map<std::string, Tenant> holders_;  // ordered for determinism
  bool exclusive_ = false;
  bool timeslice_ = false;
  std::string resident_;  // time-slice mode: the on-device tenant
  double memory_used_gb_ = 0;
  double utilization_ = 0;
  // thermal state: temperature at last transition + transition time
  double temp_at_change_c_ = 36.0;
  util::SimTime last_change_ = 0;
};

}  // namespace gpunion::hw
