// GPU hardware catalog and device state.
//
// Models the fleet from the paper's deployment (§4): RTX 3090 workstations,
// an 8x RTX 4090 server, 2x A100 and 4x A6000 servers.  Specs carry the
// attributes the scheduler's compatibility constraints use — memory capacity
// and CUDA compute capability — plus throughput/power figures that drive the
// workload and telemetry models.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.h"

namespace gpunion::hw {

enum class GpuArch { kRtx3090, kRtx4090, kA100, kA6000 };

std::string_view gpu_arch_name(GpuArch arch);

struct GpuSpec {
  GpuArch arch;
  std::string name;
  double memory_gb;            // device memory capacity
  double compute_capability;   // CUDA CC, e.g. 8.6
  double fp32_tflops;          // relative training throughput
  double tdp_watts;            // board power at full load
  double idle_watts;           // board power when idle
};

/// Catalog entry for an architecture (same figures as vendor datasheets).
const GpuSpec& gpu_spec(GpuArch arch);

/// One physical GPU in a node.  Tracks the workload occupying it and enough
/// state to synthesize NVML-style telemetry (utilization, memory,
/// temperature with first-order thermal dynamics, power).
class GpuDevice {
 public:
  GpuDevice(GpuArch arch, int index);

  const GpuSpec& spec() const { return *spec_; }
  int index() const { return index_; }

  bool allocated() const { return !holder_.empty(); }
  const std::string& holder() const { return holder_; }

  /// Marks the device busy with `workload_id` using `memory_gb` of VRAM.
  /// Requires the device to be free and the footprint to fit.
  void allocate(const std::string& workload_id, double memory_gb,
                double utilization, util::SimTime now);

  /// Frees the device.
  void release(util::SimTime now);

  double memory_used_gb() const { return memory_used_gb_; }
  double utilization() const { return utilization_; }

  /// Thermal model: exponential approach from the current temperature to
  /// the load-dependent steady state (idle ~36 C, full load ~78 C,
  /// time constant ~90 s).
  double temperature_c(util::SimTime now) const;
  double power_watts() const;

 private:
  double steady_temperature() const;

  const GpuSpec* spec_;
  int index_;
  std::string holder_;
  double memory_used_gb_ = 0;
  double utilization_ = 0;
  // thermal state: temperature at last transition + transition time
  double temp_at_change_c_ = 36.0;
  util::SimTime last_change_ = 0;
};

}  // namespace gpunion::hw
