// GPU hardware catalog and device state.
//
// Models the fleet from the paper's deployment (§4): RTX 3090 workstations,
// an 8x RTX 4090 server, 2x A100 and 4x A6000 servers.  Specs carry the
// attributes the scheduler's compatibility constraints use — memory capacity
// and CUDA compute capability — plus throughput/power figures that drive the
// workload and telemetry models.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/time.h"

namespace gpunion::hw {

enum class GpuArch { kRtx3090, kRtx4090, kA100, kA6000 };

std::string_view gpu_arch_name(GpuArch arch);

struct GpuSpec {
  GpuArch arch;
  std::string name;
  double memory_gb;            // device memory capacity
  double compute_capability;   // CUDA CC, e.g. 8.6
  double fp32_tflops;          // relative training throughput
  double tdp_watts;            // board power at full load
  double idle_watts;           // board power when idle
};

/// Catalog entry for an architecture (same figures as vendor datasheets).
const GpuSpec& gpu_spec(GpuArch arch);

/// One physical GPU in a node.  Tracks the workloads occupying it and enough
/// state to synthesize NVML-style telemetry (utilization, memory,
/// temperature with first-order thermal dynamics, power).
///
/// Two tenancy modes (nvshare-style sharing, §3.3 / related work):
///  - exclusive: one workload owns the whole device (classic allocation);
///  - shared: up to N tenants time-slice the device, each within a VRAM
///    budget.  The two modes never mix on one device.
class GpuDevice {
 public:
  GpuDevice(GpuArch arch, int index);

  const GpuSpec& spec() const { return *spec_; }
  int index() const { return index_; }

  /// Busy in either mode (not free for an exclusive allocation).
  bool allocated() const { return exclusive_ || !holders_.empty(); }
  bool exclusively_allocated() const { return exclusive_; }
  /// Number of co-resident tenants (1 for an exclusive allocation).
  int holder_count() const { return static_cast<int>(holders_.size()); }
  /// First holder in id order (the sole holder when exclusive); empty when
  /// free.
  const std::string& holder() const;
  bool holds(const std::string& workload_id) const {
    return holders_.contains(workload_id);
  }

  /// Marks the device busy with `workload_id` using `memory_gb` of VRAM.
  /// Requires the device to be completely free and the footprint to fit.
  void allocate(const std::string& workload_id, double memory_gb,
                double utilization, util::SimTime now);

  /// Adds `workload_id` as a shared tenant.  Requires the device to not be
  /// exclusively held and the footprint to fit the remaining VRAM; slot
  /// count and per-tenant memory caps are the node model's to enforce.
  void allocate_shared(const std::string& workload_id, double memory_gb,
                       double utilization, util::SimTime now);

  /// Frees the device entirely.
  void release(util::SimTime now);

  /// Removes one tenant (exclusive or shared); returns false when
  /// `workload_id` is not on this device.
  bool release_holder(const std::string& workload_id, util::SimTime now);

  double memory_used_gb() const { return memory_used_gb_; }
  double utilization() const { return utilization_; }

  /// Thermal model: exponential approach from the current temperature to
  /// the load-dependent steady state (idle ~36 C, full load ~78 C,
  /// time constant ~90 s).
  double temperature_c(util::SimTime now) const;
  double power_watts() const;

 private:
  double steady_temperature() const;
  void refresh_aggregates(util::SimTime now);

  struct Tenant {
    double memory_gb = 0;
    double utilization = 0;
  };

  const GpuSpec* spec_;
  int index_;
  std::map<std::string, Tenant> holders_;  // ordered for determinism
  bool exclusive_ = false;
  double memory_used_gb_ = 0;
  double utilization_ = 0;
  // thermal state: temperature at last transition + transition time
  double temp_at_change_c_ = 36.0;
  util::SimTime last_change_ = 0;
};

}  // namespace gpunion::hw
