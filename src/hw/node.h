// Provider node hardware model.
//
// A node is a provider-owned machine: one or more GPUs plus host resources.
// The NodeModel tracks per-GPU allocation so the provider agent can
// advertise free capacity and the container runtime can bind devices.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/gpu.h"
#include "util/status.h"
#include "util/time.h"

namespace gpunion::hw {

struct NodeSpec {
  std::string hostname;
  std::vector<GpuArch> gpus;
  int cpu_cores = 16;
  double ram_gb = 64.0;
  double disk_gb = 2000.0;
  double access_link_gbps = 1.0;
};

/// Convenience builders for the paper's fleet (§4).
NodeSpec workstation_3090(std::string hostname);
NodeSpec server_8x4090(std::string hostname);
NodeSpec server_2xa100(std::string hostname);
NodeSpec server_4xa6000(std::string hostname);

class NodeModel {
 public:
  explicit NodeModel(NodeSpec spec);

  const NodeSpec& spec() const { return spec_; }
  const std::string& hostname() const { return spec_.hostname; }

  std::size_t gpu_count() const { return gpus_.size(); }
  const GpuDevice& gpu(std::size_t index) const { return gpus_.at(index); }
  GpuDevice& gpu(std::size_t index) { return gpus_.at(index); }

  /// Indices of currently free GPUs.
  std::vector<int> free_gpus() const;
  int free_gpu_count() const;

  /// Finds `count` free GPUs with at least `min_memory_gb` VRAM and compute
  /// capability >= `min_compute_capability`; empty optional when impossible.
  std::optional<std::vector<int>> find_gpus(int count, double min_memory_gb,
                                            double min_compute_capability) const;

  /// Binds `workload_id` to the given GPU indices.
  util::Status allocate(const std::vector<int>& indices,
                        const std::string& workload_id, double memory_gb,
                        double utilization, util::SimTime now);

  /// Releases every GPU held by `workload_id`; returns how many were freed.
  int release(const std::string& workload_id, util::SimTime now);

  /// Aggregate busy fraction (allocated GPUs / total), the utilization
  /// figure reported in Fig. 2.
  double busy_fraction() const;

 private:
  NodeSpec spec_;
  std::vector<GpuDevice> gpus_;
};

}  // namespace gpunion::hw
