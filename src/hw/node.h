// Provider node hardware model.
//
// A node is a provider-owned machine: one or more GPUs plus host resources.
// The NodeModel tracks per-GPU allocation so the provider agent can
// advertise free capacity and the container runtime can bind devices.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/gpu.h"
#include "util/status.h"
#include "util/time.h"

namespace gpunion::hw {

struct NodeSpec {
  std::string hostname;
  std::vector<GpuArch> gpus;
  int cpu_cores = 16;
  double ram_gb = 64.0;
  double disk_gb = 2000.0;
  double access_link_gbps = 1.0;
  /// Spatial share slots per GPU (1 = whole-device only).  A shared GPU
  /// hosts up to this many tenants; the platform policy and the placement
  /// strategy decide whether slots are actually used.
  int share_slots_per_gpu = 4;
  /// Per-tenant VRAM cap on a shared GPU; 0 = memory_gb / share_slots_per_gpu.
  double share_memory_cap_gb = 0;
  /// nvshare-style time-slice seats per GPU (<=1 = mode disabled).  A
  /// time-sliced GPU hosts up to this many FULL-memory tenants; exactly one
  /// is resident per scheduler quantum, the rest swap to host RAM.
  int timeslice_tenants_per_gpu = 0;
  /// Memory oversubscription bound: sum of tenant working sets on one
  /// time-sliced GPU may reach ratio x device VRAM.
  double timeslice_oversub_ratio = 2.0;
  /// Host RAM <-> device swap bandwidth (GB/s) paid at quantum boundaries.
  double host_swap_gbps = 12.0;
};

/// Convenience builders for the paper's fleet (§4).
NodeSpec workstation_3090(std::string hostname);
NodeSpec server_8x4090(std::string hostname);
NodeSpec server_2xa100(std::string hostname);
NodeSpec server_4xa6000(std::string hostname);

/// Returns `spec` with nvshare-style time-slicing enabled: up to
/// `tenants_per_gpu` full-memory tenants per GPU, one resident per quantum.
NodeSpec with_timeslicing(NodeSpec spec, int tenants_per_gpu,
                          double oversub_ratio = 2.0,
                          double host_swap_gbps = 12.0);

class NodeModel {
 public:
  explicit NodeModel(NodeSpec spec);

  const NodeSpec& spec() const { return spec_; }
  const std::string& hostname() const { return spec_.hostname; }

  std::size_t gpu_count() const { return gpus_.size(); }
  const GpuDevice& gpu(std::size_t index) const { return gpus_.at(index); }
  GpuDevice& gpu(std::size_t index) { return gpus_.at(index); }

  /// Indices of currently free GPUs.
  std::vector<int> free_gpus() const;
  int free_gpu_count() const;

  /// Finds `count` free GPUs with at least `min_memory_gb` VRAM and compute
  /// capability >= `min_compute_capability`; empty optional when impossible.
  std::optional<std::vector<int>> find_gpus(int count, double min_memory_gb,
                                            double min_compute_capability) const;

  /// Per-tenant VRAM budget on a shared GPU of this node.
  double share_memory_cap(std::size_t gpu_index) const;

  /// Finds one GPU able to host a fractional tenant of `memory_gb` VRAM:
  /// not exclusively held, a slot free, and both the per-tenant cap and the
  /// remaining VRAM honoured.  Prefers the most-occupied shared GPU (pack
  /// tenants together, keep whole devices free); empty optional when
  /// impossible or sharing is disabled (share_slots_per_gpu <= 1).
  std::optional<int> find_share_slot(double memory_gb,
                                     double min_compute_capability) const;

  /// Binds `workload_id` to the given GPU indices.
  util::Status allocate(const std::vector<int>& indices,
                        const std::string& workload_id, double memory_gb,
                        double utilization, util::SimTime now);

  /// Adds `workload_id` as a shared tenant on one GPU (see find_share_slot).
  util::Status allocate_shared(int index, const std::string& workload_id,
                               double memory_gb, double utilization,
                               util::SimTime now);

  /// Finds one GPU able to host a time-sliced tenant with a working set of
  /// `working_set_gb`: not exclusive, not spatially shared, a seat free, the
  /// working set within device VRAM and the oversubscription ratio honoured.
  /// Prefers the most-occupied time-sliced GPU (pack tenants together, keep
  /// whole devices free); empty optional when impossible or the mode is
  /// disabled (timeslice_tenants_per_gpu <= 1).
  std::optional<int> find_timeslice_slot(double working_set_gb,
                                         double min_compute_capability) const;

  /// Adds `workload_id` as a time-sliced tenant on one GPU (see
  /// find_timeslice_slot).
  util::Status allocate_timeslice(int index, const std::string& workload_id,
                                  double working_set_gb, double utilization,
                                  util::SimTime now);

  /// Releases every GPU (or shared slot) held by `workload_id`; returns how
  /// many devices the workload vacated.
  int release(const std::string& workload_id, util::SimTime now);

  /// Free slots on GPUs already in shared mode (at least one tenant, not
  /// exclusive).  Fully-free GPUs are advertised via free_gpu_count().
  int free_shared_slot_count() const;

  /// Free seats on GPUs already in time-slice mode.  Fully-free GPUs are
  /// advertised via free_gpu_count().
  int free_timeslice_slot_count() const;

  /// Aggregate busy fraction, the utilization figure reported in Fig. 2.
  /// Per-GPU occupancy is weighted: an exclusive device counts 1.0, a
  /// spatially shared device counts holders/slots, a time-sliced device
  /// counts 1.0 only while a tenant is resident, a free device 0.
  double busy_fraction() const;

 private:
  NodeSpec spec_;
  std::vector<GpuDevice> gpus_;
};

}  // namespace gpunion::hw
