#include "hw/telemetry.h"

#include <algorithm>

namespace gpunion::hw {

double NodeTelemetry::mean_gpu_utilization() const {
  if (gpus.empty()) return 0.0;
  double sum = 0;
  for (const auto& g : gpus) sum += g.utilization_pct;
  return sum / static_cast<double>(gpus.size());
}

NvmlSampler::NvmlSampler(const NodeModel& node, util::Rng rng)
    : node_(node), rng_(rng) {}

NodeTelemetry NvmlSampler::sample(util::SimTime now) {
  NodeTelemetry out;
  out.sampled_at = now;
  out.gpus.reserve(node_.gpu_count());
  for (std::size_t i = 0; i < node_.gpu_count(); ++i) {
    const GpuDevice& gpu = node_.gpu(i);
    GpuTelemetry t;
    t.gpu_index = gpu.index();
    const double noise = 1.0 + rng_.normal(0.0, 0.02);
    t.utilization_pct =
        std::clamp(gpu.utilization() * 100.0 * noise, 0.0, 100.0);
    t.memory_used_gb = gpu.memory_used_gb();
    t.memory_total_gb = gpu.spec().memory_gb;
    t.temperature_c = gpu.temperature_c(now) + rng_.normal(0.0, 0.5);
    t.power_watts = std::max(0.0, gpu.power_watts() * noise);
    out.gpus.push_back(t);
  }
  // Host CPU load loosely follows GPU activity (data loading, logging).
  const double busy = node_.busy_fraction();
  out.cpu_load = std::clamp(0.05 + 0.4 * busy + rng_.normal(0.0, 0.03), 0.0, 1.0);
  return out;
}

}  // namespace gpunion::hw
