// NVML-style telemetry sampling.
//
// The paper's agent "integrates with PyNVML to collect real-time GPU
// telemetry including memory utilization, temperature, and power
// consumption" (§3.4).  NvmlSampler synthesizes the same fields from the
// NodeModel, with measurement noise so downstream smoothing is exercised.
#pragma once

#include <vector>

#include "hw/node.h"
#include "util/rng.h"
#include "util/time.h"

namespace gpunion::hw {

struct GpuTelemetry {
  int gpu_index = 0;
  double utilization_pct = 0;   // SM utilization, 0-100
  double memory_used_gb = 0;
  double memory_total_gb = 0;
  double temperature_c = 0;
  double power_watts = 0;
};

struct NodeTelemetry {
  util::SimTime sampled_at = 0;
  std::vector<GpuTelemetry> gpus;
  double cpu_load = 0;  // 0-1, synthetic host load

  /// Mean SM utilization across the node's GPUs (0-100).
  double mean_gpu_utilization() const;
};

class NvmlSampler {
 public:
  /// `noise` forks a dedicated RNG stream; samples are deterministic given
  /// the environment seed.
  NvmlSampler(const NodeModel& node, util::Rng rng);

  /// Reads all GPUs, adding ~2% multiplicative measurement noise, matching
  /// the jitter of real NVML counters.
  NodeTelemetry sample(util::SimTime now);

 private:
  const NodeModel& node_;
  util::Rng rng_;
};

}  // namespace gpunion::hw
