#include "baseline/traits.h"

#include <algorithm>
#include <array>
#include <sstream>

namespace gpunion::baseline {

const std::vector<PlatformTraits>& table1_platforms() {
  static const std::vector<PlatformTraits> platforms = {
      {"OpenStack", "Extensive", "Very High", "Very Heavy", "Steep", "None",
       "VMs/Mixed", "No", "Limited", "Add-on", "No", "Data Center",
       "Infrastructure"},
      {"CloudStack", "Limited", "Medium", "Medium", "Moderate", "None", "VMs",
       "No", "Limited", "Limited", "No", "SME Clouds", "Infrastructure"},
      {"OpenNebula", "Limited", "Medium", "Light", "Gentle", "Limited",
       "VMs/Mixed", "No", "Limited", "Add-on", "No", "Private Clouds",
       "Infrastructure"},
      {"Kubernetes", "Extensive", "High", "Heavy", "Steep", "None",
       "Containers", "No", "Limited", "Plugin", "No", "Large Clusters",
       "Infrastructure"},
      {"GPUnion", "Academic", "Low", "Minimal", "Gentle", "Full",
       "GPU Containers", "Yes", "Native", "Core Feature", "Yes",
       "Campus LANs", "Workload"},
  };
  return platforms;
}

std::string render_table1() {
  static const std::array<const char*, 12> kRows = {
      "Community Support",    "Deployment Complexity",
      "Resource Footprint",   "Learning Curve",
      "Provider Autonomy",    "Workload Focus",
      "Voluntary Participation", "Dynamic Node Joining",
      "GPU Specialization",   "Campus Network Optimization",
      "Target Environment",   "Fault Tolerance Model"};

  const auto& platforms = table1_platforms();
  auto field = [](const PlatformTraits& t, std::size_t row) -> const std::string& {
    switch (row) {
      case 0: return t.community_support;
      case 1: return t.deployment_complexity;
      case 2: return t.resource_footprint;
      case 3: return t.learning_curve;
      case 4: return t.provider_autonomy;
      case 5: return t.workload_focus;
      case 6: return t.voluntary_participation;
      case 7: return t.dynamic_node_joining;
      case 8: return t.gpu_specialization;
      case 9: return t.campus_network_optimization;
      case 10: return t.target_environment;
      default: return t.fault_tolerance_model;
    }
  };

  // Column widths.
  std::size_t label_width = 0;
  for (const char* row : kRows) {
    label_width = std::max(label_width, std::string(row).size());
  }
  std::vector<std::size_t> widths;
  for (const auto& platform : platforms) {
    std::size_t w = platform.platform.size();
    for (std::size_t row = 0; row < kRows.size(); ++row) {
      w = std::max(w, field(platform, row).size());
    }
    widths.push_back(w);
  }

  std::ostringstream os;
  auto pad = [&os](const std::string& s, std::size_t width) {
    os << s << std::string(width - s.size() + 2, ' ');
  };
  pad("Platform", label_width);
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    pad(platforms[i].platform, widths[i]);
  }
  os << "\n";
  for (std::size_t row = 0; row < kRows.size(); ++row) {
    pad(kRows[row], label_width);
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      pad(field(platforms[i], row), widths[i]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gpunion::baseline
