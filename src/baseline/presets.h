// Baseline platform presets.
//
// Each baseline of Table 1 is expressed as a configuration of the same
// engine (see sched/policy.h), so bench/table1_comparison replays one
// churn + workload trace under all of them and differences are attributable
// to platform semantics alone:
//
//   kGpunion      everything on (the paper's system)
//   kKubernetes   centralized orchestration: volatility = failure,
//                 restart-from-scratch, no provider grace, no migrate-back
//   kSlurm        reservation semantics: node loss kills the job, the user
//                 resubmits at the queue tail, restart from scratch
//   kManual       the pre-GPUnion campus: per-group silos, manual restarts
#pragma once

#include <string>

#include "gpunion/config.h"
#include "workload/job.h"

namespace gpunion::baseline {

enum class Preset { kGpunion, kKubernetes, kSlurm, kManual };

std::string_view preset_name(Preset p);

/// Rewrites `config`'s policy/agent knobs for the preset.
void apply_preset(CampusConfig& config, Preset preset);

/// Adapts a job spec to the preset's capabilities (e.g. platforms without
/// ALC integration do not run periodic checkpoints).
workload::JobSpec adapt_job(workload::JobSpec job, Preset preset);

}  // namespace gpunion::baseline
