#include "baseline/presets.h"

namespace gpunion::baseline {

std::string_view preset_name(Preset p) {
  switch (p) {
    case Preset::kGpunion: return "GPUnion";
    case Preset::kKubernetes: return "Kubernetes-like";
    case Preset::kSlurm: return "Slurm-like";
    case Preset::kManual: return "Manual";
  }
  return "unknown";
}

void apply_preset(CampusConfig& config, Preset preset) {
  sched::PlatformPolicy& policy = config.coordinator.policy;
  switch (preset) {
    case Preset::kGpunion:
      policy = sched::gpunion_policy();
      break;
    case Preset::kKubernetes:
      policy.cross_group_sharing = true;
      policy.checkpoint_restore = false;   // pods restart from scratch
      policy.auto_migration = true;        // reschedule is automatic
      policy.migrate_back = false;
      policy.owner_reclaim = false;        // no provider supremacy
      policy.requeue_to_tail = false;
      policy.fractional_sharing = false;   // device plugin: 1 GPU : 1 pod
      // No application-checkpoint grace on node drain.
      config.agent_defaults.departure_grace = 0.0;
      break;
    case Preset::kSlurm:
      policy.cross_group_sharing = true;
      policy.checkpoint_restore = false;   // reservation lost = work lost
      policy.auto_migration = true;        // --requeue
      policy.migrate_back = false;
      policy.owner_reclaim = false;
      policy.requeue_to_tail = true;       // resubmission loses the slot
      policy.fractional_sharing = false;   // reservations are whole devices
      config.agent_defaults.departure_grace = 0.0;
      break;
    case Preset::kManual:
      policy.cross_group_sharing = false;  // per-lab silos
      policy.checkpoint_restore = true;    // researchers keep their own ALC
      policy.auto_migration = false;       // humans restart by hand
      policy.migrate_back = false;
      policy.owner_reclaim = false;        // no guests to reclaim from
      policy.requeue_to_tail = true;
      policy.fractional_sharing = false;   // no sharing tooling at all
      break;
  }
}

workload::JobSpec adapt_job(workload::JobSpec job, Preset preset) {
  switch (preset) {
    case Preset::kGpunion:
    case Preset::kManual:
      return job;  // ALC checkpointing available
    case Preset::kKubernetes:
    case Preset::kSlurm:
      // No platform-integrated checkpointing: periodic ALC never reaches a
      // restore path, so the platforms neither pause for it nor restore.
      job.checkpoint_interval = 0;
      return job;
  }
  return job;
}

}  // namespace gpunion::baseline
