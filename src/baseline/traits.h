// Table 1 platform-comparison matrix.
//
// The qualitative rows of the paper's Table 1, held as data so the bench can
// print the table exactly and tests can assert on invariants (only GPUnion
// offers full provider autonomy + voluntary participation).
#pragma once

#include <string>
#include <vector>

namespace gpunion::baseline {

struct PlatformTraits {
  std::string platform;
  std::string community_support;
  std::string deployment_complexity;
  std::string resource_footprint;
  std::string learning_curve;
  std::string provider_autonomy;
  std::string workload_focus;
  std::string voluntary_participation;
  std::string dynamic_node_joining;
  std::string gpu_specialization;
  std::string campus_network_optimization;
  std::string target_environment;
  std::string fault_tolerance_model;
};

/// The five columns of Table 1, paper order: OpenStack, CloudStack,
/// OpenNebula, Kubernetes, GPUnion.
const std::vector<PlatformTraits>& table1_platforms();

/// Renders the matrix as an aligned text table (the bench's output).
std::string render_table1();

}  // namespace gpunion::baseline
