// Campus checkpoint store.
//
// Manages per-job checkpoint chains across storage nodes:
//  - placement honours the user's preferred nodes, falling back to the
//    least-utilized node with space,
//  - a full snapshot every `full_every` checkpoints, incremental deltas in
//    between (delta size = dirty_fraction x state size),
//  - restore returns the latest intact checkpoint (integrity verified),
//  - garbage collection keeps the suffix of the chain needed for restore.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/checkpoint.h"
#include "storage/storage_node.h"
#include "util/status.h"

namespace gpunion::storage {

struct CheckpointStoreConfig {
  /// A full snapshot every N checkpoints (1 = always full).
  int full_every = 8;
  /// Keep at most this many checkpoints per job (>= 1); older entries
  /// before the previous full snapshot are collected.
  int keep_per_job = 16;
};

class CheckpointStore {
 public:
  // Thread-safe: agents on different worker threads write checkpoints
  // concurrently in the parallel execution mode.  References returned by
  // chain()/node() stay valid across other jobs' writes (node-based maps),
  // but reading a chain while its own job writes needs external ordering.
  explicit CheckpointStore(CheckpointStoreConfig config = {});

  /// Registers a storage destination.  Id must be unique.
  util::Status add_node(const std::string& id, std::uint64_t capacity_bytes);

  /// Declares the user's preferred destinations for a job, in order.
  void set_preference(const std::string& job_id,
                      std::vector<std::string> node_ids);

  /// Persists a checkpoint of `state_bytes` at training `progress`.
  /// `dirty_fraction` scales the incremental delta.  Returns the sealed
  /// record (including where it was placed and how many bytes were stored —
  /// the caller models the network transfer of `stored_bytes`).
  util::StatusOr<Checkpoint> write(const std::string& job_id,
                                   std::uint64_t state_bytes,
                                   double dirty_fraction, double progress,
                                   util::SimTime now);

  /// Latest intact checkpoint for the job; kNotFound when none exists.
  util::StatusOr<Checkpoint> latest(const std::string& job_id) const;

  /// Bytes that must move over the network to restore the job on a new
  /// node: the latest full snapshot plus subsequent deltas.
  util::StatusOr<std::uint64_t> restore_bytes(const std::string& job_id) const;

  /// Drops every checkpoint of a finished job and frees its space.
  void forget(const std::string& job_id);

  const std::vector<Checkpoint>& chain(const std::string& job_id) const;
  std::uint64_t total_stored_bytes() const;
  const StorageNode* node(const std::string& id) const;
  std::vector<std::string> node_ids() const;

 private:
  StorageNode* pick_node(const std::string& job_id, std::uint64_t bytes);
  void collect(const std::string& job_id);
  /// Re-files `node` in the utilization order after its usage changed.
  void reindex(const StorageNode& node);
  /// Frees `bytes` on the checkpoint's node and keeps the index current.
  void release_bytes(const Checkpoint& checkpoint);

  CheckpointStoreConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, StorageNode> nodes_;  // ordered for determinism
  /// Fallback-placement order: least used-fraction first, id tiebreak.
  /// Maintained on every reserve/release so pick_node probes from the
  /// front instead of rescanning every storage node per write.
  std::set<std::pair<double, std::string>> by_utilization_;
  std::unordered_map<std::string, double> indexed_fraction_;
  std::unordered_map<std::string, std::vector<std::string>> preferences_;
  // std::map (not unordered_map): chain() hands out references that must
  // survive other jobs' inserts — node-based, no rehash relocation.
  std::map<std::string, std::vector<Checkpoint>> chains_;
};

}  // namespace gpunion::storage
