// Application-level checkpoint (ALC) records.
//
// §3.5: GPUnion uses application-level checkpoints — the user's training
// script declares what constitutes recoverable state (model + optimizer
// tensors, RNG state, data-loader cursor).  Checkpoints form a chain per
// job: periodic full snapshots with incremental deltas between them ("only
// modified memory pages and file system deltas are transmitted", §4).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"

namespace gpunion::storage {

enum class CheckpointKind { kFull, kIncremental };

struct Checkpoint {
  std::string job_id;
  std::uint64_t seq = 0;            // position in the job's chain
  CheckpointKind kind = CheckpointKind::kFull;
  std::uint64_t state_bytes = 0;    // logical size of recoverable state
  std::uint64_t stored_bytes = 0;   // bytes actually written (delta if incr.)
  double progress = 0;              // training progress captured, [0, 1]
  util::SimTime created_at = 0;
  std::string storage_node;         // where the bytes live
  std::string integrity_tag;        // sha256 over the metadata
};

/// Computes the integrity tag over all identifying fields.
std::string checkpoint_integrity_tag(const Checkpoint& c);

/// Fills `integrity_tag` and returns the checkpoint.
Checkpoint seal_checkpoint(Checkpoint c);

/// True when the stored tag matches a recomputation (bit-rot / tamper test).
bool checkpoint_intact(const Checkpoint& c);

}  // namespace gpunion::storage
