#include "storage/checkpoint.h"

#include "util/sha256.h"

namespace gpunion::storage {

std::string checkpoint_integrity_tag(const Checkpoint& c) {
  util::Sha256 h;
  h.update(c.job_id);
  h.update("|");
  h.update(std::to_string(c.seq));
  h.update("|");
  h.update(c.kind == CheckpointKind::kFull ? "full" : "incr");
  h.update("|");
  h.update(std::to_string(c.state_bytes));
  h.update("|");
  h.update(std::to_string(c.stored_bytes));
  h.update("|");
  h.update(std::to_string(c.progress));
  h.update("|");
  h.update(c.storage_node);
  return h.hex_digest();
}

Checkpoint seal_checkpoint(Checkpoint c) {
  c.integrity_tag = checkpoint_integrity_tag(c);
  return c;
}

bool checkpoint_intact(const Checkpoint& c) {
  return !c.integrity_tag.empty() &&
         c.integrity_tag == checkpoint_integrity_tag(c);
}

}  // namespace gpunion::storage
