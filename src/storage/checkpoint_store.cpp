#include "storage/checkpoint_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gpunion::storage {

CheckpointStore::CheckpointStore(CheckpointStoreConfig config)
    : config_(config) {
  assert(config_.full_every >= 1);
  assert(config_.keep_per_job >= 1);
}

util::Status CheckpointStore::add_node(const std::string& id,
                                       std::uint64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.contains(id)) {
    return util::already_exists_error("storage node " + id);
  }
  const auto& node = nodes_.emplace(id, StorageNode(id, capacity_bytes))
                         .first->second;
  reindex(node);
  return util::Status();
}

void CheckpointStore::reindex(const StorageNode& node) {
  const double fraction =
      node.capacity_bytes() == 0
          ? 1.0
          : static_cast<double>(node.used_bytes()) /
                static_cast<double>(node.capacity_bytes());
  auto it = indexed_fraction_.find(node.id());
  if (it != indexed_fraction_.end()) {
    if (it->second == fraction) return;
    by_utilization_.erase({it->second, node.id()});
    it->second = fraction;
  } else {
    indexed_fraction_.emplace(node.id(), fraction);
  }
  by_utilization_.insert({fraction, node.id()});
}

void CheckpointStore::release_bytes(const Checkpoint& checkpoint) {
  auto it = nodes_.find(checkpoint.storage_node);
  if (it == nodes_.end()) return;
  it->second.release(checkpoint.stored_bytes);
  reindex(it->second);
}

void CheckpointStore::set_preference(const std::string& job_id,
                                     std::vector<std::string> node_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  preferences_[job_id] = std::move(node_ids);
}

StorageNode* CheckpointStore::pick_node(const std::string& job_id,
                                        std::uint64_t bytes) {
  // User-designated destinations first (§3.2).
  auto pref_it = preferences_.find(job_id);
  if (pref_it != preferences_.end()) {
    for (const auto& id : pref_it->second) {
      auto it = nodes_.find(id);
      if (it != nodes_.end() && it->second.free_bytes() >= bytes) {
        return &it->second;
      }
    }
  }
  // Fallback: least-utilized node with space, probed through the
  // utilization order instead of a linear scan over every storage node.
  // The least-utilized node usually has the most free space, so the walk
  // almost always stops at the first entry; a long walk only happens when
  // small near-empty nodes front-run large near-full ones.  Determinism
  // matches the old scan: lowest fraction wins, id breaks ties.
  for (const auto& [fraction, id] : by_utilization_) {
    auto it = nodes_.find(id);
    if (it != nodes_.end() && it->second.free_bytes() >= bytes) {
      return &it->second;
    }
  }
  return nullptr;
}

util::StatusOr<Checkpoint> CheckpointStore::write(const std::string& job_id,
                                                  std::uint64_t state_bytes,
                                                  double dirty_fraction,
                                                  double progress,
                                                  util::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_bytes == 0) {
    return util::invalid_argument_error("checkpoint of empty state");
  }
  dirty_fraction = std::clamp(dirty_fraction, 0.0, 1.0);

  auto& chain = chains_[job_id];
  const std::uint64_t seq = chain.empty() ? 0 : chain.back().seq + 1;
  const bool full = chain.empty() ||
                    (seq % static_cast<std::uint64_t>(config_.full_every)) == 0;

  Checkpoint c;
  c.job_id = job_id;
  c.seq = seq;
  c.kind = full ? CheckpointKind::kFull : CheckpointKind::kIncremental;
  c.state_bytes = state_bytes;
  // Incremental deltas still carry metadata (~64 KiB) on top of dirty pages.
  constexpr std::uint64_t kMetadataBytes = 64 * 1024;
  c.stored_bytes =
      full ? state_bytes
           : static_cast<std::uint64_t>(
                 std::llround(static_cast<double>(state_bytes) *
                              dirty_fraction)) +
                 kMetadataBytes;
  c.progress = std::clamp(progress, 0.0, 1.0);
  c.created_at = now;

  StorageNode* dest = pick_node(job_id, c.stored_bytes);
  if (dest == nullptr) {
    return util::resource_exhausted_error(
        "no storage node can hold checkpoint for " + job_id);
  }
  GPUNION_RETURN_IF_ERROR(dest->reserve(c.stored_bytes));
  reindex(*dest);
  c.storage_node = dest->id();

  chain.push_back(seal_checkpoint(c));
  collect(job_id);
  return chain.back();
}

util::StatusOr<Checkpoint> CheckpointStore::latest(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(job_id);
  if (it == chains_.end() || it->second.empty()) {
    return util::not_found_error("no checkpoint for job " + job_id);
  }
  // Walk back to the newest intact record; a corrupt tail falls back to the
  // previous entry (resilience against partial writes during departure).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (checkpoint_intact(*rit)) return *rit;
  }
  return util::not_found_error("all checkpoints corrupt for job " + job_id);
}

util::StatusOr<std::uint64_t> CheckpointStore::restore_bytes(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(job_id);
  if (it == chains_.end() || it->second.empty()) {
    return util::not_found_error("no checkpoint for job " + job_id);
  }
  const auto& chain = it->second;
  // Find the latest full snapshot, then add all deltas after it.
  std::size_t base = chain.size();
  for (std::size_t i = chain.size(); i-- > 0;) {
    if (chain[i].kind == CheckpointKind::kFull) {
      base = i;
      break;
    }
  }
  if (base == chain.size()) {
    return util::internal_error("chain for " + job_id +
                                " has no full snapshot");
  }
  std::uint64_t bytes = 0;
  for (std::size_t i = base; i < chain.size(); ++i) {
    bytes += chain[i].stored_bytes;
  }
  return bytes;
}

void CheckpointStore::collect(const std::string& job_id) {
  auto it = chains_.find(job_id);
  if (it == chains_.end()) return;
  auto& chain = it->second;
  if (static_cast<int>(chain.size()) <= config_.keep_per_job) return;

  // Never drop the chain needed to restore: keep from the latest full
  // snapshot that still fits the budget.
  std::size_t cut = chain.size() - static_cast<std::size_t>(config_.keep_per_job);
  while (cut > 0 && chain[cut].kind != CheckpointKind::kFull) --cut;
  for (std::size_t i = 0; i < cut; ++i) {
    release_bytes(chain[i]);
  }
  chain.erase(chain.begin(), chain.begin() + static_cast<std::ptrdiff_t>(cut));
}

void CheckpointStore::forget(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(job_id);
  if (it == chains_.end()) return;
  for (const auto& c : it->second) {
    release_bytes(c);
  }
  chains_.erase(it);
  preferences_.erase(job_id);
}

const std::vector<Checkpoint>& CheckpointStore::chain(
    const std::string& job_id) const {
  static const std::vector<Checkpoint> kEmpty;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(job_id);
  return it == chains_.end() ? kEmpty : it->second;
}

std::uint64_t CheckpointStore::total_stored_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, node] : nodes_) total += node.used_bytes();
  return total;
}

const StorageNode* CheckpointStore::node(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<std::string> CheckpointStore::node_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

}  // namespace gpunion::storage
