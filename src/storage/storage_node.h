// Storage capacity model for LAN-accessible checkpoint destinations.
//
// §3.2: "users can specify preferred storage locations for their workload
// data, checkpoints, and outputs"; provider servers offer local scratch
// while campus file servers hold persistent state.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gpunion::storage {

class StorageNode {
 public:
  StorageNode(std::string id, std::uint64_t capacity_bytes)
      : id_(std::move(id)), capacity_(capacity_bytes) {}

  const std::string& id() const { return id_; }
  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }

  /// Reserves space; kResourceExhausted when it does not fit.
  util::Status reserve(std::uint64_t bytes);
  /// Releases previously reserved space (clamped to used).
  void release(std::uint64_t bytes);

 private:
  std::string id_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
};

}  // namespace gpunion::storage
