#include "storage/storage_node.h"

#include <algorithm>

namespace gpunion::storage {

util::Status StorageNode::reserve(std::uint64_t bytes) {
  if (bytes > free_bytes()) {
    return util::resource_exhausted_error(
        "storage node " + id_ + " cannot fit " + std::to_string(bytes) +
        " bytes (" + std::to_string(free_bytes()) + " free)");
  }
  used_ += bytes;
  return util::Status();
}

void StorageNode::release(std::uint64_t bytes) {
  used_ -= std::min(used_, bytes);
}

}  // namespace gpunion::storage
