// Node-selection strategies.
//
// §3.2: "The scheduler implements multiple allocation strategies, including
// distribution for fairness and assignment based on priority"; §3.5 names
// the round-robin scheduler over the pending-request priority queue.
// bench/ablation_strategies compares these head-to-head.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/directory.h"
#include "sched/reliability.h"
#include "workload/job.h"

namespace gpunion::sched {

enum class AllocationStrategy {
  kRoundRobin,        // fairness: rotate across eligible providers
  kLeastLoaded,       // spread: most free capacity first
  kBestFit,           // pack: tightest VRAM fit, preserving big GPUs
  kReliabilityAware,  // prefer steady providers (volatility prediction)
};

std::string_view allocation_strategy_name(AllocationStrategy s);

/// Stateful selector (round-robin keeps a rotating cursor).
class NodeSelector {
 public:
  explicit NodeSelector(AllocationStrategy strategy) : strategy_(strategy) {}

  /// Picks a node among `eligible` (all already satisfy hard constraints).
  /// Returns nullptr when the list is empty.
  const NodeInfo* select(const std::vector<const NodeInfo*>& eligible,
                         const workload::JobSpec& job,
                         const ReliabilityPredictor& reliability,
                         util::SimTime now);

  AllocationStrategy strategy() const { return strategy_; }

 private:
  AllocationStrategy strategy_;
  std::size_t rr_cursor_ = 0;
};

/// Hard eligibility: status/accepting/capacity/compatibility plus the
/// reliability degradation rule.  `require_sharing` embeds the policy's
/// cross-group switch; pass the job's group.
bool node_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing,
                   const ReliabilityPredictor& reliability, util::SimTime now,
                   bool enforce_degradation);

}  // namespace gpunion::sched
