// Pluggable placement strategies.
//
// §3.2: "The scheduler implements multiple allocation strategies, including
// distribution for fairness and assignment based on priority"; §3.5 names
// the round-robin scheduler over the pending-request priority queue.  Each
// strategy is a PlacementStrategy subclass registered in the factory by
// name, so new policies land without touching the coordinator.
// bench/ablation_strategies compares them head-to-head.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/directory.h"
#include "sched/reliability.h"
#include "workload/job.h"

namespace gpunion::sched {

/// Read-only inputs a strategy may consult when ranking candidates.
struct PlacementContext {
  const ReliabilityPredictor* reliability = nullptr;
  util::SimTime now = 0;
};

/// One allocation policy.  Instances may be stateful (round-robin keeps a
/// rotating cursor), so the coordinator owns one instance for its lifetime.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  virtual std::string_view name() const = 0;

  /// Strategies built on reliability predictions also enforce the
  /// degradation rule (long jobs kept off flaky nodes) during eligibility.
  virtual bool enforce_degradation() const { return false; }

  /// True when the strategy places this job into a fractional GPU slot
  /// (spatially-partitioned sharing) in preference to a whole device.
  virtual bool wants_fractional(const workload::JobSpec& job) const {
    (void)job;
    return false;
  }

  /// True when the strategy places this job into an nvshare-style
  /// time-slice seat (full memory, rotating residency) in preference to a
  /// fractional slot or a whole device.
  virtual bool wants_timeslice(const workload::JobSpec& job) const {
    (void)job;
    return false;
  }

  /// Picks a node among `candidates` (all already satisfy hard
  /// constraints).  `fractional` marks a slot-placement pass.  Returns
  /// nullptr when the list is empty.
  virtual const NodeInfo* select(
      const std::vector<const NodeInfo*>& candidates,
      const workload::JobSpec& job, const PlacementContext& context,
      bool fractional) = 0;

  /// Picks a node for a time-slice seat.  The default packs: fewest free
  /// seats on an already-sliced device first, then the tightest VRAM fit
  /// to open a fresh device.  Returns nullptr when the list is empty.
  virtual const NodeInfo* select_timeslice(
      const std::vector<const NodeInfo*>& candidates,
      const workload::JobSpec& job, const PlacementContext& context);
};

/// Name-indexed registry.  Strategies self-register at static-init time;
/// the coordinator resolves its configured strategy here and never switches
/// on a policy enum.
class PlacementStrategyFactory {
 public:
  using Builder = std::function<std::unique_ptr<PlacementStrategy>()>;

  static PlacementStrategyFactory& instance();

  void register_strategy(std::string name, Builder builder);
  /// nullptr for unknown names.
  std::unique_ptr<PlacementStrategy> create(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Builder> builders_;
};

/// Registers `S` (default-constructible) under `name` at static-init time:
///   const PlacementStrategyRegistrar<MyStrategy> reg("my_strategy");
template <typename S>
struct PlacementStrategyRegistrar {
  explicit PlacementStrategyRegistrar(const char* name) {
    PlacementStrategyFactory::instance().register_strategy(
        name, [] { return std::make_unique<S>(); });
  }
};

/// Built-in strategy names.
inline constexpr std::string_view kRoundRobin = "round_robin";
inline constexpr std::string_view kLeastLoaded = "least_loaded";
inline constexpr std::string_view kBestFit = "best_fit";
inline constexpr std::string_view kReliabilityAware = "reliability_aware";
/// Fractional-slot packing: shareable jobs are packed onto already-shared
/// GPUs; whole-GPU jobs fall back to best-fit.
inline constexpr std::string_view kPackedSharing = "packed_sharing";
/// Duty-cycle-adaptive sharing: bursty shareable jobs (interactive
/// sessions) go to nvshare-style time-slice seats, steady shareable jobs
/// to fractional slots, everything else to whole devices (best-fit).
inline constexpr std::string_view kAdaptiveSharing = "adaptive_sharing";

}  // namespace gpunion::sched
