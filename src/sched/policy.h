// Platform behaviour policy.
//
// GPUnion's mechanisms are expressed as independent switches so that the
// baselines of Table 1 are *configurations of the same engine* rather than
// separate code paths:
//
//   GPUnion            all switches on
//   Kubernetes-like    sharing on, but volatility treated as failure:
//                      no checkpoint restore, no graceful grace, no
//                      migrate-back, restart-from-scratch
//   Slurm-like         reservation semantics: no checkpoint restore,
//                      displaced jobs requeue at the tail
//   Manual             no cross-group sharing at all (per-lab silos)
//
// bench/table1_comparison replays one churn trace under each preset.
#pragma once

namespace gpunion::sched {

struct PlatformPolicy {
  /// Jobs may run on nodes owned by other groups.
  bool cross_group_sharing = true;
  /// Interrupted training resumes from its latest checkpoint (ALC, §3.5);
  /// off = restart from scratch.
  bool checkpoint_restore = true;
  /// Interrupted jobs are automatically requeued and redispatched.
  bool auto_migration = true;
  /// Displaced jobs return to their origin node when the provider rejoins.
  bool migrate_back = true;
  /// Owners evict guests from their own machines when they need them
  /// (kill-switch-driven reclaim).
  bool owner_reclaim = true;
  /// Displaced jobs keep their priority and requeue at the head (false) or
  /// lose their place and requeue at the tail (true; Slurm resubmission).
  bool requeue_to_tail = false;
  /// Shareable single-GPU jobs may be packed into spatially-partitioned
  /// fractional slots (strategy permitting).  Off = whole-device allocation
  /// only (the Kubernetes device-plugin 1:1 model).
  bool fractional_sharing = true;
  /// Shareable single-GPU jobs may be packed into nvshare-style time-sliced
  /// seats: full-memory tenants rotate exclusive residency per quantum,
  /// with working sets swapped to host RAM (memory oversubscription).
  bool timeslice_sharing = true;
};

/// GPUnion's default behaviour: everything on.
inline PlatformPolicy gpunion_policy() { return PlatformPolicy{}; }

}  // namespace gpunion::sched
