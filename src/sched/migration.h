// Migration bookkeeping.
//
// Records every interruption -> relaunch cycle so the Fig. 3 experiment can
// report success rates, downtime and lost work per departure scenario and
// workload class, plus the migrate-back outcomes for temporary
// unavailability.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/proto.h"
#include "util/stats.h"
#include "util/time.h"

namespace gpunion::sched {

struct MigrationRecord {
  std::string job_id;
  std::string from_node;
  std::string to_node;  // empty until resumed
  agent::DepartureKind cause = agent::DepartureKind::kScheduled;
  util::SimTime interrupted_at = 0;
  util::SimTime resumed_at = -1;  // -1: not (yet) resumed
  /// Durable progress the job restarted from.
  double progress_restored = 0;
  /// Estimated progress at the moment of interruption (lost work =
  /// progress_at_interruption - progress_restored, in job fraction).
  double progress_at_interruption = 0;
  /// Wall-clock seconds of recomputation caused by the interruption.
  double lost_work_seconds = 0;
  bool was_migrate_back = false;  // this relaunch returned to the origin
  /// True when the record was opened by a coordinator-initiated migrate-back
  /// eviction rather than a provider interruption; such records are excluded
  /// from the per-scenario success/downtime statistics.
  bool migrate_back_eviction = false;

  bool resumed() const { return resumed_at >= 0; }
  util::Duration downtime() const {
    return resumed() ? resumed_at - interrupted_at : -1.0;
  }
};

class MigrationTracker {
 public:
  /// Opens a record when a job is interrupted.  A job has at most one open
  /// record; repeated interruptions while pending update the open one.
  MigrationRecord& open(const std::string& job_id,
                        const std::string& from_node,
                        agent::DepartureKind cause, util::SimTime at,
                        double progress_at_interruption,
                        double progress_restored, double lost_work_seconds);

  /// Marks the open record resumed on `to_node`.
  void resumed(const std::string& job_id, const std::string& to_node,
               util::SimTime at, bool was_migrate_back);

  /// Closes the open record without a resume (job finished or abandoned).
  void abandon(const std::string& job_id);

  bool has_open(const std::string& job_id) const {
    return open_.contains(job_id);
  }

  const std::vector<MigrationRecord>& records() const { return records_; }

  /// Records matching a cause.
  std::vector<const MigrationRecord*> by_cause(agent::DepartureKind k) const;

  /// Fraction of interruptions whose job resumed within `within` seconds.
  double success_rate(agent::DepartureKind cause, util::Duration within) const;

  /// Downtime distribution (resumed records only).
  util::SampleSet downtimes(agent::DepartureKind cause) const;

  /// Lost-work distribution in reference-GPU minutes.
  util::SampleSet lost_work_minutes(agent::DepartureKind cause) const;

  /// Of temporary-unavailability interruptions that resumed elsewhere, the
  /// fraction later migrated back to the origin node.
  double migrate_back_rate() const;

  std::size_t interruption_count() const { return records_.size(); }

 private:
  std::vector<MigrationRecord> records_;
  std::unordered_map<std::string, std::size_t> open_;  // job -> record index
};

}  // namespace gpunion::sched
