#include "sched/reliability.h"

#include <algorithm>
#include <cmath>

namespace gpunion::sched {

double ReliabilityPredictor::decayed(const Entry& entry,
                                     util::SimTime now) const {
  const double dt = std::max(0.0, now - entry.last_update);
  return entry.decayed_departures * std::exp2(-dt / half_life_);
}

void ReliabilityPredictor::record_departure(const std::string& machine_id,
                                            util::SimTime now) {
  Entry& entry = entries_[machine_id];
  entry.decayed_departures = decayed(entry, now) + 1.0;
  entry.last_update = now;
}

double ReliabilityPredictor::score(const std::string& machine_id,
                                   util::SimTime now) const {
  auto it = entries_.find(machine_id);
  if (it == entries_.end()) return 1.0;
  return 1.0 / (1.0 + decayed(it->second, now));
}

double ReliabilityPredictor::volatility(const std::string& machine_id,
                                        util::SimTime now) const {
  auto it = entries_.find(machine_id);
  if (it == entries_.end()) return 0.0;
  return decayed(it->second, now);
}

double ReliabilityPredictor::max_job_hours(double score) {
  if (score > 0.8) return 1e9;  // effectively unlimited
  // Linear from 24 h at 0.8 down to 2 h at 0.2.
  const double clamped = std::clamp(score, 0.2, 0.8);
  return 2.0 + (clamped - 0.2) / 0.6 * 22.0;
}

}  // namespace gpunion::sched
