// Central scheduler and coordinator (§3.2).
//
// The coordination hub: resource discovery (registration + heartbeats),
// allocation (strategy-driven placement from a priority queue in the system
// database), volatility handling (heartbeat monitor -> automatic migration
// with checkpoint restore), provider-return migrate-back, and operational
// statistics.  Unlike traditional cluster schedulers it never assumes a node
// will stay: every placement is revocable and every mechanism below exists
// to absorb provider-initiated churn.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/proto.h"
#include "db/database.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "sched/directory.h"
#include "sched/heartbeat_monitor.h"
#include "sched/migration.h"
#include "sched/placement_engine.h"
#include "sched/policy.h"
#include "sched/reliability.h"
#include "sched/strategies.h"
#include "sim/environment.h"
#include "storage/checkpoint_store.h"
#include "util/stats.h"
#include "util/status.h"

namespace gpunion::sched {

struct CoordinatorConfig {
  std::string id = "coordinator";
  util::Duration heartbeat_interval = 2.0;
  int heartbeat_miss_threshold = 3;
  /// Placement strategy name, resolved via PlacementStrategyFactory
  /// (round_robin, least_loaded, best_fit, reliability_aware,
  /// packed_sharing, or any externally registered policy).
  std::string strategy = std::string(kRoundRobin);
  PlatformPolicy policy;
  /// How long an interactive request may queue before the student gives up.
  util::Duration session_patience = 600.0;
  /// Dispatch ack deadline before the target is assumed dead.
  util::Duration dispatch_timeout = 30.0;
  /// Downtime threshold under which a migration counts as successful
  /// (Fig. 3 reporting).
  util::Duration migration_success_window = 600.0;
  /// Human resubmission delay when auto_migration is off (manual baseline).
  util::Duration manual_resubmit_delay = 3600.0;
  /// Coalesce per-beat database heartbeat writes into one batched flush at
  /// most every heartbeat_interval (the §5.2 DB-contention mitigation).
  /// Off = the legacy one-write-per-beat behaviour (bench baseline).
  bool batch_heartbeat_writes = true;
  /// Actor lane the coordinator's decision loop runs on (timeouts, passes,
  /// message deliveries).  The platform assigns its own lane here.
  sim::LaneId lane = sim::kMainLane;
  /// Optional span sink: when set, every job carries a TraceContext and the
  /// coordinator records submit/queue_wait/placement/dispatch/run/
  /// checkpoint/interrupt spans into it.  Null = tracing off (no cost
  /// beyond the null check).
  obs::Tracer* tracer = nullptr;
};

enum class JobPhase {
  kPending,
  kDispatching,   // dispatch sent, ack outstanding
  kRunning,
  kCompleted,
  kDenied,            // interactive request timed out in queue
  kSessionDisrupted,  // interactive session killed by churn
  kCancelled,
};

std::string_view job_phase_name(JobPhase p);

/// True for phases a record can never leave (eligible for the archive).
bool job_phase_terminal(JobPhase p);

struct JobRecord {
  workload::JobSpec spec;
  JobPhase phase = JobPhase::kPending;
  std::string node;            // current / last assignment
  std::string preferred_node;  // placement affinity (migrate-back target)
  std::string displaced_from;  // origin node of the last displacement
  bool migrate_back_pending = false;
  std::string migrate_back_target;
  double checkpointed_progress = 0;
  util::SimTime last_checkpoint_at = -1;
  int interruptions = 0;
  int migrations = 0;      // resumes on a different node
  int migrate_backs = 0;   // resumes back on the origin
  util::SimTime submitted_at = 0;
  util::SimTime first_dispatched_at = -1;
  util::SimTime completed_at = -1;
  /// Wall-clock recomputation caused by interruptions (time re-spent on
  /// the executing node redoing work since the restored checkpoint).
  double lost_work_seconds = 0;
  agent::DepartureKind last_interruption_cause =
      agent::DepartureKind::kScheduled;
  std::uint64_t open_allocation = 0;  // db ledger id while running
  std::uint64_t dispatch_generation = 0;  // guards stale timeout events
  bool reclaim_requested = false;  // owner-reclaim already triggered
  int dispatch_rejects = 0;      // consecutive rejections (give up past limit)
  /// Cancelled while a dispatch ack was outstanding: the record stays live
  /// until the ack (or its timeout) settles the in-flight counter, then
  /// retires to the archive.
  bool awaiting_dispatch_settle = false;
  /// Current/last assignment is a spatial fractional slot (capacity is
  /// returned as a slot, not whole GPUs).
  bool fractional_slot = false;
  /// Current/last assignment is an nvshare-style time-slice seat (capacity
  /// is returned as a seat).  Mutually exclusive with fractional_slot.
  bool timeslice_slot = false;
  // progress-estimation state for the current run segment
  util::SimTime running_since = -1;
  double segment_start_progress = 0;
  double node_speed = 1.0;  // reference-relative speed of the current node
  /// Causal trace carried through every stage (obs/trace.h); parent_span
  /// advances as stages complete.  Survives crashes via JobStateRecord.
  obs::TraceContext trace;
  /// Start of the current queue residency (submit or last requeue); closes
  /// the queue_wait span at dispatch time.
  util::SimTime queued_since = 0;
  /// When the current dispatch RPC left the coordinator (start of the
  /// dispatch span; -1 while no dispatch is in flight).
  util::SimTime dispatch_sent_at = -1;
};

struct CoordinatorStats {
  int jobs_submitted = 0;
  int training_submitted = 0;
  int sessions_submitted = 0;
  int jobs_completed = 0;
  int training_completed = 0;
  int sessions_served = 0;
  int sessions_denied = 0;
  int sessions_disrupted = 0;
  int dispatches_sent = 0;
  int dispatches_rejected = 0;
  /// Pending jobs handed to the federation layer for cross-campus
  /// forwarding (withdraw()); they leave this coordinator's books entirely.
  int jobs_withdrawn = 0;
  int interruptions = 0;
  int auth_failures = 0;
  /// Migrate-back accounting for the Fig. 3 "temporary unavailability"
  /// scenario: training jobs displaced by a temporary departure, and how
  /// many of them later resumed back on their origin node.
  int displaced_by_temporary = 0;
  int migrate_back_successes = 0;
  util::SampleSet queue_wait;  // submit -> first dispatch accept, seconds
  /// Control-plane load accounting (the §5.2 bottleneck pair).
  std::uint64_t heartbeats_processed = 0;
  /// Batched heartbeat flushes issued to the database, and how many
  /// per-beat writes they absorbed (ops saved = coalesced - flushes).
  std::uint64_t heartbeat_db_flushes = 0;
  std::uint64_t heartbeat_db_touches_coalesced = 0;

  double migrate_back_rate() const {
    return displaced_by_temporary == 0
               ? 0.0
               : static_cast<double>(migrate_back_successes) /
                     displaced_by_temporary;
  }
};

/// What a recovery rebuilt from the durable database.
struct CoordinatorRecoveryStats {
  int recoveries = 0;
  int nodes_rebuilt = 0;       // directory entries restored from the registry
  int jobs_rebuilt = 0;        // live records restored (pending + running)
  int jobs_archived = 0;       // terminal records restored to the archive
  /// kDispatching rows at the crash: granted but never confirmed delivered.
  /// Requeued at the front for immediate re-dispatch; the stale-ack kill
  /// path makes a duplicate run impossible.
  int redispatched = 0;
};

/// Fleet-and-job operational summary aggregated over LIVE and ARCHIVED
/// records alike: retiring a terminal record into the archive must never
/// lose it from operational reporting.  Computed on demand.
struct OperationalStats {
  int live_jobs = 0;      // records still in the active map
  int archived_jobs = 0;  // terminal records retired to the archive
  // Phase census across live + archive.
  int pending = 0;
  int dispatching = 0;
  int running = 0;
  int completed = 0;
  int denied = 0;
  int disrupted = 0;
  int cancelled = 0;
  // Per-record sums across live + archive.
  int interruptions = 0;
  int migrations = 0;
  double lost_work_seconds = 0;
  // Index footprint (O(active) bookkeeping, not O(history)).
  std::size_t nodes_with_assignments = 0;
  std::size_t nodes_with_displaced = 0;
};

class Coordinator {
 public:
  /// `database` may be the single-writer SystemDatabase or the sharded
  /// write-behind ShardedDatabase; the coordinator only sees db::Database.
  Coordinator(sim::Environment& env, net::Transport& transport,
              db::Database& database, storage::CheckpointStore& store,
              CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Attaches to the transport and starts the heartbeat monitor.
  void start();

  // --- Client API -----------------------------------------------------------
  /// Accepts a job into the pending queue.  Fails on duplicate ids.
  /// `start_progress` > 0 seeds durable progress for jobs arriving with a
  /// checkpoint already in this campus's store (cross-campus migration):
  /// the first dispatch restores from it instead of starting cold.
  /// `trace` continues an existing causal trace (federation admit, return
  /// home); default = start a fresh trace rooted at this submit.
  util::Status submit(workload::JobSpec job, double start_progress = 0.0,
                      obs::TraceContext trace = {});
  /// Cancels a pending or running job.
  util::Status cancel(const std::string& job_id);

  /// A pending job handed back to the caller by withdraw(): everything a
  /// federation gateway needs to resubmit it in another region.  The
  /// record's interruption history stays behind in this coordinator's
  /// aggregate stats (it describes what happened HERE).
  struct WithdrawnJob {
    workload::JobSpec spec;
    double checkpointed_progress = 0;
    /// The job's causal trace, so the gateway's forward spans chain onto
    /// the local submit/queue history.
    obs::TraceContext trace;
  };
  /// Removes a PENDING job from this coordinator entirely (queue, record,
  /// indexes — no archive entry) and returns its spec + durable progress.
  /// The federation layer uses this to forward a job to another campus; a
  /// job that is dispatching/running or already terminal cannot be
  /// withdrawn.  The id becomes free for a future submit — the gateway
  /// therefore reserve_id()s every withdrawn id for as long as its forward
  /// is in federation flight, so a tenant resubmitting the same id through
  /// the API gets a clean kFailedPrecondition instead of colliding with
  /// the returning/forwarded copy.
  util::StatusOr<WithdrawnJob> withdraw(const std::string& job_id);

  /// Marks `job_id` as in federation flight: submit() rejects it with
  /// kFailedPrecondition until release_id().  Idempotent; cleared by
  /// crash() (the gateway's recovery re-reserves what its durable forward
  /// rows rebuild).
  void reserve_id(const std::string& job_id);
  void release_id(const std::string& job_id);
  bool id_reserved(const std::string& job_id) const {
    return reserved_ids_.contains(job_id);
  }

  // --- Experiment instrumentation -------------------------------------------
  /// Tells the coordinator what kind of interruption is behind the next
  /// heartbeat loss of `machine_id` (the injector knows; a real deployment
  /// would classify post-hoc).  Cleared when consumed.
  void set_cause_hint(const std::string& machine_id,
                      agent::DepartureKind kind);

  /// Invoked when a job cannot be placed anywhere but its owner's node is
  /// held by guests; the platform wires this to the owner's local reclaim.
  using OnUnplaceable = std::function<void(
      const workload::JobSpec& job, const std::string& owner_node,
      int gpus_needed)>;
  void set_on_unplaceable(OnUnplaceable cb) { on_unplaceable_ = std::move(cb); }

  // --- Introspection ----------------------------------------------------------
  /// Record by id, live or archived; nullptr when unknown.  Archived
  /// records keep their address (map-node handoff), so pointers obtained
  /// while a job was live stay valid after retirement.
  const JobRecord* job(const std::string& job_id) const;
  /// LIVE records only (pending / dispatching / running, plus the brief
  /// window where a job cancelled mid-dispatch holds phase kCancelled
  /// until its ack settles — see JobRecord::awaiting_dispatch_settle).
  /// Terminal records move to archive() so every live scan is O(active).
  const std::map<std::string, JobRecord>& jobs() const { return jobs_; }
  /// Terminal records, compacted (bulky spec payload dropped; scheduling
  /// outcome and accounting fields preserved).
  const std::map<std::string, JobRecord>& archive() const { return archive_; }
  /// Live jobs currently assigned (dispatching or running) to `machine_id`,
  /// in job-id order.  Empty set for unknown nodes.
  const std::set<std::string>& jobs_on(const std::string& machine_id) const;
  /// Live jobs whose last displacement originated on `machine_id`.
  const std::set<std::string>& displaced_from(
      const std::string& machine_id) const;
  /// Aggregated operational summary over live + archived records.
  OperationalStats operational_stats() const;
  const Directory& directory() const { return directory_; }
  Directory& directory() { return directory_; }
  const PlacementEngine& placement_engine() const { return engine_; }
  /// Non-const: eligibility queries repair the lazily-indexed view.
  PlacementEngine& placement_engine() { return engine_; }
  const CoordinatorStats& stats() const { return stats_; }
  const MigrationTracker& migrations() const { return migration_tracker_; }
  const ReliabilityPredictor& reliability() const { return reliability_; }
  const CoordinatorConfig& config() const { return config_; }
  /// Failure-detector introspection (sweep cost counters for the bench).
  const HeartbeatMonitor& heartbeat_monitor() const {
    return heartbeat_monitor_;
  }

  /// Force one scheduling pass (tests).
  void schedule_pass();

  // --- Crash / recovery -------------------------------------------------------
  /// Simulated control-plane crash: every in-memory structure (job records,
  /// directory, indexes, in-flight counters, monitor state, stats) is
  /// dropped, timers stop, and incoming messages are ignored until
  /// recover().  The transport endpoint stays registered — a real restart
  /// reuses the address.  Scheduled one-shot callbacks (dispatch/session
  /// timeouts) are invalidated by an epoch bump, not cancelled.
  void crash();
  /// Restart after crash(): rebuilds jobs, the node directory, per-node
  /// indexes and heartbeat tracking from the (already recovered) database,
  /// re-arms session timers, requeues in-flight dispatches for re-dispatch,
  /// and resumes the monitor + scheduling loop.  Requires the database's
  /// own recovery to have run first.
  void recover();
  bool crashed() const { return crashed_; }
  const CoordinatorRecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

 private:
  // message handlers
  void handle_message(net::Message&& msg);
  void handle_register(const agent::RegisterRequest& request);
  void handle_heartbeat(const agent::Heartbeat& beat);
  /// Repairs records whose completion/kill notifications were lost, using
  /// the heartbeat's hosted-job list as the agent's ground truth.
  void reconcile_with_heartbeat(const agent::Heartbeat& beat);
  void handle_telemetry(const agent::TelemetryReport& report);
  void handle_dispatch_result(const agent::DispatchResult& result);
  void handle_job_started(const agent::JobStarted& started);
  void handle_job_completed(const agent::JobCompleted& done);
  void handle_checkpoint_notice(const agent::CheckpointNotice& notice);
  void handle_departure_notice(const agent::DepartureNotice& notice);
  void handle_kill_switch_notice(const agent::KillSwitchNotice& notice);
  void handle_return_notice(const agent::ReturnNotice& notice);
  void handle_job_killed_ack(const agent::JobKilledAck& ack);

  // scheduling
  void request_pass();
  bool try_place(JobRecord& record);
  void requeue(JobRecord& record, bool front);
  void dispatch_to(JobRecord& record, const NodeInfo& node,
                   const PlacementDecision& decision);
  void dispatch_timeout(const std::string& job_id, std::uint64_t generation);
  /// `submitted_at` pins the submission the timer was armed for (guards
  /// against a withdrawn-and-resubmitted session under the same id).
  void session_timeout(const std::string& job_id, util::SimTime submitted_at);
  /// Returns the record's reserved capacity on `machine_id` to the
  /// scheduling view (whole GPUs or one fractional slot).
  void release_capacity(const JobRecord& record,
                        const std::string& machine_id);

  // index + archive maintenance
  /// Binds record.node = machine_id and files it in jobs_by_node_.
  void set_assignment(JobRecord& record, const std::string& machine_id);
  /// Clears record.node and removes it from jobs_by_node_.
  void clear_assignment(JobRecord& record);
  /// Rebinds record.displaced_from (empty = clear) in displaced_by_node_.
  void set_displaced_from(JobRecord& record, const std::string& machine_id);
  /// Moves a terminal record into the archive: drops it from every live
  /// index, shrinks its spec payload, and hands the map node over so the
  /// record's address survives.  No-op while the record is non-terminal or
  /// still awaits a dispatch-ack settle (cancel during kDispatching).
  void maybe_retire(const std::string& job_id);
  /// Settles the per-node in-flight dispatch counter for this record
  /// (erasing the entry at zero keeps the maps O(nodes with in-flight)).
  void settle_in_flight(const JobRecord& record,
                        const std::string& machine_id);
  /// Queues a DB heartbeat write; flushes the batch at most once per
  /// heartbeat interval (or writes through when batching is off).
  void touch_heartbeat_db(const std::string& machine_id);
  void flush_heartbeat_db();

  // churn handling
  void on_node_lost(const std::string& machine_id);
  void on_node_returned(const std::string& machine_id);
  /// `at` is the best estimate of when the interruption actually happened
  /// (for heartbeat-detected losses: the last heartbeat, so Fig. 3 downtime
  /// includes detection latency).
  void interrupt_job(JobRecord& record, agent::DepartureKind cause,
                     db::AllocationOutcome outcome, util::SimTime at);
  void interrupt_jobs_on(const std::string& machine_id,
                         agent::DepartureKind cause, util::SimTime at);
  double estimate_progress(const JobRecord& record) const;
  void trigger_migrate_back(const std::string& machine_id);

  void send_to_agent(const std::string& machine_id, int kind,
                     std::any payload, std::uint64_t bytes);

  // durability (tentpole: crash-consistent control plane)
  /// Writes the record's durable image to the database (uncharged; the row
  /// rides the group commit of the op that produced the state change) and
  /// refreshes the stats journal.  Called at the end of every state
  /// transition so recovery always sees the latest consistent record.
  void persist_job(const JobRecord& record);
  void persist_stats();
  /// Rebuilds all in-memory state from the durable tables (recover()).
  void rebuild_from_db();

  sim::Environment& env_;
  net::Transport& transport_;
  db::Database& database_;
  storage::CheckpointStore& store_;
  CoordinatorConfig config_;

  Directory directory_;
  ReliabilityPredictor reliability_;
  PlacementEngine engine_;
  MigrationTracker migration_tracker_;
  HeartbeatMonitor heartbeat_monitor_;
  /// Timer-driven so the batch drains even when beats stop (a node-wide
  /// outage must not strand the final window of heartbeat writes).
  sim::PeriodicTimer heartbeat_flush_timer_;
  util::Rng rng_;

  // Live records only; terminal records retire into archive_ so the hot
  // paths (heartbeat reconcile, node loss/return) scan O(active) state no
  // matter how much history accumulates.  Both ordered for determinism.
  std::map<std::string, JobRecord> jobs_;
  std::map<std::string, JobRecord> archive_;
  /// Live jobs with record.node == key (dispatching or running).
  std::unordered_map<std::string, std::set<std::string>> jobs_by_node_;
  /// Live jobs with record.displaced_from == key (migrate-back candidates).
  std::unordered_map<std::string, std::set<std::string>> displaced_by_node_;
  // Sparse: entries exist only while a node has dispatches in flight.
  std::map<std::string, int> in_flight_dispatches_;       // whole-GPU, per node
  std::map<std::string, int> in_flight_slot_dispatches_;  // fractional, per node
  std::map<std::string, int> in_flight_timeslice_dispatches_;  // seats, per node
  std::map<std::string, agent::DepartureKind> cause_hints_;
  // Heartbeat DB writes accumulated since the last batched flush.
  std::map<std::string, util::SimTime> pending_heartbeat_touches_;
  CoordinatorStats stats_;
  CoordinatorRecoveryStats recovery_stats_;
  OnUnplaceable on_unplaceable_;
  bool pass_scheduled_ = false;
  bool started_ = false;
  /// Crash-in-place: sim objects cannot be destroyed mid-run (scheduled
  /// lambdas capture `this`), so a crash drops state and raises this flag;
  /// handle_message() discards deliveries while it is set.
  bool crashed_ = false;
  /// Withdrawn ids whose forwards are still in federation flight (see
  /// reserve_id); submit() rejects them so a withdraw-then-resubmit race
  /// cannot collide with the returning/forwarded copy.
  std::set<std::string> reserved_ids_;
  /// Bumped on every crash AND recovery.  One-shot callbacks capture the
  /// epoch they were armed in and bail on mismatch, so a timeout armed
  /// before a crash can never fire against the rebuilt incarnation.
  std::uint64_t epoch_ = 0;
};

}  // namespace gpunion::sched
