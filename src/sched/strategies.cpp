#include "sched/strategies.h"

#include <algorithm>

namespace gpunion::sched {

PlacementStrategyFactory& PlacementStrategyFactory::instance() {
  static PlacementStrategyFactory factory;
  return factory;
}

void PlacementStrategyFactory::register_strategy(std::string name,
                                                 Builder builder) {
  builders_[std::move(name)] = std::move(builder);
}

std::unique_ptr<PlacementStrategy> PlacementStrategyFactory::create(
    const std::string& name) const {
  auto it = builders_.find(name);
  return it == builders_.end() ? nullptr : it->second();
}

std::vector<std::string> PlacementStrategyFactory::names() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) out.push_back(name);
  return out;  // std::map iteration is sorted
}

namespace {

/// Pack: tightest VRAM fit keeps 80 GB A100s free for jobs that need them.
const NodeInfo* best_vram_fit(const std::vector<const NodeInfo*>& candidates,
                              const workload::JobSpec& job);

}  // namespace

const NodeInfo* PlacementStrategy::select_timeslice(
    const std::vector<const NodeInfo*>& candidates,
    const workload::JobSpec& job, const PlacementContext& context) {
  (void)context;
  if (candidates.empty()) return nullptr;
  // Pack onto already-sliced devices first (fewest free seats = tightest),
  // so whole GPUs stay free for training; open a fresh device only when no
  // seat is free anywhere, on the node whose VRAM the tenant wastes least.
  const NodeInfo* tightest = nullptr;
  for (const NodeInfo* node : candidates) {
    if (node->free_timeslice_slots <= 0) continue;
    if (tightest == nullptr ||
        node->free_timeslice_slots < tightest->free_timeslice_slots ||
        (node->free_timeslice_slots == tightest->free_timeslice_slots &&
         node->machine_id < tightest->machine_id)) {
      tightest = node;
    }
  }
  if (tightest != nullptr) return tightest;
  return best_vram_fit(candidates, job);
}

namespace {

/// Fairness: rotate across eligible providers.
class RoundRobinStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kRoundRobin; }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)job;
    (void)context;
    (void)fractional;
    if (candidates.empty()) return nullptr;
    return candidates[cursor_++ % candidates.size()];
  }

 private:
  std::size_t cursor_ = 0;
};

/// Spread: most available capacity first (absolute free GPUs), so big idle
/// servers absorb work before single-GPU workstations.
class LeastLoadedStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kLeastLoaded; }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)job;
    (void)context;
    (void)fractional;
    if (candidates.empty()) return nullptr;
    return *std::max_element(candidates.begin(), candidates.end(),
                             [](const NodeInfo* a, const NodeInfo* b) {
                               if (a->free_gpus != b->free_gpus) {
                                 return a->free_gpus < b->free_gpus;
                               }
                               return a->machine_id > b->machine_id;
                             });
  }
};

/// Pack: tightest VRAM fit keeps 80 GB A100s free for jobs that need them.
const NodeInfo* best_vram_fit(const std::vector<const NodeInfo*>& candidates,
                              const workload::JobSpec& job) {
  if (candidates.empty()) return nullptr;
  return *std::min_element(
      candidates.begin(), candidates.end(),
      [&job](const NodeInfo* a, const NodeInfo* b) {
        const double slack_a = a->gpu_memory_gb - job.requirements.gpu_memory_gb;
        const double slack_b = b->gpu_memory_gb - job.requirements.gpu_memory_gb;
        if (slack_a != slack_b) return slack_a < slack_b;
        return a->machine_id < b->machine_id;
      });
}

class BestFitStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kBestFit; }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)context;
    (void)fractional;
    return best_vram_fit(candidates, job);
  }
};

/// Prefer steady providers (volatility prediction, §3.2) and enforce the
/// degradation rule during eligibility.
class ReliabilityAwareStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kReliabilityAware; }
  bool enforce_degradation() const override { return true; }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)job;
    (void)fractional;
    if (candidates.empty()) return nullptr;
    const ReliabilityPredictor* reliability = context.reliability;
    const util::SimTime now = context.now;
    return *std::max_element(
        candidates.begin(), candidates.end(),
        [reliability, now](const NodeInfo* a, const NodeInfo* b) {
          if (reliability != nullptr) {
            const double score_a = reliability->score(a->machine_id, now);
            const double score_b = reliability->score(b->machine_id, now);
            if (score_a != score_b) return score_a < score_b;
          }
          if (a->free_gpus != b->free_gpus) {
            return a->free_gpus < b->free_gpus;
          }
          return a->machine_id > b->machine_id;
        });
  }
};

/// Fractional packing: shareable jobs go to fractional slots, tightest
/// first — prefer the node whose shared GPUs have the fewest free slots
/// left (keep shared devices hot, keep whole devices free for training);
/// open a fresh shared GPU only when no partially-filled one fits, picking
/// the tightest VRAM fit for it.  Whole-GPU jobs fall back to best-fit.
class PackedSharingStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kPackedSharing; }

  bool wants_fractional(const workload::JobSpec& job) const override {
    return job.requirements.shareable && job.requirements.gpu_count == 1;
  }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)context;
    if (candidates.empty()) return nullptr;
    if (!fractional) return best_vram_fit(candidates, job);

    const NodeInfo* tightest = nullptr;
    for (const NodeInfo* node : candidates) {
      if (node->free_shared_slots <= 0) continue;
      if (tightest == nullptr ||
          node->free_shared_slots < tightest->free_shared_slots ||
          (node->free_shared_slots == tightest->free_shared_slots &&
           node->machine_id < tightest->machine_id)) {
        tightest = node;
      }
    }
    if (tightest != nullptr) return tightest;
    // No partially-filled shared GPU anywhere: open one on the node whose
    // VRAM the tenant wastes least.
    return best_vram_fit(candidates, job);
  }
};

const PlacementStrategyRegistrar<RoundRobinStrategy> round_robin_registrar(
    "round_robin");
const PlacementStrategyRegistrar<LeastLoadedStrategy> least_loaded_registrar(
    "least_loaded");
const PlacementStrategyRegistrar<BestFitStrategy> best_fit_registrar(
    "best_fit");
const PlacementStrategyRegistrar<ReliabilityAwareStrategy>
    reliability_aware_registrar("reliability_aware");
/// Duty-cycle-adaptive sharing: a shareable single-GPU job whose duty
/// cycle is bursty (interactive sessions idle ~65% of the time) wastes a
/// dedicated slice — time-slice seats let several such tenants share one
/// device at full memory each, rotating residency per quantum.  Steady
/// shareable jobs keep the spatial fractional path (a time quantum would
/// serialize them), and whole-GPU jobs fall back to best-fit.
class AdaptiveSharingStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return kAdaptiveSharing; }

  bool wants_timeslice(const workload::JobSpec& job) const override {
    return job.requirements.shareable && job.requirements.gpu_count == 1 &&
           workload::resolved_duty_cycle(job) < 0.6;
  }

  bool wants_fractional(const workload::JobSpec& job) const override {
    // Fallback axis when no time-slice seat exists (or the job is steady).
    return job.requirements.shareable && job.requirements.gpu_count == 1;
  }

  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec& job,
                         const PlacementContext& context,
                         bool fractional) override {
    (void)context;
    if (candidates.empty()) return nullptr;
    if (!fractional) return best_vram_fit(candidates, job);
    const NodeInfo* tightest = nullptr;
    for (const NodeInfo* node : candidates) {
      if (node->free_shared_slots <= 0) continue;
      if (tightest == nullptr ||
          node->free_shared_slots < tightest->free_shared_slots ||
          (node->free_shared_slots == tightest->free_shared_slots &&
           node->machine_id < tightest->machine_id)) {
        tightest = node;
      }
    }
    if (tightest != nullptr) return tightest;
    return best_vram_fit(candidates, job);
  }
};

const PlacementStrategyRegistrar<PackedSharingStrategy>
    packed_sharing_registrar("packed_sharing");
const PlacementStrategyRegistrar<AdaptiveSharingStrategy>
    adaptive_sharing_registrar("adaptive_sharing");

}  // namespace

}  // namespace gpunion::sched
