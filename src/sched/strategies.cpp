#include "sched/strategies.h"

#include <algorithm>

namespace gpunion::sched {

std::string_view allocation_strategy_name(AllocationStrategy s) {
  switch (s) {
    case AllocationStrategy::kRoundRobin: return "round_robin";
    case AllocationStrategy::kLeastLoaded: return "least_loaded";
    case AllocationStrategy::kBestFit: return "best_fit";
    case AllocationStrategy::kReliabilityAware: return "reliability_aware";
  }
  return "unknown";
}

bool node_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing,
                   const ReliabilityPredictor& reliability, util::SimTime now,
                   bool enforce_degradation) {
  if (node.status != db::NodeStatus::kActive || !node.accepting) return false;
  if (!cross_group_sharing && node.owner_group != job.owner_group) {
    return false;
  }
  const auto& req = job.requirements;
  if (node.free_gpus < req.gpu_count) return false;
  if (node.gpu_memory_gb < req.gpu_memory_gb) return false;
  if (node.compute_capability < req.min_compute_capability) return false;
  if (enforce_degradation && job.type == workload::JobType::kTraining) {
    const double score = reliability.score(node.machine_id, now);
    const double hours = job.reference_duration / 3600.0;
    if (hours > ReliabilityPredictor::max_job_hours(score)) return false;
  }
  return true;
}

const NodeInfo* NodeSelector::select(
    const std::vector<const NodeInfo*>& eligible,
    const workload::JobSpec& job, const ReliabilityPredictor& reliability,
    util::SimTime now) {
  if (eligible.empty()) return nullptr;

  switch (strategy_) {
    case AllocationStrategy::kRoundRobin: {
      const NodeInfo* pick = eligible[rr_cursor_ % eligible.size()];
      ++rr_cursor_;
      return pick;
    }
    case AllocationStrategy::kLeastLoaded: {
      // Most available capacity first (absolute free GPUs): big idle
      // servers absorb work before single-GPU workstations.
      return *std::max_element(
          eligible.begin(), eligible.end(),
          [](const NodeInfo* a, const NodeInfo* b) {
            if (a->free_gpus != b->free_gpus) {
              return a->free_gpus < b->free_gpus;
            }
            return a->machine_id > b->machine_id;
          });
    }
    case AllocationStrategy::kBestFit: {
      // Tightest VRAM fit keeps 80 GB A100s free for jobs that need them.
      return *std::min_element(
          eligible.begin(), eligible.end(),
          [&job](const NodeInfo* a, const NodeInfo* b) {
            const double slack_a =
                a->gpu_memory_gb - job.requirements.gpu_memory_gb;
            const double slack_b =
                b->gpu_memory_gb - job.requirements.gpu_memory_gb;
            if (slack_a != slack_b) return slack_a < slack_b;
            return a->machine_id < b->machine_id;
          });
    }
    case AllocationStrategy::kReliabilityAware: {
      return *std::max_element(
          eligible.begin(), eligible.end(),
          [&reliability, now](const NodeInfo* a, const NodeInfo* b) {
            const double score_a = reliability.score(a->machine_id, now);
            const double score_b = reliability.score(b->machine_id, now);
            if (score_a != score_b) return score_a < score_b;
            if (a->free_gpus != b->free_gpus) {
              return a->free_gpus < b->free_gpus;
            }
            return a->machine_id > b->machine_id;
          });
    }
  }
  return eligible.front();
}

}  // namespace gpunion::sched
