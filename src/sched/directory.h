// Coordinator-side membership directory with an indexed cluster view.
//
// The scheduler's real-time view of the fleet (§3.2: "maintains a real-time
// view of available GPU resources across the campus network through periodic
// status updates from provider agents").  free_gpus / free_shared_slots are
// the *scheduling* view: decremented optimistically at dispatch and
// corrected by dispatch results and heartbeats, so the coordinator never
// double-books capacity while a dispatch is in flight.
//
// ClusterView maintains secondary indexes (free-capacity buckets, per-group
// and per-capability sets, a shared-slot set) so the placement engine
// generates candidates in O(dirty + matches) instead of rescanning every
// node for every pending job on every pass.  Mutations mark nodes dirty;
// indexes are repaired lazily on the next query.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/time.h"

namespace gpunion::sched {

struct NodeInfo {
  std::string machine_id;
  std::string hostname;
  std::string owner_group;
  std::string gpu_model;
  int gpu_count = 0;
  double gpu_memory_gb = 0;
  double compute_capability = 0;
  double gpu_tflops = 0;

  // Fractional sharing capability advertised at registration.
  int slots_per_gpu = 1;           // >1: GPUs may be spatially shared
  double share_memory_cap_gb = 0;  // per-tenant VRAM cap on a shared GPU

  // nvshare-style time-slice capability advertised at registration.
  int timeslice_tenants_per_gpu = 0;   // >1: GPUs may host time-sliced seats
  double timeslice_oversub_ratio = 0;  // sum(working sets) / VRAM ceiling
  double host_swap_gbps = 0;           // device<->host swap bandwidth

  db::NodeStatus status = db::NodeStatus::kActive;
  bool accepting = true;
  int free_gpus = 0;          // fully-free whole GPUs
  int free_shared_slots = 0;  // free slots on partially-occupied shared GPUs
  int free_timeslice_slots = 0;  // free seats on GPUs already time-sliced
  util::SimTime last_heartbeat = 0;
  std::uint64_t last_heartbeat_seq = 0;
  util::SimTime registered_at = 0;
  std::string token_hash;  // sha256 of the issued auth token
  /// Last raw token that verified against token_hash.  Heartbeat auth is on
  /// the coordinator actor's critical path; hashing every beat made it the
  /// hottest instruction there.  Tokens only change on (re)registration, so
  /// one string compare replaces the SHA-256 after the first verified beat
  /// — byte-equal input implies the same digest, accept/reject is unchanged.
  std::string verified_token;

  bool schedulable() const {
    return status == db::NodeStatus::kActive && accepting;
  }
};

/// Whole-fleet capacity aggregate, cheap enough to compute per gossip tick.
/// Region gateways serialize this into their federation capacity digests,
/// so it must come from running counters (O(dirty) repair, no node rescans).
struct CapacitySummary {
  int nodes = 0;              // every directory entry, any status
  int schedulable_nodes = 0;  // kActive and accepting
  int total_gpus = 0;         // across all nodes, any status
  int free_gpus = 0;          // fully-free whole GPUs on schedulable nodes
  int free_shared_slots = 0;  // free fractional slots on schedulable nodes
  int free_timeslice_slots = 0;  // free time-slice seats on schedulable nodes
  /// Hardware envelope: the best any single registered node offers
  /// (departed nodes included — hardware survives churn; recomputed when
  /// a re-registration shrinks a maximum).  Lets the federation broker
  /// drop never-feasible regions from a ranking — a job needing 4 GPUs on
  /// one node, 40 GB VRAM or CC 9.0 is not sent to a campus of 1-GPU
  /// 24 GB CC-8.6 workstations.
  int max_node_gpus = 0;
  double max_gpu_memory_gb = 0;
  double max_compute_capability = 0;
};

/// Secondary indexes over the directory, maintained incrementally via
/// dirty-node invalidation.  Candidate lists are deterministic
/// (machine-id order) for reproducible placement.
class ClusterView {
 public:
  explicit ClusterView(const std::map<std::string, NodeInfo>& nodes)
      : nodes_(nodes) {}

  /// Marks one node's index entries stale (re-indexed on the next query).
  void mark_dirty(const std::string& machine_id);

  /// Drops every index entry and running counter (coordinator crash: the
  /// node map is about to be emptied, so the pointer-keyed sets must go
  /// first).  Work counters (reindexed/examined) survive — they describe
  /// lifetime work, not current state.
  void clear();

  /// Schedulable nodes with >= `gpu_count` fully-free GPUs.  When
  /// `owner_group` is non-null only that group's nodes are returned.
  std::vector<const NodeInfo*> whole_gpu_candidates(
      int gpu_count, double min_memory_gb, double min_compute_capability,
      const std::string* owner_group);

  /// Schedulable nodes able to host one fractional tenant of `memory_gb`:
  /// sharing enabled, the per-tenant cap honoured, and either a free slot
  /// on a shared GPU or a fully-free GPU to open in shared mode.
  std::vector<const NodeInfo*> fractional_candidates(
      double memory_gb, double min_compute_capability,
      const std::string* owner_group);

  /// Schedulable nodes able to host one time-sliced tenant of
  /// `working_set_gb`: time-slicing enabled, the working set fits in VRAM,
  /// and either a free seat on a sliced GPU or a fully-free GPU to open in
  /// time-slice mode.  (The oversubscription-ratio ceiling is per device,
  /// so it is enforced by the agent's node model at dispatch.)
  std::vector<const NodeInfo*> timeslice_candidates(
      double working_set_gb, double min_compute_capability,
      const std::string* owner_group);

  /// Extra gating an existence probe applies on top of the index filters
  /// (the full placement predicate, including the degradation rule).
  using NodePredicate = std::function<bool(const NodeInfo&)>;

  /// Existence probes: the first node (same index walk as the enumerating
  /// queries) passing both the index filters and `pred`, or nullptr.
  /// Stops examining on the first hit — O(1) on a fleet with free capacity
  /// instead of materializing the full candidate vector just to test
  /// emptiness (the gateway's admission / forward-scan path).
  const NodeInfo* first_whole_gpu_candidate(int gpu_count,
                                            double min_memory_gb,
                                            double min_compute_capability,
                                            const std::string* owner_group,
                                            const NodePredicate& pred);
  const NodeInfo* first_fractional_candidate(double memory_gb,
                                             double min_compute_capability,
                                             const std::string* owner_group,
                                             const NodePredicate& pred);
  const NodeInfo* first_timeslice_candidate(double working_set_gb,
                                            double min_compute_capability,
                                            const std::string* owner_group,
                                            const NodePredicate& pred);

  /// Nodes examined by candidate generation and existence probes since
  /// construction (the early-exit regression probe: an existence check on
  /// a fleet with free capacity must advance this by O(1), not O(nodes)).
  std::uint64_t candidates_examined() const { return candidates_examined_; }

  /// Fully-free whole GPUs across schedulable nodes (running counter; O(dirty)).
  int total_free_gpus();

  /// Schedulable-fleet aggregates from the running counters the indexes
  /// already maintain: O(dirty) repair, then O(1).  Node/GPU totals are
  /// filled in by Directory::capacity_summary().
  CapacitySummary summary();

  /// Nodes re-indexed since construction (observability for the
  /// scalability bench: work done per pass instead of full rescans).
  std::uint64_t reindexed_nodes() const { return reindexed_nodes_; }

 private:
  struct ByIdLess {
    bool operator()(const NodeInfo* a, const NodeInfo* b) const {
      return a->machine_id < b->machine_id;
    }
  };
  using NodeSet = std::set<const NodeInfo*, ByIdLess>;

  /// Index keys a node was filed under (needed for removal on change).
  /// `ptr` is stable: directory entries are never deallocated while indexed.
  struct IndexEntry {
    const NodeInfo* ptr = nullptr;
    int free_bucket = -1;  // -1: not in any free bucket
    bool in_slot_set = false;
    bool in_timeslice_set = false;
    std::string group;
    double capability = 0;
    // Contributions to the capacity-summary counters (subtracted on
    // unindex, so the counters never need a rescan).
    int counted_free_gpus = 0;
    int counted_free_slots = 0;
    int counted_free_timeslice = 0;
  };

  void refresh();
  void unindex(const std::string& machine_id);
  void index(const NodeInfo& node);
  /// Query planner shared by the enumerating query and the existence
  /// probe: true when the capability range admits fewer nodes than the
  /// free buckets.  Both paths MUST use it — walking different indexes
  /// lets them disagree about a node indexed under stale keys (mutated
  /// via a cached Directory::find() pointer after the last refresh).
  bool prefer_capability_walk(int gpu_count,
                              double min_compute_capability) const;

  const std::map<std::string, NodeInfo>& nodes_;
  // free whole GPUs -> schedulable nodes with exactly that many free
  std::map<int, NodeSet> free_buckets_;
  // schedulable nodes with a free slot on an already-shared GPU
  NodeSet slot_nodes_;
  // schedulable nodes with a free seat on an already-time-sliced GPU
  NodeSet timeslice_nodes_;
  std::map<std::string, NodeSet> by_group_;       // schedulable only
  std::map<double, NodeSet> by_capability_;       // schedulable only
  std::map<std::string, IndexEntry> entries_;
  std::set<std::string> dirty_;
  std::uint64_t reindexed_nodes_ = 0;
  std::uint64_t candidates_examined_ = 0;
  // Running schedulable-fleet aggregates (see summary()).
  int sum_free_gpus_ = 0;
  int sum_free_slots_ = 0;
  int sum_free_timeslice_ = 0;
};

class Directory {
 public:
  Directory() : view_(nodes_) {}

  // The view indexes the node map by reference; pin the object.
  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  /// Inserts or updates; returns the stored entry.
  NodeInfo& upsert(NodeInfo info);

  /// Mutable lookup: the caller may change scheduling-relevant fields, so
  /// the node is marked dirty in the cluster view.
  NodeInfo* find(const std::string& machine_id);
  const NodeInfo* find(const std::string& machine_id) const;

  /// Nodes in kActive status that are accepting work.
  std::vector<const NodeInfo*> schedulable() const;
  /// All nodes, machine-id order.
  std::vector<const NodeInfo*> all() const;

  /// Adjusts the scheduling view of free whole GPUs (clamped to
  /// [0, gpu_count]).
  void reserve_gpus(const std::string& machine_id, int count);
  void release_gpus(const std::string& machine_id, int count);

  /// Takes one fractional slot: a free slot on a shared GPU when available,
  /// otherwise a fully-free GPU is opened in shared mode.  False when the
  /// node is unknown, sharing is disabled, or nothing is free.
  bool reserve_slot(const std::string& machine_id);
  /// Returns one fractional slot to the scheduling view.  A shared GPU
  /// emptying back into the whole-GPU pool is reconciled by the next
  /// heartbeat (the agent is ground truth).
  void release_slot(const std::string& machine_id);

  /// Takes one time-slice seat: a free seat on a sliced GPU when available,
  /// otherwise a fully-free GPU is opened in time-slice mode.  False when
  /// the node is unknown, time-slicing is disabled, or nothing is free.
  bool reserve_timeslice_slot(const std::string& machine_id);
  /// Returns one time-slice seat to the scheduling view (heartbeats
  /// reconcile a device emptying back into the whole-GPU pool).
  void release_timeslice_slot(const std::string& machine_id);

  /// Forgets every node (simulated coordinator crash; the in-memory view
  /// is rebuilt from the durable registry on recovery).  The cluster view
  /// is cleared first — its indexes hold pointers into the node map.
  void clear();

  std::size_t size() const { return nodes_.size(); }
  int total_gpus() const { return total_gpus_; }

  /// Whole-fleet capacity aggregate for federation gossip digests, from
  /// running counters: O(dirty) index repair, no node rescans.
  CapacitySummary capacity_summary();

  /// Indexed view for the placement engine.
  ClusterView& view() { return view_; }

 private:
  std::map<std::string, NodeInfo> nodes_;  // ordered for determinism
  ClusterView view_;
  int total_gpus_ = 0;  // maintained by upsert
  // Hardware envelope (see CapacitySummary).
  int max_node_gpus_ = 0;
  double max_gpu_memory_gb_ = 0;
  double max_compute_capability_ = 0;
};

}  // namespace gpunion::sched
