// Coordinator-side membership directory.
//
// The scheduler's real-time view of the fleet (§3.2: "maintains a real-time
// view of available GPU resources across the campus network through periodic
// status updates from provider agents").  free_gpus is the *scheduling* view:
// it is decremented optimistically at dispatch and corrected by dispatch
// results and heartbeats, so the coordinator never double-books a GPU while
// a dispatch is in flight.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/time.h"

namespace gpunion::sched {

struct NodeInfo {
  std::string machine_id;
  std::string hostname;
  std::string owner_group;
  std::string gpu_model;
  int gpu_count = 0;
  double gpu_memory_gb = 0;
  double compute_capability = 0;
  double gpu_tflops = 0;

  db::NodeStatus status = db::NodeStatus::kActive;
  bool accepting = true;
  int free_gpus = 0;
  util::SimTime last_heartbeat = 0;
  std::uint64_t last_heartbeat_seq = 0;
  util::SimTime registered_at = 0;
  std::string token_hash;  // sha256 of the issued auth token
};

class Directory {
 public:
  /// Inserts or updates; returns the stored entry.
  NodeInfo& upsert(NodeInfo info);

  NodeInfo* find(const std::string& machine_id);
  const NodeInfo* find(const std::string& machine_id) const;

  /// Nodes in kActive status that are accepting work.
  std::vector<const NodeInfo*> schedulable() const;
  /// All nodes, machine-id order.
  std::vector<const NodeInfo*> all() const;

  /// Adjusts the scheduling view of free GPUs (clamped to [0, gpu_count]).
  void reserve_gpus(const std::string& machine_id, int count);
  void release_gpus(const std::string& machine_id, int count);

  std::size_t size() const { return nodes_.size(); }
  int total_gpus() const;

 private:
  std::map<std::string, NodeInfo> nodes_;  // ordered for determinism
};

}  // namespace gpunion::sched
