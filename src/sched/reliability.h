// Provider reliability prediction.
//
// §3.2: the scheduler incorporates "provider reliability predictions and
// degradation mechanisms".  Each departure adds one unit of evidence that
// decays exponentially (half-life ~3 days), so a node's score recovers as
// it behaves.  score = 1 / (1 + decayed_departures): 1.0 for a steady node,
// ~0.5 after one recent departure, ~0.25 after three.
//
// Degradation: long jobs are kept off low-score nodes (max_job_hours),
// bounding the work at risk per departure.
#pragma once

#include <string>
#include <unordered_map>

#include "util/time.h"

namespace gpunion::sched {

class ReliabilityPredictor {
 public:
  explicit ReliabilityPredictor(util::Duration half_life = 3.0 * 86400.0)
      : half_life_(half_life) {}

  /// Records a departure (any kind) of the node at `now`.
  void record_departure(const std::string& machine_id, util::SimTime now);

  /// Reliability score in (0, 1]; 1.0 for unknown/steady nodes.
  double score(const std::string& machine_id, util::SimTime now) const;

  /// Decayed departure count (the volatility estimate).
  double volatility(const std::string& machine_id, util::SimTime now) const;

  /// Degradation rule: the longest job (reference-GPU hours) the scheduler
  /// should place on a node with this score.  >= 0.8 -> unlimited;
  /// linearly tightening to 2 h at score 0.2.
  static double max_job_hours(double score);

 private:
  struct Entry {
    double decayed_departures = 0;
    util::SimTime last_update = 0;
  };
  double decayed(const Entry& entry, util::SimTime now) const;

  util::Duration half_life_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace gpunion::sched
