#include "sched/placement_engine.h"

#include <algorithm>

#include "util/logging.h"

namespace gpunion::sched {

namespace {

/// Degradation rule (§3.2): long training jobs stay off low-score nodes.
bool degradation_ok(const NodeInfo& node, const workload::JobSpec& job,
                    const ReliabilityPredictor& reliability,
                    util::SimTime now) {
  if (job.type != workload::JobType::kTraining) return true;
  const double score = reliability.score(node.machine_id, now);
  return job.reference_duration / 3600.0 <=
         ReliabilityPredictor::max_job_hours(score);
}

}  // namespace

bool node_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing,
                   const ReliabilityPredictor& reliability, util::SimTime now,
                   bool enforce_degradation) {
  if (!node.schedulable()) return false;
  if (!cross_group_sharing && node.owner_group != job.owner_group) {
    return false;
  }
  const auto& req = job.requirements;
  if (node.free_gpus < req.gpu_count) return false;
  if (node.gpu_memory_gb < req.gpu_memory_gb) return false;
  if (node.compute_capability < req.min_compute_capability) return false;
  if (enforce_degradation && !degradation_ok(node, job, reliability, now)) {
    return false;
  }
  return true;
}

bool slot_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing) {
  if (!node.schedulable()) return false;
  if (!cross_group_sharing && node.owner_group != job.owner_group) {
    return false;
  }
  if (node.slots_per_gpu <= 1) return false;
  const auto& req = job.requirements;
  if (!req.shareable || req.gpu_count != 1) return false;
  if (req.gpu_memory_gb > node.share_memory_cap_gb) return false;
  if (node.compute_capability < req.min_compute_capability) return false;
  return node.free_shared_slots > 0 || node.free_gpus > 0;
}

bool timeslice_eligible(const NodeInfo& node, const workload::JobSpec& job,
                        bool cross_group_sharing) {
  if (!node.schedulable()) return false;
  if (!cross_group_sharing && node.owner_group != job.owner_group) {
    return false;
  }
  if (node.timeslice_tenants_per_gpu <= 1) return false;
  const auto& req = job.requirements;
  if (!req.shareable || req.gpu_count != 1) return false;
  // Full memory per tenant: only the working set must fit in VRAM (the
  // per-device oversubscription ceiling is the agent's to enforce).
  if (workload::resolved_working_set_gb(job) > node.gpu_memory_gb) {
    return false;
  }
  if (node.compute_capability < req.min_compute_capability) return false;
  return node.free_timeslice_slots > 0 || node.free_gpus > 0;
}

PlacementEngine::PlacementEngine(Directory& directory,
                                 const ReliabilityPredictor& reliability,
                                 const PlatformPolicy& policy,
                                 const std::string& strategy_name)
    : directory_(directory),
      reliability_(reliability),
      policy_(policy),
      strategy_(PlacementStrategyFactory::instance().create(strategy_name)) {
  if (strategy_ == nullptr) {
    GPUNION_WLOG("placement") << "unknown placement strategy '"
                              << strategy_name
                              << "'; falling back to round_robin";
    strategy_ = PlacementStrategyFactory::instance().create(
        std::string(kRoundRobin));
  }
}

std::vector<const NodeInfo*> PlacementEngine::eligible_candidates(
    const workload::JobSpec& job, util::SimTime now, PlaceMode mode) {
  const std::string* group =
      policy_.cross_group_sharing ? nullptr : &job.owner_group;
  const auto& req = job.requirements;
  std::vector<const NodeInfo*> candidates;
  switch (mode) {
    case PlaceMode::kTimeslice:
      candidates = directory_.view().timeslice_candidates(
          workload::resolved_working_set_gb(job), req.min_compute_capability,
          group);
      break;
    case PlaceMode::kFractional:
      candidates = directory_.view().fractional_candidates(
          req.gpu_memory_gb, req.min_compute_capability, group);
      break;
    case PlaceMode::kWhole:
      candidates = directory_.view().whole_gpu_candidates(
          req.gpu_count, req.gpu_memory_gb, req.min_compute_capability,
          group);
      break;
  }
  // The view pre-filters on capacity/compatibility/group; re-check the full
  // predicate (including the degradation rule) so index staleness bugs can
  // never place a job somewhere invalid.
  const bool degrade = strategy_->enforce_degradation();
  auto ineligible = [&](const NodeInfo* node) {
    if (mode == PlaceMode::kTimeslice) {
      if (!timeslice_eligible(*node, job, policy_.cross_group_sharing)) {
        return true;
      }
      return degrade && !degradation_ok(*node, job, reliability_, now);
    }
    if (mode == PlaceMode::kFractional) {
      if (!slot_eligible(*node, job, policy_.cross_group_sharing)) return true;
      return degrade && !degradation_ok(*node, job, reliability_, now);
    }
    return !node_eligible(*node, job, policy_.cross_group_sharing,
                          reliability_, now, degrade);
  };
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(), ineligible),
      candidates.end());
  return candidates;
}

bool PlacementEngine::any_eligible(const workload::JobSpec& job,
                                   util::SimTime now) {
  // Existence only: walk the same indexes as eligible_candidates but stop
  // at the first node passing the FULL placement predicate, instead of
  // materializing the candidate vector just to test emptiness.  On a fleet
  // with free capacity this examines O(1) nodes — the gateway calls this
  // per admission and per forward-scan probe, which used to cost
  // O(free nodes) each (the ROADMAP-flagged inefficiency).
  const std::string* group =
      policy_.cross_group_sharing ? nullptr : &job.owner_group;
  const auto& req = job.requirements;
  const bool degrade = strategy_->enforce_degradation();
  if (policy_.timeslice_sharing && strategy_->wants_timeslice(job)) {
    auto seat_pred = [&](const NodeInfo& node) {
      return timeslice_eligible(node, job, policy_.cross_group_sharing) &&
             (!degrade || degradation_ok(node, job, reliability_, now));
    };
    if (directory_.view().first_timeslice_candidate(
            workload::resolved_working_set_gb(job),
            req.min_compute_capability, group, seat_pred) != nullptr) {
      return true;
    }
  }
  if (policy_.fractional_sharing && strategy_->wants_fractional(job)) {
    auto slot_pred = [&](const NodeInfo& node) {
      return slot_eligible(node, job, policy_.cross_group_sharing) &&
             (!degrade || degradation_ok(node, job, reliability_, now));
    };
    if (directory_.view().first_fractional_candidate(
            req.gpu_memory_gb, req.min_compute_capability, group,
            slot_pred) != nullptr) {
      return true;
    }
  }
  auto whole_pred = [&](const NodeInfo& node) {
    return node_eligible(node, job, policy_.cross_group_sharing, reliability_,
                         now, degrade);
  };
  return directory_.view().first_whole_gpu_candidate(
             req.gpu_count, req.gpu_memory_gb, req.min_compute_capability,
             group, whole_pred) != nullptr;
}

std::optional<PlacementDecision> PlacementEngine::place(
    const workload::JobSpec& job, const std::string& preferred_node,
    util::SimTime now) {
  PlacementContext context{&reliability_, now};

  const bool try_timeslice =
      policy_.timeslice_sharing && strategy_->wants_timeslice(job);
  const bool try_fractional = policy_.fractional_sharing &&
                              strategy_->wants_fractional(job);
  for (const PlaceMode mode : {PlaceMode::kTimeslice, PlaceMode::kFractional,
                               PlaceMode::kWhole}) {
    if (mode == PlaceMode::kTimeslice && !try_timeslice) continue;
    if (mode == PlaceMode::kFractional && !try_fractional) continue;
    auto candidates = eligible_candidates(job, now, mode);
    if (candidates.empty()) continue;
    const bool timeslice = mode == PlaceMode::kTimeslice;
    const bool fractional = mode == PlaceMode::kFractional;
    if (!preferred_node.empty()) {
      for (const NodeInfo* node : candidates) {
        if (node->machine_id == preferred_node) {
          return PlacementDecision{node, fractional, timeslice};
        }
      }
    }
    const NodeInfo* pick =
        timeslice ? strategy_->select_timeslice(candidates, job, context)
                  : strategy_->select(candidates, job, context, fractional);
    if (pick != nullptr) {
      return PlacementDecision{pick, fractional, timeslice};
    }
  }
  return std::nullopt;
}

}  // namespace gpunion::sched
