#include "sched/directory.h"

#include <algorithm>

namespace gpunion::sched {

NodeInfo& Directory::upsert(NodeInfo info) {
  auto [it, inserted] = nodes_.insert_or_assign(info.machine_id,
                                                std::move(info));
  return it->second;
}

NodeInfo* Directory::find(const std::string& machine_id) {
  auto it = nodes_.find(machine_id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const NodeInfo* Directory::find(const std::string& machine_id) const {
  auto it = nodes_.find(machine_id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const NodeInfo*> Directory::schedulable() const {
  std::vector<const NodeInfo*> out;
  for (const auto& [id, node] : nodes_) {
    if (node.status == db::NodeStatus::kActive && node.accepting) {
      out.push_back(&node);
    }
  }
  return out;
}

std::vector<const NodeInfo*> Directory::all() const {
  std::vector<const NodeInfo*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(&node);
  return out;
}

void Directory::reserve_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus - count, 0, node->gpu_count);
  }
}

void Directory::release_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus + count, 0, node->gpu_count);
  }
}

int Directory::total_gpus() const {
  int total = 0;
  for (const auto& [id, node] : nodes_) total += node.gpu_count;
  return total;
}

}  // namespace gpunion::sched
