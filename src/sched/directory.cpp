#include "sched/directory.h"

#include <algorithm>

namespace gpunion::sched {

// ---------------------------------------------------------------------------
// ClusterView
// ---------------------------------------------------------------------------

void ClusterView::mark_dirty(const std::string& machine_id) {
  dirty_.insert(machine_id);
}

void ClusterView::refresh() {
  for (const auto& machine_id : dirty_) {
    unindex(machine_id);
    auto it = nodes_.find(machine_id);
    if (it != nodes_.end()) index(it->second);
    ++reindexed_nodes_;
  }
  dirty_.clear();
}

void ClusterView::unindex(const std::string& machine_id) {
  auto entry_it = entries_.find(machine_id);
  if (entry_it == entries_.end()) return;
  const IndexEntry& entry = entry_it->second;
  if (entry.free_bucket >= 0) {
    auto bucket = free_buckets_.find(entry.free_bucket);
    if (bucket != free_buckets_.end()) {
      bucket->second.erase(entry.ptr);
      if (bucket->second.empty()) free_buckets_.erase(bucket);
    }
  }
  if (entry.in_slot_set) slot_nodes_.erase(entry.ptr);
  auto group = by_group_.find(entry.group);
  if (group != by_group_.end()) {
    group->second.erase(entry.ptr);
    if (group->second.empty()) by_group_.erase(group);
  }
  auto capability = by_capability_.find(entry.capability);
  if (capability != by_capability_.end()) {
    capability->second.erase(entry.ptr);
    if (capability->second.empty()) by_capability_.erase(capability);
  }
  entries_.erase(entry_it);
}

void ClusterView::index(const NodeInfo& node) {
  if (!node.schedulable()) return;  // unschedulable nodes stay unindexed
  IndexEntry entry;
  entry.ptr = &node;
  if (node.free_gpus > 0) {
    entry.free_bucket = node.free_gpus;
    free_buckets_[node.free_gpus].insert(&node);
  }
  if (node.free_shared_slots > 0 && node.slots_per_gpu > 1) {
    entry.in_slot_set = true;
    slot_nodes_.insert(&node);
  }
  entry.group = node.owner_group;
  by_group_[node.owner_group].insert(&node);
  entry.capability = node.compute_capability;
  by_capability_[node.compute_capability].insert(&node);
  entries_[node.machine_id] = std::move(entry);
}

std::vector<const NodeInfo*> ClusterView::whole_gpu_candidates(
    int gpu_count, double min_memory_gb, double min_compute_capability,
    const std::string* owner_group) {
  refresh();
  std::vector<const NodeInfo*> out;
  auto admit = [&](const NodeInfo* node) {
    if (node->free_gpus < gpu_count) return;
    if (node->gpu_memory_gb < min_memory_gb) return;
    if (node->compute_capability < min_compute_capability) return;
    out.push_back(node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return out;
    for (const NodeInfo* node : group->second) admit(node);
    return out;  // group sets are id-ordered already
  }
  // Query planner: walk whichever index admits fewer nodes — the
  // free-capacity buckets (selective on a busy fleet) or the capability
  // range (selective for high-CC jobs on a mixed fleet).  Either way the
  // iteration is key-major, id-ordered within a key: deterministic for
  // identical directory state without a per-query sort.
  std::size_t free_count = 0;
  for (auto it = free_buckets_.lower_bound(gpu_count);
       it != free_buckets_.end(); ++it) {
    free_count += it->second.size();
  }
  std::size_t capability_count = 0;
  for (auto it = by_capability_.lower_bound(min_compute_capability);
       it != by_capability_.end(); ++it) {
    capability_count += it->second.size();
  }
  if (capability_count < free_count) {
    for (auto it = by_capability_.lower_bound(min_compute_capability);
         it != by_capability_.end(); ++it) {
      for (const NodeInfo* node : it->second) admit(node);
    }
  } else {
    for (auto it = free_buckets_.lower_bound(gpu_count);
         it != free_buckets_.end(); ++it) {
      for (const NodeInfo* node : it->second) admit(node);
    }
  }
  return out;
}

std::vector<const NodeInfo*> ClusterView::fractional_candidates(
    double memory_gb, double min_compute_capability,
    const std::string* owner_group) {
  refresh();
  std::vector<const NodeInfo*> out;
  auto admit = [&](const NodeInfo* node) {
    if (node->slots_per_gpu <= 1) return;
    if (node->free_shared_slots <= 0 && node->free_gpus <= 0) return;
    if (memory_gb > node->share_memory_cap_gb) return;
    if (node->compute_capability < min_compute_capability) return;
    out.push_back(node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return out;
    for (const NodeInfo* node : group->second) admit(node);
    return out;
  }
  // Union of the shared-slot set and every free-capacity bucket.  A node
  // with both a free slot and a free GPU appears in both indexes; the
  // bucket pass skips slot-set members instead of building a merged set.
  for (const NodeInfo* node : slot_nodes_) admit(node);
  for (const auto& [free, bucket] : free_buckets_) {
    for (const NodeInfo* node : bucket) {
      if (node->free_shared_slots > 0 && node->slots_per_gpu > 1) {
        continue;  // already admitted from the slot set
      }
      admit(node);
    }
  }
  return out;
}

int ClusterView::total_free_gpus() {
  refresh();
  int total = 0;
  for (const auto& [free, bucket] : free_buckets_) {
    total += free * static_cast<int>(bucket.size());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

NodeInfo& Directory::upsert(NodeInfo info) {
  view_.mark_dirty(info.machine_id);
  auto [it, inserted] = nodes_.insert_or_assign(info.machine_id,
                                                std::move(info));
  return it->second;
}

NodeInfo* Directory::find(const std::string& machine_id) {
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) return nullptr;
  view_.mark_dirty(machine_id);  // caller may mutate scheduling fields
  return &it->second;
}

const NodeInfo* Directory::find(const std::string& machine_id) const {
  auto it = nodes_.find(machine_id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const NodeInfo*> Directory::schedulable() const {
  std::vector<const NodeInfo*> out;
  for (const auto& [id, node] : nodes_) {
    if (node.schedulable()) out.push_back(&node);
  }
  return out;
}

std::vector<const NodeInfo*> Directory::all() const {
  std::vector<const NodeInfo*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(&node);
  return out;
}

void Directory::reserve_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus - count, 0, node->gpu_count);
  }
}

void Directory::release_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus + count, 0, node->gpu_count);
  }
}

bool Directory::reserve_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr || node->slots_per_gpu <= 1) return false;
  if (node->free_shared_slots > 0) {
    --node->free_shared_slots;
    return true;
  }
  if (node->free_gpus > 0) {
    // Open a fully-free GPU in shared mode: one slot taken now, the rest
    // become available to future fractional tenants.
    --node->free_gpus;
    node->free_shared_slots += node->slots_per_gpu - 1;
    return true;
  }
  return false;
}

void Directory::release_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr) return;
  const int slot_capacity =
      node->gpu_count * std::max(1, node->slots_per_gpu) -
      node->free_gpus * std::max(1, node->slots_per_gpu);
  node->free_shared_slots =
      std::clamp(node->free_shared_slots + 1, 0, slot_capacity);
}

int Directory::total_gpus() const {
  int total = 0;
  for (const auto& [id, node] : nodes_) total += node.gpu_count;
  return total;
}

}  // namespace gpunion::sched
