#include "sched/directory.h"

#include <algorithm>

namespace gpunion::sched {

// ---------------------------------------------------------------------------
// ClusterView
// ---------------------------------------------------------------------------

void ClusterView::mark_dirty(const std::string& machine_id) {
  dirty_.insert(machine_id);
}

void ClusterView::clear() {
  free_buckets_.clear();
  slot_nodes_.clear();
  timeslice_nodes_.clear();
  by_group_.clear();
  by_capability_.clear();
  entries_.clear();
  dirty_.clear();
  sum_free_gpus_ = 0;
  sum_free_slots_ = 0;
  sum_free_timeslice_ = 0;
}

void ClusterView::refresh() {
  for (const auto& machine_id : dirty_) {
    unindex(machine_id);
    auto it = nodes_.find(machine_id);
    if (it != nodes_.end()) index(it->second);
    ++reindexed_nodes_;
  }
  dirty_.clear();
}

void ClusterView::unindex(const std::string& machine_id) {
  auto entry_it = entries_.find(machine_id);
  if (entry_it == entries_.end()) return;
  const IndexEntry& entry = entry_it->second;
  if (entry.free_bucket >= 0) {
    auto bucket = free_buckets_.find(entry.free_bucket);
    if (bucket != free_buckets_.end()) {
      bucket->second.erase(entry.ptr);
      if (bucket->second.empty()) free_buckets_.erase(bucket);
    }
  }
  if (entry.in_slot_set) slot_nodes_.erase(entry.ptr);
  if (entry.in_timeslice_set) timeslice_nodes_.erase(entry.ptr);
  sum_free_gpus_ -= entry.counted_free_gpus;
  sum_free_slots_ -= entry.counted_free_slots;
  sum_free_timeslice_ -= entry.counted_free_timeslice;
  auto group = by_group_.find(entry.group);
  if (group != by_group_.end()) {
    group->second.erase(entry.ptr);
    if (group->second.empty()) by_group_.erase(group);
  }
  auto capability = by_capability_.find(entry.capability);
  if (capability != by_capability_.end()) {
    capability->second.erase(entry.ptr);
    if (capability->second.empty()) by_capability_.erase(capability);
  }
  entries_.erase(entry_it);
}

void ClusterView::index(const NodeInfo& node) {
  if (!node.schedulable()) return;  // unschedulable nodes stay unindexed
  IndexEntry entry;
  entry.ptr = &node;
  if (node.free_gpus > 0) {
    entry.free_bucket = node.free_gpus;
    free_buckets_[node.free_gpus].insert(&node);
  }
  if (node.free_shared_slots > 0 && node.slots_per_gpu > 1) {
    entry.in_slot_set = true;
    slot_nodes_.insert(&node);
  }
  if (node.free_timeslice_slots > 0 && node.timeslice_tenants_per_gpu > 1) {
    entry.in_timeslice_set = true;
    timeslice_nodes_.insert(&node);
  }
  entry.counted_free_gpus = node.free_gpus;
  entry.counted_free_slots = node.free_shared_slots;
  entry.counted_free_timeslice = node.free_timeslice_slots;
  sum_free_gpus_ += entry.counted_free_gpus;
  sum_free_slots_ += entry.counted_free_slots;
  sum_free_timeslice_ += entry.counted_free_timeslice;
  entry.group = node.owner_group;
  by_group_[node.owner_group].insert(&node);
  entry.capability = node.compute_capability;
  by_capability_[node.compute_capability].insert(&node);
  entries_[node.machine_id] = std::move(entry);
}

std::vector<const NodeInfo*> ClusterView::whole_gpu_candidates(
    int gpu_count, double min_memory_gb, double min_compute_capability,
    const std::string* owner_group) {
  refresh();
  std::vector<const NodeInfo*> out;
  auto admit = [&](const NodeInfo* node) {
    ++candidates_examined_;
    if (node->free_gpus < gpu_count) return;
    if (node->gpu_memory_gb < min_memory_gb) return;
    if (node->compute_capability < min_compute_capability) return;
    out.push_back(node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return out;
    for (const NodeInfo* node : group->second) admit(node);
    return out;  // group sets are id-ordered already
  }
  // Query planner: walk whichever index admits fewer nodes — the
  // free-capacity buckets (selective on a busy fleet) or the capability
  // range (selective for high-CC jobs on a mixed fleet).  Either way the
  // iteration is key-major, id-ordered within a key: deterministic for
  // identical directory state without a per-query sort.
  if (prefer_capability_walk(gpu_count, min_compute_capability)) {
    for (auto it = by_capability_.lower_bound(min_compute_capability);
         it != by_capability_.end(); ++it) {
      for (const NodeInfo* node : it->second) admit(node);
    }
  } else {
    for (auto it = free_buckets_.lower_bound(gpu_count);
         it != free_buckets_.end(); ++it) {
      for (const NodeInfo* node : it->second) admit(node);
    }
  }
  return out;
}

bool ClusterView::prefer_capability_walk(int gpu_count,
                                         double min_compute_capability) const {
  std::size_t free_count = 0;
  for (auto it = free_buckets_.lower_bound(gpu_count);
       it != free_buckets_.end(); ++it) {
    free_count += it->second.size();
  }
  std::size_t capability_count = 0;
  for (auto it = by_capability_.lower_bound(min_compute_capability);
       it != by_capability_.end(); ++it) {
    capability_count += it->second.size();
  }
  return capability_count < free_count;
}

std::vector<const NodeInfo*> ClusterView::fractional_candidates(
    double memory_gb, double min_compute_capability,
    const std::string* owner_group) {
  refresh();
  std::vector<const NodeInfo*> out;
  auto admit = [&](const NodeInfo* node) {
    ++candidates_examined_;
    if (node->slots_per_gpu <= 1) return;
    if (node->free_shared_slots <= 0 && node->free_gpus <= 0) return;
    if (memory_gb > node->share_memory_cap_gb) return;
    if (node->compute_capability < min_compute_capability) return;
    out.push_back(node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return out;
    for (const NodeInfo* node : group->second) admit(node);
    return out;
  }
  // Union of the shared-slot set and every free-capacity bucket.  A node
  // with both a free slot and a free GPU appears in both indexes; the
  // bucket pass skips slot-set members instead of building a merged set.
  for (const NodeInfo* node : slot_nodes_) admit(node);
  for (const auto& [free, bucket] : free_buckets_) {
    for (const NodeInfo* node : bucket) {
      if (node->free_shared_slots > 0 && node->slots_per_gpu > 1) {
        continue;  // already admitted from the slot set
      }
      admit(node);
    }
  }
  return out;
}

std::vector<const NodeInfo*> ClusterView::timeslice_candidates(
    double working_set_gb, double min_compute_capability,
    const std::string* owner_group) {
  refresh();
  std::vector<const NodeInfo*> out;
  auto admit = [&](const NodeInfo* node) {
    ++candidates_examined_;
    if (node->timeslice_tenants_per_gpu <= 1) return;
    if (node->free_timeslice_slots <= 0 && node->free_gpus <= 0) return;
    if (working_set_gb > node->gpu_memory_gb) return;
    if (node->compute_capability < min_compute_capability) return;
    out.push_back(node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return out;
    for (const NodeInfo* node : group->second) admit(node);
    return out;
  }
  // Union of the time-slice seat set and every free-capacity bucket, as
  // with fractional candidates (the seat pass is preferred: packing more
  // tenants onto already-sliced devices keeps whole GPUs free).
  for (const NodeInfo* node : timeslice_nodes_) admit(node);
  for (const auto& [free, bucket] : free_buckets_) {
    for (const NodeInfo* node : bucket) {
      if (node->free_timeslice_slots > 0 &&
          node->timeslice_tenants_per_gpu > 1) {
        continue;  // already admitted from the seat set
      }
      admit(node);
    }
  }
  return out;
}

const NodeInfo* ClusterView::first_whole_gpu_candidate(
    int gpu_count, double min_memory_gb, double min_compute_capability,
    const std::string* owner_group, const NodePredicate& pred) {
  refresh();
  auto probe = [&](const NodeInfo* node) -> bool {
    ++candidates_examined_;
    if (node->free_gpus < gpu_count) return false;
    if (node->gpu_memory_gb < min_memory_gb) return false;
    if (node->compute_capability < min_compute_capability) return false;
    return pred(*node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return nullptr;
    for (const NodeInfo* node : group->second) {
      if (probe(node)) return node;
    }
    return nullptr;
  }
  // The probe MUST walk the same index the enumerating query would pick:
  // a node whose scheduling fields were mutated through a cached
  // Directory::find() pointer after the last refresh is filed under stale
  // keys, and the two indexes then disagree on membership (e.g. a node
  // that freed up is absent from every free bucket but still present in
  // the capability range).  An asymmetric walk made any_eligible() deny
  // jobs place() could serve — the gateway then forwarded out work the
  // local campus could run.  Planner parity keeps probe and enumeration
  // agreeing under any single-node staleness; on the common
  // has-free-capacity fleet the bucket walk still wins and the probe
  // stays O(1).
  if (prefer_capability_walk(gpu_count, min_compute_capability)) {
    for (auto it = by_capability_.lower_bound(min_compute_capability);
         it != by_capability_.end(); ++it) {
      for (const NodeInfo* node : it->second) {
        if (probe(node)) return node;
      }
    }
    return nullptr;
  }
  for (auto it = free_buckets_.lower_bound(gpu_count);
       it != free_buckets_.end(); ++it) {
    for (const NodeInfo* node : it->second) {
      if (probe(node)) return node;
    }
  }
  return nullptr;
}

const NodeInfo* ClusterView::first_fractional_candidate(
    double memory_gb, double min_compute_capability,
    const std::string* owner_group, const NodePredicate& pred) {
  refresh();
  auto probe = [&](const NodeInfo* node) -> bool {
    ++candidates_examined_;
    if (node->slots_per_gpu <= 1) return false;
    if (node->free_shared_slots <= 0 && node->free_gpus <= 0) return false;
    if (memory_gb > node->share_memory_cap_gb) return false;
    if (node->compute_capability < min_compute_capability) return false;
    return pred(*node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return nullptr;
    for (const NodeInfo* node : group->second) {
      if (probe(node)) return node;
    }
    return nullptr;
  }
  for (const NodeInfo* node : slot_nodes_) {
    if (probe(node)) return node;
  }
  for (const auto& [free, bucket] : free_buckets_) {
    for (const NodeInfo* node : bucket) {
      if (node->free_shared_slots > 0 && node->slots_per_gpu > 1) {
        continue;  // already probed from the slot set
      }
      if (probe(node)) return node;
    }
  }
  return nullptr;
}

const NodeInfo* ClusterView::first_timeslice_candidate(
    double working_set_gb, double min_compute_capability,
    const std::string* owner_group, const NodePredicate& pred) {
  refresh();
  auto probe = [&](const NodeInfo* node) -> bool {
    ++candidates_examined_;
    if (node->timeslice_tenants_per_gpu <= 1) return false;
    if (node->free_timeslice_slots <= 0 && node->free_gpus <= 0) return false;
    if (working_set_gb > node->gpu_memory_gb) return false;
    if (node->compute_capability < min_compute_capability) return false;
    return pred(*node);
  };
  if (owner_group != nullptr) {
    auto group = by_group_.find(*owner_group);
    if (group == by_group_.end()) return nullptr;
    for (const NodeInfo* node : group->second) {
      if (probe(node)) return node;
    }
    return nullptr;
  }
  for (const NodeInfo* node : timeslice_nodes_) {
    if (probe(node)) return node;
  }
  for (const auto& [free, bucket] : free_buckets_) {
    for (const NodeInfo* node : bucket) {
      if (node->free_timeslice_slots > 0 &&
          node->timeslice_tenants_per_gpu > 1) {
        continue;  // already probed from the seat set
      }
      if (probe(node)) return node;
    }
  }
  return nullptr;
}

int ClusterView::total_free_gpus() {
  refresh();
  return sum_free_gpus_;
}

CapacitySummary ClusterView::summary() {
  refresh();
  CapacitySummary out;
  out.schedulable_nodes = static_cast<int>(entries_.size());
  out.free_gpus = sum_free_gpus_;
  out.free_shared_slots = sum_free_slots_;
  out.free_timeslice_slots = sum_free_timeslice_;
  return out;
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

NodeInfo& Directory::upsert(NodeInfo info) {
  view_.mark_dirty(info.machine_id);
  total_gpus_ += info.gpu_count;
  bool may_shrink_envelope = false;
  if (auto existing = nodes_.find(info.machine_id); existing != nodes_.end()) {
    const NodeInfo& old = existing->second;
    total_gpus_ -= old.gpu_count;
    // Re-registration with smaller hardware may have been holding an
    // envelope maximum; rescan below (rare — hardware swaps, not churn).
    may_shrink_envelope =
        (old.gpu_count >= max_node_gpus_ && info.gpu_count < old.gpu_count) ||
        (old.gpu_memory_gb >= max_gpu_memory_gb_ &&
         info.gpu_memory_gb < old.gpu_memory_gb) ||
        (old.compute_capability >= max_compute_capability_ &&
         info.compute_capability < old.compute_capability);
  }
  auto [it, inserted] = nodes_.insert_or_assign(info.machine_id,
                                                std::move(info));
  if (may_shrink_envelope) {
    max_node_gpus_ = 0;
    max_gpu_memory_gb_ = 0;
    max_compute_capability_ = 0;
    for (const auto& [id, node] : nodes_) {
      max_node_gpus_ = std::max(max_node_gpus_, node.gpu_count);
      max_gpu_memory_gb_ = std::max(max_gpu_memory_gb_, node.gpu_memory_gb);
      max_compute_capability_ =
          std::max(max_compute_capability_, node.compute_capability);
    }
  } else {
    max_node_gpus_ = std::max(max_node_gpus_, it->second.gpu_count);
    max_gpu_memory_gb_ =
        std::max(max_gpu_memory_gb_, it->second.gpu_memory_gb);
    max_compute_capability_ =
        std::max(max_compute_capability_, it->second.compute_capability);
  }
  return it->second;
}

void Directory::clear() {
  view_.clear();  // before the node map: its indexes point into it
  nodes_.clear();
  total_gpus_ = 0;
  max_node_gpus_ = 0;
  max_gpu_memory_gb_ = 0;
  max_compute_capability_ = 0;
}

NodeInfo* Directory::find(const std::string& machine_id) {
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) return nullptr;
  view_.mark_dirty(machine_id);  // caller may mutate scheduling fields
  return &it->second;
}

const NodeInfo* Directory::find(const std::string& machine_id) const {
  auto it = nodes_.find(machine_id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const NodeInfo*> Directory::schedulable() const {
  std::vector<const NodeInfo*> out;
  for (const auto& [id, node] : nodes_) {
    if (node.schedulable()) out.push_back(&node);
  }
  return out;
}

std::vector<const NodeInfo*> Directory::all() const {
  std::vector<const NodeInfo*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(&node);
  return out;
}

void Directory::reserve_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus - count, 0, node->gpu_count);
  }
}

void Directory::release_gpus(const std::string& machine_id, int count) {
  if (NodeInfo* node = find(machine_id)) {
    node->free_gpus = std::clamp(node->free_gpus + count, 0, node->gpu_count);
  }
}

bool Directory::reserve_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr || node->slots_per_gpu <= 1) return false;
  if (node->free_shared_slots > 0) {
    --node->free_shared_slots;
    return true;
  }
  if (node->free_gpus > 0) {
    // Open a fully-free GPU in shared mode: one slot taken now, the rest
    // become available to future fractional tenants.
    --node->free_gpus;
    node->free_shared_slots += node->slots_per_gpu - 1;
    return true;
  }
  return false;
}

void Directory::release_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr) return;
  const int slot_capacity =
      node->gpu_count * std::max(1, node->slots_per_gpu) -
      node->free_gpus * std::max(1, node->slots_per_gpu);
  node->free_shared_slots =
      std::clamp(node->free_shared_slots + 1, 0, slot_capacity);
}

bool Directory::reserve_timeslice_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr || node->timeslice_tenants_per_gpu <= 1) return false;
  if (node->free_timeslice_slots > 0) {
    --node->free_timeslice_slots;
    return true;
  }
  if (node->free_gpus > 0) {
    // Open a fully-free GPU in time-slice mode: one seat taken now, the
    // rest become available to future time-sliced tenants.
    --node->free_gpus;
    node->free_timeslice_slots += node->timeslice_tenants_per_gpu - 1;
    return true;
  }
  return false;
}

void Directory::release_timeslice_slot(const std::string& machine_id) {
  NodeInfo* node = find(machine_id);
  if (node == nullptr) return;
  const int seats = std::max(1, node->timeslice_tenants_per_gpu);
  const int seat_capacity =
      node->gpu_count * seats - node->free_gpus * seats;
  node->free_timeslice_slots =
      std::clamp(node->free_timeslice_slots + 1, 0, seat_capacity);
}

CapacitySummary Directory::capacity_summary() {
  CapacitySummary out = view_.summary();
  out.nodes = static_cast<int>(nodes_.size());
  out.total_gpus = total_gpus_;
  out.max_node_gpus = max_node_gpus_;
  out.max_gpu_memory_gb = max_gpu_memory_gb_;
  out.max_compute_capability = max_compute_capability_;
  return out;
}

}  // namespace gpunion::sched
