#include "sched/heartbeat_monitor.h"

#include "util/logging.h"

namespace gpunion::sched {

HeartbeatMonitor::HeartbeatMonitor(sim::Environment& env, Directory& directory,
                                   util::Duration heartbeat_interval,
                                   int miss_threshold, OnNodeLost on_node_lost,
                                   sim::LaneId lane)
    : env_(env),
      directory_(directory),
      heartbeat_interval_(heartbeat_interval),
      miss_threshold_(miss_threshold),
      on_node_lost_(std::move(on_node_lost)),
      timer_(env, heartbeat_interval, [this] { sweep(); }, lane) {}

void HeartbeatMonitor::observe(const std::string& machine_id,
                               util::SimTime at) {
  auto it = last_seen_.find(machine_id);
  if (it != last_seen_.end()) {
    if (at <= it->second) return;  // stale observation; newest wins
    by_expiry_.erase({it->second, machine_id});
    it->second = at;
  } else {
    last_seen_.emplace(machine_id, at);
  }
  by_expiry_.insert({at, machine_id});
}

void HeartbeatMonitor::forget(const std::string& machine_id) {
  auto it = last_seen_.find(machine_id);
  if (it == last_seen_.end()) return;
  by_expiry_.erase({it->second, machine_id});
  last_seen_.erase(it);
}

std::vector<std::string> HeartbeatMonitor::sweep() {
  std::vector<std::string> lost;
  const util::SimTime now = env_.now();
  ++sweeps_;
  last_sweep_examined_ = 0;
  while (!by_expiry_.empty()) {
    const auto& [last_beat, machine_id] = *by_expiry_.begin();
    if (now - last_beat <= detection_deadline()) break;  // rest are fresher
    ++last_sweep_examined_;
    ++total_examined_;
    const std::string id = machine_id;  // keep past the erase
    last_seen_.erase(id);
    by_expiry_.erase(by_expiry_.begin());
    const NodeInfo* node =
        static_cast<const Directory&>(directory_).find(id);
    if (node == nullptr || node->status != db::NodeStatus::kActive) {
      continue;  // loss already handled (departure notice etc.)
    }
    lost.push_back(id);
  }
  for (const auto& machine_id : lost) {
    GPUNION_ILOG("hb-monitor")
        << machine_id << " missed " << miss_threshold_
        << " heartbeats; marking unavailable";
    if (on_node_lost_) on_node_lost_(machine_id);
  }
  return lost;
}

}  // namespace gpunion::sched
