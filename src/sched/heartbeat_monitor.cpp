#include "sched/heartbeat_monitor.h"

#include "util/logging.h"

namespace gpunion::sched {

HeartbeatMonitor::HeartbeatMonitor(sim::Environment& env, Directory& directory,
                                   util::Duration heartbeat_interval,
                                   int miss_threshold, OnNodeLost on_node_lost)
    : env_(env),
      directory_(directory),
      heartbeat_interval_(heartbeat_interval),
      miss_threshold_(miss_threshold),
      on_node_lost_(std::move(on_node_lost)),
      timer_(env, heartbeat_interval, [this] { sweep(); }) {}

std::vector<std::string> HeartbeatMonitor::sweep() {
  std::vector<std::string> lost;
  const util::SimTime now = env_.now();
  for (const NodeInfo* node : directory_.all()) {
    if (node->status != db::NodeStatus::kActive) continue;
    const util::SimTime silent_for = now - node->last_heartbeat;
    if (silent_for > detection_deadline()) {
      lost.push_back(node->machine_id);
    }
  }
  for (const auto& machine_id : lost) {
    GPUNION_ILOG("hb-monitor")
        << machine_id << " missed " << miss_threshold_
        << " heartbeats; marking unavailable";
    if (on_node_lost_) on_node_lost_(machine_id);
  }
  return lost;
}

}  // namespace gpunion::sched
