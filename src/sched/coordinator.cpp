#include "sched/coordinator.h"

#include <algorithm>
#include <cassert>
#include <string_view>
#include <unordered_set>

#include "util/ids.h"
#include "util/logging.h"
#include "util/sha256.h"

namespace gpunion::sched {

std::string_view job_phase_name(JobPhase p) {
  switch (p) {
    case JobPhase::kPending: return "pending";
    case JobPhase::kDispatching: return "dispatching";
    case JobPhase::kRunning: return "running";
    case JobPhase::kCompleted: return "completed";
    case JobPhase::kDenied: return "denied";
    case JobPhase::kSessionDisrupted: return "session_disrupted";
    case JobPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool job_phase_terminal(JobPhase p) {
  switch (p) {
    case JobPhase::kCompleted:
    case JobPhase::kDenied:
    case JobPhase::kSessionDisrupted:
    case JobPhase::kCancelled:
      return true;
    default:
      return false;
  }
}

namespace {

/// Journal key for the durable stats counters (one coordinator per DB).
constexpr const char* kStatsJournalKey = "coordinator.stats";

db::JobStateRecord to_state(const JobRecord& r) {
  db::JobStateRecord s;
  s.job_id = r.spec.id;
  s.spec = r.spec;
  s.phase = static_cast<int>(r.phase);
  s.node = r.node;
  s.preferred_node = r.preferred_node;
  s.displaced_from = r.displaced_from;
  s.migrate_back_pending = r.migrate_back_pending;
  s.migrate_back_target = r.migrate_back_target;
  s.checkpointed_progress = r.checkpointed_progress;
  s.last_checkpoint_at = r.last_checkpoint_at;
  s.interruptions = r.interruptions;
  s.migrations = r.migrations;
  s.migrate_backs = r.migrate_backs;
  s.submitted_at = r.submitted_at;
  s.first_dispatched_at = r.first_dispatched_at;
  s.completed_at = r.completed_at;
  s.lost_work_seconds = r.lost_work_seconds;
  s.last_interruption_cause = static_cast<int>(r.last_interruption_cause);
  s.open_allocation = r.open_allocation;
  s.dispatch_generation = r.dispatch_generation;
  s.reclaim_requested = r.reclaim_requested;
  s.dispatch_rejects = r.dispatch_rejects;
  s.awaiting_dispatch_settle = r.awaiting_dispatch_settle;
  s.fractional_slot = r.fractional_slot;
  s.timeslice_slot = r.timeslice_slot;
  s.running_since = r.running_since;
  s.segment_start_progress = r.segment_start_progress;
  s.node_speed = r.node_speed;
  s.trace_id = r.trace.trace_id;
  s.trace_parent_span = r.trace.parent_span;
  return s;
}

JobRecord from_state(const db::JobStateRecord& s) {
  JobRecord r;
  r.spec = s.spec;
  if (r.spec.id.empty()) r.spec.id = s.job_id;  // archived rows drop payload
  r.phase = static_cast<JobPhase>(s.phase);
  // node / displaced_from are NOT set here: the rebuilder binds them
  // through set_assignment()/set_displaced_from() so the per-node indexes
  // stay consistent.
  r.preferred_node = s.preferred_node;
  r.migrate_back_pending = s.migrate_back_pending;
  r.migrate_back_target = s.migrate_back_target;
  r.checkpointed_progress = s.checkpointed_progress;
  r.last_checkpoint_at = s.last_checkpoint_at;
  r.interruptions = s.interruptions;
  r.migrations = s.migrations;
  r.migrate_backs = s.migrate_backs;
  r.submitted_at = s.submitted_at;
  r.first_dispatched_at = s.first_dispatched_at;
  r.completed_at = s.completed_at;
  r.lost_work_seconds = s.lost_work_seconds;
  r.last_interruption_cause =
      static_cast<agent::DepartureKind>(s.last_interruption_cause);
  r.open_allocation = s.open_allocation;
  r.dispatch_generation = s.dispatch_generation;
  r.reclaim_requested = s.reclaim_requested;
  r.dispatch_rejects = s.dispatch_rejects;
  r.awaiting_dispatch_settle = s.awaiting_dispatch_settle;
  r.fractional_slot = s.fractional_slot;
  r.timeslice_slot = s.timeslice_slot;
  r.running_since = s.running_since;
  r.segment_start_progress = s.segment_start_progress;
  r.node_speed = s.node_speed;
  r.trace.trace_id = s.trace_id;
  r.trace.parent_span = s.trace_parent_span;
  return r;
}

}  // namespace

Coordinator::Coordinator(sim::Environment& env, net::Transport& transport,
                         db::Database& database,
                         storage::CheckpointStore& store,
                         CoordinatorConfig config)
    : env_(env),
      transport_(transport),
      database_(database),
      store_(store),
      config_(std::move(config)),
      engine_(directory_, reliability_, config_.policy, config_.strategy),
      heartbeat_monitor_(env, directory_, config_.heartbeat_interval,
                         config_.heartbeat_miss_threshold,
                         [this](const std::string& id) { on_node_lost(id); },
                         config_.lane),
      heartbeat_flush_timer_(env, config_.heartbeat_interval,
                             [this] { flush_heartbeat_db(); }, config_.lane),
      rng_(env.fork_rng("coordinator")) {}

Coordinator::~Coordinator() = default;

void Coordinator::start() {
  assert(!started_ && "Coordinator::start called twice");
  started_ = true;
  transport_.register_endpoint(
      config_.id,
      [this](net::Message&& msg) { handle_message(std::move(msg)); },
      config_.lane);
  heartbeat_monitor_.start();
  if (config_.batch_heartbeat_writes) heartbeat_flush_timer_.start();
}

// ---------------------------------------------------------------------------
// Client API
// ---------------------------------------------------------------------------

util::Status Coordinator::submit(workload::JobSpec job, double start_progress,
                                 obs::TraceContext trace) {
  if (job.id.empty()) {
    return util::invalid_argument_error("job requires an id");
  }
  if (start_progress < 0.0 || start_progress >= 1.0) {
    return util::invalid_argument_error("start_progress outside [0, 1)");
  }
  if (jobs_.contains(job.id) || archive_.contains(job.id)) {
    return util::already_exists_error("job " + job.id + " already submitted");
  }
  if (reserved_ids_.contains(job.id)) {
    // Withdrawn for a federation forward that has not settled yet: letting
    // a new job take the id now would collide with the returning copy.
    return util::failed_precondition_error(
        "job id " + job.id + " is in federation flight; resubmit later");
  }
  JobRecord record;
  record.spec = std::move(job);
  record.checkpointed_progress = start_progress;
  record.submitted_at = env_.now();
  record.queued_since = env_.now();
  const std::string job_id = record.spec.id;
  if (auto* tr = config_.tracer; tr != nullptr && tr->enabled()) {
    record.trace = trace.valid()
                       ? trace
                       : obs::TraceContext{obs::Tracer::trace_for_job(job_id),
                                           0};
    tr->record(record.trace, obs::stage::kSubmit, config_.id, env_.now(),
               env_.now());
  }
  const bool interactive =
      record.spec.type == workload::JobType::kInteractive;
  jobs_.emplace(job_id, std::move(record));

  ++stats_.jobs_submitted;
  if (interactive) {
    ++stats_.sessions_submitted;
    // The timer pins the submission it was armed for: a session withdrawn
    // by the federation layer and later resubmitted under the same id must
    // not be denied by its predecessor's patience window.
    const util::SimTime submitted = env_.now();
    const std::uint64_t epoch = epoch_;
    env_.schedule_after_on(config_.lane, config_.session_patience,
                           [this, job_id, submitted, epoch] {
      if (epoch != epoch_) return;  // armed before a crash
      session_timeout(job_id, submitted);
    });
  } else {
    ++stats_.training_submitted;
  }

  database_.enqueue_request(db::PendingRequest{
      job_id, jobs_.at(job_id).spec.requirements.priority, env_.now()});
  persist_job(jobs_.at(job_id));
  request_pass();
  return util::Status();
}

util::Status Coordinator::cancel(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    if (auto archived = archive_.find(job_id); archived != archive_.end()) {
      return util::failed_precondition_error(
          "job " + job_id + " already " +
          std::string(job_phase_name(archived->second.phase)));
    }
    return util::not_found_error("job " + job_id);
  }
  JobRecord& record = it->second;
  switch (record.phase) {
    case JobPhase::kPending:
      database_.remove_request(job_id);
      record.phase = JobPhase::kCancelled;
      maybe_retire(job_id);
      return util::Status();
    case JobPhase::kDispatching:
    case JobPhase::kRunning: {
      // A cancel mid-dispatch must outlive the outstanding ack so the
      // in-flight counter can settle; the ack/timeout path retires it.
      record.awaiting_dispatch_settle =
          record.phase == JobPhase::kDispatching;
      if (record.open_allocation != 0) {
        (void)database_.close_allocation(record.open_allocation,
                                         db::AllocationOutcome::kKilled,
                                         env_.now());
        record.open_allocation = 0;
      }
      send_to_agent(record.node, agent::kKillJob,
                    agent::KillJobCommand{job_id, /*allow_checkpoint=*/false},
                    agent::kControlBytes);
      release_capacity(record, record.node);
      record.phase = JobPhase::kCancelled;
      migration_tracker_.abandon(job_id);
      persist_job(record);  // may stay live awaiting the ack settle
      request_pass();
      maybe_retire(job_id);
      return util::Status();
    }
    default:
      return util::failed_precondition_error(
          "job " + job_id + " already " +
          std::string(job_phase_name(record.phase)));
  }
}

util::StatusOr<Coordinator::WithdrawnJob> Coordinator::withdraw(
    const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    if (archive_.contains(job_id)) {
      return util::failed_precondition_error("job " + job_id +
                                             " already terminal");
    }
    return util::not_found_error("job " + job_id);
  }
  JobRecord& record = it->second;
  if (record.phase != JobPhase::kPending) {
    return util::failed_precondition_error(
        "job " + job_id + " is " + std::string(job_phase_name(record.phase)) +
        "; only pending jobs can be withdrawn");
  }
  database_.remove_request(job_id);
  migration_tracker_.abandon(job_id);
  set_displaced_from(record, "");  // unindex (displaced pending jobs)
  WithdrawnJob out;
  out.spec = std::move(record.spec);
  out.checkpointed_progress = record.checkpointed_progress;
  out.trace = record.trace;
  jobs_.erase(it);  // no archive entry: the job now belongs elsewhere
  ++stats_.jobs_withdrawn;
  // The job's durable home moves with it: the caller (federation gateway)
  // persists a forward-state row before this erase commits a loss.
  (void)database_.erase_job_state(job_id);
  persist_stats();
  return out;
}

void Coordinator::reserve_id(const std::string& job_id) {
  reserved_ids_.insert(job_id);
}

void Coordinator::release_id(const std::string& job_id) {
  reserved_ids_.erase(job_id);
}

void Coordinator::set_cause_hint(const std::string& machine_id,
                                 agent::DepartureKind kind) {
  cause_hints_[machine_id] = kind;
}

const JobRecord* Coordinator::job(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  if (it != jobs_.end()) return &it->second;
  auto archived = archive_.find(job_id);
  return archived == archive_.end() ? nullptr : &archived->second;
}

const std::set<std::string>& Coordinator::jobs_on(
    const std::string& machine_id) const {
  static const std::set<std::string> kEmpty;
  auto it = jobs_by_node_.find(machine_id);
  return it == jobs_by_node_.end() ? kEmpty : it->second;
}

const std::set<std::string>& Coordinator::displaced_from(
    const std::string& machine_id) const {
  static const std::set<std::string> kEmpty;
  auto it = displaced_by_node_.find(machine_id);
  return it == displaced_by_node_.end() ? kEmpty : it->second;
}

OperationalStats Coordinator::operational_stats() const {
  OperationalStats out;
  out.live_jobs = static_cast<int>(jobs_.size());
  out.archived_jobs = static_cast<int>(archive_.size());
  auto census = [&out](const JobRecord& record) {
    switch (record.phase) {
      case JobPhase::kPending: ++out.pending; break;
      case JobPhase::kDispatching: ++out.dispatching; break;
      case JobPhase::kRunning: ++out.running; break;
      case JobPhase::kCompleted: ++out.completed; break;
      case JobPhase::kDenied: ++out.denied; break;
      case JobPhase::kSessionDisrupted: ++out.disrupted; break;
      case JobPhase::kCancelled: ++out.cancelled; break;
    }
    out.interruptions += record.interruptions;
    out.migrations += record.migrations;
    out.lost_work_seconds += record.lost_work_seconds;
  };
  for (const auto& [job_id, record] : jobs_) census(record);
  for (const auto& [job_id, record] : archive_) census(record);
  out.nodes_with_assignments = jobs_by_node_.size();
  out.nodes_with_displaced = displaced_by_node_.size();
  return out;
}

// ---------------------------------------------------------------------------
// Index + archive maintenance
// ---------------------------------------------------------------------------

void Coordinator::set_assignment(JobRecord& record,
                                 const std::string& machine_id) {
  if (record.node == machine_id) return;
  clear_assignment(record);
  record.node = machine_id;
  if (!machine_id.empty()) {
    jobs_by_node_[machine_id].insert(record.spec.id);
  }
}

void Coordinator::clear_assignment(JobRecord& record) {
  if (record.node.empty()) return;
  auto it = jobs_by_node_.find(record.node);
  if (it != jobs_by_node_.end()) {
    it->second.erase(record.spec.id);
    if (it->second.empty()) jobs_by_node_.erase(it);
  }
  record.node.clear();
}

void Coordinator::set_displaced_from(JobRecord& record,
                                     const std::string& machine_id) {
  if (record.displaced_from == machine_id) return;
  if (!record.displaced_from.empty()) {
    auto it = displaced_by_node_.find(record.displaced_from);
    if (it != displaced_by_node_.end()) {
      it->second.erase(record.spec.id);
      if (it->second.empty()) displaced_by_node_.erase(it);
    }
  }
  record.displaced_from = machine_id;
  if (!machine_id.empty()) {
    displaced_by_node_[machine_id].insert(record.spec.id);
  }
}

void Coordinator::maybe_retire(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  if (!job_phase_terminal(record.phase) || record.awaiting_dispatch_settle) {
    return;
  }
  // Unindex without clearing record.node: the archived record keeps its
  // last assignment for reporting.
  if (!record.node.empty()) {
    auto node_it = jobs_by_node_.find(record.node);
    if (node_it != jobs_by_node_.end()) {
      node_it->second.erase(job_id);
      if (node_it->second.empty()) jobs_by_node_.erase(node_it);
    }
  }
  set_displaced_from(record, "");  // unindexes and clears the field
  // Compact: drop spec payload nobody reads after the terminal transition
  // (outcome and accounting fields stay).  shrink_to_fit actually returns
  // the capacity — clear() alone keeps the allocation.
  auto drop = [](std::string& s) {
    s.clear();
    s.shrink_to_fit();
  };
  drop(record.spec.image_ref);
  drop(record.spec.owner_node);
  record.spec.preferred_storage.clear();
  record.spec.preferred_storage.shrink_to_fit();
  drop(record.preferred_node);
  drop(record.migrate_back_target);
  record.displaced_from.shrink_to_fit();
  // Hand the map node over: the record's address survives, so pointers
  // taken while the job was live stay valid.
  archive_.insert(jobs_.extract(it));
  // Persist the compacted terminal row: recovery rebuilds the archive from
  // it (phase census and accounting survive a crash).
  persist_job(archive_.at(job_id));
}

void Coordinator::settle_in_flight(const JobRecord& record,
                                   const std::string& machine_id) {
  auto& counters = record.timeslice_slot ? in_flight_timeslice_dispatches_
                   : record.fractional_slot ? in_flight_slot_dispatches_
                                            : in_flight_dispatches_;
  auto it = counters.find(machine_id);
  if (it == counters.end()) return;
  if (--it->second <= 0) counters.erase(it);
}

void Coordinator::touch_heartbeat_db(const std::string& machine_id) {
  if (!config_.batch_heartbeat_writes) {
    (void)database_.touch_heartbeat(machine_id, env_.now());
    return;
  }
  pending_heartbeat_touches_[machine_id] = env_.now();
  ++stats_.heartbeat_db_touches_coalesced;
}

void Coordinator::flush_heartbeat_db() {
  if (pending_heartbeat_touches_.empty()) return;
  const std::vector<std::pair<std::string, util::SimTime>> batch(
      pending_heartbeat_touches_.begin(), pending_heartbeat_touches_.end());
  (void)database_.touch_heartbeats(batch);
  pending_heartbeat_touches_.clear();
  ++stats_.heartbeat_db_flushes;
}

// ---------------------------------------------------------------------------
// Durability + crash recovery (tentpole: crash-consistent control plane)
// ---------------------------------------------------------------------------

void Coordinator::persist_job(const JobRecord& record) {
  database_.put_job_state(to_state(record));
  persist_stats();
}

void Coordinator::persist_stats() {
  // Integer counters only, declaration order.  queue_wait samples and the
  // heartbeat coalescing counters are observability, not control state —
  // documented non-durable (a restart resets them).
  database_.put_journal(
      kStatsJournalKey,
      {stats_.jobs_submitted, stats_.training_submitted,
       stats_.sessions_submitted, stats_.jobs_completed,
       stats_.training_completed, stats_.sessions_served,
       stats_.sessions_denied, stats_.sessions_disrupted,
       stats_.dispatches_sent, stats_.dispatches_rejected,
       stats_.jobs_withdrawn, stats_.interruptions, stats_.auth_failures,
       stats_.displaced_by_temporary, stats_.migrate_back_successes});
}

void Coordinator::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;  // invalidates every armed one-shot callback
  heartbeat_monitor_.stop();
  heartbeat_monitor_.clear();
  heartbeat_flush_timer_.stop();
  jobs_.clear();
  archive_.clear();
  jobs_by_node_.clear();
  displaced_by_node_.clear();
  in_flight_dispatches_.clear();
  in_flight_slot_dispatches_.clear();
  in_flight_timeslice_dispatches_.clear();
  cause_hints_.clear();
  reserved_ids_.clear();  // gateway recovery re-reserves from durable rows
  pending_heartbeat_touches_.clear();  // lost: beats not yet flushed
  directory_.clear();
  // Reliability evidence and migration history are in-memory only
  // (documented non-durable): scores reset to steady on restart.
  reliability_ = ReliabilityPredictor{};
  migration_tracker_ = MigrationTracker{};
  stats_ = CoordinatorStats{};
  pass_scheduled_ = false;
  GPUNION_ILOG("coordinator") << config_.id << " crashed";
}

void Coordinator::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  rebuild_from_db();
  heartbeat_monitor_.start();
  if (config_.batch_heartbeat_writes) heartbeat_flush_timer_.start();
  ++recovery_stats_.recoveries;
  GPUNION_ILOG("coordinator")
      << config_.id << " recovered: " << recovery_stats_.nodes_rebuilt
      << " nodes, " << recovery_stats_.jobs_rebuilt << " live jobs, "
      << recovery_stats_.redispatched << " re-dispatched";
  request_pass();
}

void Coordinator::rebuild_from_db() {
  recovery_stats_.nodes_rebuilt = 0;
  recovery_stats_.jobs_rebuilt = 0;
  recovery_stats_.jobs_archived = 0;
  recovery_stats_.redispatched = 0;

  // Stats counters from the journal blob (same order as persist_stats).
  if (const auto* j = database_.journal(kStatsJournalKey);
      j != nullptr && j->size() >= 15) {
    auto at = [&](std::size_t i) { return static_cast<int>((*j)[i]); };
    stats_.jobs_submitted = at(0);
    stats_.training_submitted = at(1);
    stats_.sessions_submitted = at(2);
    stats_.jobs_completed = at(3);
    stats_.training_completed = at(4);
    stats_.sessions_served = at(5);
    stats_.sessions_denied = at(6);
    stats_.sessions_disrupted = at(7);
    stats_.dispatches_sent = at(8);
    stats_.dispatches_rejected = at(9);
    stats_.jobs_withdrawn = at(10);
    stats_.interruptions = at(11);
    stats_.auth_failures = at(12);
    stats_.displaced_by_temporary = at(13);
    stats_.migrate_back_successes = at(14);
  }

  // Directory from the durable registry: full hardware profile, status and
  // token hash all survive.  Active nodes start fully free; the running
  // jobs reserved below and the next heartbeat (agent ground truth)
  // correct the scheduling view.  verified_token stays empty — the first
  // beat re-verifies against the hash (slow path once per node).
  for (const db::NodeRecord& row : database_.nodes()) {
    NodeInfo info;
    info.machine_id = row.machine_id;
    info.hostname = row.hostname;
    info.owner_group = row.owner_group;
    info.gpu_model = row.gpu_model;
    info.gpu_count = row.gpu_count;
    info.gpu_memory_gb = row.gpu_memory_gb;
    info.compute_capability = row.compute_capability;
    info.gpu_tflops = row.gpu_tflops;
    info.slots_per_gpu = row.slots_per_gpu;
    info.share_memory_cap_gb = row.share_memory_cap_gb;
    info.timeslice_tenants_per_gpu = row.timeslice_tenants_per_gpu;
    info.timeslice_oversub_ratio = row.timeslice_oversub_ratio;
    info.host_swap_gbps = row.host_swap_gbps;
    info.status = row.status;
    info.accepting = true;
    const bool active = row.status == db::NodeStatus::kActive;
    info.free_gpus = active ? row.gpu_count : 0;
    info.free_shared_slots = 0;
    info.free_timeslice_slots = 0;
    info.last_heartbeat = row.last_heartbeat;
    info.registered_at = row.registered_at;
    info.token_hash = row.auth_token_hash;
    directory_.upsert(std::move(info));
    if (active) {
      // Fresh detection window from the restart: a node that died during
      // the outage is flagged one deadline after recovery, not instantly.
      heartbeat_monitor_.observe(row.machine_id, env_.now());
    }
    ++recovery_stats_.nodes_rebuilt;
  }

  // Jobs.  Queue rows for kPending jobs survived in the database (they are
  // WAL-durable), so pending jobs are NOT re-enqueued.  kDispatching rows
  // are the crash-window hazard: the dispatch was granted but its delivery
  // never confirmed.  They requeue at the front for immediate re-dispatch;
  // if the original dispatch did land, the agent's eventual ack no longer
  // matches a kDispatching record and the stale-ack path kills the
  // duplicate run.
  for (db::JobStateRecord& row : database_.job_states()) {
    JobRecord record = from_state(row);
    record.awaiting_dispatch_settle = false;  // nothing in flight survives
    record.queued_since = env_.now();  // queue residency restarts at recovery
    const std::string job_id = record.spec.id;

    if (job_phase_terminal(record.phase)) {
      record.node = row.node;  // archived rows keep their last assignment
      archive_.emplace(job_id, std::move(record));
      ++recovery_stats_.jobs_archived;
      continue;
    }

    if (record.phase == JobPhase::kDispatching) {
      record.phase = JobPhase::kPending;
      record.preferred_node = row.node;  // try the granted node first
      if (auto* tr = config_.tracer;
          tr != nullptr && tr->enabled() && record.trace.valid()) {
        tr->record(record.trace, obs::stage::kRecoveryRedispatch, config_.id,
                   env_.now(), env_.now(), "node=" + row.node);
      }
      auto [it, inserted] = jobs_.emplace(job_id, std::move(record));
      set_displaced_from(it->second, row.displaced_from);
      database_.enqueue_request_front(db::PendingRequest{
          job_id, it->second.spec.requirements.priority,
          it->second.submitted_at});
      persist_job(it->second);
      ++recovery_stats_.redispatched;
      ++recovery_stats_.jobs_rebuilt;
      continue;
    }

    auto [it, inserted] = jobs_.emplace(job_id, std::move(record));
    JobRecord& live = it->second;
    set_displaced_from(live, row.displaced_from);

    if (live.phase == JobPhase::kRunning) {
      set_assignment(live, row.node);
      if (live.timeslice_slot) {
        (void)directory_.reserve_timeslice_slot(row.node);
      } else if (live.fractional_slot) {
        (void)directory_.reserve_slot(row.node);
      } else {
        directory_.reserve_gpus(row.node,
                                live.spec.requirements.gpu_count);
      }
    } else if (live.phase == JobPhase::kPending &&
               live.spec.type == workload::JobType::kInteractive) {
      // Re-arm the patience window for the remaining time.
      const util::Duration remaining = std::max(
          0.0, live.submitted_at + config_.session_patience - env_.now());
      const util::SimTime submitted = live.submitted_at;
      const std::uint64_t epoch = epoch_;
      env_.schedule_after_on(config_.lane, remaining,
                             [this, job_id, submitted, epoch] {
                               if (epoch != epoch_) return;
                               session_timeout(job_id, submitted);
                             });
    } else if (live.phase == JobPhase::kPending &&
               !config_.policy.auto_migration && live.interruptions > 0) {
      // Manual-coordination mode: the human-resubmit timer did not survive
      // the crash and an interrupted pending job may hold no queue row.
      // Re-arm one; the enqueue is guarded by the pending check and a
      // duplicate queue row is skimmed off by the next scheduling pass.
      const std::uint64_t epoch = epoch_;
      env_.schedule_after_on(config_.lane, config_.manual_resubmit_delay,
                             [this, job_id, epoch] {
        if (epoch != epoch_) return;
        auto jt = jobs_.find(job_id);
        if (jt == jobs_.end() || jt->second.phase != JobPhase::kPending) {
          return;
        }
        database_.enqueue_request(db::PendingRequest{
            job_id, jt->second.spec.requirements.priority, env_.now()});
        request_pass();
      });
    }
    ++recovery_stats_.jobs_rebuilt;
  }
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void Coordinator::handle_message(net::Message&& msg) {
  if (crashed_) return;  // a crashed coordinator answers nothing
  switch (msg.kind) {
    case agent::kRegisterRequest:
      handle_register(std::any_cast<const agent::RegisterRequest&>(msg.payload));
      break;
    case agent::kHeartbeat:
      handle_heartbeat(std::any_cast<const agent::Heartbeat&>(msg.payload));
      break;
    case agent::kTelemetryReport:
      handle_telemetry(
          std::any_cast<const agent::TelemetryReport&>(msg.payload));
      break;
    case agent::kDispatchResult:
      handle_dispatch_result(
          std::any_cast<const agent::DispatchResult&>(msg.payload));
      break;
    case agent::kJobStarted:
      handle_job_started(std::any_cast<const agent::JobStarted&>(msg.payload));
      break;
    case agent::kJobCompleted:
      handle_job_completed(
          std::any_cast<const agent::JobCompleted&>(msg.payload));
      break;
    case agent::kCheckpointNotice:
      handle_checkpoint_notice(
          std::any_cast<const agent::CheckpointNotice&>(msg.payload));
      break;
    case agent::kDepartureNotice:
      handle_departure_notice(
          std::any_cast<const agent::DepartureNotice&>(msg.payload));
      break;
    case agent::kKillSwitchNotice:
      handle_kill_switch_notice(
          std::any_cast<const agent::KillSwitchNotice&>(msg.payload));
      break;
    case agent::kReturnNotice:
      handle_return_notice(
          std::any_cast<const agent::ReturnNotice&>(msg.payload));
      break;
    case agent::kJobKilledAck:
      handle_job_killed_ack(
          std::any_cast<const agent::JobKilledAck&>(msg.payload));
      break;
    default:
      GPUNION_WLOG("coordinator") << "unexpected message kind " << msg.kind;
  }
}

void Coordinator::handle_register(const agent::RegisterRequest& request) {
  const NodeInfo* existing = directory_.find(request.machine_id);
  const bool returning =
      existing != nullptr &&
      (existing->status == db::NodeStatus::kDeparted ||
       existing->status == db::NodeStatus::kUnavailable);

  const std::string token = util::make_auth_token(rng_);

  NodeInfo info;
  info.machine_id = request.machine_id;
  info.hostname = request.hostname;
  info.owner_group = request.owner_group;
  info.gpu_model = request.gpu_model;
  info.gpu_count = request.gpu_count;
  info.gpu_memory_gb = request.gpu_memory_gb;
  info.compute_capability = request.compute_capability;
  info.gpu_tflops = request.gpu_tflops;
  info.slots_per_gpu = request.slots_per_gpu;
  info.share_memory_cap_gb = request.share_memory_cap_gb;
  info.timeslice_tenants_per_gpu = request.timeslice_tenants_per_gpu;
  info.timeslice_oversub_ratio = request.timeslice_oversub_ratio;
  info.host_swap_gbps = request.host_swap_gbps;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  info.free_gpus = request.gpu_count;
  info.free_shared_slots = 0;
  info.free_timeslice_slots = 0;
  info.last_heartbeat = env_.now();
  info.registered_at =
      existing != nullptr ? existing->registered_at : env_.now();
  info.token_hash = util::Sha256::hex_of(token);
  directory_.upsert(std::move(info));
  // A (re)registration starts from a clean slate: no dispatches in flight.
  in_flight_dispatches_.erase(request.machine_id);
  in_flight_slot_dispatches_.erase(request.machine_id);
  in_flight_timeslice_dispatches_.erase(request.machine_id);
  heartbeat_monitor_.observe(request.machine_id, env_.now());

  db::NodeRecord db_record;
  db_record.machine_id = request.machine_id;
  db_record.hostname = request.hostname;
  db_record.gpu_count = request.gpu_count;
  db_record.gpu_model = request.gpu_model;
  db_record.status = db::NodeStatus::kActive;
  db_record.registered_at = env_.now();
  db_record.last_heartbeat = env_.now();
  db_record.auth_token_hash = util::Sha256::hex_of(token);
  // Full hardware profile: a restarted coordinator rebuilds its scheduling
  // directory from this registry row alone.
  db_record.owner_group = request.owner_group;
  db_record.gpu_memory_gb = request.gpu_memory_gb;
  db_record.compute_capability = request.compute_capability;
  db_record.gpu_tflops = request.gpu_tflops;
  db_record.slots_per_gpu = request.slots_per_gpu;
  db_record.share_memory_cap_gb = request.share_memory_cap_gb;
  db_record.timeslice_tenants_per_gpu = request.timeslice_tenants_per_gpu;
  db_record.timeslice_oversub_ratio = request.timeslice_oversub_ratio;
  db_record.host_swap_gbps = request.host_swap_gbps;
  (void)database_.upsert_node(std::move(db_record));

  agent::RegisterResponse response;
  response.accepted = true;
  response.auth_token = token;
  response.heartbeat_interval = config_.heartbeat_interval;
  send_to_agent(request.machine_id, agent::kRegisterResponse, response,
                agent::kRegisterBytes);

  GPUNION_ILOG("coordinator")
      << (returning ? "re-registered " : "registered ") << request.machine_id
      << " (" << request.hostname << ", " << request.gpu_count << "x "
      << request.gpu_model << ")";

  if (returning) {
    on_node_returned(request.machine_id);
  } else {
    request_pass();
  }
}

void Coordinator::handle_heartbeat(const agent::Heartbeat& beat) {
  NodeInfo* node = directory_.find(beat.machine_id);
  if (node == nullptr) return;  // never registered; ignore
  if (beat.auth_token != node->verified_token) {
    if (util::Sha256::hex_of(beat.auth_token) != node->token_hash) {
      ++stats_.auth_failures;
      GPUNION_WLOG("coordinator")
          << "heartbeat with bad token from " << beat.machine_id;
      return;
    }
    node->verified_token = beat.auth_token;
  }
  ++stats_.heartbeats_processed;
  const bool was_unavailable = node->status == db::NodeStatus::kUnavailable;
  node->last_heartbeat = env_.now();
  node->last_heartbeat_seq = beat.seq;
  node->accepting = beat.accepting;
  heartbeat_monitor_.observe(beat.machine_id, env_.now());
  // The agent's counts are ground truth; re-subtract what is still in
  // flight so the scheduling view never double-books.  The in-flight maps
  // are sparse (entries exist only while dispatches are outstanding) — a
  // heartbeat must not insert.
  auto whole_it = in_flight_dispatches_.find(beat.machine_id);
  const int in_flight =
      whole_it == in_flight_dispatches_.end() ? 0 : whole_it->second;
  node->free_gpus = std::max(0, beat.free_gpus - in_flight);
  node->free_shared_slots = beat.free_shared_slots;
  auto slot_it = in_flight_slot_dispatches_.find(beat.machine_id);
  const int slots_in_flight =
      slot_it == in_flight_slot_dispatches_.end() ? 0 : slot_it->second;
  for (int i = slots_in_flight; i > 0; --i) {
    if (node->free_shared_slots > 0) {
      --node->free_shared_slots;
    } else if (node->free_gpus > 0) {
      --node->free_gpus;
      node->free_shared_slots += std::max(1, node->slots_per_gpu) - 1;
    }
  }
  node->free_timeslice_slots = beat.free_timeslice_slots;
  auto seat_it = in_flight_timeslice_dispatches_.find(beat.machine_id);
  const int seats_in_flight =
      seat_it == in_flight_timeslice_dispatches_.end() ? 0 : seat_it->second;
  for (int i = seats_in_flight; i > 0; --i) {
    if (node->free_timeslice_slots > 0) {
      --node->free_timeslice_slots;
    } else if (node->free_gpus > 0) {
      --node->free_gpus;
      node->free_timeslice_slots +=
          std::max(1, node->timeslice_tenants_per_gpu) - 1;
    }
  }
  touch_heartbeat_db(beat.machine_id);

  if (was_unavailable) {
    node->status = db::NodeStatus::kActive;
    (void)database_.set_node_status(beat.machine_id, db::NodeStatus::kActive);
    GPUNION_ILOG("coordinator")
        << beat.machine_id << " heartbeats resumed; back in the pool";
    on_node_returned(beat.machine_id);
  } else if ((node->free_gpus > 0 || node->free_shared_slots > 0 ||
              node->free_timeslice_slots > 0) &&
             database_.queue_depth() > 0) {
    request_pass();
  }

  reconcile_with_heartbeat(beat);
}

void Coordinator::reconcile_with_heartbeat(const agent::Heartbeat& beat) {
  // A completion/kill notification can be lost in transit; the heartbeat's
  // job list is the agent's ground truth.  Records that have been
  // "running" on this node for several beats but are absent from the list
  // are reconciled: finished if our progress estimate says so, otherwise
  // treated as an interruption and requeued.  The per-node index makes
  // this O(active-on-node); the hash set makes membership O(1) instead of
  // the old O(records x running_jobs) nested scan.
  auto node_jobs = jobs_by_node_.find(beat.machine_id);
  if (node_jobs == jobs_by_node_.end()) return;
  const util::Duration settle = 3.0 * config_.heartbeat_interval;
  const std::unordered_set<std::string_view> hosted(
      beat.running_jobs.begin(), beat.running_jobs.end());
  // Copy the id list: reconciliation mutates the index it walks.
  const std::vector<std::string> assigned(node_jobs->second.begin(),
                                          node_jobs->second.end());
  for (const auto& job_id : assigned) {
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) continue;
    JobRecord& record = it->second;
    if (record.phase != JobPhase::kRunning ||
        record.node != beat.machine_id || record.running_since < 0 ||
        env_.now() - record.running_since < settle) {
      continue;
    }
    if (hosted.contains(std::string_view(job_id))) continue;

    const bool finished =
        record.spec.type == workload::JobType::kInteractive
            ? env_.now() - record.running_since >=
                  0.97 * record.spec.reference_duration
            : estimate_progress(record) >= 0.98;
    if (finished) {
      GPUNION_WLOG("coordinator")
          << job_id << " missing from " << beat.machine_id
          << " heartbeat; reconciling as completed (lost notification)";
      agent::JobCompleted done;
      done.machine_id = beat.machine_id;
      done.job_id = job_id;
      handle_job_completed(done);
    } else {
      GPUNION_WLOG("coordinator")
          << job_id << " missing from " << beat.machine_id
          << " heartbeat; requeueing (lost run)";
      release_capacity(record, beat.machine_id);
      interrupt_job(record, agent::DepartureKind::kEmergency,
                    db::AllocationOutcome::kLost, env_.now());
      maybe_retire(job_id);  // sessions disrupt terminally
    }
  }
}

void Coordinator::handle_telemetry(const agent::TelemetryReport& report) {
  database_.record_metric("gpu_util." + report.machine_id, env_.now(),
                          report.telemetry.mean_gpu_utilization());
}

void Coordinator::handle_dispatch_result(const agent::DispatchResult& result) {
  auto it = jobs_.find(result.job_id);
  JobRecord* record = it == jobs_.end() ? nullptr : &it->second;
  // Settle the in-flight counter for this dispatch, but only when the
  // record's current assignment still names this node: a mismatched late
  // ack means the dispatch was already settled (dispatch timeout or node
  // loss), and decrementing again would eat another job's in-flight count
  // and double-book capacity until the next heartbeat.  The record's
  // fractional_slot identifies which counter its dispatch incremented —
  // never cross counter types.
  if (record != nullptr && record->node == result.machine_id &&
      (record->phase == JobPhase::kDispatching ||
       record->phase == JobPhase::kCancelled)) {
    settle_in_flight(*record, result.machine_id);
  }

  if (record == nullptr || record->phase != JobPhase::kDispatching ||
      record->node != result.machine_id) {
    // Stale ack (e.g. after a dispatch timeout already requeued the job).
    // If the node actually started the work, kill it to avoid a double run.
    if (result.accepted) {
      send_to_agent(result.machine_id, agent::kKillJob,
                    agent::KillJobCommand{result.job_id,
                                          /*allow_checkpoint=*/false},
                    agent::kControlBytes);
    }
    // A cancel that was waiting for this ack can retire now.
    if (record != nullptr && record->awaiting_dispatch_settle &&
        record->node == result.machine_id) {
      record->awaiting_dispatch_settle = false;
      maybe_retire(result.job_id);
    }
    return;
  }

  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record->trace.valid()) {
    const util::SimTime sent =
        record->dispatch_sent_at >= 0 ? record->dispatch_sent_at : env_.now();
    tr->record(record->trace, obs::stage::kDispatch, config_.id, sent,
               env_.now(),
               (result.accepted ? "node=" : "rejected,node=") +
                   result.machine_id);
  }
  record->dispatch_sent_at = -1;

  if (!result.accepted) {
    ++stats_.dispatches_rejected;
    ++record->dispatch_rejects;
    release_capacity(*record, result.machine_id);
    clear_assignment(*record);
    GPUNION_DLOG("coordinator") << result.job_id << " rejected by "
                                << result.machine_id << ": " << result.reason;
    if (record->dispatch_rejects >= 20) {
      record->phase = JobPhase::kCancelled;  // give up; configuration problem
      GPUNION_WLOG("coordinator")
          << result.job_id << " cancelled after repeated rejections";
      maybe_retire(result.job_id);
      return;
    }
    requeue(*record, /*front=*/true);
    return;
  }

  record->phase = JobPhase::kRunning;
  record->dispatch_rejects = 0;
  record->reclaim_requested = false;
  record->running_since = env_.now();
  record->segment_start_progress = record->checkpointed_progress;
  if (const NodeInfo* node =
          static_cast<const Directory&>(directory_).find(result.machine_id)) {
    record->node_speed = workload::speed_factor(node->gpu_tflops) *
                         std::max(1, record->spec.requirements.gpu_count);
    if (record->fractional_slot) {
      record->node_speed *= workload::kSharedComputeShare;
    } else if (record->timeslice_slot) {
      // A time-slice tenant runs at full device speed but only while
      // resident; the expected long-run share under round-robin rotation is
      // 1/N, which is what progress estimation should assume.
      record->node_speed *=
          1.0 / std::max(1, node->timeslice_tenants_per_gpu);
    }
  }
  record->open_allocation = database_.open_allocation(
      result.job_id, result.machine_id, result.gpu_indices, env_.now(),
      result.gpu_fraction,
      record->spec.type == workload::JobType::kInteractive);
  if (record->first_dispatched_at < 0) {
    record->first_dispatched_at = env_.now();
    stats_.queue_wait.add(env_.now() - record->submitted_at);
  }
  persist_job(*record);
}

void Coordinator::handle_job_started(const agent::JobStarted& started) {
  auto it = jobs_.find(started.job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  if (record.phase != JobPhase::kRunning ||
      record.node != started.machine_id) {
    return;
  }
  record.running_since = env_.now();
  record.segment_start_progress = started.start_progress;

  if (migration_tracker_.has_open(started.job_id)) {
    const bool was_migrate_back =
        !record.migrate_back_target.empty() &&
        record.migrate_back_target == started.machine_id;
    migration_tracker_.resumed(started.job_id, started.machine_id, env_.now(),
                               was_migrate_back);
    if (was_migrate_back) {
      ++record.migrate_backs;
      if (record.last_interruption_cause ==
          agent::DepartureKind::kTemporary) {
        ++stats_.migrate_back_successes;
      }
      set_displaced_from(record, "");
    } else if (started.machine_id != record.displaced_from) {
      ++record.migrations;
    }
    record.migrate_back_target.clear();
    record.preferred_node.clear();
  }
  persist_job(record);
}

void Coordinator::handle_job_completed(const agent::JobCompleted& done) {
  auto it = jobs_.find(done.job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  if (record.phase != JobPhase::kRunning || record.node != done.machine_id) {
    return;  // stale (job was already migrated elsewhere)
  }
  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record.trace.valid()) {
    const util::SimTime since =
        record.running_since >= 0 ? record.running_since : env_.now();
    tr->record(record.trace, obs::stage::kRun, config_.id, since, env_.now(),
               "completed,node=" + done.machine_id);
  }
  record.phase = JobPhase::kCompleted;
  record.completed_at = env_.now();
  record.checkpointed_progress = 1.0;
  if (record.open_allocation != 0) {
    (void)database_.close_allocation(record.open_allocation,
                                     db::AllocationOutcome::kCompleted,
                                     env_.now());
    record.open_allocation = 0;
  }
  release_capacity(record, done.machine_id);
  ++stats_.jobs_completed;
  if (record.spec.type == workload::JobType::kInteractive) {
    ++stats_.sessions_served;
  } else {
    ++stats_.training_completed;
  }
  store_.forget(done.job_id);
  migration_tracker_.abandon(done.job_id);
  request_pass();
  maybe_retire(done.job_id);
}

void Coordinator::handle_checkpoint_notice(
    const agent::CheckpointNotice& notice) {
  auto it = jobs_.find(notice.job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  record.checkpointed_progress =
      std::max(record.checkpointed_progress, notice.progress);
  record.last_checkpoint_at = env_.now();
  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record.trace.valid()) {
    // Sibling of the run span, not its successor: checkpoints annotate the
    // run rather than redirect the causal chain.
    tr->record(record.trace, obs::stage::kCheckpoint, config_.id, env_.now(),
               env_.now(), "progress=" + std::to_string(notice.progress),
               /*advance=*/false);
  }
  persist_job(record);
}

void Coordinator::handle_departure_notice(
    const agent::DepartureNotice& notice) {
  // Fresh checkpoint results from the grace window arrive inside the notice.
  for (const auto& departing : notice.jobs) {
    auto it = jobs_.find(departing.job_id);
    if (it == jobs_.end()) continue;
    it->second.checkpointed_progress = std::max(
        it->second.checkpointed_progress, departing.checkpointed_progress);
    it->second.last_checkpoint_at = env_.now();
    persist_job(it->second);
  }
  if (NodeInfo* node = directory_.find(notice.machine_id)) {
    node->status = db::NodeStatus::kDeparted;
    node->free_gpus = 0;
    node->free_shared_slots = 0;
    node->free_timeslice_slots = 0;
  }
  (void)database_.set_node_status(notice.machine_id,
                                  db::NodeStatus::kDeparted);
  reliability_.record_departure(notice.machine_id, env_.now());
  in_flight_dispatches_.erase(notice.machine_id);
  in_flight_slot_dispatches_.erase(notice.machine_id);
  in_flight_timeslice_dispatches_.erase(notice.machine_id);
  heartbeat_monitor_.forget(notice.machine_id);
  interrupt_jobs_on(notice.machine_id, notice.kind, env_.now());
  GPUNION_ILOG("coordinator") << notice.machine_id << " departed ("
                              << departure_kind_name(notice.kind) << ")";
}

void Coordinator::handle_kill_switch_notice(
    const agent::KillSwitchNotice& notice) {
  for (const auto& job_id : notice.killed_jobs) {
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) continue;
    JobRecord& record = it->second;
    if (record.node != notice.machine_id ||
        (record.phase != JobPhase::kRunning &&
         record.phase != JobPhase::kDispatching)) {
      continue;
    }
    release_capacity(record, notice.machine_id);
    interrupt_job(record, agent::DepartureKind::kReclaim,
                  db::AllocationOutcome::kKilled, env_.now());
    maybe_retire(job_id);  // sessions disrupt terminally
  }
  request_pass();
}

void Coordinator::handle_return_notice(const agent::ReturnNotice& notice) {
  on_node_returned(notice.machine_id);
}

void Coordinator::handle_job_killed_ack(const agent::JobKilledAck& ack) {
  auto it = jobs_.find(ack.job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  record.checkpointed_progress =
      std::max(record.checkpointed_progress, ack.checkpointed_progress);

  if (!record.migrate_back_pending) {
    persist_job(record);  // progress merge alone
    return;  // cancel path: nothing more
  }
  record.migrate_back_pending = false;
  if (record.phase != JobPhase::kRunning || record.node != ack.machine_id) {
    persist_job(record);
    return;
  }
  if (record.open_allocation != 0) {
    (void)database_.close_allocation(record.open_allocation,
                                     db::AllocationOutcome::kMigrated,
                                     env_.now());
    record.open_allocation = 0;
  }
  release_capacity(record, ack.machine_id);

  auto& migration = migration_tracker_.open(
      ack.job_id, ack.machine_id, agent::DepartureKind::kTemporary, env_.now(),
      record.checkpointed_progress, record.checkpointed_progress, 0.0);
  migration.migrate_back_eviction = true;

  record.preferred_node = record.migrate_back_target;
  clear_assignment(record);
  requeue(record, /*front=*/true);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void Coordinator::request_pass() {
  if (pass_scheduled_ || !started_ || crashed_) return;
  pass_scheduled_ = true;
  const std::uint64_t epoch = epoch_;
  env_.schedule_after_on(config_.lane, 0.0, [this, epoch] {
    if (epoch != epoch_) return;  // armed before a crash/recovery
    pass_scheduled_ = false;
    schedule_pass();
  });
}

void Coordinator::schedule_pass() {
  if (crashed_) return;
  std::vector<db::PendingRequest> retry;
  while (auto request = database_.pop_request()) {
    auto it = jobs_.find(request->job_id);
    if (it == jobs_.end() || it->second.phase != JobPhase::kPending) {
      continue;  // cancelled / denied / already placed
    }
    if (!try_place(it->second)) {
      retry.push_back(*request);
    }
  }
  for (auto& request : retry) {
    database_.enqueue_request(std::move(request));
  }
}

bool Coordinator::try_place(JobRecord& record) {
  auto decision =
      engine_.place(record.spec, record.preferred_node, env_.now());

  if (!decision) {
    // Nothing free.  If the submitter's own machine is full of guests, the
    // owner can reclaim it (provider supremacy working *for* the owner).
    if (config_.policy.owner_reclaim && on_unplaceable_ &&
        !record.reclaim_requested && !record.spec.owner_node.empty()) {
      record.reclaim_requested = true;
      on_unplaceable_(record.spec, record.spec.owner_node,
                      record.spec.requirements.gpu_count);
    }
    return false;
  }
  dispatch_to(record, *decision->node, *decision);
  return true;
}

void Coordinator::release_capacity(const JobRecord& record,
                                   const std::string& machine_id) {
  if (record.timeslice_slot) {
    directory_.release_timeslice_slot(machine_id);
  } else if (record.fractional_slot) {
    directory_.release_slot(machine_id);
  } else {
    directory_.release_gpus(machine_id, record.spec.requirements.gpu_count);
  }
}

void Coordinator::dispatch_to(JobRecord& record, const NodeInfo& node,
                              const PlacementDecision& decision) {
  const bool timeslice = decision.timeslice;
  const bool fractional = decision.fractional;
  if (timeslice) {
    (void)directory_.reserve_timeslice_slot(node.machine_id);
    ++in_flight_timeslice_dispatches_[node.machine_id];
  } else if (fractional) {
    (void)directory_.reserve_slot(node.machine_id);
    ++in_flight_slot_dispatches_[node.machine_id];
  } else {
    directory_.reserve_gpus(node.machine_id,
                            record.spec.requirements.gpu_count);
    ++in_flight_dispatches_[node.machine_id];
  }
  record.fractional_slot = fractional;
  record.timeslice_slot = timeslice;
  set_assignment(record, node.machine_id);
  record.phase = JobPhase::kDispatching;
  const std::uint64_t generation = ++record.dispatch_generation;
  record.dispatch_sent_at = env_.now();
  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record.trace.valid()) {
    tr->record(record.trace, obs::stage::kQueueWait, config_.id,
               record.queued_since, env_.now());
    tr->record(record.trace, obs::stage::kPlacement, config_.id, env_.now(),
               env_.now(),
               "node=" + node.machine_id +
                   (fractional ? ",slot" : timeslice ? ",seat" : ""));
  }

  agent::DispatchRequest request;
  request.job = record.spec;
  request.fractional = fractional;
  request.timeslice = timeslice;
  if (config_.policy.checkpoint_restore &&
      record.checkpointed_progress > 0 &&
      record.spec.type == workload::JobType::kTraining) {
    request.start_progress = record.checkpointed_progress;
    auto latest = store_.latest(record.spec.id);
    auto bytes = store_.restore_bytes(record.spec.id);
    if (latest.ok() && bytes.ok()) {
      request.restore_bytes = *bytes;
      request.restore_from = latest->storage_node;
    }
  }
  ++stats_.dispatches_sent;
  send_to_agent(node.machine_id, agent::kDispatch, std::move(request),
                agent::kControlBytes + 340);

  persist_job(record);
  const std::string job_id = record.spec.id;
  const std::uint64_t epoch = epoch_;
  env_.schedule_after_on(config_.lane, config_.dispatch_timeout,
                         [this, job_id, generation, epoch] {
    if (epoch != epoch_) return;  // armed before a crash
    dispatch_timeout(job_id, generation);
  });
}

void Coordinator::dispatch_timeout(const std::string& job_id,
                                   std::uint64_t generation) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  if (record.dispatch_generation != generation) return;  // resolved long ago
  if (record.awaiting_dispatch_settle) {
    // Cancelled mid-dispatch and the ack never came: settle the counter so
    // the node's capacity stops being discounted, then retire.
    settle_in_flight(record, record.node);
    record.awaiting_dispatch_settle = false;
    maybe_retire(job_id);
    return;
  }
  if (record.phase != JobPhase::kDispatching) return;
  GPUNION_WLOG("coordinator")
      << "dispatch of " << job_id << " to " << record.node << " timed out";
  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record.trace.valid()) {
    const util::SimTime sent =
        record.dispatch_sent_at >= 0 ? record.dispatch_sent_at : env_.now();
    tr->record(record.trace, obs::stage::kDispatch, config_.id, sent,
               env_.now(), "timeout,node=" + record.node);
  }
  record.dispatch_sent_at = -1;
  settle_in_flight(record, record.node);
  release_capacity(record, record.node);
  clear_assignment(record);
  requeue(record, /*front=*/true);
}

void Coordinator::session_timeout(const std::string& job_id,
                                  util::SimTime submitted_at) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobRecord& record = it->second;
  if (record.submitted_at != submitted_at) return;  // a later resubmission
  if (record.phase != JobPhase::kPending) return;
  database_.remove_request(job_id);
  record.phase = JobPhase::kDenied;
  ++stats_.sessions_denied;
  maybe_retire(job_id);
}

void Coordinator::requeue(JobRecord& record, bool front) {
  record.phase = JobPhase::kPending;
  record.queued_since = env_.now();
  db::PendingRequest request{record.spec.id,
                             record.spec.requirements.priority,
                             record.submitted_at};
  if (front && !config_.policy.requeue_to_tail) {
    database_.enqueue_request_front(std::move(request));
  } else {
    database_.enqueue_request(std::move(request));
  }
  persist_job(record);
  request_pass();
}

// ---------------------------------------------------------------------------
// Churn handling
// ---------------------------------------------------------------------------

double Coordinator::estimate_progress(const JobRecord& record) const {
  if (record.phase != JobPhase::kRunning || record.running_since < 0) {
    return record.checkpointed_progress;
  }
  // Anchor on the most recent exact observation: a checkpoint notice pins
  // (progress, time) precisely, which bounds estimation drift (from
  // serialization pauses the agent takes) to a single checkpoint interval.
  double base_progress = record.segment_start_progress;
  util::SimTime base_time = record.running_since;
  if (record.last_checkpoint_at >= record.running_since) {
    base_progress = record.checkpointed_progress;
    base_time = record.last_checkpoint_at;
  }
  const double elapsed_work = (env_.now() - base_time) * record.node_speed;
  const double estimate =
      base_progress +
      elapsed_work / std::max(1.0, record.spec.reference_duration);
  return std::clamp(std::max(estimate, record.checkpointed_progress), 0.0,
                    1.0);
}

void Coordinator::interrupt_job(JobRecord& record, agent::DepartureKind cause,
                                db::AllocationOutcome outcome,
                                util::SimTime at) {
  const double progress_at_interruption = estimate_progress(record);
  const double restored =
      config_.policy.checkpoint_restore &&
              record.spec.type == workload::JobType::kTraining
          ? record.checkpointed_progress
          : 0.0;
  // Recomputation measured in wall-clock time on the (lost) node: the job
  // redoes (progress delta x reference duration) of work at node speed.
  const double lost_seconds =
      std::max(0.0, progress_at_interruption - restored) *
      record.spec.reference_duration / std::max(0.1, record.node_speed);

  if (record.open_allocation != 0) {
    (void)database_.close_allocation(record.open_allocation, outcome,
                                     env_.now());
    record.open_allocation = 0;
  }
  ++stats_.interruptions;
  ++record.interruptions;
  record.lost_work_seconds += lost_seconds;
  record.last_interruption_cause = cause;
  if (auto* tr = config_.tracer;
      tr != nullptr && tr->enabled() && record.trace.valid()) {
    if (record.running_since >= 0) {
      tr->record(record.trace, obs::stage::kRun, config_.id,
                 record.running_since, env_.now(),
                 "interrupted,node=" + record.node);
    }
    tr->record(record.trace, obs::stage::kInterrupt, config_.id, at,
               env_.now(),
               std::string("cause=") +
                   std::string(agent::departure_kind_name(cause)));
  }
  set_displaced_from(record, record.node);
  clear_assignment(record);
  record.running_since = -1;
  if (cause == agent::DepartureKind::kTemporary &&
      record.spec.type == workload::JobType::kTraining) {
    ++stats_.displaced_by_temporary;
  }

  if (record.spec.type == workload::JobType::kInteractive) {
    record.phase = JobPhase::kSessionDisrupted;
    ++stats_.sessions_disrupted;
    persist_job(record);
    return;  // sessions are not migrated; the user re-requests
  }

  record.checkpointed_progress = restored;
  migration_tracker_.open(record.spec.id, record.displaced_from, cause, at,
                          progress_at_interruption, restored, lost_seconds);

  if (config_.policy.auto_migration) {
    // Displaced jobs keep their place in line — except reclaim evictions:
    // the owner's job must win the freed GPU, so the guest goes to the tail.
    requeue(record, /*front=*/cause != agent::DepartureKind::kReclaim);
  } else {
    // Manual coordination: a human notices the failure and resubmits later.
    const std::string job_id = record.spec.id;
    record.phase = JobPhase::kPending;
    record.queued_since = env_.now();
    persist_job(record);
    const std::uint64_t epoch = epoch_;
    env_.schedule_after_on(config_.lane, config_.manual_resubmit_delay,
                           [this, job_id, epoch] {
      if (epoch != epoch_) return;  // armed before a crash
      auto it = jobs_.find(job_id);
      if (it == jobs_.end() || it->second.phase != JobPhase::kPending) return;
      database_.enqueue_request(db::PendingRequest{
          job_id, it->second.spec.requirements.priority, env_.now()});
      request_pass();
    });
  }
}

void Coordinator::interrupt_jobs_on(const std::string& machine_id,
                                    agent::DepartureKind cause,
                                    util::SimTime at) {
  auto node_jobs = jobs_by_node_.find(machine_id);
  if (node_jobs != jobs_by_node_.end()) {
    // Copy: interruption unbinds the jobs this walks (id order preserved).
    const std::vector<std::string> assigned(node_jobs->second.begin(),
                                            node_jobs->second.end());
    for (const auto& job_id : assigned) {
      auto it = jobs_.find(job_id);
      if (it == jobs_.end()) continue;
      JobRecord& record = it->second;
      if (record.node != machine_id) continue;
      if (record.phase == JobPhase::kRunning) {
        interrupt_job(record, cause,
                      cause == agent::DepartureKind::kScheduled
                          ? db::AllocationOutcome::kMigrated
                          : db::AllocationOutcome::kLost,
                      at);
        maybe_retire(job_id);  // sessions disrupt terminally
      } else if (record.phase == JobPhase::kDispatching) {
        // In-flight dispatch to a dead node: no allocation opened yet.
        clear_assignment(record);
        requeue(record, /*front=*/true);
      } else if (record.phase == JobPhase::kCancelled &&
                 record.awaiting_dispatch_settle) {
        // Cancelled mid-dispatch to a node that just died: its in-flight
        // counters were wholesale-erased with the node, so there is
        // nothing left to settle.  Retire now — otherwise the pending
        // dispatch timeout could steal a decrement from a fresh dispatch
        // after the node re-registers.
        record.awaiting_dispatch_settle = false;
        maybe_retire(job_id);
      }
    }
  }
  request_pass();
}

void Coordinator::on_node_lost(const std::string& machine_id) {
  NodeInfo* node = directory_.find(machine_id);
  if (node == nullptr || node->status != db::NodeStatus::kActive) return;
  node->status = db::NodeStatus::kUnavailable;
  node->free_gpus = 0;
  node->free_shared_slots = 0;
  node->free_timeslice_slots = 0;
  (void)database_.set_node_status(machine_id, db::NodeStatus::kUnavailable);
  reliability_.record_departure(machine_id, env_.now());
  in_flight_dispatches_.erase(machine_id);
  in_flight_slot_dispatches_.erase(machine_id);
  in_flight_timeslice_dispatches_.erase(machine_id);
  heartbeat_monitor_.forget(machine_id);

  agent::DepartureKind cause = agent::DepartureKind::kEmergency;
  auto hint = cause_hints_.find(machine_id);
  if (hint != cause_hints_.end()) {
    cause = hint->second;
    cause_hints_.erase(hint);
  }
  // The node actually vanished around its last heartbeat; measuring the
  // interruption from there makes downtime include detection latency.
  interrupt_jobs_on(machine_id, cause, node->last_heartbeat);
}

void Coordinator::on_node_returned(const std::string& machine_id) {
  if (config_.policy.migrate_back) {
    trigger_migrate_back(machine_id);
  }
  // Pending jobs displaced from this node prefer to land back on it.
  // The displaced-from index makes a node's return O(its displaced jobs).
  auto displaced = displaced_by_node_.find(machine_id);
  if (displaced != displaced_by_node_.end()) {
    for (const auto& job_id : displaced->second) {
      auto it = jobs_.find(job_id);
      if (it == jobs_.end()) continue;
      JobRecord& record = it->second;
      if (record.phase == JobPhase::kPending) {
        record.preferred_node = machine_id;
        record.migrate_back_target = machine_id;
        persist_job(record);
      }
    }
  }
  request_pass();
}

void Coordinator::trigger_migrate_back(const std::string& machine_id) {
  auto displaced = displaced_by_node_.find(machine_id);
  if (displaced == displaced_by_node_.end()) return;
  for (const auto& job_id : displaced->second) {
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) continue;
    JobRecord& record = it->second;
    if (record.phase != JobPhase::kRunning) continue;
    if (record.migrate_back_pending || record.node == machine_id) continue;
    if (record.spec.type != workload::JobType::kTraining) continue;
    record.migrate_back_pending = true;
    record.migrate_back_target = machine_id;
    persist_job(record);
    send_to_agent(record.node, agent::kKillJob,
                  agent::KillJobCommand{job_id, /*allow_checkpoint=*/true},
                  agent::kControlBytes);
  }
}

void Coordinator::send_to_agent(const std::string& machine_id, int kind,
                                std::any payload, std::uint64_t bytes) {
  net::Message msg;
  msg.from = config_.id;
  msg.to = machine_id;
  msg.kind = kind;
  msg.traffic_class = net::TrafficClass::kControl;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  (void)transport_.send(std::move(msg));
}

}  // namespace gpunion::sched
