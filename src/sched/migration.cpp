#include "sched/migration.h"

namespace gpunion::sched {

MigrationRecord& MigrationTracker::open(const std::string& job_id,
                                        const std::string& from_node,
                                        agent::DepartureKind cause,
                                        util::SimTime at,
                                        double progress_at_interruption,
                                        double progress_restored,
                                        double lost_work_seconds) {
  auto it = open_.find(job_id);
  if (it != open_.end()) {
    // Interrupted again before resuming (e.g. assigned node vanished during
    // dispatch): keep the original interruption time, accumulate lost work.
    MigrationRecord& record = records_[it->second];
    record.lost_work_seconds += lost_work_seconds;
    return record;
  }
  MigrationRecord record;
  record.job_id = job_id;
  record.from_node = from_node;
  record.cause = cause;
  record.interrupted_at = at;
  record.progress_at_interruption = progress_at_interruption;
  record.progress_restored = progress_restored;
  record.lost_work_seconds = lost_work_seconds;
  records_.push_back(record);
  open_[job_id] = records_.size() - 1;
  return records_.back();
}

void MigrationTracker::resumed(const std::string& job_id,
                               const std::string& to_node, util::SimTime at,
                               bool was_migrate_back) {
  auto it = open_.find(job_id);
  if (it == open_.end()) return;
  MigrationRecord& record = records_[it->second];
  record.to_node = to_node;
  record.resumed_at = at;
  record.was_migrate_back = was_migrate_back;
  open_.erase(it);
}

void MigrationTracker::abandon(const std::string& job_id) {
  open_.erase(job_id);
}

std::vector<const MigrationRecord*> MigrationTracker::by_cause(
    agent::DepartureKind k) const {
  std::vector<const MigrationRecord*> out;
  for (const auto& record : records_) {
    if (record.cause == k) out.push_back(&record);
  }
  return out;
}

double MigrationTracker::success_rate(agent::DepartureKind cause,
                                      util::Duration within) const {
  std::size_t total = 0;
  std::size_t ok = 0;
  for (const auto& record : records_) {
    if (record.cause != cause || record.migrate_back_eviction) continue;
    ++total;
    if (record.resumed() && record.downtime() <= within) ++ok;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(ok) / static_cast<double>(total);
}

util::SampleSet MigrationTracker::downtimes(agent::DepartureKind cause) const {
  util::SampleSet out;
  for (const auto& record : records_) {
    if (record.cause == cause && record.resumed() &&
        !record.migrate_back_eviction) {
      out.add(record.downtime());
    }
  }
  return out;
}

util::SampleSet MigrationTracker::lost_work_minutes(
    agent::DepartureKind cause) const {
  util::SampleSet out;
  for (const auto& record : records_) {
    if (record.cause == cause && !record.migrate_back_eviction) {
      out.add(record.lost_work_seconds / 60.0);
    }
  }
  return out;
}

double MigrationTracker::migrate_back_rate() const {
  std::size_t displaced = 0;
  std::size_t returned = 0;
  for (const auto& record : records_) {
    if (record.migrate_back_eviction) {
      if (record.resumed() && record.was_migrate_back) ++returned;
      continue;
    }
    if (record.cause == agent::DepartureKind::kTemporary && record.resumed() &&
        record.to_node != record.from_node) {
      ++displaced;
    }
  }
  return displaced == 0
             ? 0.0
             : static_cast<double>(returned) / static_cast<double>(displaced);
}

}  // namespace gpunion::sched
