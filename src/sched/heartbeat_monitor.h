// Heartbeat-based failure detection.
//
// §3.5: "nodes that miss three consecutive heartbeats are marked as
// unavailable, triggering automatic workload migration."  A node whose last
// beat is older than miss_threshold x interval is reported lost.  Detection
// latency is therefore in (miss x interval, (miss+1) x interval) — the
// dominant term in emergency-departure downtime (Fig. 3).
//
// The monitor keeps tracked nodes in an expiry-ordered set keyed by
// (last_heartbeat, machine_id).  A sweep pops entries from the front only
// while they are actually past the deadline, so its cost is
// O(expired log n) instead of O(fleet) — the §5.2 "heartbeat monitoring
// beyond 200 nodes" bottleneck.  The coordinator feeds the ordering through
// observe() on every authenticated beat and prunes departures with forget().
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/directory.h"
#include "sim/environment.h"

namespace gpunion::sched {

class HeartbeatMonitor {
 public:
  using OnNodeLost = std::function<void(const std::string& machine_id)>;

  /// `lane`: actor lane the sweep timer fires on (the coordinator's lane).
  HeartbeatMonitor(sim::Environment& env, Directory& directory,
                   util::Duration heartbeat_interval, int miss_threshold,
                   OnNodeLost on_node_lost, sim::LaneId lane = sim::kMainLane);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// Records a heartbeat (or registration) from `machine_id` at time `at`.
  /// Re-files the node in the expiry order; beats arriving out of node
  /// order are handled — only the newest observation counts.
  void observe(const std::string& machine_id, util::SimTime at);

  /// Stops tracking a node (announced departure / already handled loss).
  void forget(const std::string& machine_id);

  /// Drops all tracked nodes (coordinator crash).  Recovery re-observes
  /// the fleet, giving every node a fresh detection window — a node that
  /// died during the outage is detected one deadline after recovery.
  void clear() {
    by_expiry_.clear();
    last_seen_.clear();
  }

  /// One sweep (also called by the timer).  Pops only entries past the
  /// detection deadline; nodes no longer kActive in the directory are
  /// dropped silently (their loss was already handled through another
  /// path).  Returns nodes newly lost.
  std::vector<std::string> sweep();

  util::Duration detection_deadline() const {
    return heartbeat_interval_ * miss_threshold_;
  }

  /// Nodes currently in the expiry order.
  std::size_t tracked() const { return by_expiry_.size(); }
  /// Entries popped by the most recent sweep (its actual work).
  std::size_t last_sweep_examined() const { return last_sweep_examined_; }
  /// Cumulative entries popped across all sweeps (bench observability:
  /// total sweep work is O(expirations), not O(sweeps x fleet)).
  std::uint64_t total_examined() const { return total_examined_; }
  std::uint64_t sweeps() const { return sweeps_; }

 private:
  sim::Environment& env_;
  Directory& directory_;
  util::Duration heartbeat_interval_;
  int miss_threshold_;
  OnNodeLost on_node_lost_;
  sim::PeriodicTimer timer_;

  // Expiry order: earliest last-heartbeat first; id tiebreak keeps
  // simultaneous observations deterministic.
  std::set<std::pair<util::SimTime, std::string>> by_expiry_;
  std::unordered_map<std::string, util::SimTime> last_seen_;
  std::size_t last_sweep_examined_ = 0;
  std::uint64_t total_examined_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace gpunion::sched
