// Heartbeat-based failure detection.
//
// §3.5: "nodes that miss three consecutive heartbeats are marked as
// unavailable, triggering automatic workload migration."  The monitor sweeps
// the directory once per heartbeat interval; a node whose last beat is older
// than miss_threshold x interval is reported lost.  Detection latency is
// therefore in (miss x interval, (miss+1) x interval) — the dominant term in
// emergency-departure downtime (Fig. 3).
#pragma once

#include <functional>
#include <string>

#include "sched/directory.h"
#include "sim/environment.h"

namespace gpunion::sched {

class HeartbeatMonitor {
 public:
  using OnNodeLost = std::function<void(const std::string& machine_id)>;

  HeartbeatMonitor(sim::Environment& env, Directory& directory,
                   util::Duration heartbeat_interval, int miss_threshold,
                   OnNodeLost on_node_lost);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// One sweep (also called by the timer).  Returns nodes newly lost.
  std::vector<std::string> sweep();

  util::Duration detection_deadline() const {
    return heartbeat_interval_ * miss_threshold_;
  }

 private:
  sim::Environment& env_;
  Directory& directory_;
  util::Duration heartbeat_interval_;
  int miss_threshold_;
  OnNodeLost on_node_lost_;
  sim::PeriodicTimer timer_;
};

}  // namespace gpunion::sched
