// Placement engine: eligibility + strategy-driven node selection.
//
// Carved out of the coordinator so that the scheduling pass is a pure
// function of the indexed ClusterView, the platform policy and the
// configured PlacementStrategy.  The coordinator keeps only queue/dispatch
// mechanics; everything about *where* a job lands lives here.
//
// Shared placement: when the policy enables GPU sharing and the strategy
// wants it for a shareable job, the engine tries a time-slice seat
// (nvshare-style rotating residency, full memory per tenant) first, then a
// spatial fractional slot, and only then falls back to a whole-device
// allocation — three points on the isolation/utilization trade-off.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/directory.h"
#include "sched/policy.h"
#include "sched/reliability.h"
#include "sched/strategies.h"
#include "workload/job.h"

namespace gpunion::sched {

/// Where (and how) one job should run.
struct PlacementDecision {
  const NodeInfo* node = nullptr;
  /// Placed into a spatial fractional slot instead of whole GPUs.
  bool fractional = false;
  /// Placed into an nvshare-style time-slice seat (full memory, rotating
  /// residency per quantum).  Mutually exclusive with `fractional`.
  bool timeslice = false;
};

/// Hard eligibility for a whole-GPU placement: status/accepting/capacity/
/// compatibility plus the reliability degradation rule.
bool node_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing,
                   const ReliabilityPredictor& reliability, util::SimTime now,
                   bool enforce_degradation);

/// Hard eligibility for a fractional-slot placement: sharing enabled on the
/// node, single-GPU shareable job within the per-tenant memory cap, and a
/// slot (or a free GPU to open in shared mode) available.
bool slot_eligible(const NodeInfo& node, const workload::JobSpec& job,
                   bool cross_group_sharing);

/// Hard eligibility for a time-slice seat: time-slicing enabled on the
/// node, single-GPU shareable job whose working set fits in device VRAM,
/// and a seat (or a free GPU to open in time-slice mode) available.
bool timeslice_eligible(const NodeInfo& node, const workload::JobSpec& job,
                        bool cross_group_sharing);

class PlacementEngine {
 public:
  /// Unknown strategy names fall back to round_robin (§3.5 default).
  PlacementEngine(Directory& directory,
                  const ReliabilityPredictor& reliability,
                  const PlatformPolicy& policy,
                  const std::string& strategy_name);

  /// One placement decision for `job`.  Does not reserve capacity — that is
  /// the caller's (so a rejected dispatch can be retried elsewhere).
  /// `preferred_node` wins whenever it is eligible (migrate-back affinity).
  std::optional<PlacementDecision> place(const workload::JobSpec& job,
                                         const std::string& preferred_node,
                                         util::SimTime now);

  /// Existence check under EXACTLY the gating place() applies (policy,
  /// strategy fractional preference, reliability degradation): could this
  /// campus place the job right now?  The federation gateway uses it to
  /// decide what to forward out and what to admit in — re-deriving the
  /// predicates there would drift from real placement.  Early-exits on the
  /// first eligible node (O(1) on a fleet with free capacity) instead of
  /// materializing the candidate vector.
  bool any_eligible(const workload::JobSpec& job, util::SimTime now);

  /// Nodes the engine's queries have examined (delegates to the view's
  /// probe counter; regression hook for the any_eligible early exit).
  std::uint64_t candidates_examined() const {
    return directory_.view().candidates_examined();
  }

  PlacementStrategy& strategy() { return *strategy_; }
  const PlacementStrategy& strategy() const { return *strategy_; }
  std::string_view strategy_name() const { return strategy_->name(); }

 private:
  /// Which allocation shape a candidate pass is generating for.
  enum class PlaceMode { kWhole, kFractional, kTimeslice };

  std::vector<const NodeInfo*> eligible_candidates(
      const workload::JobSpec& job, util::SimTime now, PlaceMode mode);

  Directory& directory_;
  const ReliabilityPredictor& reliability_;
  const PlatformPolicy& policy_;
  std::unique_ptr<PlacementStrategy> strategy_;
};

}  // namespace gpunion::sched
