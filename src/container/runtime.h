// Per-node container runtime.
//
// The runtime is the agent's execution backend: it verifies images against
// the registry, binds GPUs on the node model, enforces host resource
// budgets, tracks image cache state (pull cost is paid once per node) and
// owns the containers' lifecycles.  kill_all() implements the data path of
// the provider kill-switch.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "container/container.h"
#include "container/registry.h"
#include "hw/node.h"
#include "util/ids.h"
#include "util/status.h"

namespace gpunion::container {

struct RuntimeConfig {
  /// Fixed container create+start cost (namespace/cgroup setup).
  util::Duration startup_overhead = 1.5;
  /// GPU workload slowdown inside the container vs bare metal; the paper
  /// claims near-native performance with passthrough (§3.3).
  double gpu_overhead_fraction = 0.01;
};

class ContainerRuntime {
 public:
  ContainerRuntime(hw::NodeModel& node, const ImageRegistry& registry,
                   RuntimeConfig config = {});

  /// Validates and creates a container:
  ///  - image digest + allow-list verification,
  ///  - seccomp: unconfined guests are rejected,
  ///  - GPU indices must be free on the node and fit the VRAM budget,
  ///  - host memory/cpu budgets must fit what remains on the node.
  /// On success the GPUs are bound and the container is in kCreated.
  util::StatusOr<std::string> create(const ContainerConfig& config,
                                     const std::string& workload_id,
                                     double gpu_utilization,
                                     util::SimTime now);

  util::Status start(const std::string& container_id, util::SimTime now);
  util::Status pause(const std::string& container_id, util::SimTime now);
  util::Status resume(const std::string& container_id, util::SimTime now);
  util::Status begin_checkpoint(const std::string& container_id,
                                util::SimTime now);
  util::Status end_checkpoint(const std::string& container_id,
                              util::SimTime now);

  /// Normal completion; releases GPUs.
  util::Status exit(const std::string& container_id, util::SimTime now);

  /// Forced termination; releases GPUs.  Used for individual workload kills.
  util::Status kill(const std::string& container_id, util::SimTime now);

  /// Kill-switch data path: terminates every live container immediately.
  /// Returns the ids of the containers that were killed.
  std::vector<std::string> kill_all(util::SimTime now);

  /// True when the node has already pulled this image (no image traffic
  /// needed on dispatch).
  bool image_cached(const std::string& reference) const;
  void mark_image_cached(const std::string& reference);

  const Container* find(const std::string& container_id) const;
  std::vector<const Container*> live_containers() const;
  std::size_t live_count() const;

  /// Total container create+start latency for a dispatch, including the
  /// image pull if uncached (pull time is the caller's to model via the
  /// network; this returns only local startup cost).
  util::Duration startup_overhead() const { return config_.startup_overhead; }
  double gpu_overhead_fraction() const { return config_.gpu_overhead_fraction; }

  hw::NodeModel& node() { return node_; }
  const hw::NodeModel& node() const { return node_; }

 private:
  util::StatusOr<Container*> live_container(const std::string& id);
  void release_resources(Container& c, util::SimTime now);

  hw::NodeModel& node_;
  const ImageRegistry& registry_;
  RuntimeConfig config_;
  util::IdSequence ids_;
  std::unordered_map<std::string, std::unique_ptr<Container>> containers_;
  std::unordered_set<std::string> cached_images_;
  // host resources committed to live containers
  double committed_host_memory_gb_ = 0;
  double committed_cpu_cores_ = 0;
  // workload_id -> container_id for release bookkeeping
  std::unordered_map<std::string, std::string> workload_of_;
};

}  // namespace gpunion::container
