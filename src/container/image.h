// Container images.
//
// Mirrors the paper's §3.3: "Container images must pass SHA256 verification
// before deployment, and the system maintains an allow list of trusted base
// images."  An image's digest is the real SHA-256 of its (synthetic)
// manifest contents.
#pragma once

#include <cstdint>
#include <string>

namespace gpunion::container {

struct Image {
  std::string name;        // e.g. "pytorch"
  std::string tag;         // e.g. "2.3-cuda12.1"
  std::string base_image;  // e.g. "nvidia/cuda:12.1-runtime"
  std::uint64_t size_bytes = 0;
  std::string digest;      // "sha256:<hex>" over the manifest

  std::string reference() const { return name + ":" + tag; }
};

/// Builds an image with a digest computed over (name, tag, base, size,
/// manifest).  `manifest` stands in for layer content.
Image make_image(std::string name, std::string tag, std::string base_image,
                 std::uint64_t size_bytes, std::string manifest = {});

/// Recomputes the digest from the image fields; used by verification.
std::string compute_image_digest(const Image& image, std::string_view manifest);

}  // namespace gpunion::container
