// Image registry with digest verification and a trusted-base allow list.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "container/image.h"
#include "util/status.h"

namespace gpunion::container {

class ImageRegistry {
 public:
  /// Publishes an image.  Fails with kAlreadyExists when the same
  /// name:tag is already present with a *different* digest (immutability).
  util::Status push(const Image& image);

  /// Looks up name:tag.
  util::StatusOr<Image> resolve(const std::string& reference) const;

  /// Marks a base image as trusted.  Deployment of images built on other
  /// bases is rejected (paper §3.3).
  void allow_base(const std::string& base_image);
  bool base_allowed(const std::string& base_image) const;

  /// Full deployment check: image is known, digest matches the stored
  /// record bit-for-bit, and the base image is allow-listed.
  util::Status verify_for_deployment(const Image& image) const;

  std::size_t image_count() const { return images_.size(); }

 private:
  std::unordered_map<std::string, Image> images_;  // by reference
  std::unordered_set<std::string> allowed_bases_;
};

}  // namespace gpunion::container
