#include "container/container.h"

namespace gpunion::container {

std::string_view container_state_name(ContainerState s) {
  switch (s) {
    case ContainerState::kCreated: return "created";
    case ContainerState::kRunning: return "running";
    case ContainerState::kPaused: return "paused";
    case ContainerState::kCheckpointing: return "checkpointing";
    case ContainerState::kExited: return "exited";
    case ContainerState::kKilled: return "killed";
  }
  return "unknown";
}

Container::Container(std::string id, ContainerConfig config, util::SimTime now)
    : id_(std::move(id)), config_(std::move(config)), created_at_(now) {
  record(now, "created");
}

void Container::record(util::SimTime at, std::string what) {
  events_.push_back(ContainerEvent{at, std::move(what)});
}

util::Status Container::start(util::SimTime now) {
  if (state_ != ContainerState::kCreated) {
    return util::failed_precondition_error(
        "start from state " + std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kRunning;
  started_at_ = now;
  record(now, "started");
  return util::Status();
}

util::Status Container::pause(util::SimTime now) {
  if (state_ != ContainerState::kRunning) {
    return util::failed_precondition_error(
        "pause from state " + std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kPaused;
  record(now, "paused");
  return util::Status();
}

util::Status Container::resume(util::SimTime now) {
  if (state_ != ContainerState::kPaused) {
    return util::failed_precondition_error(
        "resume from state " + std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kRunning;
  record(now, "resumed");
  return util::Status();
}

util::Status Container::begin_checkpoint(util::SimTime now) {
  if (state_ != ContainerState::kRunning) {
    return util::failed_precondition_error(
        "checkpoint from state " + std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kCheckpointing;
  record(now, "checkpoint-begin");
  return util::Status();
}

util::Status Container::end_checkpoint(util::SimTime now) {
  if (state_ != ContainerState::kCheckpointing) {
    return util::failed_precondition_error(
        "end_checkpoint from state " +
        std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kRunning;
  record(now, "checkpoint-end");
  return util::Status();
}

util::Status Container::exit(util::SimTime now) {
  if (!live()) {
    return util::failed_precondition_error(
        "exit from state " + std::string(container_state_name(state_)));
  }
  state_ = ContainerState::kExited;
  finished_at_ = now;
  record(now, "exited");
  return util::Status();
}

util::Status Container::kill(util::SimTime now) {
  if (!live()) {
    return util::failed_precondition_error(
        "kill on finished container " + id_);
  }
  state_ = ContainerState::kKilled;
  finished_at_ = now;
  record(now, "killed");
  return util::Status();
}

std::string Container::visible_devices() const {
  std::string out;
  for (std::size_t i = 0; i < config_.limits.gpu_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(config_.limits.gpu_indices[i]);
  }
  return out;
}

}  // namespace gpunion::container
