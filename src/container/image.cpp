#include "container/image.h"

#include "util/sha256.h"

namespace gpunion::container {

std::string compute_image_digest(const Image& image,
                                 std::string_view manifest) {
  util::Sha256 h;
  h.update(image.name);
  h.update("\n");
  h.update(image.tag);
  h.update("\n");
  h.update(image.base_image);
  h.update("\n");
  h.update(std::to_string(image.size_bytes));
  h.update("\n");
  h.update(manifest);
  return "sha256:" + h.hex_digest();
}

Image make_image(std::string name, std::string tag, std::string base_image,
                 std::uint64_t size_bytes, std::string manifest) {
  Image image;
  image.name = std::move(name);
  image.tag = std::move(tag);
  image.base_image = std::move(base_image);
  image.size_bytes = size_bytes;
  image.digest = compute_image_digest(image, manifest);
  return image;
}

}  // namespace gpunion::container
