#include "container/registry.h"

namespace gpunion::container {

util::Status ImageRegistry::push(const Image& image) {
  if (image.name.empty() || image.digest.empty()) {
    return util::invalid_argument_error("image requires a name and digest");
  }
  auto it = images_.find(image.reference());
  if (it != images_.end()) {
    if (it->second.digest != image.digest) {
      return util::already_exists_error(
          "image " + image.reference() +
          " already published with a different digest");
    }
    return util::Status();  // idempotent re-push
  }
  images_.emplace(image.reference(), image);
  return util::Status();
}

util::StatusOr<Image> ImageRegistry::resolve(
    const std::string& reference) const {
  auto it = images_.find(reference);
  if (it == images_.end()) {
    return util::not_found_error("image " + reference + " not in registry");
  }
  return it->second;
}

void ImageRegistry::allow_base(const std::string& base_image) {
  allowed_bases_.insert(base_image);
}

bool ImageRegistry::base_allowed(const std::string& base_image) const {
  return allowed_bases_.contains(base_image);
}

util::Status ImageRegistry::verify_for_deployment(const Image& image) const {
  auto it = images_.find(image.reference());
  if (it == images_.end()) {
    return util::not_found_error("image " + image.reference() +
                                 " not in registry");
  }
  if (it->second.digest != image.digest) {
    return util::permission_denied_error(
        "digest mismatch for " + image.reference() +
        " (possible tampering): registry has " + it->second.digest);
  }
  if (!base_allowed(image.base_image)) {
    return util::permission_denied_error(
        "base image " + image.base_image + " is not allow-listed");
  }
  return util::Status();
}

}  // namespace gpunion::container
