#include "container/runtime.h"

#include "util/logging.h"

namespace gpunion::container {

ContainerRuntime::ContainerRuntime(hw::NodeModel& node,
                                   const ImageRegistry& registry,
                                   RuntimeConfig config)
    : node_(node),
      registry_(registry),
      config_(config),
      ids_("ctr-" + node.hostname()) {}

util::StatusOr<std::string> ContainerRuntime::create(
    const ContainerConfig& config, const std::string& workload_id,
    double gpu_utilization, util::SimTime now) {
  GPUNION_RETURN_IF_ERROR(registry_.verify_for_deployment(config.image));
  if (config.seccomp == SeccompProfile::kUnconfined) {
    return util::permission_denied_error(
        "unconfined seccomp profile is not permitted for guest workloads");
  }
  if (config.limits.gpu_indices.empty()) {
    return util::invalid_argument_error("workload requests no GPUs");
  }
  if (config.limits.host_memory_gb + committed_host_memory_gb_ >
      node_.spec().ram_gb) {
    return util::resource_exhausted_error("host memory budget exhausted on " +
                                          node_.hostname());
  }
  if (config.limits.cpu_cores + committed_cpu_cores_ >
      static_cast<double>(node_.spec().cpu_cores)) {
    return util::resource_exhausted_error("cpu budget exhausted on " +
                                          node_.hostname());
  }

  if (config.limits.timeslice) {
    // Time-sliced tenant: exactly one GPU, seat/oversubscription checks
    // enforced by the node model.
    if (config.limits.gpu_indices.size() != 1) {
      return util::invalid_argument_error(
          "time-sliced workloads bind exactly one GPU");
    }
    GPUNION_RETURN_IF_ERROR(node_.allocate_timeslice(
        config.limits.gpu_indices[0], workload_id,
        config.limits.gpu_memory_gb, gpu_utilization, now));
  } else if (config.limits.gpu_fraction < 1.0) {
    // Fractional tenant: exactly one shared GPU, slot/cap checks enforced
    // by the node model.
    if (config.limits.gpu_indices.size() != 1) {
      return util::invalid_argument_error(
          "fractional workloads bind exactly one GPU");
    }
    GPUNION_RETURN_IF_ERROR(node_.allocate_shared(
        config.limits.gpu_indices[0], workload_id,
        config.limits.gpu_memory_gb, gpu_utilization, now));
  } else {
    GPUNION_RETURN_IF_ERROR(node_.allocate(config.limits.gpu_indices,
                                           workload_id,
                                           config.limits.gpu_memory_gb,
                                           gpu_utilization, now));
  }

  committed_host_memory_gb_ += config.limits.host_memory_gb;
  committed_cpu_cores_ += config.limits.cpu_cores;

  std::string id = ids_.next();
  auto container = std::make_unique<Container>(id, config, now);
  workload_of_[id] = workload_id;
  containers_.emplace(id, std::move(container));
  GPUNION_DLOG("runtime") << node_.hostname() << " created " << id << " for "
                          << workload_id;
  return id;
}

util::StatusOr<Container*> ContainerRuntime::live_container(
    const std::string& id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    return util::not_found_error("container " + id + " not found");
  }
  return it->second.get();
}

void ContainerRuntime::release_resources(Container& c, util::SimTime now) {
  auto it = workload_of_.find(c.id());
  if (it != workload_of_.end()) {
    node_.release(it->second, now);
    workload_of_.erase(it);
  }
  committed_host_memory_gb_ -= c.config().limits.host_memory_gb;
  committed_cpu_cores_ -= c.config().limits.cpu_cores;
}

util::Status ContainerRuntime::start(const std::string& container_id,
                                     util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  return (*c)->start(now);
}

util::Status ContainerRuntime::pause(const std::string& container_id,
                                     util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  return (*c)->pause(now);
}

util::Status ContainerRuntime::resume(const std::string& container_id,
                                      util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  return (*c)->resume(now);
}

util::Status ContainerRuntime::begin_checkpoint(
    const std::string& container_id, util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  return (*c)->begin_checkpoint(now);
}

util::Status ContainerRuntime::end_checkpoint(const std::string& container_id,
                                              util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  return (*c)->end_checkpoint(now);
}

util::Status ContainerRuntime::exit(const std::string& container_id,
                                    util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  GPUNION_RETURN_IF_ERROR((*c)->exit(now));
  release_resources(**c, now);
  return util::Status();
}

util::Status ContainerRuntime::kill(const std::string& container_id,
                                    util::SimTime now) {
  auto c = live_container(container_id);
  if (!c.ok()) return c.status();
  GPUNION_RETURN_IF_ERROR((*c)->kill(now));
  release_resources(**c, now);
  return util::Status();
}

std::vector<std::string> ContainerRuntime::kill_all(util::SimTime now) {
  std::vector<std::string> killed;
  for (auto& [id, container] : containers_) {
    if (container->live()) {
      // kill() on a live container cannot fail: the kill-switch is
      // unconditional by design.
      (void)container->kill(now);
      release_resources(*container, now);
      killed.push_back(id);
    }
  }
  return killed;
}

bool ContainerRuntime::image_cached(const std::string& reference) const {
  return cached_images_.contains(reference);
}

void ContainerRuntime::mark_image_cached(const std::string& reference) {
  cached_images_.insert(reference);
}

const Container* ContainerRuntime::find(const std::string& container_id) const {
  auto it = containers_.find(container_id);
  return it == containers_.end() ? nullptr : it->second.get();
}

std::vector<const Container*> ContainerRuntime::live_containers() const {
  std::vector<const Container*> out;
  for (const auto& [id, container] : containers_) {
    if (container->live()) out.push_back(container.get());
  }
  return out;
}

std::size_t ContainerRuntime::live_count() const {
  std::size_t n = 0;
  for (const auto& [id, container] : containers_) {
    if (container->live()) ++n;
  }
  return n;
}

}  // namespace gpunion::container
