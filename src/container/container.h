// Container lifecycle model.
//
// Each GPUnion workload runs in an isolated user-space container with
// cgroup-style resource limits, a seccomp profile and a GPU visibility mask
// (NVIDIA_VISIBLE_DEVICES), per §3.3.  The FSM below mirrors the OCI runtime
// states plus GPUnion's checkpointing extension.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "container/image.h"
#include "util/status.h"
#include "util/time.h"

namespace gpunion::container {

enum class ContainerState {
  kCreated,
  kRunning,
  kPaused,
  kCheckpointing,  // running, with a checkpoint being captured
  kExited,         // finished by itself
  kKilled,         // terminated by the kill-switch or a kill command
};

std::string_view container_state_name(ContainerState s);

/// Execution mode from §3.3: interactive Jupyter environments vs batch jobs.
enum class ExecutionMode { kInteractive, kBatch };

/// cgroup-style resource bounds enforced on the guest.
struct ResourceLimits {
  std::vector<int> gpu_indices;   // devices exposed via the visibility mask
  double gpu_memory_gb = 0;       // per-GPU VRAM budget
  /// Capacity share per bound GPU: 1.0 = exclusive device; < 1.0 = one
  /// tenant of a shared GPU (spatial slot or time-slice seat).
  double gpu_fraction = 1.0;
  /// nvshare mode: bind a full-memory time-sliced tenant (one shared GPU)
  /// instead of a spatial slot; gpu_memory_gb is the tenant's working set.
  bool timeslice = false;
  double host_memory_gb = 8;
  double cpu_cores = 4;
};

/// Simplified seccomp policy: the default profile blocks host-affecting
/// syscall groups; unconfined is rejected for guest workloads.
enum class SeccompProfile { kDefault, kUnconfined };

struct ContainerConfig {
  Image image;
  ExecutionMode mode = ExecutionMode::kBatch;
  std::string entrypoint = "python train.py";
  ResourceLimits limits;
  SeccompProfile seccomp = SeccompProfile::kDefault;
  std::map<std::string, std::string> env;  // includes NVIDIA_VISIBLE_DEVICES
};

/// Lifecycle event record (the "application metrics" of §3.5).
struct ContainerEvent {
  util::SimTime at;
  std::string what;  // "created", "started", "checkpoint-begin", ...
};

class Container {
 public:
  Container(std::string id, ContainerConfig config, util::SimTime now);

  const std::string& id() const { return id_; }
  const ContainerConfig& config() const { return config_; }
  ContainerState state() const { return state_; }
  const std::vector<ContainerEvent>& events() const { return events_; }

  /// created -> running.
  util::Status start(util::SimTime now);
  /// running -> paused (allocation freeze, not checkpoint).
  util::Status pause(util::SimTime now);
  /// paused -> running.
  util::Status resume(util::SimTime now);
  /// running -> checkpointing.  Only one checkpoint at a time.
  util::Status begin_checkpoint(util::SimTime now);
  /// checkpointing -> running.
  util::Status end_checkpoint(util::SimTime now);
  /// running|paused|checkpointing -> exited (normal completion).
  util::Status exit(util::SimTime now);
  /// any live state -> killed.  Always succeeds on a live container: the
  /// kill-switch is unconditional (§3.4).
  util::Status kill(util::SimTime now);

  bool live() const {
    return state_ != ContainerState::kExited &&
           state_ != ContainerState::kKilled;
  }

  /// The guest-visible device mask, e.g. "0,2".
  std::string visible_devices() const;

  util::SimTime created_at() const { return created_at_; }
  util::SimTime started_at() const { return started_at_; }
  util::SimTime finished_at() const { return finished_at_; }

 private:
  void record(util::SimTime at, std::string what);

  std::string id_;
  ContainerConfig config_;
  ContainerState state_ = ContainerState::kCreated;
  std::vector<ContainerEvent> events_;
  util::SimTime created_at_;
  util::SimTime started_at_ = 0;
  util::SimTime finished_at_ = 0;
};

}  // namespace gpunion::container
