#include "api/drf.h"

#include <algorithm>
#include <limits>

namespace gpunion::api {

ResourceVector demand_of(const workload::JobSpec& spec) {
  const auto& req = spec.requirements;
  const double gpus = std::max(1, req.gpu_count);
  return {gpus, gpus * std::max(0.0, req.gpu_memory_gb)};
}

double dominant_share(const ResourceVector& usage,
                      const ResourceVector& capacity, double weight) {
  double share = 0.0;
  if (capacity.gpus > 0) share = std::max(share, usage.gpus / capacity.gpus);
  if (capacity.memory_gb > 0)
    share = std::max(share, usage.memory_gb / capacity.memory_gb);
  if (weight <= 0) return std::numeric_limits<double>::infinity();
  return share / weight;
}

DrfQueue::DrfQueue(ResourceVector capacity) : capacity_(capacity) {}

void DrfQueue::set_weight(const std::string& tenant, double weight) {
  tenants_[tenant].weight = weight;
}

double DrfQueue::weight(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 1.0 : it->second.weight;
}

void DrfQueue::push(const std::string& tenant, Item item) {
  tenants_[tenant].queue.push_back(std::move(item));
  backlogged_.insert(tenant);
  ++total_queued_;
}

std::optional<std::pair<std::string, DrfQueue::Item>> DrfQueue::pop_next(
    const std::function<bool(const std::string&, const Item&)>& eligible) {
  // Progressive filling, one discrete job at a time: scan the backlogged
  // index (set order = name order, the deterministic tie-break) and keep
  // the strictly-smallest weighted dominant share.  O(backlogged), not
  // O(tenants ever seen).
  Tenant* best = nullptr;
  std::string best_name;
  double best_share = std::numeric_limits<double>::infinity();
  for (const std::string& name : backlogged_) {
    Tenant& tenant = tenants_[name];
    if (eligible && !eligible(name, tenant.queue.front())) continue;
    const double share = dominant_share(tenant.usage, capacity_, tenant.weight);
    if (share < best_share) {
      best = &tenant;
      best_name = name;
      best_share = share;
    }
  }
  if (best == nullptr) return std::nullopt;
  Item item = std::move(best->queue.front());
  best->queue.pop_front();
  --total_queued_;
  if (best->queue.empty()) backlogged_.erase(best_name);
  return std::make_pair(best_name, std::move(item));
}

bool DrfQueue::remove(const std::string& tenant, const std::string& job_id) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  auto& q = it->second.queue;
  for (auto qi = q.begin(); qi != q.end(); ++qi) {
    if (qi->spec.id == job_id) {
      q.erase(qi);
      --total_queued_;
      if (q.empty()) backlogged_.erase(tenant);
      return true;
    }
  }
  return false;
}

void DrfQueue::charge(const std::string& tenant, const ResourceVector& r) {
  tenants_[tenant].usage += r;
  total_usage_ += r;
}

void DrfQueue::release(const std::string& tenant, const ResourceVector& r) {
  auto& t = tenants_[tenant];
  // The aggregate subtracts what the tenant actually gives back, so a
  // clamped (over-released) tenant cannot drive the total negative.
  const ResourceVector before = t.usage;
  t.usage -= r;
  t.usage.gpus = std::max(0.0, t.usage.gpus);
  t.usage.memory_gb = std::max(0.0, t.usage.memory_gb);
  total_usage_ -= before;
  total_usage_ += t.usage;
  total_usage_.gpus = std::max(0.0, total_usage_.gpus);
  total_usage_.memory_gb = std::max(0.0, total_usage_.memory_gb);
}

double DrfQueue::dominant_share_of(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0.0;
  return dominant_share(it->second.usage, capacity_, it->second.weight);
}

const ResourceVector& DrfQueue::usage_of(const std::string& tenant) const {
  static const ResourceVector kZero;
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kZero : it->second.usage;
}

std::size_t DrfQueue::queued(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

ResourceVector DrfQueue::head_demand(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.queue.empty()) return {};
  return it->second.queue.front().demand;
}

std::vector<std::string> DrfQueue::backlogged() const {
  return {backlogged_.begin(), backlogged_.end()};
}

}  // namespace gpunion::api
