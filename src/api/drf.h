// Dominant-resource-fairness queueing across tenants.
//
// The request plane holds one FIFO queue per tenant and drains them into
// the scheduler core in DRF order (Ghodsi et al., NSDI'11): each tenant's
// dominant share is the largest fraction of any one cluster resource its
// in-flight jobs hold, and every drain step grants the head-of-queue job
// of the backlogged tenant with the SMALLEST (weighted) dominant share.
// Progressive filling in discrete job-sized steps — the classic properties
// (sharing incentive, strategy-proofness up to one job, envy-freeness up
// to one job) carry over and are pinned by tests/api/drf_property_test.cpp.
//
// The queue is deliberately self-contained (no sim, no coordinator) so the
// property tests exercise the allocator in isolation.
//
// Scale: the tenant map grows with every tenant ever seen (a million-user
// population), so nothing on the hot paths may scan it.  A backlogged-only
// index drives pop_next (O(backlogged), not O(tenants ever)), and the
// total usage / total queued aggregates are maintained incrementally.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/time.h"
#include "workload/job.h"

namespace gpunion::api {

/// The two resource axes DRF balances campus-wide: GPUs and aggregate VRAM.
/// (The pair the paper's placement constraints already reason about —
/// gpu_count x gpu_memory_gb — so a memory-hungry tenant and a GPU-hungry
/// tenant are dominated by different axes, which is the whole point of DRF.)
struct ResourceVector {
  double gpus = 0.0;
  double memory_gb = 0.0;

  ResourceVector& operator+=(const ResourceVector& o) {
    gpus += o.gpus;
    memory_gb += o.memory_gb;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    gpus -= o.gpus;
    memory_gb -= o.memory_gb;
    return *this;
  }
  /// Elementwise `this + o <= cap * factor` (the core-working-set gate).
  bool fits(const ResourceVector& o, const ResourceVector& cap,
            double factor) const {
    return gpus + o.gpus <= cap.gpus * factor + 1e-9 &&
           memory_gb + o.memory_gb <= cap.memory_gb * factor + 1e-9;
  }
};

/// Demand vector of one job: gpu_count GPUs, gpu_count x gpu_memory_gb VRAM.
ResourceVector demand_of(const workload::JobSpec& spec);

/// Weighted dominant share of `usage` against `capacity`: max over resources
/// of usage_r / capacity_r, divided by the tenant weight.  Zero-capacity
/// axes are ignored; zero usage is share 0.
double dominant_share(const ResourceVector& usage,
                      const ResourceVector& capacity, double weight = 1.0);

/// Per-tenant FIFO queues drained in dominant-resource-fairness order.
class DrfQueue {
 public:
  struct Item {
    workload::JobSpec spec;
    ResourceVector demand;
    util::SimTime enqueued_at = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
  };

  explicit DrfQueue(ResourceVector capacity = {1e18, 1e18});

  void set_capacity(const ResourceVector& capacity) { capacity_ = capacity; }
  const ResourceVector& capacity() const { return capacity_; }
  /// DRF weight of a tenant (default 1.0); larger = entitled to more.
  void set_weight(const std::string& tenant, double weight);
  double weight(const std::string& tenant) const;

  void push(const std::string& tenant, Item item);

  /// Pops the head item of the eligible backlogged tenant with the minimum
  /// weighted dominant share (ties broken by tenant name, so kDeterministic
  /// replays bit-identically).  `eligible` filters tenants (quota gates);
  /// empty = all eligible.  Does NOT charge usage — the caller charges after
  /// a successful dispatch.
  std::optional<std::pair<std::string, Item>> pop_next(
      const std::function<bool(const std::string&, const Item&)>& eligible =
          {});

  /// Removes a queued item by job id; false when not queued.
  bool remove(const std::string& tenant, const std::string& job_id);

  void charge(const std::string& tenant, const ResourceVector& r);
  void release(const std::string& tenant, const ResourceVector& r);

  double dominant_share_of(const std::string& tenant) const;
  const ResourceVector& usage_of(const std::string& tenant) const;
  /// O(1): maintained incrementally by charge/release.
  const ResourceVector& total_usage() const { return total_usage_; }

  std::size_t queued(const std::string& tenant) const;
  /// O(1): maintained incrementally by push/pop/remove.
  std::size_t total_queued() const { return total_queued_; }
  /// Demand of the tenant's head item (zero when not backlogged) — what
  /// the next drain pass would test against the working-set gate.
  ResourceVector head_demand(const std::string& tenant) const;
  /// Tenants with at least one queued item, in name order.
  std::vector<std::string> backlogged() const;

 private:
  struct Tenant {
    std::deque<Item> queue;
    ResourceVector usage;
    double weight = 1.0;
  };

  ResourceVector capacity_;
  std::map<std::string, Tenant> tenants_;
  /// Names of tenants with a non-empty queue; ordered, so iteration keeps
  /// the deterministic name tie-break while skipping the (unbounded) set
  /// of idle tenants.
  std::set<std::string> backlogged_;
  ResourceVector total_usage_;
  std::size_t total_queued_ = 0;
};

}  // namespace gpunion::api
