// Tenant-facing request plane.
//
// The front door the ROADMAP's "millions of users" north star needs: jobs
// no longer appear inside the trusted core via Coordinator::submit — they
// arrive at an ApiServer that knows about TENANTS.  Per region (each
// Platform fronts its own; remote-admitted federation jobs bypass it,
// their home region already charged the tenant), the server provides:
//
//  - token-bucket admission rate-limiting with EXPLICIT backpressure: an
//    overloaded submit is rejected with kOverloaded and a retry-after
//    hint instead of queueing unboundedly (nvshare's thin-client protocol
//    shape: clients are expected to back off and retry);
//  - one bounded FIFO queue per tenant, drained into the scheduler core
//    in dominant-resource-fairness order (api/drf.h) so a heavy-tailed
//    tenant population shares the campus by DRF dominant share, not by
//    submission rate;
//  - per-tenant quotas: max in-flight jobs in the core and a cumulative
//    GPU-seconds budget (quota-exceeded jobs are rejected at drain time,
//    so accepted == dispatched + queued + quota_dropped + cancelled
//    holds exactly — the conservation law the invariant harness pins);
//  - a bounded core working set: queues only drain while total in-flight
//    demand fits within capacity x core_load_factor, keeping the
//    coordinator's tables O(campus) instead of O(everything ever
//    submitted) while leaving enough pending pressure for federation
//    overflow forwarding;
//  - batched submit/status, with ONE write-behind group commit amortized
//    across each drained burst (the PR 4 ledger machinery);
//  - a trace root (obs::stage::kApiAdmit) on every accepted submit, so
//    PR 8 causal traces start at the tenant edge, not at the coordinator.
//
// Threading/determinism: the server lives on the platform's control-plane
// lane.  Submits are synchronous calls from that lane's context (tests and
// benches schedule them there); draining runs from a periodic timer on the
// same lane plus an immediate threshold drain when a burst fills a batch —
// mirroring the ledger's dual interval/threshold trigger.  Everything uses
// ordered maps, so kDeterministic replays bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/drf.h"
#include "api/token_bucket.h"
#include "monitor/metrics.h"
#include "obs/trace.h"
#include "sim/environment.h"
#include "util/stats.h"
#include "util/status.h"
#include "workload/job.h"

namespace gpunion::db {
class ShardedDatabase;
}
namespace gpunion::sched {
class Coordinator;
}

namespace gpunion::api {

/// Per-tenant admission quotas.
struct TenantQuota {
  /// Max jobs this tenant may have live in the scheduler core at once.
  int max_in_flight = 64;
  /// Cumulative modeled GPU-seconds the tenant may dispatch (estimated as
  /// gpu_count x reference_duration at drain time); infinity = unmetered.
  double gpu_seconds_budget = std::numeric_limits<double>::infinity();
  /// Bound on the tenant's API-side queue; beyond it submits are rejected
  /// kOverloaded (backpressure, not buffering).
  std::size_t max_queued = 256;
  /// DRF weight (entitlement multiplier).
  double weight = 1.0;
};

struct ApiConfig {
  /// Platform wiring: construct and start an ApiServer for the campus.
  bool enabled = false;
  /// Token-bucket admission limit across all tenants (requests/sec, burst).
  double admission_rate = 500.0;
  double admission_burst = 1000.0;
  TenantQuota default_quota;
  /// Per-tenant overrides of default_quota.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Drain cadence; a threshold drain also fires as soon as drain_batch
  /// jobs are queued, so burst latency is batch-bound, not interval-bound.
  util::Duration drain_interval = 0.25;
  /// Max dispatches per drain pass — the burst one ledger group commit
  /// amortizes over.
  std::size_t drain_batch = 64;
  /// In-flight demand may reach capacity x this factor before queues hold
  /// (>1 keeps the coordinator backlogged enough to overflow-forward).
  double core_load_factor = 2.0;
  /// Cap on per-tenant gauge cardinality in the metric registry (top-K by
  /// accepted count; the aggregate families always cover everyone).
  std::size_t metrics_top_tenants = 16;
};

enum class AdmitOutcome {
  kAccepted,       // queued (or already dispatched by a threshold drain)
  kOverloaded,     // rate limit or queue bound; retry_after is set
  kQuotaExceeded,  // GPU-seconds budget exhausted
  kRejected,       // invalid spec / duplicate id
};

struct SubmitResult {
  AdmitOutcome outcome = AdmitOutcome::kRejected;
  util::Status status;
  /// kOverloaded only: sim-time the client should wait before retrying.
  util::Duration retry_after = 0;

  bool accepted() const { return outcome == AdmitOutcome::kAccepted; }
};

/// Tenant-visible job state (the status protocol's reply).
struct JobStatusView {
  std::string id;
  bool known = false;
  /// "queued_api" while still in the request plane, then the coordinator
  /// phase name, then "archived"/"departed" once it left the local books.
  std::string phase;
  double progress = 0.0;
};

struct TenantCounters {
  std::uint64_t submitted = 0;           // requests seen
  std::uint64_t accepted = 0;            // entered the tenant queue
  std::uint64_t dispatched = 0;          // handed to the scheduler core
  std::uint64_t rejected_overloaded = 0; // token bucket or queue bound
  std::uint64_t rejected_quota = 0;      // budget exhausted at submit
  std::uint64_t rejected_invalid = 0;    // malformed / duplicate id
  std::uint64_t quota_dropped = 0;       // budget exhausted at drain
  std::uint64_t dispatch_rejected = 0;   // core refused (id collision etc.)
  std::uint64_t cancelled_queued = 0;    // cancelled while still queued here
  std::uint64_t completed = 0;           // dispatched jobs seen kCompleted
  std::uint64_t departed = 0;            // left the local books (forwarded)
  double gpu_seconds_charged = 0;
};

struct ApiStats {
  TenantCounters totals;
  std::uint64_t drains = 0;
  std::uint64_t group_commits = 0;  // ledger flushes amortized over bursts
  std::uint64_t batch_submits = 0;
  std::uint64_t batch_status = 0;
  /// High-water marks (the backpressure evidence: bounded under overload).
  std::size_t max_total_queued = 0;
  std::size_t max_tenant_queued = 0;
};

class ApiServer {
 public:
  /// Dispatch sink: (spec, start_progress, trace) -> core accept/reject.
  /// Defaults to Coordinator::submit on the attached coordinator; benches
  /// inject counting stubs to measure the request plane alone.
  using DispatchFn = std::function<util::Status(
      workload::JobSpec, double, obs::TraceContext)>;

  ApiServer(sim::Environment& env, ApiConfig config,
            sim::LaneId lane = sim::kMainLane);
  ~ApiServer();

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  // --- Wiring (Platform does this; benches pick what they need) ------------
  void attach_coordinator(sched::Coordinator* coordinator);
  /// Enables the amortized group commit after each drained burst.
  void attach_database(db::ShardedDatabase* database);
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_actor(std::string actor) { actor_ = std::move(actor); }
  /// Campus capacity the DRF shares are measured against.
  void set_capacity(const ResourceVector& capacity);
  /// Replaces the dispatch sink (standalone benches).
  void set_dispatch(DispatchFn fn) { dispatch_ = std::move(fn); }
  /// Test hook: observes every (tenant, job id) dispatch, in drain order.
  void set_dispatch_observer(
      std::function<void(const std::string&, const std::string&)> fn) {
    dispatch_observer_ = std::move(fn);
  }

  /// Starts the periodic drain timer.
  void start();

  // --- Tenant protocol -----------------------------------------------------
  SubmitResult submit(const std::string& tenant, workload::JobSpec job);
  /// Batched submit: per-job results; the whole burst shares one threshold
  /// drain (and thus one group commit) instead of one each.
  std::vector<SubmitResult> submit_batch(const std::string& tenant,
                                         std::vector<workload::JobSpec> jobs);
  /// Cancels a queued-or-dispatched job the tenant owns.
  util::Status cancel(const std::string& tenant, const std::string& job_id);
  JobStatusView status(const std::string& tenant,
                       const std::string& job_id) const;
  std::vector<JobStatusView> status_batch(const std::string& tenant,
                                          const std::vector<std::string>& ids);

  // --- Draining ------------------------------------------------------------
  /// One bounded drain pass (reconcile releases, then DRF-ordered dispatch
  /// up to drain_batch, then one group commit).  Runs from the timer; public
  /// so tests and benches can force passes.
  void drain();
  /// Drains until no pass makes progress (tests: reach quiescence).
  void drain_to_quiescence();

  // --- Introspection -------------------------------------------------------
  const ApiConfig& config() const { return config_; }
  const TenantQuota& quota_of(const std::string& tenant) const;
  const TenantCounters& tenant_counters(const std::string& tenant) const;
  const ApiStats& stats() const { return stats_; }
  std::size_t queued(const std::string& tenant) const {
    return queue_.queued(tenant);
  }
  std::size_t total_queued() const { return queue_.total_queued(); }
  int in_flight(const std::string& tenant) const;
  double dominant_share_of(const std::string& tenant) const {
    return queue_.dominant_share_of(tenant);
  }
  const DrfQueue& drf_queue() const { return queue_; }
  /// Tenant names seen so far, in name order.
  std::vector<std::string> tenants() const;
  /// Admission latency samples (accept -> dispatch), modeled seconds.
  const util::SampleSet& admission_latency() const {
    return admission_latency_;
  }

  /// Copies per-tenant gauges (top-K by accepted) + aggregate counters into
  /// `registry` (families gpunion_api_*).  Called from the owning
  /// platform's metrics refresh.
  void publish_metrics(monitor::MetricRegistry& registry) const;

 private:
  struct TenantState {
    TenantQuota quota;
    TenantCounters counters;
    /// Dispatched and still live in the core: id -> charged demand.
    std::map<std::string, ResourceVector> live;
  };

  TenantState& tenant_state(const std::string& tenant);
  /// Releases core usage for jobs that left the local coordinator books.
  void reconcile();
  void note_queue_depths(const std::string& tenant);
  void schedule_threshold_drain();

  sim::Environment& env_;
  ApiConfig config_;
  sim::LaneId lane_;
  obs::Tracer* tracer_ = nullptr;
  sched::Coordinator* coordinator_ = nullptr;
  db::ShardedDatabase* database_ = nullptr;
  DispatchFn dispatch_;
  std::function<void(const std::string&, const std::string&)>
      dispatch_observer_;
  std::string actor_ = "api";

  TokenBucket bucket_;
  DrfQueue queue_;
  std::map<std::string, TenantState> tenants_;
  /// Tenants with at least one live (dispatched, unreleased) job — the
  /// only ones reconcile() must visit.  Stays O(campus) while the tenant
  /// map grows with everyone ever seen.
  std::set<std::string> live_tenants_;
  /// Job id -> owning tenant, for status/cancel auth and duplicate checks.
  std::map<std::string, std::string> owner_of_;
  /// Jobs that left the request plane without a core record to point at
  /// (quota_dropped / cancelled_api / departed / sink-mode dispatched):
  /// status() serves this terminal phase string.
  std::map<std::string, std::string> retired_;
  ApiStats stats_;
  util::SampleSet admission_latency_;
  std::unique_ptr<sim::PeriodicTimer> drain_timer_;
  bool threshold_drain_pending_ = false;
  bool started_ = false;
};

}  // namespace gpunion::api
