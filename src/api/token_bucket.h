// Sim-time token-bucket rate limiter for admission control.
//
// Purely arithmetic (refill is computed lazily from the elapsed sim time),
// so it costs nothing between requests and replays deterministically.  On
// a reject it reports HOW LONG until the next token — the retry-after hint
// the ApiServer hands back with kOverloaded, turning overload into explicit
// backpressure instead of an unbounded queue.
#pragma once

#include <algorithm>

#include "util/time.h"

namespace gpunion::api {

class TokenBucket {
 public:
  /// retry_after value meaning "no finite wait ever satisfies the request"
  /// (the cost exceeds the burst, or the refill rate is zero).  Callers
  /// should surface a permanent rejection, not a retry hint.
  static constexpr util::Duration kNeverSatisfiable = util::Duration(1e18);

  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Whether a request for `tokens` can EVER succeed: the bucket refills at
  /// most to `burst`, so a larger cost waits forever no matter the rate.
  bool satisfiable(double tokens) const { return tokens <= burst_ + 1e-9; }

  /// Takes `tokens` if available at `now`.  On failure leaves the bucket
  /// untouched and sets *retry_after (if non-null) to the sim-time until
  /// the deficit refills — or kNeverSatisfiable when no wait helps (the
  /// old code handed such requests a finite hint, telling the tenant to
  /// retry forever).
  bool try_take(util::SimTime now, double tokens,
                util::Duration* retry_after = nullptr) {
    refill(now);
    if (tokens_ + 1e-9 >= tokens) {
      tokens_ -= tokens;
      return true;
    }
    if (retry_after != nullptr) {
      *retry_after = satisfiable(tokens) && rate_ > 0
                         ? (tokens - tokens_) / rate_
                         : kNeverSatisfiable;
    }
    return false;
  }

  double available(util::SimTime now) {
    refill(now);
    return tokens_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(util::SimTime now) {
    if (now <= updated_) return;
    tokens_ = std::min(burst_, tokens_ + (now - updated_) * rate_);
    updated_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  util::SimTime updated_ = 0;
};

}  // namespace gpunion::api
