#include "api/api_server.h"

#include <algorithm>
#include <utility>

#include "db/sharded_database.h"
#include "sched/coordinator.h"
#include "util/logging.h"

namespace gpunion::api {
namespace {

/// Modeled GPU-seconds a job will charge against its tenant's budget.
double gpu_seconds_estimate(const DrfQueue::Item& item) {
  return item.demand.gpus * std::max(0.0, item.spec.reference_duration);
}

}  // namespace

ApiServer::ApiServer(sim::Environment& env, ApiConfig config, sim::LaneId lane)
    : env_(env),
      config_(std::move(config)),
      lane_(lane),
      bucket_(config_.admission_rate, config_.admission_burst),
      queue_() {}

ApiServer::~ApiServer() = default;

void ApiServer::attach_coordinator(sched::Coordinator* coordinator) {
  coordinator_ = coordinator;
}

void ApiServer::attach_database(db::ShardedDatabase* database) {
  database_ = database;
}

void ApiServer::set_capacity(const ResourceVector& capacity) {
  queue_.set_capacity(capacity);
}

void ApiServer::start() {
  if (started_) return;
  started_ = true;
  drain_timer_ = std::make_unique<sim::PeriodicTimer>(
      env_, config_.drain_interval, [this] { drain(); }, lane_);
  drain_timer_->start();
}

ApiServer::TenantState& ApiServer::tenant_state(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  auto quota = config_.tenant_quotas.find(tenant);
  state.quota =
      quota == config_.tenant_quotas.end() ? config_.default_quota : quota->second;
  auto [inserted, ok] = tenants_.emplace(tenant, std::move(state));
  queue_.set_weight(tenant, inserted->second.quota.weight);
  return inserted->second;
}

const TenantQuota& ApiServer::quota_of(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second.quota;
  auto quota = config_.tenant_quotas.find(tenant);
  return quota == config_.tenant_quotas.end() ? config_.default_quota
                                              : quota->second;
}

const TenantCounters& ApiServer::tenant_counters(
    const std::string& tenant) const {
  static const TenantCounters kZero;
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kZero : it->second.counters;
}

int ApiServer::in_flight(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : static_cast<int>(it->second.live.size());
}

std::vector<std::string> ApiServer::tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

void ApiServer::note_queue_depths(const std::string& tenant) {
  // Only the tenant just pushed to can have set a new high-water mark —
  // never rescan the full (unbounded) tenant map on the submit path.
  stats_.max_total_queued =
      std::max(stats_.max_total_queued, queue_.total_queued());
  stats_.max_tenant_queued =
      std::max(stats_.max_tenant_queued, queue_.queued(tenant));
}

void ApiServer::schedule_threshold_drain() {
  if (threshold_drain_pending_ || !started_) return;
  threshold_drain_pending_ = true;
  env_.schedule_after_on(lane_, 0.0, [this] {
    if (threshold_drain_pending_) drain();
  });
}

SubmitResult ApiServer::submit(const std::string& tenant,
                               workload::JobSpec job) {
  const util::SimTime now = env_.now();
  TenantState& state = tenant_state(tenant);
  ++state.counters.submitted;
  ++stats_.totals.submitted;

  auto reject_invalid = [&](util::Status status) {
    ++state.counters.rejected_invalid;
    ++stats_.totals.rejected_invalid;
    return SubmitResult{AdmitOutcome::kRejected, std::move(status), 0};
  };

  if (tenant.empty() || job.id.empty())
    return reject_invalid(
        util::invalid_argument_error("tenant and job id are required"));
  if (owner_of_.contains(job.id))
    return reject_invalid(
        util::already_exists_error("job id already submitted: " + job.id));
  if (coordinator_ != nullptr && coordinator_->job(job.id) != nullptr)
    return reject_invalid(
        util::already_exists_error("job id known to the core: " + job.id));

  const ResourceVector demand = demand_of(job);
  if (!ResourceVector{}.fits(demand, queue_.capacity(),
                             config_.core_load_factor))
    return reject_invalid(util::resource_exhausted_error(
        "demand can never fit the campus working set"));

  // Fast budget reject: a tenant that has already burned its GPU-seconds
  // gets told so at submit time.  (Budget consumed by still-queued jobs is
  // settled at drain time — the quota_dropped path.)
  const double estimate =
      demand.gpus * std::max(0.0, job.reference_duration);
  if (state.counters.gpu_seconds_charged + estimate >
      state.quota.gpu_seconds_budget + 1e-9) {
    ++state.counters.rejected_quota;
    ++stats_.totals.rejected_quota;
    return {AdmitOutcome::kQuotaExceeded,
            util::resource_exhausted_error("gpu-seconds budget exhausted"), 0};
  }

  // Backpressure: rate limit, then the per-tenant queue bound.  Both come
  // back kOverloaded with a retry-after hint, never unbounded buffering.
  // A cost the bucket can NEVER cover (burst configured below the request
  // cost) is a permanent rejection, not a retry-forever hint.
  util::Duration retry_after = 0;
  if (!bucket_.try_take(now, 1.0, &retry_after)) {
    if (retry_after >= TokenBucket::kNeverSatisfiable) {
      return reject_invalid(util::failed_precondition_error(
          "admission burst smaller than the request cost; "
          "no retry can succeed"));
    }
    ++state.counters.rejected_overloaded;
    ++stats_.totals.rejected_overloaded;
    return {AdmitOutcome::kOverloaded,
            util::unavailable_error("admission rate limit"), retry_after};
  }
  if (queue_.queued(tenant) >= state.quota.max_queued) {
    ++state.counters.rejected_overloaded;
    ++stats_.totals.rejected_overloaded;
    // Rough time for the drain timer to make room in this tenant's queue.
    retry_after = config_.drain_interval *
                  (1.0 + static_cast<double>(queue_.queued(tenant)) /
                             std::max<std::size_t>(1, config_.drain_batch));
    return {AdmitOutcome::kOverloaded,
            util::unavailable_error("tenant queue full"), retry_after};
  }

  // Accepted: root the job's causal trace at the tenant edge.
  job.submitted_at = now;
  obs::TraceContext ctx{obs::Tracer::trace_for_job(job.id), 0};
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->record(ctx, obs::stage::kApiAdmit, actor_, now, now,
                    "tenant=" + tenant);
  ++state.counters.accepted;
  ++stats_.totals.accepted;
  owner_of_.emplace(job.id, tenant);
  queue_.push(tenant,
              {std::move(job), demand, now, ctx.trace_id, ctx.parent_span});
  note_queue_depths(tenant);
  if (queue_.total_queued() >= config_.drain_batch)
    schedule_threshold_drain();
  return {AdmitOutcome::kAccepted, util::Status(), 0};
}

std::vector<SubmitResult> ApiServer::submit_batch(
    const std::string& tenant, std::vector<workload::JobSpec> jobs) {
  ++stats_.batch_submits;
  std::vector<SubmitResult> results;
  results.reserve(jobs.size());
  for (auto& job : jobs) results.push_back(submit(tenant, std::move(job)));
  return results;
}

util::Status ApiServer::cancel(const std::string& tenant,
                               const std::string& job_id) {
  auto owner = owner_of_.find(job_id);
  if (owner == owner_of_.end() || owner->second != tenant)
    return util::not_found_error("no such job for tenant: " + job_id);
  TenantState& state = tenant_state(tenant);
  if (queue_.remove(tenant, job_id)) {
    ++state.counters.cancelled_queued;
    ++stats_.totals.cancelled_queued;
    retired_.emplace(job_id, "cancelled_api");
    return util::Status();
  }
  if (coordinator_ == nullptr)
    return util::unavailable_error("no scheduler core attached");
  return coordinator_->cancel(job_id);
}

JobStatusView ApiServer::status(const std::string& tenant,
                                const std::string& job_id) const {
  JobStatusView view;
  view.id = job_id;
  auto owner = owner_of_.find(job_id);
  if (owner == owner_of_.end() || owner->second != tenant) {
    view.phase = "unknown";
    return view;
  }
  view.known = true;
  if (coordinator_ != nullptr) {
    if (const auto* record = coordinator_->job(job_id); record != nullptr) {
      view.phase = std::string(sched::job_phase_name(record->phase));
      view.progress = record->checkpointed_progress;
      return view;
    }
  }
  if (auto retired = retired_.find(job_id); retired != retired_.end()) {
    view.phase = retired->second;
    return view;
  }
  view.phase = "queued_api";
  return view;
}

std::vector<JobStatusView> ApiServer::status_batch(
    const std::string& tenant, const std::vector<std::string>& ids) {
  ++stats_.batch_status;
  std::vector<JobStatusView> views;
  views.reserve(ids.size());
  for (const auto& id : ids) views.push_back(status(tenant, id));
  return views;
}

void ApiServer::reconcile() {
  if (coordinator_ == nullptr) return;
  // Only tenants with in-flight jobs can have releases to settle; the
  // index keeps this O(live tenants), not O(tenants ever seen).
  for (auto lt = live_tenants_.begin(); lt != live_tenants_.end();) {
    const std::string& tenant = *lt;
    TenantState& state = tenants_.at(tenant);
    for (auto it = state.live.begin(); it != state.live.end();) {
      const auto* record = coordinator_->job(it->first);
      bool release = false;
      if (record == nullptr) {
        // The job left the local books entirely — withdrawn by the gateway
        // for a federation forward.  The remote region runs it without
        // re-charging admission (its home region — us — already did).
        ++state.counters.departed;
        ++stats_.totals.departed;
        retired_.emplace(it->first, "departed");
        release = true;
      } else if (sched::job_phase_terminal(record->phase)) {
        if (record->phase == sched::JobPhase::kCompleted) {
          ++state.counters.completed;
          ++stats_.totals.completed;
        }
        release = true;
      }
      if (release) {
        queue_.release(tenant, it->second);
        it = state.live.erase(it);
      } else {
        ++it;
      }
    }
    lt = state.live.empty() ? live_tenants_.erase(lt) : std::next(lt);
  }
}

void ApiServer::drain() {
  ++stats_.drains;
  threshold_drain_pending_ = false;
  // The request plane is its own tier: while the core is down it keeps
  // accepting into bounded queues and retries on the next tick.
  if (coordinator_ != nullptr && coordinator_->crashed()) return;
  reconcile();

  const util::SimTime now = env_.now();
  std::size_t dispatched = 0;
  bool any_dispatch = false;
  while (dispatched < config_.drain_batch) {
    auto next = queue_.pop_next([&](const std::string& tenant,
                                    const DrfQueue::Item& item) {
      const TenantState& state = tenants_.at(tenant);
      if (static_cast<int>(state.live.size()) >= state.quota.max_in_flight)
        return false;
      // Bounded core working set: hold the queue rather than flooding the
      // coordinator arbitrarily far past capacity.
      return queue_.total_usage().fits(item.demand, queue_.capacity(),
                                       config_.core_load_factor);
    });
    if (!next) break;
    auto& [tenant, item] = *next;
    TenantState& state = tenants_.at(tenant);
    const std::string job_id = item.spec.id;
    const double estimate = gpu_seconds_estimate(item);

    // Deferred budget settlement: charges from earlier drains may have
    // exhausted the budget since this job was accepted.
    if (state.counters.gpu_seconds_charged + estimate >
        state.quota.gpu_seconds_budget + 1e-9) {
      ++state.counters.quota_dropped;
      ++stats_.totals.quota_dropped;
      retired_.emplace(job_id, "quota_dropped");
      continue;
    }

    obs::TraceContext ctx{item.trace_id, item.parent_span};
    if (tracer_ != nullptr && tracer_->enabled())
      tracer_->record(ctx, obs::stage::kApiQueue, actor_, item.enqueued_at,
                      now, "tenant=" + tenant);
    const ResourceVector demand = item.demand;
    util::Status status;
    if (dispatch_) {
      status = dispatch_(std::move(item.spec), 0.0, ctx);
    } else if (coordinator_ != nullptr) {
      status = coordinator_->submit(std::move(item.spec), 0.0, ctx);
    } else {
      status = util::unavailable_error("no dispatch sink");
    }
    ++dispatched;
    if (!status.is_ok()) {
      ++state.counters.dispatch_rejected;
      ++stats_.totals.dispatch_rejected;
      retired_.emplace(job_id, "dispatch_rejected");
      GPUNION_WLOG("api") << "core refused " << job_id << ": "
                          << status.message();
      continue;
    }
    any_dispatch = true;
    ++state.counters.dispatched;
    ++stats_.totals.dispatched;
    state.counters.gpu_seconds_charged += estimate;
    stats_.totals.gpu_seconds_charged += estimate;
    admission_latency_.add(now - item.enqueued_at);
    if (coordinator_ != nullptr) {
      queue_.charge(tenant, demand);
      state.live.emplace(job_id, demand);
      live_tenants_.insert(tenant);
    } else {
      // Standalone sink mode (request-plane benches): the core's lifecycle
      // is out of scope, so dispatches settle immediately.
      retired_.emplace(job_id, "dispatched");
    }
    if (dispatch_observer_) dispatch_observer_(tenant, job_id);
  }

  // One write-behind group commit amortizes the whole drained burst — the
  // PR 4 ledger machinery; without this every submit would pay its own
  // interval-flush latency.
  if (any_dispatch && database_ != nullptr) {
    database_->flush_ledger(db::FlushTrigger::kExplicit, now);
    ++stats_.group_commits;
  }
  // No note_queue_depths here: draining only pops, so the high-water
  // marks were already taken at push time.
}

void ApiServer::drain_to_quiescence() {
  std::uint64_t before;
  do {
    before = stats_.totals.dispatched + stats_.totals.quota_dropped +
             stats_.totals.dispatch_rejected;
    drain();
  } while (stats_.totals.dispatched + stats_.totals.quota_dropped +
               stats_.totals.dispatch_rejected !=
           before);
}

void ApiServer::publish_metrics(monitor::MetricRegistry& registry) const {
  auto& totals =
      registry.gauge_family("gpunion_api_requests",
                            "Aggregate request-plane counters by outcome");
  const TenantCounters& t = stats_.totals;
  totals.gauge({{"outcome", "submitted"}}).set(static_cast<double>(t.submitted));
  totals.gauge({{"outcome", "accepted"}}).set(static_cast<double>(t.accepted));
  totals.gauge({{"outcome", "dispatched"}})
      .set(static_cast<double>(t.dispatched));
  totals.gauge({{"outcome", "rejected_overloaded"}})
      .set(static_cast<double>(t.rejected_overloaded));
  totals.gauge({{"outcome", "rejected_quota"}})
      .set(static_cast<double>(t.rejected_quota + t.quota_dropped));
  totals.gauge({{"outcome", "rejected_invalid"}})
      .set(static_cast<double>(t.rejected_invalid));
  totals.gauge({{"outcome", "completed"}}).set(static_cast<double>(t.completed));
  totals.gauge({{"outcome", "departed"}}).set(static_cast<double>(t.departed));

  auto& plane = registry.gauge_family("gpunion_api_plane",
                                      "Request-plane operational gauges");
  plane.gauge({{"stat", "queued"}})
      .set(static_cast<double>(queue_.total_queued()));
  plane.gauge({{"stat", "tenants"}}).set(static_cast<double>(tenants_.size()));
  plane.gauge({{"stat", "drains"}}).set(static_cast<double>(stats_.drains));
  plane.gauge({{"stat", "group_commits"}})
      .set(static_cast<double>(stats_.group_commits));
  plane.gauge({{"stat", "max_total_queued"}})
      .set(static_cast<double>(stats_.max_total_queued));

  // Per-tenant gauges, top-K by accepted count so a million-tenant
  // population cannot blow up exposition cardinality.
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  ranked.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_)
    ranked.emplace_back(state.counters.accepted, name);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (ranked.size() > config_.metrics_top_tenants)
    ranked.resize(config_.metrics_top_tenants);
  auto& queued_family = registry.gauge_family(
      "gpunion_api_tenant_queued", "Queued jobs per tenant (top-K)");
  auto& inflight_family = registry.gauge_family(
      "gpunion_api_tenant_in_flight", "Core-live jobs per tenant (top-K)");
  auto& share_family =
      registry.gauge_family("gpunion_api_tenant_dominant_share",
                            "Weighted DRF dominant share per tenant (top-K)");
  auto& accepted_family = registry.gauge_family(
      "gpunion_api_tenant_accepted", "Accepted submissions per tenant (top-K)");
  auto& gpu_seconds_family =
      registry.gauge_family("gpunion_api_tenant_gpu_seconds",
                            "GPU-seconds charged per tenant (top-K)");
  for (const auto& [accepted, name] : ranked) {
    const auto& state = tenants_.at(name);
    monitor::Labels labels{{"tenant", name}};
    queued_family.gauge(labels).set(static_cast<double>(queue_.queued(name)));
    inflight_family.gauge(labels).set(static_cast<double>(state.live.size()));
    share_family.gauge(labels).set(queue_.dominant_share_of(name));
    accepted_family.gauge(labels).set(static_cast<double>(accepted));
    gpu_seconds_family.gauge(labels).set(state.counters.gpu_seconds_charged);
  }
}

}  // namespace gpunion::api
