#include "gpunion/platform.h"

#include <algorithm>
#include <cassert>

#include "agent/proto.h"
#include "container/image.h"
#include "util/ids.h"
#include "util/logging.h"

namespace gpunion {

Platform::Platform(sim::Environment& env, CampusConfig config)
    : env_(env),
      config_(std::move(config)),
      network_(std::make_unique<net::SimNetwork>(env, config_.network)),
      database_(config_.db),
      store_(config_.checkpoint_store) {
  // The control plane — coordinator, database, write-behind flushes, the
  // scraper — is one actor: they all touch the same tables synchronously,
  // so they share one lane and never race.
  lane_ = env_.register_lane("platform");
  config_.coordinator.lane = lane_;
  // One tracer per campus unless the owner (federation tier) injected a
  // shared one — cross-region traces need every hop in one ring.
  if (config_.coordinator.tracer == nullptr) {
    config_.coordinator.tracer = &own_tracer_;
  }
  database_.set_tracer(config_.coordinator.tracer);
  if (env_.mode() == sim::ExecutionMode::kParallel &&
      config_.db.write_behind) {
    shard_executor_ = std::make_unique<db::ShardExecutor>(
        std::min<std::size_t>(
            static_cast<std::size_t>(database_.shard_count()),
            std::max<std::size_t>(1, env_.worker_count())));
    database_.set_executor(shard_executor_.get());
  }
  register_default_images();

  for (const auto& storage_config : config_.storage) {
    auto added = store_.add_node(storage_config.id,
                                 storage_config.capacity_bytes);
    assert(added.is_ok() && "duplicate storage node id");
    (void)added;
  }

  coordinator_ = std::make_unique<sched::Coordinator>(
      env_, *network_, database_, store_, config_.coordinator);

  for (const auto& campus_node : config_.nodes) {
    auto model = std::make_unique<hw::NodeModel>(campus_node.spec);
    agent::AgentConfig agent_config = config_.agent_defaults;
    agent_config.coordinator_id = config_.coordinator.id;
    agent_config.owner_group = campus_node.owner_group;
    auto provider = std::make_unique<agent::ProviderAgent>(
        env_, *network_, *model, registry_, store_, agent_config);
    network_->set_access_gbps(provider->machine_id(),
                              campus_node.spec.access_link_gbps);
    agents_by_id_[provider->machine_id()] = provider.get();
    agents_by_hostname_[campus_node.spec.hostname] = provider.get();
    node_models_.push_back(std::move(model));
    agents_.push_back(std::move(provider));
  }

  wire_owner_reclaim();

  if (config_.api.enabled) {
    // The request plane shares the control-plane lane: submits, drains and
    // coordinator hand-offs all mutate the same tables, so they are one
    // actor and kDeterministic keeps their relative order bit-stable.
    api_ = std::make_unique<api::ApiServer>(env_, config_.api, lane_);
    api_->attach_coordinator(coordinator_.get());
    api_->attach_database(&database_);
    api_->set_tracer(config_.coordinator.tracer);
    api_->set_actor("api/" + config_.coordinator.id);
    api::ResourceVector capacity;
    for (const auto& model : node_models_) {
      for (std::size_t i = 0; i < model->gpu_count(); ++i) {
        capacity.gpus += 1.0;
        capacity.memory_gb += model->gpu(i).spec().memory_gb;
      }
    }
    api_->set_capacity(capacity);
  }

  scraper_ = std::make_unique<monitor::Scraper>(
      env_, metrics_, database_, config_.scrape_interval, lane_);
  // refresh_metrics reads across actors (coordinator directory, node models
  // the agents mutate), so the tick is exclusive.  In kDeterministic an
  // exclusive event is an ordinary one — the legacy order is unchanged.
  metrics_timer_ = std::make_unique<sim::PeriodicTimer>(
      env_, config_.scrape_interval, [this] { refresh_metrics(); }, lane_,
      /*exclusive=*/true);
  db_flush_timer_ = std::make_unique<sim::PeriodicTimer>(
      env_, config_.db.flush_interval,
      [this] {
        database_.flush_ledger(db::FlushTrigger::kInterval, env_.now());
        if (config_.db.adaptive_flush) {
          // Contention-aware pacing: deep log -> flush sooner (bounds the
          // recovery replay window), idle log -> stretch out (fewer group
          // commits).  Takes effect at the next tick.
          db_flush_timer_->set_period(database_.recommended_flush_interval());
        }
      },
      lane_);
  faults_ = std::make_unique<sim::FaultInjector>(env_);
}

Platform::~Platform() = default;

void Platform::register_default_images() {
  registry_.allow_base("nvidia/cuda:12.1-runtime");
  auto push = [this](container::Image image) {
    auto pushed = registry_.push(image);
    assert(pushed.is_ok());
    (void)pushed;
  };
  push(container::make_image("pytorch", "2.3-cuda12.1",
                             "nvidia/cuda:12.1-runtime", 6ULL << 30,
                             "torch-2.3 cuda-12.1 cudnn-8.9"));
  push(container::make_image("jupyter-dl", "latest",
                             "nvidia/cuda:12.1-runtime", 8ULL << 30,
                             "jupyterlab torch tf keras"));
  push(container::make_image("tensorflow", "2.16-cuda12.1",
                             "nvidia/cuda:12.1-runtime", 7ULL << 30,
                             "tf-2.16 cuda-12.1"));
}

void Platform::attach_storage_endpoints() {
  for (const auto& storage_config : config_.storage) {
    const std::string id = storage_config.id;
    network_->set_access_gbps(id, 10.0);  // NAS on a 10 GbE uplink
    // Each NAS is its own actor: the handler only reads the message and
    // sends, so restore streams from different nodes can serve in parallel.
    const sim::LaneId storage_lane = env_.register_lane("storage:" + id);
    network_->register_endpoint(id, [this, id](net::Message&& msg) {
      switch (msg.kind) {
        case agent::kRestoreRequest: {
          // Stream the checkpoint back to the requesting agent.
          const auto& request =
              std::any_cast<const agent::RestoreRequest&>(msg.payload);
          net::Message data;
          data.from = id;
          data.to = request.requester;
          data.kind = agent::kRestoreData;
          data.traffic_class = net::TrafficClass::kMigration;
          data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
          data.payload = agent::RestoreData{request.job_id};
          (void)network_->send(std::move(data));
          break;
        }
        case agent::kCheckpointData:
          break;  // bytes absorbed; placement metadata lives in the store
        default:
          GPUNION_WLOG("storage") << id << " unexpected message kind "
                                  << msg.kind;
      }
    }, storage_lane);
  }
}

void Platform::attach_image_registry_endpoint() {
  network_->set_access_gbps("image-registry", 10.0);
  // Own actor lane; resolve() is a const read of a registry that is only
  // mutated before start(), so concurrent pulls are safe.
  const sim::LaneId registry_lane = env_.register_lane("image-registry");
  network_->register_endpoint("image-registry", [this](net::Message&& msg) {
    if (msg.kind != agent::kImagePullRequest) return;
    const auto& request =
        std::any_cast<const agent::ImagePullRequest&>(msg.payload);
    auto image = registry_.resolve(request.image_ref);
    net::Message data;
    data.from = "image-registry";
    data.to = request.requester;
    data.kind = agent::kImageData;
    data.traffic_class = net::TrafficClass::kImage;
    data.size_bytes = image.ok() ? image->size_bytes : 1;
    data.payload = agent::ImageData{request.image_ref};
    (void)network_->send(std::move(data));
  }, registry_lane);
}

void Platform::wire_owner_reclaim() {
  coordinator_->set_on_unplaceable([this](const workload::JobSpec& job,
                                          const std::string& owner_node,
                                          int gpus_needed) {
    agent::ProviderAgent* owner_agent = agent(owner_node);
    if (owner_agent == nullptr ||
        owner_agent->state() != agent::AgentState::kActive) {
      return;
    }
    // The owner only reclaims from guests; if the machine is running the
    // group's own work there is nothing to take back.
    if (owner_agent->runtime().live_count() == 0) return;
    const auto reclaim = [this, owner_agent, owner_node,
                          job_id = job.id, gpus_needed] {
      if (owner_agent->state() != agent::AgentState::kActive) return;
      const int freed = owner_agent->reclaim_gpus(gpus_needed);
      if (freed > 0) {
        GPUNION_ILOG("platform")
            << "owner of " << owner_node << " reclaimed " << freed
            << " GPU(s) for " << job_id;
      }
    };
    if (env_.mode() == sim::ExecutionMode::kParallel) {
      // This callback fires on the coordinator's lane, but reclaim mutates
      // the owner's agent — a different actor.  Hop to its lane (the push
      // gets the standard causality clamp if it lands inside the window).
      env_.schedule_at_on(owner_agent->lane(), env_.now(), reclaim);
    } else {
      reclaim();  // legacy synchronous reclaim: exact PR-3 behaviour
    }
  });
}

void Platform::start() {
  assert(!started_ && "Platform::start called twice");
  started_ = true;
  coordinator_->start();
  attach_storage_endpoints();
  attach_image_registry_endpoint();
  for (auto& provider : agents_) provider->join();
  metrics_timer_->start();
  scraper_->start();
  if (config_.db.write_behind) db_flush_timer_->start();
  if (api_) api_->start();
}

agent::ProviderAgent* Platform::agent(const std::string& machine_id) {
  auto it = agents_by_id_.find(machine_id);
  return it == agents_by_id_.end() ? nullptr : it->second;
}

agent::ProviderAgent* Platform::agent_by_hostname(
    const std::string& hostname) {
  auto it = agents_by_hostname_.find(hostname);
  return it == agents_by_hostname_.end() ? nullptr : it->second;
}

std::vector<std::string> Platform::machine_ids() const {
  std::vector<std::string> out;
  out.reserve(agents_by_id_.size());
  for (const auto& [id, provider] : agents_by_id_) out.push_back(id);
  return out;
}

std::string Platform::machine_id_for(const std::string& hostname) {
  return util::make_machine_id(hostname, agent::kMachineIdSalt);
}

void Platform::inject_interruption(const workload::Interruption& event) {
  agent::ProviderAgent* provider = agent(event.machine_id);
  if (provider == nullptr || provider->state() != agent::AgentState::kActive) {
    return;  // already offline; the trace generator avoids overlaps
  }
  switch (event.kind) {
    case agent::DepartureKind::kScheduled:
      coordinator_->set_cause_hint(event.machine_id, event.kind);
      provider->depart_scheduled();
      break;
    case agent::DepartureKind::kEmergency:
    case agent::DepartureKind::kTemporary:
      coordinator_->set_cause_hint(event.machine_id, event.kind);
      provider->depart_emergency();
      break;
    case agent::DepartureKind::kReclaim:
      provider->kill_switch();
      return;  // node stays online; no rejoin needed
  }
  // Rejoin only touches the returning agent (registration flows back to the
  // coordinator over the network), so it runs on that agent's lane.
  env_.schedule_after_on(
      provider->lane(), event.downtime, [this, machine = event.machine_id] {
        agent::ProviderAgent* returning = agent(machine);
        if (returning != nullptr &&
            returning->state() == agent::AgentState::kDeparted) {
          returning->rejoin();
        }
      });
}

void Platform::schedule_interruption(util::SimTime t,
                                     const workload::Interruption& event) {
  env_.schedule_exclusive_at(t, [this, event] { inject_interruption(event); });
}

void Platform::set_crash_hooks(std::function<void()> on_crash,
                               std::function<void()> on_recover) {
  crash_hook_ = std::move(on_crash);
  recover_hook_ = std::move(on_recover);
}

bool Platform::control_plane_crashed() const {
  return coordinator_->crashed();
}

void Platform::crash_control_plane(util::Duration downtime) {
  assert(started_ && "crash before start");
  if (coordinator_->crashed()) return;  // one outage at a time
  GPUNION_ILOG("platform") << "control plane crash at " << env_.now()
                           << " (down " << downtime << "s)";
  coordinator_->crash();
  // No group commits while the process is down; the WAL keeps every acked
  // mutation the ledger had not flushed.
  db_flush_timer_->stop();
  if (crash_hook_) crash_hook_();
  env_.schedule_exclusive_after(downtime, [this] {
    // Restart order matters: durable tables first (the coordinator rebuilds
    // FROM them), then the coordinator, then anything hooked on top (the
    // region gateway repatriates via coordinator_.submit).
    const db::RecoveryReport report = database_.crash_and_recover();
    GPUNION_ILOG("platform")
        << "db recovered: wal_depth=" << report.wal_depth_at_crash
        << " replayed=" << report.replayed
        << " skipped=" << report.skipped_applied
        << " job_states=" << report.job_states;
    coordinator_->recover();
    if (config_.db.write_behind) db_flush_timer_->start();
    if (recover_hook_) recover_hook_();
  });
}

void Platform::register_crash_points(util::Duration downtime) {
  faults_->register_fault(std::string(sim::kCrashPreAck), [this, downtime] {
    // Settle the ledger first: the crash lands between acks, with every
    // acknowledged mutation already durable in its shard image.
    database_.flush_ledger(db::FlushTrigger::kExplicit, env_.now());
    crash_control_plane(downtime);
  });
  faults_->register_fault(std::string(sim::kCrashPostAckPreFlush),
                          [this, downtime] {
                            // Dirty ledger: acked work lives only in the WAL.
                            crash_control_plane(downtime);
                          });
  faults_->register_fault(
      std::string(sim::kCrashMidGroupCommit), [this, downtime] {
        // Tear the group commit down the middle: half the shard images
        // advance, the WAL never truncates, then the process dies.
        database_.arm_flush_crash(
            static_cast<std::size_t>(database_.shard_count()) / 2);
        database_.flush_ledger(db::FlushTrigger::kExplicit, env_.now());
        crash_control_plane(downtime);
      });
}

int Platform::total_gpus() const {
  int total = 0;
  for (const auto& model : node_models_) {
    total += static_cast<int>(model->gpu_count());
  }
  return total;
}

namespace {

/// Delivered compute per bound GPU for one allocation, in GPU units.
///
/// An interactive session only drives the device in bursts: a whole GPU
/// dedicated to one session delivers its duty cycle, not 1.0 — the waste
/// fractional sharing recovers, where up to slots tenants interleave their
/// bursts and each delivers its full slot share.  Training saturates an
/// exclusive allocation; as a shared tenant it delivers the same
/// kSharedComputeShare the progress model runs it at (the static-share
/// simplification documented in workload/job.h), keeping utilization
/// accounting consistent with simulated compute.
double delivered_gpu_fraction(const db::AllocationRecord& allocation) {
  if (allocation.interactive) {
    return std::min(allocation.gpu_fraction, workload::kInteractiveDutyCycle);
  }
  return allocation.gpu_fraction < 1.0 ? workload::kSharedComputeShare : 1.0;
}

}  // namespace

double Platform::fleet_utilization(util::SimTime t0, util::SimTime t1) const {
  assert(t1 > t0);
  double busy_gpu_seconds = 0;
  for (const auto& allocation : database_.allocation_ledger()) {
    const double start = std::max(allocation.started_at, t0);
    const double end = std::min(
        allocation.outcome == db::AllocationOutcome::kRunning
            ? t1
            : allocation.ended_at,
        t1);
    if (end > start) {
      busy_gpu_seconds +=
          (end - start) * delivered_gpu_fraction(allocation) *
          static_cast<double>(std::max<std::size_t>(
              1, allocation.gpu_indices.size()));
    }
  }
  const double capacity = static_cast<double>(total_gpus()) * (t1 - t0);
  return capacity > 0 ? busy_gpu_seconds / capacity : 0.0;
}

std::map<std::string, double> Platform::per_node_utilization(
    util::SimTime t0, util::SimTime t1) const {
  assert(t1 > t0);
  std::map<std::string, double> busy;  // machine id -> busy gpu-seconds
  for (const auto& allocation : database_.allocation_ledger()) {
    const double start = std::max(allocation.started_at, t0);
    const double end = std::min(
        allocation.outcome == db::AllocationOutcome::kRunning
            ? t1
            : allocation.ended_at,
        t1);
    if (end > start) {
      busy[allocation.machine_id] +=
          (end - start) * delivered_gpu_fraction(allocation) *
          static_cast<double>(std::max<std::size_t>(
              1, allocation.gpu_indices.size()));
    }
  }
  std::map<std::string, double> out;
  for (const auto& model : node_models_) {
    const std::string machine = machine_id_for(model->hostname());
    const double capacity =
        static_cast<double>(model->gpu_count()) * (t1 - t0);
    out[model->hostname()] = capacity > 0 ? busy[machine] / capacity : 0.0;
  }
  return out;
}

void Platform::refresh_metrics() {
  auto& nodes_gauge =
      metrics_.gauge_family("gpunion_nodes_active", "Active provider nodes")
          .gauge();
  auto& queue_gauge =
      metrics_
          .gauge_family("gpunion_queue_depth", "Pending resource requests")
          .gauge();
  auto& running_gauge = metrics_
                            .gauge_family("gpunion_jobs_running",
                                          "Jobs currently running")
                            .gauge();
  int active = 0;
  for (const sched::NodeInfo* node : coordinator_->directory().all()) {
    if (node->status == db::NodeStatus::kActive) ++active;
  }
  nodes_gauge.set(active);
  queue_gauge.set(static_cast<double>(database_.queue_depth()));
  int running = 0;
  for (const auto& [id, record] : coordinator_->jobs()) {
    if (record.phase == sched::JobPhase::kRunning) ++running;
  }
  running_gauge.set(running);

  auto& util_family = metrics_.gauge_family(
      "gpunion_gpu_busy_fraction", "Allocated GPU fraction per node");
  for (const auto& model : node_models_) {
    util_family.gauge({{"node", model->hostname()}})
        .set(model->busy_fraction());
  }

  // Span-derived stage latencies + ring accounting (tracer-side histograms
  // copied in here, on the owning thread — the tracer never touches the
  // registry at record time).
  if (auto* tracer = config_.coordinator.tracer; tracer != nullptr) {
    tracer->publish_metrics(metrics_);
  }

  // Request-plane tenant gauges (top-K per-tenant + aggregate outcomes).
  if (api_) api_->publish_metrics(metrics_);

  // Dark data: counters subsystems always kept but never exposed.
  const db::RecoveryReport& recovery = database_.last_recovery_report();
  auto& recovery_family = metrics_.gauge_family(
      "gpunion_db_recovery", "Last crash recovery: WAL replay accounting");
  recovery_family.gauge({{"stat", "recoveries"}})
      .set(static_cast<double>(database_.recoveries()));
  recovery_family.gauge({{"stat", "wal_depth"}})
      .set(static_cast<double>(recovery.wal_depth_at_crash));
  recovery_family.gauge({{"stat", "replayed"}})
      .set(static_cast<double>(recovery.replayed));
  recovery_family.gauge({{"stat", "skipped"}})
      .set(static_cast<double>(recovery.skipped_applied));
  auto& rebuilt_family = metrics_.gauge_family(
      "gpunion_db_recovery_rows", "Rows rebuilt by the last crash recovery");
  rebuilt_family.gauge({{"table", "nodes"}})
      .set(static_cast<double>(recovery.nodes));
  rebuilt_family.gauge({{"table", "allocations"}})
      .set(static_cast<double>(recovery.allocations));
  rebuilt_family.gauge({{"table", "queue"}})
      .set(static_cast<double>(recovery.queue_rows));
  rebuilt_family.gauge({{"table", "job_states"}})
      .set(static_cast<double>(recovery.job_states));
  rebuilt_family.gauge({{"table", "forward_states"}})
      .set(static_cast<double>(recovery.forward_states));
  rebuilt_family.gauge({{"table", "handoffs"}})
      .set(static_cast<double>(recovery.handoffs));

  auto& pops_family = metrics_.gauge_family(
      "gpunion_db_queue_pops", "Pending-queue pops by partition locality");
  pops_family.gauge({{"kind", "local"}})
      .set(static_cast<double>(database_.local_pops()));
  pops_family.gauge({{"kind", "stolen"}})
      .set(static_cast<double>(database_.stolen_pops()));

  const db::LedgerStats& ledger = database_.ledger().stats();
  auto& ledger_family = metrics_.gauge_family(
      "gpunion_db_ledger", "Write-behind ledger group-commit accounting");
  ledger_family.gauge({{"stat", "absorbed"}})
      .set(static_cast<double>(ledger.absorbed));
  ledger_family.gauge({{"stat", "entries_flushed"}})
      .set(static_cast<double>(ledger.entries_flushed));
  ledger_family.gauge({{"stat", "flushes"}})
      .set(static_cast<double>(ledger.flushes));
  ledger_family.gauge({{"stat", "shard_commits"}})
      .set(static_cast<double>(ledger.shard_commits));
  ledger_family.gauge({{"stat", "pending"}})
      .set(static_cast<double>(database_.ledger().pending()));
  ledger_family.gauge({{"stat", "max_pending"}})
      .set(static_cast<double>(ledger.max_pending));

  auto& faults_family = metrics_.gauge_family(
      "gpunion_fault_injections", "Times each registered fault point fired");
  for (const std::string& name : faults_->names()) {
    faults_family.gauge({{"fault", name}})
        .set(static_cast<double>(faults_->fired(name)));
  }

  const sim::QueueStats queue_stats = env_.queue_stats();
  auto& sim_family = metrics_.gauge_family(
      "gpunion_sim_queue", "Event-queue internals across all shards");
  sim_family.gauge({{"stat", "live"}})
      .set(static_cast<double>(queue_stats.live));
  sim_family.gauge({{"stat", "tombstones"}})
      .set(static_cast<double>(queue_stats.tombstones));
  sim_family.gauge({{"stat", "compactions"}})
      .set(static_cast<double>(queue_stats.compactions));
}

}  // namespace gpunion
