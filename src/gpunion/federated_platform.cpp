#include "gpunion/federated_platform.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/logging.h"

namespace gpunion {

FederatedPlatform::FederatedPlatform(sim::Environment& env,
                                     FederationConfig config)
    : env_(env),
      config_(std::move(config)),
      wan_(std::make_unique<net::SimNetwork>(env, config_.wan)) {
  assert(!config_.regions.empty() && "federation requires at least one region");
  // One tracer for the whole federation: a forwarded job's spans from every
  // region land in one ring, so A -> B -> C reads as one trace.
  if (config_.tracer == nullptr) config_.tracer = &own_tracer_;
  // Asymmetric campus distances: applied before any gateway exists, so the
  // first digest already travels at the modeled latency.
  for (const auto& link : config_.links) {
    wan_->set_path_latency("gw-" + link.region_a, "gw-" + link.region_b,
                           link.one_way_latency);
  }
  // The mesh ranking's view of the WAN: control RTT from the path latency,
  // shipping rate from the path bottleneck clamped to the federation
  // channel cap (checkpoints ride the capped class, not the raw links).
  federation::WanPathFn wan_path = [this](const std::string& from,
                                          const std::string& to) {
    federation::WanPathModel path;
    path.rtt = 2.0 * wan_->path_latency(from, to);
    path.gbps = wan_->path_gbps(from, to);
    if (config_.wan.federation_wan_gbps > 0) {
      path.gbps = std::min(path.gbps, config_.wan.federation_wan_gbps);
    }
    return path;
  };
  if (config_.topology == federation::FederationTopology::kHub) {
    broker_ = std::make_unique<federation::FederationBroker>(env_, *wan_,
                                                             config_.broker);
  }
  regions_.reserve(config_.regions.size());
  for (auto& region_config : config_.regions) {
    assert(!region_config.name.empty() && "region requires a name");
    // Regions run on separate campus LANs, so the default coordinator id
    // cannot actually collide — but unique ids keep logs and DB rows
    // attributable when several regions share one process.
    if (region_config.campus.coordinator.id == "coordinator") {
      region_config.campus.coordinator.id =
          "coordinator-" + region_config.name;
    }
    Region region;
    region.name = region_config.name;
    if (region_config.campus.coordinator.tracer == nullptr) {
      region_config.campus.coordinator.tracer = config_.tracer;
    }
    region.platform =
        std::make_unique<Platform>(env_, region_config.campus);
    // The gateway calls straight into its region's coordinator, so it runs
    // on that platform's control-plane lane (one actor per region).
    region.gateway = std::make_unique<federation::RegionGateway>(
        env_, region.platform->coordinator(),
        region.platform->checkpoint_store(), region.platform->database(),
        *wan_, region.name, config_.broker.id, region_config.policy,
        config_.topology, wan_path, region.platform->lane());
    by_name_[region.name] = regions_.size();
    names_.push_back(region.name);
    regions_.push_back(std::move(region));
  }
  assert(by_name_.size() == regions_.size() && "duplicate region name");
  // Seed the mesh membership: every gateway knows every founding region.
  // Regions that join later are discovered through gossip relays.
  for (auto& region : regions_) {
    for (const auto& peer : regions_) {
      if (peer.name == region.name) continue;
      region.gateway->add_peer(peer.name, peer.gateway->gateway_id());
    }
  }
  metrics_timer_ = std::make_unique<sim::PeriodicTimer>(
      env_, config_.metrics_interval, [this] { refresh_metrics(); });
}

FederatedPlatform::~FederatedPlatform() = default;

void FederatedPlatform::start() {
  assert(!started_ && "FederatedPlatform::start called twice");
  started_ = true;
  if (broker_) broker_->start();  // before the gateways: digests flow now
  for (auto& region : regions_) {
    region.platform->start();
    region.gateway->start();
  }
  metrics_timer_->start();
}

Platform& FederatedPlatform::region(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("unknown region " + name);
  }
  return *regions_[it->second].platform;
}

federation::RegionGateway& FederatedPlatform::gateway(
    const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("unknown region " + name);
  }
  return *regions_[it->second].gateway;
}

federation::FederationBroker& FederatedPlatform::broker() {
  if (!broker_) {
    throw std::logic_error("mesh topology has no federation broker");
  }
  return *broker_;
}

int FederatedPlatform::total_gpus() const {
  int total = 0;
  for (const auto& region : regions_) total += region.platform->total_gpus();
  return total;
}

FederatedStats FederatedPlatform::stats() const {
  FederatedStats out;
  util::SampleSet replica_ages;
  for (const auto& region : regions_) {
    const federation::GatewayStats& gw = region.gateway->stats();
    out.forwards_attempted += gw.forwards_attempted;
    out.forwards_admitted += gw.forwards_admitted;
    out.forwards_refused += gw.forwards_refused;
    out.forwards_returned += gw.forwards_returned;
    out.reroutes += gw.reroutes;
    out.remote_admitted += gw.remote_admitted;
    out.remote_refused += gw.remote_refused_policy + gw.remote_refused_cap +
                          gw.remote_refused_capacity +
                          gw.remote_refused_duplicate;
    out.cross_campus_migrations += gw.cross_campus_migrations_in;
    out.checkpoints_shipped += gw.checkpoints_shipped;
    out.checkpoint_bytes_shipped += gw.checkpoint_bytes_shipped;
    out.remote_completions += gw.remote_completions;
    out.digests_published += gw.digests_published;
    out.local_rankings += gw.local_rankings;
    out.gossips_sent += gw.gossips_sent;
    out.gossips_received += gw.gossips_received;
    out.chain_loops_avoided += gw.chain_loops_avoided;
    out.interactive_rtt_filtered += gw.interactive_rtt_filtered;
    for (double age : gw.directory_age_at_rank.samples()) {
      replica_ages.add(age);
    }
  }
  if (broker_) {
    const federation::BrokerStats& broker_stats = broker_->stats();
    out.broker_digests_received = broker_stats.digests_received;
    out.broker_ranking_requests = broker_stats.ranking_requests;
    out.digest_age_mean = broker_stats.digest_age_at_query.mean();
    out.digest_age_max = broker_stats.digest_age_at_query.max();
  } else {
    out.digest_age_mean = replica_ages.mean();
    out.digest_age_max = replica_ages.max();
  }
  return out;
}

void FederatedPlatform::inject_region_outage(const std::string& region_name,
                                             util::Duration downtime) {
  Platform& platform = region(region_name);
  GPUNION_ILOG("federation") << "full-campus outage in " << region_name
                             << " for " << downtime << " s";
  for (const auto& machine_id : platform.machine_ids()) {
    workload::Interruption event;
    event.at = env_.now();
    event.machine_id = machine_id;
    event.kind = agent::DepartureKind::kEmergency;
    event.downtime = downtime;
    platform.inject_interruption(event);
  }
}

void FederatedPlatform::kill_broker() {
  if (!broker_ || broker_killed_) return;
  broker_killed_ = true;
  GPUNION_ILOG("federation") << "federation broker killed";
  wan_->unregister_endpoint(broker_->id());
}

void FederatedPlatform::set_region_wan_partitioned(
    const std::string& region_name, bool partitioned) {
  wan_->set_partitioned(gateway(region_name).gateway_id(), partitioned);
}

void FederatedPlatform::crash_region_control_plane(
    const std::string& region_name, util::Duration downtime) {
  register_region_crash_points(region_name, downtime);  // idempotent hooks
  Platform& platform = region(region_name);
  if (platform.control_plane_crashed()) return;
  GPUNION_ILOG("federation") << "control-plane crash in " << region_name
                             << " for " << downtime << " s";
  platform.crash_control_plane(downtime);
}

void FederatedPlatform::register_region_crash_points(
    const std::string& region_name, util::Duration downtime) {
  Platform& platform = region(region_name);
  federation::RegionGateway* gw = &gateway(region_name);
  // Gateway and coordinator live in one campus process group: every
  // control-plane crash takes both down, every restart brings both back
  // (gateway last — it repatriates via the recovered coordinator).
  platform.set_crash_hooks([gw] { gw->crash(); }, [gw] { gw->recover(); });
  platform.register_crash_points(downtime);
  platform.fault_injector().register_fault(
      std::string(sim::kCrashMidForward), [&platform, downtime] {
        // Same outage; the NAME carries the intent — harnesses fire it
        // while this region has a hand-off in flight, exercising the
        // durable forward rows and the receiver's dedup table.
        platform.crash_control_plane(downtime);
      });
}

void FederatedPlatform::refresh_metrics() {
  // Federation-wide span histograms (the shared tracer holds every
  // region's spans, so this is the one registry with the whole picture).
  config_.tracer->publish_metrics(metrics_);

  // Per-region request-plane rollup: each campus fronts its own ApiServer
  // (remote-admitted forwards bypass it — the home region already charged
  // the tenant), so the federation view is one gauge row per region.
  auto& api_family = metrics_.gauge_family(
      "gpunion_federation_api_requests",
      "Per-region request-plane counters by outcome");
  for (const auto& region : regions_) {
    if (!region.platform->has_api()) continue;
    const api::TenantCounters& t = region.platform->api().stats().totals;
    auto set = [&](const char* outcome, std::uint64_t v) {
      api_family
          .gauge({{"region", region.name}, {"outcome", outcome}})
          .set(static_cast<double>(v));
    };
    set("accepted", t.accepted);
    set("dispatched", t.dispatched);
    set("rejected_overloaded", t.rejected_overloaded);
    set("rejected_quota", t.rejected_quota + t.quota_dropped);
    set("departed", t.departed);
  }
  auto& forwarded = metrics_.gauge_family(
      "gpunion_federation_forwards_admitted_total",
      "Jobs this region pushed to another campus (accepted offers)");
  auto& admitted = metrics_.gauge_family(
      "gpunion_federation_remote_admitted_total",
      "Forwarded jobs this region accepted from other campuses");
  auto& active = metrics_.gauge_family(
      "gpunion_federation_remote_active",
      "Forwarded jobs currently reserved or running in this region");
  auto& migrations = metrics_.gauge_family(
      "gpunion_federation_cross_campus_migrations_total",
      "Admitted forwards that resumed from a shipped checkpoint");
  auto& staleness = metrics_.gauge_family(
      "gpunion_federation_digest_age_seconds",
      "Age of each region's digest at the broker (hub) or the freshest "
      "peer replica entry for it (mesh)");
  for (const auto& region : regions_) {
    const monitor::Labels labels{{"region", region.name}};
    const federation::GatewayStats& gw = region.gateway->stats();
    forwarded.gauge(labels).set(
        static_cast<double>(gw.forwards_admitted));
    admitted.gauge(labels).set(static_cast<double>(gw.remote_admitted));
    active.gauge(labels).set(
        static_cast<double>(region.gateway->remote_jobs_active()));
    migrations.gauge(labels).set(
        static_cast<double>(gw.cross_campus_migrations_in));
    if (broker_) {
      auto entry = broker_->regions().find(region.name);
      if (entry != broker_->regions().end()) {
        staleness.gauge(labels).set(env_.now() - entry->second.received_at);
      }
      continue;
    }
    // Mesh: the freshest view any OTHER replica holds of this region.
    double best_age = -1;
    for (const auto& peer : regions_) {
      if (peer.name == region.name) continue;
      const federation::DirectoryEntry* entry =
          peer.gateway->directory().entry(region.name);
      if (entry == nullptr) continue;
      const double age = env_.now() - entry->generated_at;
      if (best_age < 0 || age < best_age) best_age = age;
    }
    if (best_age >= 0) staleness.gauge(labels).set(best_age);
  }
}

}  // namespace gpunion
