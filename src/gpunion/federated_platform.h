// Multi-campus federation harness.
//
// Instantiates N autonomous regional Platforms (each with its own campus
// LAN, coordinator, database and checkpoint store) on ONE simulation
// environment, plus the federation tier that joins them: an inter-campus
// WAN SimNetwork (federation traffic rides its own capped channel), one
// FederationBroker, and one RegionGateway per campus.
//
// The scalability story this enables: each region's coordinator fans in
// only its own heartbeats, while the broker — the only global component —
// sees O(regions) digest messages per gossip interval.  And the scenario
// family it opens: a full-campus outage whose displaced jobs the rest of
// the federation absorbs via cross-campus checkpoint migration, asymmetric
// region sizes, WAN-bandwidth-constrained migration.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/broker.h"
#include "federation/gateway.h"
#include "gpunion/platform.h"
#include "monitor/metrics.h"

namespace gpunion {

/// One campus in the federation.
struct RegionConfig {
  std::string name;
  CampusConfig campus;
  federation::RegionPolicy policy;
};

struct FederationConfig {
  std::vector<RegionConfig> regions;
  /// Inter-campus WAN model; `federation_wan_gbps` caps the shared channel
  /// all federation traffic (gossip, forwards, checkpoints) rides.
  net::SimNetworkConfig wan;
  federation::BrokerConfig broker;
  /// Cadence of the federated metrics refresh.
  util::Duration metrics_interval = 60.0;
};

/// Federation-wide aggregate of the per-gateway and broker counters.
struct FederatedStats {
  std::uint64_t forwards_attempted = 0;
  std::uint64_t forwards_admitted = 0;
  std::uint64_t forwards_refused = 0;
  std::uint64_t forwards_returned = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t remote_admitted = 0;
  std::uint64_t remote_refused = 0;  // policy + cap + capacity
  std::uint64_t cross_campus_migrations = 0;
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t checkpoint_bytes_shipped = 0;
  std::uint64_t remote_completions = 0;
  std::uint64_t digests_published = 0;
  std::uint64_t broker_digests_received = 0;
  std::uint64_t broker_ranking_requests = 0;
  /// Digest staleness the broker actually ranked on (seconds).
  double digest_age_mean = 0;
  double digest_age_max = 0;
};

class FederatedPlatform {
 public:
  FederatedPlatform(sim::Environment& env, FederationConfig config);
  ~FederatedPlatform();

  FederatedPlatform(const FederatedPlatform&) = delete;
  FederatedPlatform& operator=(const FederatedPlatform&) = delete;

  /// Starts every regional platform, the broker, then the gateways (first
  /// digests flow immediately).
  void start();

  std::size_t region_count() const { return regions_.size(); }
  const std::vector<std::string>& region_names() const { return names_; }
  Platform& region(const std::string& name);
  Platform& region(std::size_t index) { return *regions_.at(index).platform; }
  federation::RegionGateway& gateway(const std::string& name);
  federation::FederationBroker& broker() { return *broker_; }
  net::SimNetwork& wan() { return *wan_; }
  monitor::MetricRegistry& metrics() { return metrics_; }
  sim::Environment& env() { return env_; }

  /// Every GPU across every region.
  int total_gpus() const;

  /// Aggregated federation counters (gateways + broker).
  FederatedStats stats() const;

  /// Full-campus outage: every provider node in `region` departs
  /// immediately (emergency) and rejoins after `downtime`.  The federation
  /// absorbs the displaced load via cross-campus forwarding.
  void inject_region_outage(const std::string& region_name,
                            util::Duration downtime);

 private:
  void refresh_metrics();

  sim::Environment& env_;
  FederationConfig config_;
  std::unique_ptr<net::SimNetwork> wan_;
  std::unique_ptr<federation::FederationBroker> broker_;
  struct Region {
    std::string name;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<federation::RegionGateway> gateway;
  };
  std::vector<Region> regions_;
  std::map<std::string, std::size_t> by_name_;
  std::vector<std::string> names_;
  monitor::MetricRegistry metrics_;
  std::unique_ptr<sim::PeriodicTimer> metrics_timer_;
  bool started_ = false;
};

}  // namespace gpunion
