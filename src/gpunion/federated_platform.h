// Multi-campus federation harness.
//
// Instantiates N autonomous regional Platforms (each with its own campus
// LAN, coordinator, database and checkpoint store) on ONE simulation
// environment, plus the federation tier that joins them: an inter-campus
// WAN SimNetwork (federation traffic rides its own capped channel) and one
// RegionGateway per campus.  Under the default MESH topology the gateways
// replicate the region directory among themselves via peer-to-peer gossip
// and rank forwarding targets locally (WAN-cost-aware); under the legacy
// HUB topology a single FederationBroker collects digests and answers
// ranking queries (kept for A/B benching — kill_broker() lets a bench
// show exactly what dies with it).
//
// The scalability story this enables: each region's coordinator fans in
// only its own heartbeats, while inter-region traffic is O(regions)
// digests per gossip interval — at a hub in hub mode, spread across the
// mesh otherwise.  And the scenario family it opens: a full-campus outage
// whose displaced jobs the rest of the federation absorbs via cross-campus
// checkpoint migration (re-forwarded onward, provenance chains intact, if
// the absorber degrades in turn), asymmetric region sizes and WAN
// distances, WAN-bandwidth-constrained migration, WAN partitions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/broker.h"
#include "federation/gateway.h"
#include "gpunion/platform.h"
#include "monitor/metrics.h"

namespace gpunion {

/// One campus in the federation.
struct RegionConfig {
  std::string name;
  CampusConfig campus;
  federation::RegionPolicy policy;
};

/// Modeled one-way propagation latency between two regions' gateways
/// (symmetric).  Pairs without an entry use the WAN's base latency.
struct InterRegionLink {
  std::string region_a;
  std::string region_b;
  util::Duration one_way_latency = 0.010;
};

struct FederationConfig {
  std::vector<RegionConfig> regions;
  /// Inter-campus WAN model; `federation_wan_gbps` caps the shared channel
  /// all federation traffic (gossip, forwards, checkpoints) rides.
  net::SimNetworkConfig wan;
  /// Asymmetric campus distances (feeds the mesh ranking's RTT terms and
  /// the interactive latency budget).
  std::vector<InterRegionLink> links;
  /// kMesh (default): brokerless replicated directories, local rankings.
  /// kHub: the original single-broker topology (A/B benching).
  federation::FederationTopology topology =
      federation::FederationTopology::kMesh;
  federation::BrokerConfig broker;
  /// Cadence of the federated metrics refresh.
  util::Duration metrics_interval = 60.0;
  /// Shared causal tracer injected into every region's control plane, so a
  /// forwarded job's spans — origin, WAN transfer, remote execution — land
  /// in ONE ring as one trace.  Left null, the FederatedPlatform owns one.
  obs::Tracer* tracer = nullptr;
};

/// Federation-wide aggregate of the per-gateway (and, in hub mode, broker)
/// counters.
struct FederatedStats {
  std::uint64_t forwards_attempted = 0;
  std::uint64_t forwards_admitted = 0;
  std::uint64_t forwards_refused = 0;
  std::uint64_t forwards_returned = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t remote_admitted = 0;
  std::uint64_t remote_refused = 0;  // policy + cap + capacity
  std::uint64_t cross_campus_migrations = 0;
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t checkpoint_bytes_shipped = 0;
  std::uint64_t remote_completions = 0;
  std::uint64_t digests_published = 0;
  /// Placement queries answered WITHOUT a broker round-trip (mesh) vs. the
  /// hub round-trips the broker served.
  std::uint64_t local_rankings = 0;
  std::uint64_t broker_digests_received = 0;
  std::uint64_t broker_ranking_requests = 0;
  /// Mesh gossip volume (directory pushes between gateways).
  std::uint64_t gossips_sent = 0;
  std::uint64_t gossips_received = 0;
  /// Ranking filters (loop avoidance, interactive RTT budget).
  std::uint64_t chain_loops_avoided = 0;
  std::uint64_t interactive_rtt_filtered = 0;
  /// Digest staleness actually ranked on (seconds): broker-side in hub
  /// mode, replica-side in mesh mode.
  double digest_age_mean = 0;
  double digest_age_max = 0;
};

class FederatedPlatform {
 public:
  FederatedPlatform(sim::Environment& env, FederationConfig config);
  ~FederatedPlatform();

  FederatedPlatform(const FederatedPlatform&) = delete;
  FederatedPlatform& operator=(const FederatedPlatform&) = delete;

  /// Starts every regional platform, the broker (hub mode), then the
  /// gateways (first digests flow immediately).
  void start();

  std::size_t region_count() const { return regions_.size(); }
  const std::vector<std::string>& region_names() const { return names_; }
  federation::FederationTopology topology() const { return config_.topology; }
  Platform& region(const std::string& name);
  Platform& region(std::size_t index) { return *regions_.at(index).platform; }
  federation::RegionGateway& gateway(const std::string& name);
  /// Hub mode only; throws std::logic_error under the mesh topology
  /// (there is deliberately no broker to return).
  federation::FederationBroker& broker();
  net::SimNetwork& wan() { return *wan_; }
  monitor::MetricRegistry& metrics() { return metrics_; }
  /// The federation-wide tracer every region records into.
  obs::Tracer& tracer() { return *config_.tracer; }
  const obs::Tracer& tracer() const { return *config_.tracer; }
  sim::Environment& env() { return env_; }

  /// Every GPU across every region.
  int total_gpus() const;

  /// Aggregated federation counters (gateways + broker).
  FederatedStats stats() const;

  /// Full-campus outage: every provider node in `region` departs
  /// immediately (emergency) and rejoins after `downtime`.  The federation
  /// absorbs the displaced load via cross-campus forwarding.
  void inject_region_outage(const std::string& region_name,
                            util::Duration downtime);

  /// Kills the hub: the broker's WAN endpoint is unregistered, so digests
  /// and ranking requests vanish into the void from now on.  The mesh-vs-
  /// hub A/B lever — a no-op under the mesh topology, where there is
  /// nothing to kill.  Irreversible for the run.
  void kill_broker();
  bool broker_killed() const { return broker_killed_; }

  /// WAN partition of one region's gateway: federation messages to/from it
  /// are silently dropped until healed.  The campus itself keeps running —
  /// only its federation membership goes dark (replicas elsewhere age out
  /// past the directory TTL and stop ranking it).
  void set_region_wan_partitioned(const std::string& region_name,
                                  bool partitioned);

  /// Crashes one region's whole control plane — gateway AND coordinator go
  /// down together (they are one campus process group), the database
  /// recovers from its WAL after `downtime`, the coordinator rebuilds, and
  /// the gateway resumes in-flight hand-offs, repatriates unanswered
  /// offers and anti-entropy-pulls the directory from a live peer.
  void crash_region_control_plane(const std::string& region_name,
                                  util::Duration downtime);

  /// Installs the full crash-point taxonomy (including kCrashMidForward,
  /// which takes the gateway down with the coordinator — harnesses fire it
  /// while a forward is in flight) on one region's fault injector, and
  /// couples the gateway's crash/restart to every campus crash point.
  void register_region_crash_points(const std::string& region_name,
                                    util::Duration downtime);

 private:
  void refresh_metrics();

  sim::Environment& env_;
  FederationConfig config_;
  /// Default federation-wide tracer; config_.tracer points here unless the
  /// caller injected one.
  obs::Tracer own_tracer_;
  std::unique_ptr<net::SimNetwork> wan_;
  std::unique_ptr<federation::FederationBroker> broker_;
  struct Region {
    std::string name;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<federation::RegionGateway> gateway;
  };
  std::vector<Region> regions_;
  std::map<std::string, std::size_t> by_name_;
  std::vector<std::string> names_;
  monitor::MetricRegistry metrics_;
  std::unique_ptr<sim::PeriodicTimer> metrics_timer_;
  bool broker_killed_ = false;
  bool started_ = false;
};

}  // namespace gpunion
