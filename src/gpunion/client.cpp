#include "gpunion/client.h"

namespace gpunion {

Client::Client(Platform& platform, std::string group)
    : platform_(platform), group_(std::move(group)), ids_(group_ + "-job") {}

util::StatusOr<std::string> Client::submit_training(
    const workload::NamedProfile& profile, double hours,
    SubmitOptions options) {
  if (hours <= 0) {
    return util::invalid_argument_error("training hours must be positive");
  }
  workload::JobSpec job = workload::make_training_job(
      ids_.next(), profile, hours, group_, platform_.env().now());
  job.checkpoint_interval = options.checkpoint_interval;
  job.preferred_storage = options.preferred_storage;
  job.requirements.priority = options.priority;
  if (!options.home_hostname.empty()) {
    job.owner_node = Platform::machine_id_for(options.home_hostname);
  }
  const std::string id = job.id;
  GPUNION_RETURN_IF_ERROR(platform_.coordinator().submit(std::move(job)));
  return id;
}

util::StatusOr<std::string> Client::submit_model(
    const workload::ModelDescription& model, SubmitOptions options) {
  if (model.parameter_count == 0) {
    return util::invalid_argument_error("model has no parameters");
  }
  workload::JobSpec job;
  job.id = ids_.next();
  job.type = workload::JobType::kTraining;
  job.owner_group = group_;
  job.requirements = workload::estimate_requirements(model);
  job.requirements.priority = options.priority;
  job.state = workload::estimate_state(model);
  job.reference_duration =
      workload::estimate_reference_hours(model) * 3600.0;
  job.checkpoint_interval = options.checkpoint_interval;
  job.preferred_storage = options.preferred_storage;
  job.submitted_at = platform_.env().now();
  if (!options.home_hostname.empty()) {
    job.owner_node = Platform::machine_id_for(options.home_hostname);
  }
  const std::string id = job.id;
  GPUNION_RETURN_IF_ERROR(platform_.coordinator().submit(std::move(job)));
  return id;
}

util::StatusOr<std::string> Client::request_session(double hours,
                                                    SubmitOptions options) {
  if (hours <= 0) {
    return util::invalid_argument_error("session hours must be positive");
  }
  workload::JobSpec job = workload::make_interactive_session(
      ids_.next(), hours, group_, platform_.env().now());
  if (options.priority != 0) job.requirements.priority = options.priority;
  if (!options.home_hostname.empty()) {
    job.owner_node = Platform::machine_id_for(options.home_hostname);
  }
  const std::string id = job.id;
  GPUNION_RETURN_IF_ERROR(platform_.coordinator().submit(std::move(job)));
  return id;
}

util::Status Client::cancel(const std::string& job_id) {
  return platform_.coordinator().cancel(job_id);
}

const sched::JobRecord* Client::status(const std::string& job_id) const {
  return platform_.coordinator().job(job_id);
}

}  // namespace gpunion
