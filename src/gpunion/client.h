// User-facing client API.
//
// §3.1: "submitting a job to the system should feel no more complex than
// running it locally."  The client wraps coordinator submission with
// sensible defaults: profile-driven resource requirements, automatic job
// ids, checkpoint placement preferences and home-node hints for owner
// reclaim.
#pragma once

#include <string>
#include <vector>

#include "gpunion/platform.h"
#include "util/ids.h"
#include "util/status.h"
#include "workload/estimator.h"
#include "workload/profiles.h"

namespace gpunion {

struct SubmitOptions {
  util::Duration checkpoint_interval = 600.0;
  std::vector<std::string> preferred_storage;  // user-designated (§3.2)
  int priority = 0;
  /// Hostname of the group's own machine (enables owner reclaim).
  std::string home_hostname;
};

class Client {
 public:
  /// `group` identifies the submitting research group.
  Client(Platform& platform, std::string group);

  /// Submits a training job built from a workload profile; returns its id.
  util::StatusOr<std::string> submit_training(
      const workload::NamedProfile& profile, double hours,
      SubmitOptions options = {});

  /// User-transparent resource invocation (§5.2): describe the *model* and
  /// let the platform estimate GPU memory, compute-capability floor,
  /// checkpoint profile and runtime.  Returns the job id.
  util::StatusOr<std::string> submit_model(
      const workload::ModelDescription& model, SubmitOptions options = {});

  /// Requests an interactive Jupyter session of the given length.
  util::StatusOr<std::string> request_session(double hours,
                                              SubmitOptions options = {});

  /// Cancels a pending or running job.
  util::Status cancel(const std::string& job_id);

  /// Current record (phase, node, progress); nullptr when unknown.
  const sched::JobRecord* status(const std::string& job_id) const;

  const std::string& group() const { return group_; }

 private:
  Platform& platform_;
  std::string group_;
  util::IdSequence ids_;
};

}  // namespace gpunion
