// GPUnion platform facade.
//
// Owns and wires every subsystem: the campus network model, system database,
// image registry, checkpoint store (with storage endpoints on the network),
// the coordinator, one provider agent per campus node, Prometheus-style
// metrics and the scraper.  This is the top-level object examples and
// benches instantiate; experiments inject provider churn through
// inject_interruption() and read results from the coordinator, the
// migration tracker and the allocation ledger.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/provider_agent.h"
#include "api/api_server.h"
#include "container/registry.h"
#include "db/sharded_database.h"
#include "gpunion/config.h"
#include "monitor/metrics.h"
#include "monitor/scraper.h"
#include "net/sim_network.h"
#include "obs/trace.h"
#include "sched/coordinator.h"
#include "sim/environment.h"
#include "sim/fault_injector.h"
#include "storage/checkpoint_store.h"
#include "workload/provider_behavior.h"

namespace gpunion {

class Platform {
 public:
  Platform(sim::Environment& env, CampusConfig config);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Brings the platform up: coordinator online, storage + image-registry
  /// endpoints attached, every provider agent joined.
  void start();

  // --- Component access ------------------------------------------------------
  sched::Coordinator& coordinator() { return *coordinator_; }
  const sched::Coordinator& coordinator() const { return *coordinator_; }
  /// The tenant-facing request plane (CampusConfig::api.enabled); campuses
  /// without one expose no front door and callers use coordinator().
  bool has_api() const { return api_ != nullptr; }
  api::ApiServer& api() { return *api_; }
  const api::ApiServer& api() const { return *api_; }
  net::SimNetwork& network() { return *network_; }
  /// The campus system database: sharded writers + write-behind ledger,
  /// configured by CampusConfig::db (legacy single-writer selectable).
  db::ShardedDatabase& database() { return database_; }
  const db::ShardedDatabase& database() const { return database_; }
  storage::CheckpointStore& checkpoint_store() { return store_; }
  container::ImageRegistry& image_registry() { return registry_; }
  monitor::MetricRegistry& metrics() { return metrics_; }
  /// The causal tracer the whole campus control plane records into.  Owned
  /// here unless CampusConfig::coordinator.tracer injected a shared one
  /// (the federation tier does, so one trace spans regions).
  obs::Tracer& tracer() { return *config_.coordinator.tracer; }
  const obs::Tracer& tracer() const { return *config_.coordinator.tracer; }
  sim::Environment& env() { return env_; }
  const CampusConfig& config() const { return config_; }
  /// Control-plane actor lane (coordinator + database + scraper share it —
  /// they touch the same tables, so they are one actor).
  sim::LaneId lane() const { return lane_; }

  /// Agent by machine id; nullptr when unknown.
  agent::ProviderAgent* agent(const std::string& machine_id);
  /// Agent by hostname; nullptr when unknown.
  agent::ProviderAgent* agent_by_hostname(const std::string& hostname);
  std::vector<std::string> machine_ids() const;

  /// Machine id an agent on `hostname` will self-assign.
  static std::string machine_id_for(const std::string& hostname);

  // --- Experiment helpers -----------------------------------------------------
  /// Applies one provider-churn event: the provider departs per the event's
  /// kind and automatically rejoins after event.downtime.  Touches the
  /// coordinator AND the provider actor, so in kParallel it must run
  /// exclusively — call it from the main thread between runs, or go through
  /// schedule_interruption().
  void inject_interruption(const workload::Interruption& event);

  /// Schedules inject_interruption(event) at absolute time `t` as an
  /// exclusive event (every worker quiesced; an ordinary event in
  /// kDeterministic).  The mode-safe way for experiments to inject churn.
  void schedule_interruption(util::SimTime t,
                             const workload::Interruption& event);

  // --- Crash / restart --------------------------------------------------------
  /// Named crash-point registry for this campus.  Harnesses schedule faults
  /// by name (sim::kCrashPreAck etc.); register_crash_points installs the
  /// concrete actions.
  sim::FaultInjector& fault_injector() { return *faults_; }

  /// Crashes the campus control plane in place: the coordinator stops
  /// acking (messages drop), the background flush timer stops, and after
  /// `downtime` the database recovers from its WAL and the coordinator
  /// rebuilds live jobs, indexes and in-flight dispatches from the durable
  /// tables.  Nodes, agents and running work are untouched — this is the
  /// coordinator-process outage the paper's centralized design fears.
  /// No-op while already crashed.  Like inject_interruption, call it from
  /// the main thread between runs or via an exclusive event.
  void crash_control_plane(util::Duration downtime);

  /// Couples extra components to the control-plane outage (the federation
  /// tier hooks the region gateway's crash/recover here).  on_crash runs
  /// right after the coordinator crashes; on_recover right after it
  /// recovers.
  void set_crash_hooks(std::function<void()> on_crash,
                       std::function<void()> on_recover);

  /// Registers the crash-point taxonomy against this campus:
  ///  - kCrashPreAck: group-commit first, then crash — every acked mutation
  ///    is already in its shard image, recovery replays nothing;
  ///  - kCrashPostAckPreFlush: crash with the write-behind ledger dirty —
  ///    acked mutations exist only in the WAL and must replay;
  ///  - kCrashMidGroupCommit: a torn group commit (half the shards advance,
  ///    the WAL is never truncated), then crash — recovery must replay
  ///    idempotently across the tear.
  /// Each fires crash_control_plane(downtime).
  void register_crash_points(util::Duration downtime);

  bool control_plane_crashed() const;

  /// Fleet-wide *delivered* GPU utilization over [t0, t1], computed exactly
  /// from the allocation ledger: each allocation contributes its delivered
  /// compute (training saturates its capacity share; an interactive session
  /// delivers min(share, duty cycle) — a dedicated whole GPU mostly idles
  /// under a bursty notebook, which is what fractional sharing recovers).
  double fleet_utilization(util::SimTime t0, util::SimTime t1) const;

  /// Per-hostname utilization over [t0, t1].
  std::map<std::string, double> per_node_utilization(util::SimTime t0,
                                                     util::SimTime t1) const;

  int total_gpus() const;

 private:
  void register_default_images();
  void attach_storage_endpoints();
  void attach_image_registry_endpoint();
  void wire_owner_reclaim();
  void refresh_metrics();

  sim::Environment& env_;
  CampusConfig config_;
  /// Default tracer; config_.coordinator.tracer points here unless the
  /// owner injected a shared one before construction.
  obs::Tracer own_tracer_;
  sim::LaneId lane_ = sim::kMainLane;
  std::unique_ptr<net::SimNetwork> network_;
  db::ShardedDatabase database_;
  /// Per-shard commit threads, attached to the database in kParallel when
  /// write-behind is on (flush_ledger group commits fork-join across them).
  std::unique_ptr<db::ShardExecutor> shard_executor_;
  container::ImageRegistry registry_;
  storage::CheckpointStore store_;
  monitor::MetricRegistry metrics_;
  std::unique_ptr<sched::Coordinator> coordinator_;
  std::unique_ptr<api::ApiServer> api_;
  std::vector<std::unique_ptr<hw::NodeModel>> node_models_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
  std::map<std::string, agent::ProviderAgent*> agents_by_id_;
  std::map<std::string, agent::ProviderAgent*> agents_by_hostname_;
  std::unique_ptr<monitor::Scraper> scraper_;
  std::unique_ptr<sim::PeriodicTimer> metrics_timer_;
  /// Background write-behind commits (CampusConfig::db.flush_interval); the
  /// threshold flush happens inside the database itself.  Under
  /// DbConfig::adaptive_flush the tick re-paces itself from
  /// recommended_flush_interval() after every flush.
  std::unique_ptr<sim::PeriodicTimer> db_flush_timer_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::function<void()> crash_hook_;
  std::function<void()> recover_hook_;
  bool started_ = false;
};

}  // namespace gpunion
