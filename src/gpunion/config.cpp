#include "gpunion/config.h"

namespace gpunion {

CampusConfig paper_campus() {
  CampusConfig config;

  // 8 workstations with one RTX 3090 each: five in the vision lab, three in
  // the NLP lab (§4: "8 servers functioned as workstations, each equipped
  // with a single NVIDIA 3090 GPU").
  for (int i = 0; i < 5; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("ws-vision-" + std::to_string(i)), "vision"});
  }
  for (int i = 0; i < 3; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090("ws-nlp-" + std::to_string(i)), "nlp"});
  }
  // "one server featured 8 4090 GPUs" — the systems lab's training box.
  config.nodes.push_back({hw::server_8x4090("srv-mlsys-0"), "mlsys"});
  // "another two servers housed 2 A100 and 4 A6000, respectively."
  config.nodes.push_back({hw::server_2xa100("srv-bio-0"), "bio"});
  config.nodes.push_back({hw::server_4xa6000("srv-nlp-big"), "nlp"});

  // Campus NAS for checkpoints and user data.
  config.storage.push_back({"nas-campus", 32ULL << 40});

  config.coordinator.heartbeat_interval = 2.0;
  config.coordinator.heartbeat_miss_threshold = 3;
  config.coordinator.strategy = std::string(sched::kRoundRobin);
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 30.0;

  return config;
}

const std::vector<std::string>& paper_groups() {
  static const std::vector<std::string> groups = {"vision", "nlp", "mlsys",
                                                  "bio", "theory"};
  return groups;
}

}  // namespace gpunion
