// Campus deployment configuration.
//
// paper_campus() reproduces the §4 deployment: 8 single-RTX-3090
// workstations, one 8x RTX 4090 server, one 2x A100 server, one 4x A6000
// server, a CPU-only coordinator, plus a campus NAS for checkpoints —
// owned by four research groups of very different means.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agent/provider_agent.h"
#include "api/api_server.h"
#include "db/sharded_database.h"
#include "hw/node.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"

namespace gpunion {

struct CampusNode {
  hw::NodeSpec spec;
  std::string owner_group;
};

struct StorageNodeConfig {
  std::string id;
  std::uint64_t capacity_bytes = 32ULL << 40;  // 32 TiB NAS
};

struct CampusConfig {
  std::vector<CampusNode> nodes;
  std::vector<StorageNodeConfig> storage;
  sched::CoordinatorConfig coordinator;
  agent::AgentConfig agent_defaults;
  net::SimNetworkConfig network;
  storage::CheckpointStoreConfig checkpoint_store;
  /// System-database model: writer shard count, write-behind ledgering and
  /// its flush knobs.  {shard_count = 1, write_behind = false} selects the
  /// legacy single-writer path for A/B benching.
  db::DbConfig db;
  /// Monitoring scrape interval into the system database.
  util::Duration scrape_interval = 60.0;
  /// Tenant-facing request plane (api::ApiServer).  Disabled by default:
  /// existing harnesses drive Coordinator::submit directly; campuses that
  /// front tenants set enabled = true and get per-tenant queues, quotas,
  /// DRF draining and token-bucket backpressure in front of the core.
  api::ApiConfig api;
};

/// The paper's 11-server fleet (§4), groups: vision (8x3090 workstations
/// split with nlp), mlsys (8x4090 server), bio (2xA100), nlp (4xA6000);
/// the "theory" group owns no GPUs at all (the access-barrier population).
CampusConfig paper_campus();

/// Research-group names used by paper_campus(), in a stable order.
const std::vector<std::string>& paper_groups();

}  // namespace gpunion
