// End-to-end causal tracing for the control plane.
//
// The monitor/ layer aggregates (counters, gauges, histograms); it cannot
// answer *where one job's latency went* across submit -> queue -> placement
// -> dispatch -> run -> checkpoint -> WAN forward -> remote admit.  This
// module adds that missing axis: a TraceContext rides every job through the
// coordinator, the write-behind database and the federation gateways, and
// each stage closes a Span into a bounded ring buffer.
//
// Identity model:
//  - trace id = FNV-1a hash of the job id.  Any component that only sees a
//    job key (the DB group-commit path, a remote region admitting a
//    transfer) derives the SAME trace id without any plumbing, so a job
//    forwarded A -> B -> C yields ONE trace whose spans come from three
//    regions' components.
//  - span ids are allocated from a counter under the ring mutex.  In
//    kDeterministic mode everything runs single-threaded in the legacy
//    global order, so the full span stream is bit-identical across runs AND
//    across configured worker counts (the mode ignores worker_threads).
//  - parent edges: each recorded span may advance its TraceContext's
//    parent_span, so the next stage parents to it.  Cross-region edges ride
//    JobTransfer (the sender's transfer span id becomes the receiver's
//    admit span's parent), mirroring the PR 5 hop chains.
//
// Cost model: tracing is OFF unless a Tracer is wired into the configs
// (null pointer = not even a branch beyond the null check), and a compiled
// tracer can be disabled at build time with -DGPUNION_TRACING=0, which
// turns enabled() into a constant-false the optimizer deletes.  The ring
// drops oldest spans at capacity (dropped() counts them) so memory is
// bounded no matter how long the run is.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/metrics.h"
#include "util/time.h"

#ifndef GPUNION_TRACING
#define GPUNION_TRACING 1
#endif

namespace gpunion::obs {

/// Compile-time kill switch: with -DGPUNION_TRACING=0 every enabled() guard
/// folds to `false` and the instrumentation inlines away.
inline constexpr bool kTracingCompiledIn = GPUNION_TRACING != 0;

/// Span taxonomy.  Stage names double as the `stage` label of the
/// auto-registered latency histograms, so keep them exposition-safe.
namespace stage {
/// Tenant edge (src/api): admission decision, then time spent in the
/// per-tenant DRF queue before the core saw the job.  kApiAdmit is the
/// trace ROOT for API-submitted jobs — end-to-end latency starts here.
inline constexpr std::string_view kApiAdmit = "api_admit";
inline constexpr std::string_view kApiQueue = "api_queue";
inline constexpr std::string_view kSubmit = "submit";
inline constexpr std::string_view kQueueWait = "queue_wait";
inline constexpr std::string_view kPlacement = "placement";
inline constexpr std::string_view kDispatch = "dispatch";
inline constexpr std::string_view kRun = "run";
inline constexpr std::string_view kCheckpoint = "checkpoint";
inline constexpr std::string_view kInterrupt = "interrupt";
inline constexpr std::string_view kRecoveryRedispatch = "recovery_redispatch";
inline constexpr std::string_view kDbGroupCommit = "db_group_commit";
inline constexpr std::string_view kFedWithdraw = "fed_withdraw";
inline constexpr std::string_view kFedOffer = "fed_offer";
inline constexpr std::string_view kFedTransfer = "fed_transfer";
inline constexpr std::string_view kFedAdmit = "fed_admit";
}  // namespace stage

/// Carried by a job through every control-plane component.  parent_span is
/// the id of the most recent causally-preceding span; components record
/// their own span with it as parent, then (usually) advance it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// One completed stage of one trace.  Ring order is CLOSE order, which in
/// kDeterministic mode is a deterministic function of the event order.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0 = root
  std::string stage;              // stage:: taxonomy name
  std::string actor;              // emitting component ("coordinator/alpha")
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::string detail;             // freeform ("node=ws-3", "cause=emergency")

  double duration() const { return end - start; }
};

/// Thread-safe span sink: a drop-oldest ring buffer plus per-stage latency
/// histograms.  One Tracer is shared by every component of a platform (or
/// every region of a federation) so a cross-region trace lands in one ring.
class Tracer {
 public:
  /// `capacity` bounds the ring (spans beyond it evict the oldest).
  explicit Tracer(std::size_t capacity = 1 << 16);

  /// Cheap guard every instrumentation site checks first.  Constant false
  /// when tracing is compiled out.
  bool enabled() const {
    return kTracingCompiledIn && enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(kTracingCompiledIn && on, std::memory_order_relaxed);
  }

  /// Deterministic trace id of a job: FNV-1a of the id string (never 0).
  /// Stable across regions, processes and runs — the property that lets the
  /// DB flush path and a remote admitting gateway join the same trace.
  static std::uint64_t trace_for_job(std::string_view job_id);

  /// Allocates a span id without recording anything — for spans whose id
  /// must be visible to children (or cross the WAN) before they close.
  /// Returns 0 when tracing is off.
  std::uint64_t open_span();

  /// Records a span under a pre-allocated id (see open_span).
  void close_span(std::uint64_t span_id, std::uint64_t trace_id,
                  std::uint64_t parent_span, std::string_view stage,
                  std::string_view actor, util::SimTime start,
                  util::SimTime end, std::string detail = {});

  /// Allocates + records in one step: the span parents to ctx.parent_span,
  /// and with `advance` the context's parent becomes this span (so the next
  /// stage chains to it).  Returns the span id (0 when tracing is off).
  std::uint64_t record(TraceContext& ctx, std::string_view stage,
                       std::string_view actor, util::SimTime start,
                       util::SimTime end, std::string detail = {},
                       bool advance = true);

  /// All retained spans, oldest first (close order).
  std::vector<Span> snapshot() const;
  /// Retained spans of one trace, oldest first.
  std::vector<Span> trace(std::uint64_t trace_id) const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const;
  /// Spans evicted by the drop-oldest policy.
  std::uint64_t dropped() const;
  /// Drops every retained span and resets counters (benches reuse a tracer
  /// across A/B phases); span ids keep counting up.
  void clear();

  /// Copies the per-stage latency histograms and ring counters into
  /// `registry` (families gpunion_trace_stage_seconds,
  /// gpunion_trace_spans_*), so expose_registry serves stage-level p50/p99.
  /// Called from the owning platform's metrics refresh — the registry is
  /// only ever touched from its owner's thread, the tracer's own state
  /// stays under its mutex.
  void publish_metrics(monitor::MetricRegistry& registry) const;

  /// Bucket bounds of the stage latency histograms (seconds).
  static const std::vector<double>& stage_bounds();

 private:
  void push_locked(Span span);

  const std::size_t capacity_;
  std::atomic<bool> enabled_{kTracingCompiledIn};

  mutable std::mutex mu_;
  std::vector<Span> ring_;       // ring_[head_] is the oldest once full
  std::size_t head_ = 0;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  /// Per-stage latency, accumulated tracer-side and copied out by
  /// publish_metrics (keeps registry access single-threaded).
  std::map<std::string, monitor::Histogram, std::less<>> stage_latency_;
};

}  // namespace gpunion::obs
