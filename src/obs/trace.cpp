#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace gpunion::obs {

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint64_t Tracer::trace_for_job(std::string_view job_id) {
  // FNV-1a, 64-bit.  0 is reserved for "no trace".
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : job_id) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash == 0 ? 1099511628211ull : hash;
}

std::uint64_t Tracer::open_span() {
  if (!enabled()) return 0;
  std::lock_guard lock(mu_);
  return next_span_id_++;
}

void Tracer::close_span(std::uint64_t span_id, std::uint64_t trace_id,
                        std::uint64_t parent_span, std::string_view stage,
                        std::string_view actor, util::SimTime start,
                        util::SimTime end, std::string detail) {
  if (!enabled() || span_id == 0) return;
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span = parent_span;
  span.stage.assign(stage);
  span.actor.assign(actor);
  span.start = start;
  span.end = end;
  span.detail = std::move(detail);
  std::lock_guard lock(mu_);
  auto it = stage_latency_.find(span.stage);
  if (it == stage_latency_.end()) {
    it = stage_latency_
             .emplace(span.stage, monitor::Histogram(stage_bounds()))
             .first;
  }
  it->second.observe(std::max(0.0, span.duration()));
  push_locked(std::move(span));
}

std::uint64_t Tracer::record(TraceContext& ctx, std::string_view stage,
                             std::string_view actor, util::SimTime start,
                             util::SimTime end, std::string detail,
                             bool advance) {
  if (!enabled() || !ctx.valid()) return 0;
  const std::uint64_t span_id = open_span();
  close_span(span_id, ctx.trace_id, ctx.parent_span, stage, actor, start, end,
             std::move(detail));
  if (advance) ctx.parent_span = span_id;
  return span_id;
}

void Tracer::push_locked(Span span) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  ++recorded_;
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> Tracer::trace(std::uint64_t trace_id) const {
  std::vector<Span> all = snapshot();
  std::vector<Span> out;
  for (auto& span : all) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  stage_latency_.clear();
}

void Tracer::publish_metrics(monitor::MetricRegistry& registry) const {
  std::lock_guard lock(mu_);
  auto& stage_family = registry.histogram_family(
      "gpunion_trace_stage_seconds",
      "Span-derived latency per trace stage", stage_bounds());
  for (const auto& [name, hist] : stage_latency_) {
    stage_family.histogram({{"stage", name}}) = hist;
  }
  auto& spans = registry.gauge_family("gpunion_trace_spans",
                                      "Span ring buffer accounting");
  spans.gauge({{"state", "recorded"}}).set(static_cast<double>(recorded_));
  spans.gauge({{"state", "dropped"}}).set(static_cast<double>(dropped_));
  spans.gauge({{"state", "retained"}}).set(static_cast<double>(ring_.size()));
}

const std::vector<double>& Tracer::stage_bounds() {
  static const std::vector<double> kBounds = {
      0.001, 0.005, 0.01, 0.05, 0.1,  0.5,   1.0,   2.0,
      5.0,   10.0,  30.0, 60.0, 120.0, 300.0, 600.0, 1800.0};
  return kBounds;
}

}  // namespace gpunion::obs
