// Span exporters: Chrome/Perfetto trace-event JSON for humans, and a
// compact length-prefixed binary codec for machine round-trips (the
// determinism tests compare encoded byte streams, and benches persist
// sample traces as artifacts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gpunion::obs {

/// Renders spans as a Chrome trace-event JSON document ("traceEvents"
/// array of complete "X" events).  Open the output in ui.perfetto.dev or
/// chrome://tracing.  Rows (tid) group spans by actor; timestamps are sim
/// seconds scaled to microseconds.  Deterministic for a given span list.
std::string perfetto_trace_json(const std::vector<Span>& spans);

/// Compact binary encoding: "GPTR" magic, format version, span count, then
/// fixed-width little-endian fields with length-prefixed strings.  A byte-
/// identical encoding <=> an identical span stream, which is what the
/// replay-determinism tests assert.
std::vector<std::uint8_t> encode_spans(const std::vector<Span>& spans);

/// Inverse of encode_spans.  Returns false (leaving *out empty) on a
/// truncated or foreign buffer.
bool decode_spans(const std::vector<std::uint8_t>& bytes,
                  std::vector<Span>* out);

}  // namespace gpunion::obs
