#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

namespace gpunion::obs {

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;

  bool u32(std::uint32_t* v) {
    if (bytes.size() - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool u64(std::uint64_t* v) {
    if (bytes.size() - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool string(std::string* s) {
    std::uint32_t len;
    if (!u32(&len)) return false;
    if (bytes.size() - pos < len) return false;
    s->assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
              bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return true;
  }
};

constexpr std::uint32_t kMagic = 0x52545047;  // "GPTR" little-endian
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string perfetto_trace_json(const std::vector<Span>& spans) {
  // Stable actor -> tid mapping in first-appearance order.
  std::map<std::string, int> tids;
  std::vector<const std::string*> actor_order;
  for (const auto& span : spans) {
    if (tids.emplace(span.actor, static_cast<int>(tids.size()) + 1).second) {
      actor_order.push_back(&span.actor);
    }
  }

  std::ostringstream out;
  out.precision(15);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto* actor : actor_order) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tids[*actor]
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(*actor) << "\"}}";
  }
  for (const auto& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[span.actor]
        << ",\"name\":\"" << json_escape(span.stage) << "\",\"ts\":"
        << span.start * 1e6 << ",\"dur\":"
        << std::max(0.0, span.duration()) * 1e6 << ",\"args\":{"
        << "\"trace\":\"" << span.trace_id << "\",\"span\":\"" << span.span_id
        << "\",\"parent\":\"" << span.parent_span << "\",\"detail\":\""
        << json_escape(span.detail) << "\"}}";
  }
  out << "]}";
  return out.str();
}

std::vector<std::uint8_t> encode_spans(const std::vector<Span>& spans) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + spans.size() * 96);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, spans.size());
  for (const auto& span : spans) {
    put_u64(out, span.trace_id);
    put_u64(out, span.span_id);
    put_u64(out, span.parent_span);
    put_f64(out, span.start);
    put_f64(out, span.end);
    put_string(out, span.stage);
    put_string(out, span.actor);
    put_string(out, span.detail);
  }
  return out;
}

bool decode_spans(const std::vector<std::uint8_t>& bytes,
                  std::vector<Span>* out) {
  out->clear();
  Reader r{bytes};
  std::uint32_t magic, version;
  std::uint64_t count;
  if (!r.u32(&magic) || magic != kMagic) return false;
  if (!r.u32(&version) || version != kVersion) return false;
  if (!r.u64(&count)) return false;
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Span span;
    if (!r.u64(&span.trace_id) || !r.u64(&span.span_id) ||
        !r.u64(&span.parent_span) || !r.f64(&span.start) ||
        !r.f64(&span.end) || !r.string(&span.stage) ||
        !r.string(&span.actor) || !r.string(&span.detail)) {
      out->clear();
      return false;
    }
    out->push_back(std::move(span));
  }
  return r.pos == bytes.size();
}

}  // namespace gpunion::obs
