// Periodic metric scraper.
//
// Pulls gauge/counter values out of a MetricRegistry on a fixed interval and
// persists them as time series in the system database — the "historical
// monitoring data ... enabling operational decision making and capacity
// planning" of §3.2.
#pragma once

#include <memory>
#include <string>

#include "db/database.h"
#include "monitor/metrics.h"
#include "sim/environment.h"

namespace gpunion::monitor {

class Scraper {
 public:
  /// Scrapes `registry` every `interval` into `database`.  Series are named
  /// "<family>{label=value,...}".
  /// `lane`: actor lane the scrape timer fires on (the platform's lane,
  /// since scrapes read platform-wide metrics).
  Scraper(sim::Environment& env, const MetricRegistry& registry,
          db::Database& database, util::Duration interval,
          sim::LaneId lane = sim::kMainLane);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// One scrape pass (also called by the timer).
  void scrape_once();

  std::uint64_t scrape_count() const { return scrapes_; }

  /// Series name for a family + labels, matching what scrape_once writes.
  static std::string series_name(const std::string& family,
                                 const Labels& labels);

 private:
  sim::Environment& env_;
  const MetricRegistry& registry_;
  db::Database& database_;
  sim::PeriodicTimer timer_;
  std::uint64_t scrapes_ = 0;
};

}  // namespace gpunion::monitor
