// Prometheus text-format exposition (version 0.0.4).
//
// Renders a MetricRegistry exactly as a /metrics endpoint would serve it,
// so operators can point existing dashboards at GPUnion.
#pragma once

#include <string>

#include "monitor/metrics.h"

namespace gpunion::monitor {

/// Renders one family, e.g.:
///   # HELP gpunion_gpu_utilization ...
///   # TYPE gpunion_gpu_utilization gauge
///   gpunion_gpu_utilization{gpu="0",node="ws-01"} 87.5
std::string expose_family(const MetricFamily& family);

/// Renders the whole registry in name order.
std::string expose_registry(const MetricRegistry& registry);

/// Escapes a label value per the exposition format (backslash, quote, \n).
std::string escape_label_value(const std::string& value);

/// Inverse of escape_label_value, as a scraping client would apply it.
/// Unknown escape sequences pass through verbatim.
std::string unescape_label_value(const std::string& value);

}  // namespace gpunion::monitor
