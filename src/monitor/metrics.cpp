#include "monitor/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gpunion::monitor {

void Counter::increment(double amount) {
  // Counters are monotonic: a negative increment (e.g. computed from a
  // difference that went backwards) is ignored rather than corrupting the
  // series.
  if (!(amount >= 0)) return;
  value_ += amount;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must ascend");
  bucket_counts_.assign(bounds_.size() + 1, 0);  // +Inf bucket at the end
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  bucket_counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  ++count_;
  sum_ += value;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out(bucket_counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    running += bucket_counts_[i];
    out[i] = running;
  }
  return out;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::isnan(q) ? 0.5 : std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) {
    // Lower edge of the first occupied bucket (the minimum observable
    // estimate; the old code interpolated inside an empty first bucket).
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
      if (bucket_counts_[i] == 0) continue;
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      return i == 0 ? 0.0 : bounds_[i - 1];
    }
    return 0.0;
  }
  if (q >= 1.0) {
    // Upper edge of the last occupied bucket; the +Inf bucket has no upper
    // edge, so the largest finite bound is the best available estimate.
    for (std::size_t i = bucket_counts_.size(); i-- > 0;) {
      if (bucket_counts_[i] == 0) continue;
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      return bounds_[i];
    }
    return 0.0;
  }
  auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    if (bucket_counts_[i] == 0) continue;  // never land inside an empty bucket
    running += bucket_counts_[i];
    if (running >= target) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      // Interpolate within the bucket.
      const std::uint64_t in_bucket = bucket_counts_[i];
      const std::uint64_t before = running - in_bucket;
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

MetricFamily::MetricFamily(std::string name, std::string help, MetricType type,
                           std::vector<double> histogram_bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      type_(type),
      histogram_bounds_(std::move(histogram_bounds)) {}

Counter& MetricFamily::counter(const Labels& labels) {
  assert(type_ == MetricType::kCounter);
  return counters_[labels];
}

Gauge& MetricFamily::gauge(const Labels& labels) {
  assert(type_ == MetricType::kGauge);
  return gauges_[labels];
}

Histogram& MetricFamily::histogram(const Labels& labels) {
  assert(type_ == MetricType::kHistogram);
  auto it = histograms_.find(labels);
  if (it == histograms_.end()) {
    it = histograms_.emplace(labels, Histogram(histogram_bounds_)).first;
  }
  return it->second;
}

MetricFamily& MetricRegistry::family(const std::string& name,
                                     const std::string& help, MetricType type,
                                     std::vector<double> bounds) {
  auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second->type() != type) {
      throw std::invalid_argument("metric " + name +
                                  " re-registered with a different type");
    }
    return *it->second;
  }
  auto family = std::make_unique<MetricFamily>(name, help, type,
                                               std::move(bounds));
  MetricFamily& ref = *family;
  families_.emplace(name, std::move(family));
  return ref;
}

MetricFamily& MetricRegistry::counter_family(const std::string& name,
                                             const std::string& help) {
  return family(name, help, MetricType::kCounter, {});
}

MetricFamily& MetricRegistry::gauge_family(const std::string& name,
                                           const std::string& help) {
  return family(name, help, MetricType::kGauge, {});
}

MetricFamily& MetricRegistry::histogram_family(const std::string& name,
                                               const std::string& help,
                                               std::vector<double> bounds) {
  return family(name, help, MetricType::kHistogram, std::move(bounds));
}

const MetricFamily* MetricRegistry::find(const std::string& name) const {
  auto it = families_.find(name);
  return it == families_.end() ? nullptr : it->second.get();
}

std::vector<const MetricFamily*> MetricRegistry::families() const {
  std::vector<const MetricFamily*> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(family.get());
  return out;
}

}  // namespace gpunion::monitor
