// Prometheus-style metric primitives.
//
// §3.5: "Comprehensive monitoring is achieved through Prometheus metrics
// exporters that collect both hardware metrics (GPU utilization, memory
// usage, temperature, etc.) and application metrics (container lifecycle
// events, resource allocation history, etc.)".  This module provides
// counters, gauges and histograms with label sets, registered in a
// MetricRegistry that the exposition writer renders as Prometheus text.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gpunion::monitor {

/// Sorted label set, e.g. {{"node","ws-01"},{"gpu","0"}}.
using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void increment(double amount = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  /// `bounds` are the upper bounds of the cumulative buckets (ascending);
  /// an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count for bucket i (<= bounds[i]); the final entry is the
  /// +Inf bucket == count().
  std::vector<std::uint64_t> cumulative_counts() const;
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Linear-interpolated quantile estimate from bucket boundaries.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> bucket_counts_;  // per-bucket (not cumulative)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// A named family of label-distinguished children, Prometheus-style.
class MetricFamily {
 public:
  MetricFamily(std::string name, std::string help, MetricType type,
               std::vector<double> histogram_bounds = {});

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  MetricType type() const { return type_; }

  Counter& counter(const Labels& labels = {});
  Gauge& gauge(const Labels& labels = {});
  Histogram& histogram(const Labels& labels = {});

  /// All children, sorted by label set for deterministic exposition.
  const std::map<Labels, Counter>& counters() const { return counters_; }
  const std::map<Labels, Gauge>& gauges() const { return gauges_; }
  const std::map<Labels, Histogram>& histograms() const { return histograms_; }

 private:
  std::string name_;
  std::string help_;
  MetricType type_;
  std::vector<double> histogram_bounds_;
  std::map<Labels, Counter> counters_;
  std::map<Labels, Gauge> gauges_;
  std::map<Labels, Histogram> histograms_;
};

/// Registry of families; names are unique.  Throws std::invalid_argument on
/// a name re-registered with a different type (configuration error).
class MetricRegistry {
 public:
  MetricFamily& counter_family(const std::string& name,
                               const std::string& help);
  MetricFamily& gauge_family(const std::string& name, const std::string& help);
  MetricFamily& histogram_family(const std::string& name,
                                 const std::string& help,
                                 std::vector<double> bounds);

  const MetricFamily* find(const std::string& name) const;
  std::vector<const MetricFamily*> families() const;

 private:
  MetricFamily& family(const std::string& name, const std::string& help,
                       MetricType type, std::vector<double> bounds);

  std::map<std::string, std::unique_ptr<MetricFamily>> families_;
};

}  // namespace gpunion::monitor
