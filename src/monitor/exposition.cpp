#include "monitor/exposition.h"

#include <cmath>
#include <sstream>

namespace gpunion::monitor {
namespace {

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += "\"";
  }
  out += "}";
  return out;
}

Labels with_extra(const Labels& labels, const std::string& key,
                  const std::string& value) {
  Labels out = labels;
  out[key] = value;
  return out;
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out += value[i];
      continue;
    }
    switch (value[i + 1]) {
      case '\\': out += '\\'; ++i; break;
      case '"': out += '"'; ++i; break;
      case 'n': out += '\n'; ++i; break;
      default: out += value[i];
    }
  }
  return out;
}

std::string expose_family(const MetricFamily& family) {
  std::ostringstream os;
  os << "# HELP " << family.name() << " " << family.help() << "\n";
  os << "# TYPE " << family.name() << " ";
  switch (family.type()) {
    case MetricType::kCounter:
      os << "counter\n";
      for (const auto& [labels, counter] : family.counters()) {
        os << family.name() << render_labels(labels) << " "
           << format_value(counter.value()) << "\n";
      }
      break;
    case MetricType::kGauge:
      os << "gauge\n";
      for (const auto& [labels, gauge] : family.gauges()) {
        os << family.name() << render_labels(labels) << " "
           << format_value(gauge.value()) << "\n";
      }
      break;
    case MetricType::kHistogram:
      os << "histogram\n";
      for (const auto& [labels, histogram] : family.histograms()) {
        const auto cumulative = histogram.cumulative_counts();
        const auto& bounds = histogram.bounds();
        for (std::size_t i = 0; i < cumulative.size(); ++i) {
          const std::string le =
              i < bounds.size() ? format_value(bounds[i]) : "+Inf";
          os << family.name() << "_bucket"
             << render_labels(with_extra(labels, "le", le)) << " "
             << cumulative[i] << "\n";
        }
        os << family.name() << "_sum" << render_labels(labels) << " "
           << format_value(histogram.sum()) << "\n";
        os << family.name() << "_count" << render_labels(labels) << " "
           << histogram.count() << "\n";
      }
      break;
  }
  return os.str();
}

std::string expose_registry(const MetricRegistry& registry) {
  std::string out;
  for (const MetricFamily* family : registry.families()) {
    out += expose_family(*family);
  }
  return out;
}

}  // namespace gpunion::monitor
