#include "monitor/scraper.h"

namespace gpunion::monitor {

Scraper::Scraper(sim::Environment& env, const MetricRegistry& registry,
                 db::Database& database, util::Duration interval,
                 sim::LaneId lane)
    : env_(env),
      registry_(registry),
      database_(database),
      timer_(env, interval, [this] { scrape_once(); }, lane) {}

std::string Scraper::series_name(const std::string& family,
                                 const Labels& labels) {
  if (labels.empty()) return family;
  std::string out = family + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=" + value;
  }
  out += "}";
  return out;
}

void Scraper::scrape_once() {
  const util::SimTime now = env_.now();
  for (const MetricFamily* family : registry_.families()) {
    switch (family->type()) {
      case MetricType::kCounter:
        for (const auto& [labels, counter] : family->counters()) {
          database_.record_metric(series_name(family->name(), labels), now,
                                  counter.value());
        }
        break;
      case MetricType::kGauge:
        for (const auto& [labels, gauge] : family->gauges()) {
          database_.record_metric(series_name(family->name(), labels), now,
                                  gauge.value());
        }
        break;
      case MetricType::kHistogram:
        // Histograms persist their running mean; full bucket state stays in
        // the registry for exposition.
        for (const auto& [labels, histogram] : family->histograms()) {
          const double mean =
              histogram.count() == 0
                  ? 0.0
                  : histogram.sum() / static_cast<double>(histogram.count());
          database_.record_metric(
              series_name(family->name() + "_mean", labels), now, mean);
        }
        break;
    }
  }
  ++scrapes_;
}

}  // namespace gpunion::monitor
