// Provider interruption behaviour.
//
// §4: "We simulated three classes of provider behavior: scheduled departure
// (provider initiates graceful shutdown), emergency departure (immediate
// disconnection), and temporary unavailability.  Interruption frequency
// varied from 0.5 to 3.2 events per day per node."  This module generates
// deterministic interruption traces with those knobs.
#pragma once

#include <string>
#include <vector>

#include "agent/proto.h"
#include "util/rng.h"
#include "util/time.h"

namespace gpunion::workload {

struct Interruption {
  util::SimTime at = 0;
  std::string machine_id;
  agent::DepartureKind kind = agent::DepartureKind::kScheduled;
  /// Offline time before rejoin (temporary + scheduled providers return;
  /// emergency departures return too, after a longer repair time).
  util::Duration downtime = 3600.0;
};

struct InterruptionModel {
  double events_per_day = 1.0;          // per node
  double p_scheduled = 0.4;             // mix of the three classes
  double p_emergency = 0.25;
  double p_temporary = 0.35;
  util::Duration min_downtime = 1800.0;   // 30 min
  util::Duration max_downtime = 28800.0;  // 8 h
  util::Duration temporary_downtime = 1200.0;  // 20 min median
};

/// Samples an interruption trace for `machine_ids` over [0, horizon).
/// Events are sorted by time; two events for the same node never overlap
/// (a node offline until t gets no new interruption before t + 1h).
std::vector<Interruption> generate_interruptions(
    const std::vector<std::string>& machine_ids, util::SimTime horizon,
    const InterruptionModel& model, util::Rng rng);

}  // namespace gpunion::workload
