// Job model.
//
// GPUnion serves two execution modes (§3.3): interactive research
// environments (Jupyter sessions) and batch/training workloads.  Training
// jobs are modelled analytically: a job is `total work` expressed in
// reference-GPU seconds; a faster GPU finishes proportionally sooner.
// Progress is durable only up to the last checkpoint — the quantity at stake
// in the Fig. 3 interruption experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace gpunion::workload {

enum class JobType { kTraining, kInteractive, kBatch };

std::string_view job_type_name(JobType t);

/// Scheduler-visible resource constraints (§3.5: "Resource allocation
/// decisions consider GPU memory requirements, CUDA compute capability
/// constraints and provider volatility predictions").
struct JobRequirements {
  int gpu_count = 1;
  double gpu_memory_gb = 8.0;
  double min_compute_capability = 7.0;
  int priority = 0;  // higher schedules first
  /// The job tolerates sharing one GPU with other tenants — either a
  /// spatial fractional slot or an nvshare-style time slice — instead of
  /// whole-device allocation.  Interactive sessions are shareable by
  /// default: they drive the GPU in bursts and waste most of a dedicated
  /// device.  Only meaningful for single-GPU jobs; whether a slot is
  /// actually used depends on the platform policy and the placement
  /// strategy.
  bool shareable = false;
  /// Hot working set that must be on-device (or swapped back in) for the
  /// job to make progress — the footprint a time-sliced tenant pays at
  /// quantum boundaries.  0 = assume gpu_memory_gb.
  double working_set_gb = 0;
  /// Fraction of wall-clock time the job actually drives the GPU.  Bursty
  /// jobs (low duty cycle) time-slice well; steady ones do not.  0 = derive
  /// from the job type (interactive -> kInteractiveDutyCycle, else 1.0).
  double duty_cycle = 0;
};

/// Checkpointable-state profile of a training job (drives ALC costs).
struct StateProfile {
  std::uint64_t state_bytes = 2ULL << 30;  // model + optimizer state
  /// Fraction of state rewritten between consecutive checkpoints (drives
  /// incremental delta size).
  double dirty_fraction = 0.35;
  /// Local serialization throughput (bytes/s) when capturing a checkpoint;
  /// memory-intensive models pause longer (§4 Training Impact).
  double serialize_bytes_per_sec = 2.0e9;
};

struct JobSpec {
  std::string id;
  JobType type = JobType::kTraining;
  std::string owner_group;      // research group submitting the job
  std::string owner_node;       // non-empty: the group's home machine
  JobRequirements requirements;
  StateProfile state;
  /// Total work in seconds on the reference GPU (RTX 3090) for training and
  /// batch jobs; wall-clock session length for interactive jobs.
  double reference_duration = 3600.0;
  util::Duration checkpoint_interval = 600.0;
  std::string image_ref = "pytorch:2.3-cuda12.1";
  std::vector<std::string> preferred_storage;  // user-designated (§3.2)
  util::SimTime submitted_at = 0;
};

/// Checkpoint capture pause for a given state profile, seconds.
double checkpoint_pause_seconds(const StateProfile& state);

/// Resolved working set of a job (explicit field, else its VRAM footprint).
double resolved_working_set_gb(const JobSpec& spec);

/// Resolved duty cycle of a job (explicit field, else type-derived).
double resolved_duty_cycle(const JobSpec& spec);

/// Throughput of `gpu_tflops` relative to the reference GPU.
double speed_factor(double gpu_tflops);

/// Reference-GPU FP32 throughput (RTX 3090).
constexpr double kReferenceTflops = 35.6;

/// Fraction of a GPU an interactive session actually drives over its
/// lifetime (bursty notebook usage; the rest idles).  Used by utilization
/// accounting: a whole GPU dedicated to one session delivers only this
/// much compute, which is precisely what fractional sharing recovers.
constexpr double kInteractiveDutyCycle = 0.35;

/// Effective compute share a *training* job gets from a time-sliced shared
/// slot.  Co-tenants are bursty, so the slice delivers more than
/// 1/slots_per_gpu but less than the whole device.
constexpr double kSharedComputeShare = 0.5;

}  // namespace gpunion::workload
