#include "workload/job.h"

#include <cassert>

namespace gpunion::workload {

std::string_view job_type_name(JobType t) {
  switch (t) {
    case JobType::kTraining: return "training";
    case JobType::kInteractive: return "interactive";
    case JobType::kBatch: return "batch";
  }
  return "unknown";
}

double checkpoint_pause_seconds(const StateProfile& state) {
  assert(state.serialize_bytes_per_sec > 0);
  return static_cast<double>(state.state_bytes) /
         state.serialize_bytes_per_sec;
}

double speed_factor(double gpu_tflops) {
  assert(gpu_tflops > 0);
  return gpu_tflops / kReferenceTflops;
}

double resolved_working_set_gb(const JobSpec& spec) {
  return spec.requirements.working_set_gb > 0 ? spec.requirements.working_set_gb
                                              : spec.requirements.gpu_memory_gb;
}

double resolved_duty_cycle(const JobSpec& spec) {
  if (spec.requirements.duty_cycle > 0) return spec.requirements.duty_cycle;
  return spec.type == JobType::kInteractive ? kInteractiveDutyCycle : 1.0;
}

}  // namespace gpunion::workload
