// Heterogeneous large-model deployment (§5.2, "Opportunities").
//
// "Campus networks host a variety of GPU architectures whose memory
// capacity, compute capability, and interconnect bandwidth differ
// substantially.  This heterogeneity calls for new approaches to model
// partitioning, layer placement, and load balancing."
//
// This planner splits a model that exceeds any single campus GPU into
// pipeline stages sized to the *heterogeneous* devices actually available:
// stage memory budgets follow each candidate GPU's VRAM, and stage compute
// shares follow its throughput so the pipeline is balanced (the slowest
// stage sets the rate).
#pragma once

#include <string>
#include <vector>

#include "sched/directory.h"
#include "util/status.h"
#include "workload/estimator.h"

namespace gpunion::workload {

/// One pipeline stage bound to a device class.
struct PipelineStage {
  std::string machine_id;
  int gpu_count = 1;            // devices of this node used by the stage
  double parameter_share = 0;   // fraction of model parameters hosted
  double memory_gb = 0;         // VRAM demand of the stage
  double relative_throughput = 0;  // stage speed at its parameter share
};

struct PartitionPlan {
  std::vector<PipelineStage> stages;
  /// Pipeline rate relative to the reference GPU running the (hypothetical)
  /// whole model: min over stages of throughput_i / share_i.
  double pipeline_speedup = 0;
  double total_memory_gb = 0;
};

/// Plans a placement of `model` across `nodes` (schedulable snapshot).
///
///  - Single-device fit: returns a one-stage plan on the best single GPU.
///  - Otherwise: greedily assigns parameter shares to the highest-throughput
///    free devices, each stage capped by its device's VRAM (with the
///    activation + overhead costs replicated per stage).
///  - kResourceExhausted when even the whole fleet cannot hold the model.
util::StatusOr<PartitionPlan> plan_partition(
    const ModelDescription& model,
    const std::vector<const sched::NodeInfo*>& nodes);

}  // namespace gpunion::workload
