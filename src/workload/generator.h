// Campus workload generation.
//
// Produces deterministic submission traces replayed identically under
// GPUnion and every baseline, so utilization/session deltas (Fig. 2) come
// from the platform, never from workload noise.  The model captures the
// paper's imbalance dimensions (§1): unequal group demand, bursty experiment
// cycles with idle gaps, diurnal interactive usage by students, and
// heterogeneous hardware needs.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "workload/job.h"
#include "workload/profiles.h"

namespace gpunion::workload {

/// One research group's demand pattern.
struct GroupDemand {
  std::string name;
  /// Machine ids this group owns (its silo under manual coordination).
  std::vector<std::string> owned_nodes;
  /// Training arrivals per day while a burst (experiment cycle) is active.
  double burst_jobs_per_day = 3.0;
  /// Training arrivals per day between bursts.
  double idle_jobs_per_day = 0.2;
  /// Experiment cycle: `burst_days` active, then `gap_days` quiet.
  double burst_days = 7.0;
  double gap_days = 7.0;
  /// Phase offset so groups' cycles interleave (the paper's imbalance).
  double phase_days = 0.0;
  /// Interactive session requests per day (students), diurnal.
  double sessions_per_day = 4.0;
  /// Weights over all_profiles() — groups differ in model scale.
  std::vector<double> profile_mix = {0.4, 0.3, 0.2, 0.1};
  /// Mean training-job length scale relative to profile typical_hours.
  double duration_scale = 1.0;
};

struct SubmitEvent {
  util::SimTime at = 0;
  JobSpec job;
};

using Trace = std::vector<SubmitEvent>;

struct TraceStats {
  int training_jobs = 0;
  int interactive_sessions = 0;
  double total_training_hours = 0;  // reference-GPU hours
};

/// Generates the union of all groups' submissions over [0, horizon).
Trace generate_campus_trace(const std::vector<GroupDemand>& groups,
                            util::SimTime horizon, util::Rng rng);

TraceStats summarize(const Trace& trace);

/// Diurnal demand factor for interactive usage: near zero overnight,
/// peaking in the afternoon; weekends damped.
double diurnal_factor(util::SimTime t);

}  // namespace gpunion::workload
