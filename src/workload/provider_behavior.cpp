#include "workload/provider_behavior.h"

#include <algorithm>
#include <cmath>

namespace gpunion::workload {

std::vector<Interruption> generate_interruptions(
    const std::vector<std::string>& machine_ids, util::SimTime horizon,
    const InterruptionModel& model, util::Rng rng) {
  std::vector<Interruption> out;
  const double total_p =
      model.p_scheduled + model.p_emergency + model.p_temporary;
  for (const auto& machine : machine_ids) {
    util::Rng node_rng = rng.fork("interruptions." + machine);
    util::SimTime t = 0;
    const double rate_per_sec = model.events_per_day / 86400.0;
    while (true) {
      if (rate_per_sec <= 0) break;
      t += node_rng.exponential(rate_per_sec);
      if (t >= horizon) break;

      Interruption event;
      event.at = t;
      event.machine_id = machine;
      const double pick = node_rng.uniform(0, total_p);
      if (pick < model.p_scheduled) {
        event.kind = agent::DepartureKind::kScheduled;
        event.downtime = node_rng.uniform(model.min_downtime,
                                          model.max_downtime);
      } else if (pick < model.p_scheduled + model.p_emergency) {
        event.kind = agent::DepartureKind::kEmergency;
        // Emergencies need diagnosis/repair: bias towards longer outages.
        event.downtime = node_rng.uniform(
            (model.min_downtime + model.max_downtime) / 2.0,
            model.max_downtime);
      } else {
        event.kind = agent::DepartureKind::kTemporary;
        // Short blips around the configured median (lognormal-ish spread).
        event.downtime = std::max(
            60.0, model.temporary_downtime * node_rng.lognormal(0.0, 0.5));
      }
      out.push_back(event);
      // Node is offline for `downtime`; next interruption can only start
      // after it has been back for at least an hour.
      t += event.downtime + 3600.0;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Interruption& a, const Interruption& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.machine_id < b.machine_id;
            });
  return out;
}

}  // namespace gpunion::workload
