// User-transparent resource invocation (§5.2, "Opportunities").
//
// The paper notes that GPUnion "currently requires users to estimate their
// own resource needs and then request those resources.  This process is
// cumbersome, and inaccurate estimates can easily lead to resource waste."
// This module implements the proposed improvement: users describe their
// *model* (parameters, precision, batch) and the estimator derives the
// resource request, the checkpointable-state profile and a runtime
// prediction.
//
// Memory model (standard training accounting, documented in DESIGN.md):
//   weights      P x bytes/param
//   gradients    P x bytes/param
//   optimizer    P x 8 bytes          (Adam: m + v in fp32)
//   fp32 master  P x 4 bytes          (mixed precision only)
//   activations  batch x activation_bytes_per_sample
//   overhead     ~1.5 GB CUDA context + workspace
#pragma once

#include <cstdint>
#include <string>

#include "workload/job.h"

namespace gpunion::workload {

struct ModelDescription {
  std::uint64_t parameter_count = 25'000'000;  // e.g. ResNet-50
  bool mixed_precision = true;
  int batch_size = 32;
  /// Activation memory per sample at batch time (bytes); model-family
  /// dependent (CNNs ~30-80 MB, transformers ~5-20 MB per sequence).
  std::uint64_t activation_bytes_per_sample = 48ULL << 20;
  /// Training length in optimizer steps.
  std::uint64_t total_steps = 100'000;
  /// Measured or estimated throughput on the reference GPU (steps/s).
  double reference_steps_per_sec = 2.0;
};

/// VRAM footprint of training this model, in GB (device memory).
double estimate_gpu_memory_gb(const ModelDescription& model);

/// Scheduler-facing requirements: memory + compute-capability floor
/// (mixed precision wants tensor-core parts, CC >= 7.0; large models with
/// >= 30 GB footprints imply CC >= 8.0 data-center parts in this fleet).
JobRequirements estimate_requirements(const ModelDescription& model);

/// Checkpointable-state profile: weights + optimizer state (the ALC
/// payload), with serialization throughput scaled to state size.
StateProfile estimate_state(const ModelDescription& model);

/// Reference-GPU hours to run `total_steps`.
double estimate_reference_hours(const ModelDescription& model);

/// Convenience archetypes for tests and examples.
ModelDescription resnet50_model();
ModelDescription bert_base_model();
ModelDescription gpt2_xl_model();

}  // namespace gpunion::workload
