#include "workload/profiles.h"

namespace gpunion::workload {

const NamedProfile& cnn_small() {
  static const NamedProfile p{
      "cnn-small",
      JobRequirements{1, 6.0, 7.0, 0},
      StateProfile{400ULL << 20, 0.45, 2.5e9},
      4.0};
  return p;
}

const NamedProfile& cnn_large() {
  static const NamedProfile p{
      "cnn-large",
      JobRequirements{1, 12.0, 7.0, 0},
      StateProfile{1500ULL << 20, 0.40, 2.2e9},
      10.0};
  return p;
}

const NamedProfile& transformer_small() {
  static const NamedProfile p{
      "transformer-small",
      JobRequirements{1, 16.0, 8.0, 0},
      StateProfile{4ULL << 30, 0.30, 1.8e9},
      16.0};
  return p;
}

const NamedProfile& transformer_large() {
  static const NamedProfile p{
      "transformer-large",
      JobRequirements{1, 40.0, 8.0, 0},
      StateProfile{14ULL << 30, 0.25, 1.5e9},
      36.0};
  return p;
}

const std::vector<NamedProfile>& all_profiles() {
  static const std::vector<NamedProfile> all = {
      cnn_small(), cnn_large(), transformer_small(), transformer_large()};
  return all;
}

JobSpec make_training_job(std::string id, const NamedProfile& profile,
                          double hours, std::string owner_group,
                          util::SimTime submitted_at) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.type = JobType::kTraining;
  spec.owner_group = std::move(owner_group);
  spec.requirements = profile.requirements;
  spec.state = profile.state;
  spec.reference_duration = hours * 3600.0;
  spec.submitted_at = submitted_at;
  return spec;
}

JobSpec make_interactive_session(std::string id, double hours,
                                 std::string owner_group,
                                 util::SimTime submitted_at) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.type = JobType::kInteractive;
  spec.owner_group = std::move(owner_group);
  // Sessions are latency-sensitive (priority 1) and sized to fit a shared
  // slot on the smallest fleet GPU (24 GB / 4 slots).
  spec.requirements = JobRequirements{1, 6.0, 7.0, 1};
  spec.requirements.shareable = true;  // bursty usage tolerates a shared slot
  spec.reference_duration = hours * 3600.0;
  spec.checkpoint_interval = 0;  // sessions do not checkpoint
  spec.image_ref = "jupyter-dl:latest";
  spec.submitted_at = submitted_at;
  return spec;
}

}  // namespace gpunion::workload
