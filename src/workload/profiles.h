// Canonical workload profiles.
//
// §4 evaluates "PyTorch CNN and transformer models"; the profiles below give
// them concrete state sizes and footprints.  Memory-intensive (transformer)
// profiles have larger state and thus longer checkpoint pauses — the
// sensitivity the paper reports under interruption.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace gpunion::workload {

struct NamedProfile {
  std::string name;
  JobRequirements requirements;
  StateProfile state;
  double typical_hours;  // typical total work at the reference GPU
};

/// Small CNN (ResNet-ish): 0.4 GB state, light VRAM.
const NamedProfile& cnn_small();
/// Large CNN: 1.5 GB state.
const NamedProfile& cnn_large();
/// Small transformer: 4 GB state, moderate VRAM.
const NamedProfile& transformer_small();
/// Large transformer: 14 GB state, VRAM-heavy (A100/A6000-class).
const NamedProfile& transformer_large();

/// All four, in the order above.
const std::vector<NamedProfile>& all_profiles();

/// Builds a training JobSpec from a profile.
JobSpec make_training_job(std::string id, const NamedProfile& profile,
                          double hours, std::string owner_group,
                          util::SimTime submitted_at);

/// Builds an interactive (Jupyter) session spec: 1 GPU, small footprint.
JobSpec make_interactive_session(std::string id, double hours,
                                 std::string owner_group,
                                 util::SimTime submitted_at);

}  // namespace gpunion::workload
