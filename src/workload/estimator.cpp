#include "workload/estimator.h"

#include <algorithm>
#include <cmath>

namespace gpunion::workload {
namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

double estimate_gpu_memory_gb(const ModelDescription& model) {
  const double params = static_cast<double>(model.parameter_count);
  const double param_bytes = model.mixed_precision ? 2.0 : 4.0;
  double bytes = 0;
  bytes += params * param_bytes;       // weights
  bytes += params * param_bytes;       // gradients
  bytes += params * 8.0;               // Adam m + v (fp32)
  if (model.mixed_precision) {
    bytes += params * 4.0;             // fp32 master weights
  }
  bytes += static_cast<double>(model.batch_size) *
           static_cast<double>(model.activation_bytes_per_sample);
  bytes += 1.5 * kGiB;                 // CUDA context + workspace
  return bytes / kGiB;
}

JobRequirements estimate_requirements(const ModelDescription& model) {
  JobRequirements requirements;
  requirements.gpu_count = 1;
  // Round the footprint up to the next GB and add 10% headroom against
  // fragmentation (inaccurate estimates waste resources both ways, §5.2).
  const double footprint = estimate_gpu_memory_gb(model);
  requirements.gpu_memory_gb = std::ceil(footprint * 1.10);
  // Footprints beyond consumer VRAM (24 GB) imply data-center parts.
  requirements.min_compute_capability =
      requirements.gpu_memory_gb > 24.0 ? 8.0 : 7.0;
  return requirements;
}

StateProfile estimate_state(const ModelDescription& model) {
  const double params = static_cast<double>(model.parameter_count);
  StateProfile state;
  // ALC payload: fp32 weights + Adam state (what train scripts torch.save).
  state.state_bytes = static_cast<std::uint64_t>(params * (4.0 + 8.0));
  // Optimizer state churns fully; weights partially: ~2/3 dirty between
  // checkpoints is a reasonable default for minutes-apart checkpoints.
  state.dirty_fraction = 0.35;
  // Serialization throughput degrades slightly for huge states (allocator
  // pressure): 2.5 GB/s small, 1.5 GB/s at tens of GB.
  const double gb = static_cast<double>(state.state_bytes) / kGiB;
  state.serialize_bytes_per_sec =
      std::clamp(2.6e9 - gb * 5.0e7, 1.4e9, 2.6e9);
  return state;
}

double estimate_reference_hours(const ModelDescription& model) {
  const double seconds = static_cast<double>(model.total_steps) /
                         std::max(0.01, model.reference_steps_per_sec);
  return seconds / 3600.0;
}

ModelDescription resnet50_model() {
  ModelDescription model;
  model.parameter_count = 25'600'000;
  model.mixed_precision = true;
  model.batch_size = 64;
  model.activation_bytes_per_sample = 40ULL << 20;
  model.total_steps = 450'000;
  model.reference_steps_per_sec = 5.0;
  return model;
}

ModelDescription bert_base_model() {
  ModelDescription model;
  model.parameter_count = 110'000'000;
  model.mixed_precision = true;
  model.batch_size = 32;
  model.activation_bytes_per_sample = 12ULL << 20;
  model.total_steps = 250'000;
  model.reference_steps_per_sec = 3.0;
  return model;
}

ModelDescription gpt2_xl_model() {
  ModelDescription model;
  model.parameter_count = 1'500'000'000;
  model.mixed_precision = true;
  model.batch_size = 8;
  model.activation_bytes_per_sample = 24ULL << 20;
  model.total_steps = 300'000;
  model.reference_steps_per_sec = 0.8;
  return model;
}

}  // namespace gpunion::workload
