#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gpunion::workload {
namespace {

/// True when the group's experiment cycle is in its active (burst) phase.
bool in_burst(const GroupDemand& group, util::SimTime t) {
  const double cycle = (group.burst_days + group.gap_days) * 86400.0;
  if (cycle <= 0) return true;
  const double pos =
      std::fmod(t + group.phase_days * 86400.0, cycle);
  return pos < group.burst_days * 86400.0;
}

}  // namespace

double diurnal_factor(util::SimTime t) {
  const double day_pos = std::fmod(t, 86400.0) / 86400.0;  // 0 = midnight
  // Smooth day curve peaking around 15:00, ~0.05 at 04:00.
  const double day_curve =
      0.05 + 0.95 * std::max(0.0, std::sin((day_pos - 0.25) * M_PI / 0.625));
  const int day_index = static_cast<int>(t / 86400.0) % 7;
  const double weekend = (day_index == 5 || day_index == 6) ? 0.45 : 1.0;
  return day_curve * weekend;
}

Trace generate_campus_trace(const std::vector<GroupDemand>& groups,
                            util::SimTime horizon, util::Rng rng) {
  Trace trace;
  const auto& profiles = all_profiles();

  for (const auto& group : groups) {
    util::Rng group_rng = rng.fork("trace." + group.name);
    int job_counter = 0;

    // Training arrivals: thinned Poisson over hourly steps so the burst /
    // gap cycle modulates the rate.
    const double step = 3600.0;
    for (util::SimTime t = 0; t < horizon; t += step) {
      const double per_day = in_burst(group, t) ? group.burst_jobs_per_day
                                                : group.idle_jobs_per_day;
      const double lambda = per_day * step / 86400.0;
      const int count = group_rng.poisson(lambda);
      for (int i = 0; i < count; ++i) {
        const util::SimTime at = t + group_rng.uniform(0, step);
        if (at >= horizon) continue;
        std::vector<double> mix = group.profile_mix;
        mix.resize(profiles.size(), 0.0);
        const auto& profile = profiles[group_rng.weighted_index(mix)];
        const double hours = std::max(
            0.5, profile.typical_hours * group.duration_scale *
                     group_rng.lognormal(0.0, 0.45));
        JobSpec job = make_training_job(
            group.name + "-train-" + std::to_string(job_counter++), profile,
            hours, group.name, at);
        if (!group.owned_nodes.empty()) {
          job.owner_node = group.owned_nodes[static_cast<std::size_t>(
              group_rng.uniform_int(0,
                                    static_cast<std::int64_t>(
                                        group.owned_nodes.size()) -
                                        1))];
        }
        trace.push_back(SubmitEvent{at, std::move(job)});
      }
    }

    // Interactive sessions: diurnal thinned Poisson, 1-4 hour sessions.
    for (util::SimTime t = 0; t < horizon; t += step) {
      const double lambda =
          group.sessions_per_day * diurnal_factor(t) * step / 86400.0 * 2.2;
      // 2.2 renormalizes the diurnal curve so the configured daily mean holds.
      const int count = group_rng.poisson(lambda);
      for (int i = 0; i < count; ++i) {
        const util::SimTime at = t + group_rng.uniform(0, step);
        if (at >= horizon) continue;
        const double hours = group_rng.uniform(1.0, 4.0);
        JobSpec job = make_interactive_session(
            group.name + "-sess-" + std::to_string(job_counter++), hours,
            group.name, at);
        if (!group.owned_nodes.empty()) {
          job.owner_node = group.owned_nodes.front();
        }
        trace.push_back(SubmitEvent{at, std::move(job)});
      }
    }
  }

  std::sort(trace.begin(), trace.end(),
            [](const SubmitEvent& a, const SubmitEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.job.id < b.job.id;
            });
  return trace;
}

TraceStats summarize(const Trace& trace) {
  TraceStats stats;
  for (const auto& event : trace) {
    if (event.job.type == JobType::kInteractive) {
      ++stats.interactive_sessions;
    } else {
      ++stats.training_jobs;
      stats.total_training_hours += event.job.reference_duration / 3600.0;
    }
  }
  return stats;
}

}  // namespace gpunion::workload
