#include "workload/partitioner.h"

#include <algorithm>
#include <cmath>

namespace gpunion::workload {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Per-stage fixed costs that do not shrink with the parameter share:
/// activations for the stage's micro-batch plus CUDA context/workspace.
double stage_fixed_gb(const ModelDescription& model) {
  const double activations =
      static_cast<double>(model.batch_size) *
      static_cast<double>(model.activation_bytes_per_sample) / kGiB;
  return activations + 1.5;
}

/// Parameter-proportional memory (weights/grads/optimizer/master copies).
double param_gb_per_share(const ModelDescription& model) {
  const double params = static_cast<double>(model.parameter_count);
  const double param_bytes = model.mixed_precision ? 2.0 : 4.0;
  double bytes = params * param_bytes * 2.0;  // weights + grads
  bytes += params * 8.0;                      // Adam state
  if (model.mixed_precision) bytes += params * 4.0;
  return bytes / kGiB;
}

/// A device slot available for one pipeline stage.
struct Slot {
  const sched::NodeInfo* node;
  double vram_gb;
  double tflops;
};

}  // namespace

util::StatusOr<PartitionPlan> plan_partition(
    const ModelDescription& model,
    const std::vector<const sched::NodeInfo*>& nodes) {
  if (model.parameter_count == 0) {
    return util::invalid_argument_error("model has no parameters");
  }

  const double fixed_gb = stage_fixed_gb(model);
  const double param_gb = param_gb_per_share(model);
  const double whole_gb = fixed_gb + param_gb;

  // Expand nodes into per-GPU slots, fastest first (greedy placement wants
  // the strongest devices carrying the largest shares).
  std::vector<Slot> slots;
  for (const sched::NodeInfo* node : nodes) {
    if (node == nullptr || node->status != db::NodeStatus::kActive ||
        !node->accepting) {
      continue;
    }
    for (int g = 0; g < node->free_gpus; ++g) {
      slots.push_back(Slot{node, node->gpu_memory_gb, node->gpu_tflops});
    }
  }
  if (slots.empty()) {
    return util::unavailable_error("no schedulable GPUs in the fleet");
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     if (a.tflops != b.tflops) return a.tflops > b.tflops;
                     return a.vram_gb > b.vram_gb;
                   });

  // Single-device fit: prefer the fastest device that holds the whole model.
  for (const Slot& slot : slots) {
    if (whole_gb <= slot.vram_gb * 0.95) {
      PartitionPlan plan;
      PipelineStage stage;
      stage.machine_id = slot.node->machine_id;
      stage.parameter_share = 1.0;
      stage.memory_gb = whole_gb;
      stage.relative_throughput = speed_factor(slot.tflops);
      plan.stages.push_back(stage);
      plan.pipeline_speedup = stage.relative_throughput;
      plan.total_memory_gb = whole_gb;
      return plan;
    }
  }

  // Pipeline split: each slot can host at most the parameter share that
  // fits beside the per-stage fixed costs.
  PartitionPlan plan;
  double remaining_share = 1.0;
  double total_tflops = 0;
  for (const Slot& slot : slots) {
    if (remaining_share <= 1e-9) break;
    const double usable_gb = slot.vram_gb * 0.95 - fixed_gb;
    if (usable_gb <= 0) continue;
    const double max_share = usable_gb / param_gb;
    const double share = std::min(remaining_share, max_share);
    if (share <= 1e-6) continue;

    PipelineStage stage;
    stage.machine_id = slot.node->machine_id;
    stage.parameter_share = share;
    stage.memory_gb = fixed_gb + share * param_gb;
    stage.relative_throughput = speed_factor(slot.tflops);
    plan.stages.push_back(stage);
    plan.total_memory_gb += stage.memory_gb;
    total_tflops += slot.tflops;
    remaining_share -= share;
  }
  if (remaining_share > 1e-9) {
    return util::resource_exhausted_error(
        "model does not fit the fleet: " + std::to_string(whole_gb) +
        " GB needed, largest feasible placement leaves " +
        std::to_string(remaining_share * 100.0) + "% of parameters unhosted");
  }

  // Pipeline rate: the slowest stage relative to its share of the work.
  double rate = 1e300;
  for (const auto& stage : plan.stages) {
    if (stage.parameter_share <= 1e-9) continue;
    rate = std::min(rate, stage.relative_throughput / stage.parameter_share);
  }
  // A pipeline also pays a communication/bubble penalty per extra stage
  // (~4% each on a campus LAN).
  const double penalty =
      std::pow(0.96, static_cast<double>(plan.stages.size()) - 1.0);
  plan.pipeline_speedup = rate * penalty;
  return plan;
}

}  // namespace gpunion::workload
