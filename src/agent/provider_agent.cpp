#include "agent/provider_agent.h"

#include <algorithm>
#include <cassert>

#include "util/ids.h"
#include "util/logging.h"

namespace gpunion::agent {

std::string_view departure_kind_name(DepartureKind k) {
  switch (k) {
    case DepartureKind::kScheduled: return "scheduled";
    case DepartureKind::kEmergency: return "emergency";
    case DepartureKind::kTemporary: return "temporary";
    case DepartureKind::kReclaim: return "reclaim";
  }
  return "unknown";
}

ProviderAgent::ProviderAgent(sim::Environment& env, net::Transport& transport,
                             hw::NodeModel& node,
                             const container::ImageRegistry& registry,
                             storage::CheckpointStore& store,
                             AgentConfig config)
    : env_(env),
      transport_(transport),
      node_(node),
      registry_(registry),
      store_(store),
      config_(std::move(config)),
      runtime_(node, registry),
      sampler_(node, env.fork_rng("nvml." + node.hostname())),
      rng_(env.fork_rng("agent." + node.hostname())),
      machine_id_(util::make_machine_id(node.hostname(), kMachineIdSalt)),
      lane_(env.register_lane("agent:" + machine_id_)),
      slicer_(env, node, config_.timeslice) {
  slicer_.set_lane(lane_);
  TimesliceHooks slicer_hooks;
  slicer_hooks.on_residency_change = [this](const std::string& job_id,
                                            bool resident,
                                            util::Duration swap_pause) {
    on_residency_change(job_id, resident, swap_pause);
  };
  slicer_hooks.on_evict = [this](const std::string& job_id) {
    evict_timeslice_tenant(job_id);
  };
  slicer_.set_hooks(std::move(slicer_hooks));
}

ProviderAgent::~ProviderAgent() {
  for (auto& [id, job] : jobs_) stop_job_events(job);
}

// ---------------------------------------------------------------------------
// Provider controls
// ---------------------------------------------------------------------------

void ProviderAgent::join() {
  assert(state_ == AgentState::kOffline && "join from non-offline state");
  transport_.register_endpoint(
      machine_id_,
      [this](net::Message&& msg) { handle_message(std::move(msg)); }, lane_);
  send_register_request();
  GPUNION_ILOG("agent") << machine_id_ << " joining as " << node_.hostname();
}

void ProviderAgent::send_register_request() {
  if (state_ != AgentState::kOffline) return;
  RegisterRequest request;
  request.machine_id = machine_id_;
  request.hostname = node_.hostname();
  request.owner_group = config_.owner_group;
  request.gpu_count = static_cast<int>(node_.gpu_count());
  if (node_.gpu_count() > 0) {
    const auto& spec = node_.gpu(0).spec();
    request.gpu_model = spec.name;
    request.gpu_memory_gb = spec.memory_gb;
    request.compute_capability = spec.compute_capability;
    request.gpu_tflops = spec.fp32_tflops;
    request.slots_per_gpu = node_.spec().share_slots_per_gpu;
    request.share_memory_cap_gb = node_.share_memory_cap(0);
    request.timeslice_tenants_per_gpu = node_.spec().timeslice_tenants_per_gpu;
    request.timeslice_oversub_ratio = node_.spec().timeslice_oversub_ratio;
    request.host_swap_gbps = node_.spec().host_swap_gbps;
  }
  send_control(kRegisterRequest, request, kRegisterBytes);
  // The request or its response may be lost; retry until activated (the
  // paper's "automatic registration scripts" keep trying).
  env_.schedule_after_on(lane_, 10.0, [this] { send_register_request(); });
}

std::vector<std::string> ProviderAgent::kill_switch() {
  std::vector<std::string> killed;
  for (auto& [id, job] : jobs_) {
    stop_job_events(job);
    (void)runtime_.kill(job.container_id, env_.now());
    killed.push_back(id);
    if (hooks_.on_job_killed) hooks_.on_job_killed(id);
  }
  jobs_.clear();
  slicer_.clear();
  if (!killed.empty() && state_ == AgentState::kActive) {
    KillSwitchNotice notice;
    notice.machine_id = machine_id_;
    notice.killed_jobs = killed;
    send_control(kKillSwitchNotice, notice,
                 kControlBytes + 40 * killed.size());
  }
  GPUNION_ILOG("agent") << machine_id_ << " kill-switch: " << killed.size()
                        << " guests terminated";
  return killed;
}

void ProviderAgent::set_paused(bool paused) {
  paused_ = paused;
  // Advertise the change immediately rather than waiting a beat.
  if (state_ == AgentState::kActive) send_heartbeat();
}

void ProviderAgent::depart_scheduled() {
  if (state_ != AgentState::kActive) return;

  DepartureNotice notice;
  notice.machine_id = machine_id_;
  notice.kind = DepartureKind::kScheduled;

  // Final checkpoints within the grace window, in job-id order.  Jobs whose
  // cumulative serialization time exceeds the grace keep only their last
  // periodic checkpoint.
  util::Duration used = 0;
  for (auto& [id, job] : jobs_) {
    DepartingJob record;
    record.job_id = id;
    if (job.spec.type == workload::JobType::kTraining &&
        job.compute_started) {
      const util::Duration pause =
          workload::checkpoint_pause_seconds(job.spec.state);
      if (used + pause <= config_.departure_grace) {
        used += pause;
        auto checkpoint = write_checkpoint(job, /*count_pause=*/false);
        record.fresh_checkpoint = checkpoint.ok();
      }
    }
    record.checkpointed_progress = job.checkpointed_progress;
    notice.jobs.push_back(record);
  }

  for (auto& [id, job] : jobs_) {
    stop_job_events(job);
    (void)runtime_.kill(job.container_id, env_.now());
    if (hooks_.on_job_killed) hooks_.on_job_killed(id);
  }
  jobs_.clear();
  slicer_.clear();

  send_control(kDepartureNotice, notice, kControlBytes + 64 * notice.jobs.size());
  heartbeat_timer_.reset();
  telemetry_timer_.reset();
  transport_.unregister_endpoint(machine_id_);
  state_ = AgentState::kDeparted;
  GPUNION_ILOG("agent") << machine_id_ << " departed (scheduled), "
                        << notice.jobs.size() << " jobs checkpointed";
}

void ProviderAgent::depart_emergency() {
  if (state_ == AgentState::kOffline) return;
  // Power pull: containers die, nothing is sent, timers stop.
  for (auto& [id, job] : jobs_) {
    stop_job_events(job);
    (void)runtime_.kill(job.container_id, env_.now());
    if (hooks_.on_job_killed) hooks_.on_job_killed(id);
  }
  jobs_.clear();
  slicer_.clear();
  heartbeat_timer_.reset();
  telemetry_timer_.reset();
  transport_.unregister_endpoint(machine_id_);
  state_ = AgentState::kDeparted;
  GPUNION_ILOG("agent") << machine_id_ << " departed (emergency)";
}

void ProviderAgent::rejoin() {
  assert(state_ == AgentState::kDeparted && "rejoin only after departure");
  state_ = AgentState::kOffline;
  paused_ = false;
  join();
  ReturnNotice notice;
  notice.machine_id = machine_id_;
  send_control(kReturnNotice, notice, kControlBytes);
}

int ProviderAgent::reclaim_gpus(int gpus) {
  if (gpus <= 0) return 0;
  // Evict guests only (never the owner group's own jobs), most recently
  // started first so the least progress is disturbed.
  std::vector<std::string> candidates;
  for (const auto& [id, job] : jobs_) {
    if (job.spec.owner_group != config_.owner_group) candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](const std::string& a, const std::string& b) {
              return jobs_[a].effective_start > jobs_[b].effective_start;
            });

  KillSwitchNotice notice;
  notice.machine_id = machine_id_;
  int freed = 0;
  for (const auto& id : candidates) {
    if (freed >= gpus) break;
    RunningJob& job = jobs_[id];
    if (job.spec.type == workload::JobType::kTraining &&
        job.compute_started) {
      (void)write_checkpoint(job, /*count_pause=*/false);
    }
    stop_job_events(job);
    (void)runtime_.kill(job.container_id, env_.now());
    freed += job.spec.requirements.gpu_count;
    notice.killed_jobs.push_back(id);
    if (hooks_.on_job_killed) hooks_.on_job_killed(id);
    const RunningJob departed = std::move(jobs_[id]);
    jobs_.erase(id);
    drop_from_slicer(id, departed);
  }
  if (!notice.killed_jobs.empty()) {
    send_control(kKillSwitchNotice, notice,
                 kControlBytes + 40 * notice.killed_jobs.size());
  }
  return freed;
}

std::vector<std::string> ProviderAgent::running_job_ids() const {
  std::vector<std::string> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

double ProviderAgent::job_progress(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return -1.0;
  return live_progress(it->second);
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void ProviderAgent::handle_message(net::Message&& msg) {
  switch (msg.kind) {
    case kRegisterResponse: {
      const auto& response = std::any_cast<const RegisterResponse&>(msg.payload);
      if (!response.accepted) {
        GPUNION_WLOG("agent") << machine_id_ << " registration rejected";
        return;
      }
      auth_token_ = response.auth_token;
      state_ = AgentState::kActive;
      config_.heartbeat_interval = response.heartbeat_interval;
      heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
          env_, config_.heartbeat_interval, [this] { send_heartbeat(); },
          lane_);
      heartbeat_timer_->start_after(0);
      if (config_.enable_telemetry) {
        telemetry_timer_ = std::make_unique<sim::PeriodicTimer>(
            env_, config_.telemetry_interval, [this] { send_telemetry(); },
            lane_);
        telemetry_timer_->start();
      }
      break;
    }
    case kDispatch:
      handle_dispatch(std::any_cast<DispatchRequest>(std::move(msg.payload)));
      break;
    case kKillJob:
      handle_kill_job(std::any_cast<const KillJobCommand&>(msg.payload));
      break;
    case kRestoreData:
      handle_restore_data(std::any_cast<const RestoreData&>(msg.payload));
      break;
    case kImageData:
      handle_image_data(std::any_cast<const ImageData&>(msg.payload));
      break;
    default:
      GPUNION_WLOG("agent") << machine_id_ << " unexpected message kind "
                            << msg.kind;
  }
}

void ProviderAgent::reject_dispatch(const std::string& job_id,
                                    const std::string& reason) {
  DispatchResult result;
  result.machine_id = machine_id_;
  result.job_id = job_id;
  result.accepted = false;
  result.reason = reason;
  send_control(kDispatchResult, result, kControlBytes);
}

void ProviderAgent::handle_dispatch(DispatchRequest request) {
  const std::string job_id = request.job.id;
  if (state_ != AgentState::kActive) {
    reject_dispatch(job_id, "agent not active");
    return;
  }
  if (paused_) {
    reject_dispatch(job_id, "provider paused allocations");
    return;
  }
  if (auto it = jobs_.find(job_id); it != jobs_.end()) {
    // Idempotent dispatch: the previous accept was lost in transit and the
    // coordinator retried.  Re-acknowledge the existing run.
    DispatchResult result;
    result.machine_id = machine_id_;
    result.job_id = job_id;
    result.accepted = true;
    result.container_id = it->second.container_id;
    if (const container::Container* c =
            runtime_.find(it->second.container_id)) {
      result.gpu_indices = c->config().limits.gpu_indices;
      result.gpu_fraction = c->config().limits.gpu_fraction;
    }
    send_control(kDispatchResult, result, kControlBytes);
    return;
  }

  auto image = registry_.resolve(request.job.image_ref);
  if (!image.ok()) {
    reject_dispatch(job_id, image.status().message());
    return;
  }

  const auto& req = request.job.requirements;
  const double working_set = workload::resolved_working_set_gb(request.job);
  std::vector<int> gpu_indices;
  double gpu_fraction = 1.0;
  if (request.timeslice) {
    auto seat =
        node_.find_timeslice_slot(working_set, req.min_compute_capability);
    if (!seat) {
      reject_dispatch(job_id, "no free GPU time-slice seat");
      return;
    }
    gpu_indices = {*seat};
    // Expected fair share under rotation, for honest ledger accounting.
    gpu_fraction = 1.0 / std::max(1, node_.spec().timeslice_tenants_per_gpu);
  } else if (request.fractional) {
    auto slot = node_.find_share_slot(req.gpu_memory_gb,
                                      req.min_compute_capability);
    if (!slot) {
      reject_dispatch(job_id, "no free GPU share slot");
      return;
    }
    gpu_indices = {*slot};
    gpu_fraction = 1.0 / std::max(1, node_.spec().share_slots_per_gpu);
  } else {
    auto gpus = node_.find_gpus(req.gpu_count, req.gpu_memory_gb,
                                req.min_compute_capability);
    if (!gpus) {
      reject_dispatch(job_id, "no compatible free GPUs");
      return;
    }
    gpu_indices = *gpus;
  }

  container::ContainerConfig cfg;
  cfg.image = *image;
  cfg.mode = request.job.type == workload::JobType::kInteractive
                 ? container::ExecutionMode::kInteractive
                 : container::ExecutionMode::kBatch;
  cfg.limits.gpu_indices = gpu_indices;
  // A time-sliced tenant's footprint is its working set (swapped in/out at
  // quantum boundaries), not the whole-device request.
  cfg.limits.gpu_memory_gb = request.timeslice ? working_set
                                               : req.gpu_memory_gb;
  cfg.limits.gpu_fraction = gpu_fraction;
  cfg.limits.timeslice = request.timeslice;
  // Shared tenants (spatial or time-sliced) get a proportionally smaller
  // host budget: every advertised slot must be hostable, so tenants may
  // never exceed the node's cores/RAM (else the coordinator's slot view
  // and the host's container capacity diverge into dispatch-reject loops).
  const bool shared_tenant = request.fractional || request.timeslice;
  cfg.limits.host_memory_gb = shared_tenant ? 4.0 : 8.0;
  cfg.limits.cpu_cores = shared_tenant ? 2.0 : 4.0;
  const double utilization =
      request.job.type == workload::JobType::kInteractive
          ? config_.interactive_utilization
          : config_.training_utilization;
  cfg.env["NVIDIA_VISIBLE_DEVICES"] = "";  // filled after create

  auto container_id = runtime_.create(cfg, job_id, utilization, env_.now());
  if (!container_id.ok()) {
    reject_dispatch(job_id, container_id.status().message());
    return;
  }

  RunningJob job;
  job.spec = std::move(request.job);
  job.container_id = *container_id;
  job.start_progress = request.start_progress;
  job.checkpointed_progress = request.start_progress;
  const double tflops =
      node_.gpu(static_cast<std::size_t>(gpu_indices[0])).spec().fp32_tflops;
  job.speed = workload::speed_factor(tflops) *
              (1.0 - runtime_.gpu_overhead_fraction()) *
              std::max(1, job.spec.requirements.gpu_count);
  if (request.fractional) {
    // Spatial tenant: the slice delivers a fraction of the device
    // (co-tenants are bursty, so more than 1/slots).
    job.speed *= workload::kSharedComputeShare;
  }
  // A time-sliced tenant keeps FULL device speed — but accrues progress
  // only while resident, which the quantum scheduler controls.
  job.timeslice = request.timeslice;
  if (request.timeslice) {
    job.resident =
        node_.gpu(static_cast<std::size_t>(gpu_indices[0])).resident() ==
        job_id;
  }
  job.restore_bytes = request.restore_bytes;
  job.restore_from = request.restore_from;
  job.pending_pull = !runtime_.image_cached(job.spec.image_ref);
  job.pending_restore = request.restore_bytes > 0 &&
                        !request.restore_from.empty();
  jobs_.emplace(job_id, std::move(job));
  if (request.timeslice) {
    slicer_.add_tenant(gpu_indices[0], job_id, working_set);
  }

  DispatchResult result;
  result.machine_id = machine_id_;
  result.job_id = job_id;
  result.accepted = true;
  result.container_id = *container_id;
  result.gpu_indices = gpu_indices;
  result.gpu_fraction = gpu_fraction;
  send_control(kDispatchResult, result, kControlBytes);

  advance_dispatch(job_id);
}

void ProviderAgent::advance_dispatch(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;

  if (job.pending_pull) {
    ImagePullRequest request;
    request.requester = machine_id_;
    request.image_ref = job.spec.image_ref;
    net::Message msg;
    msg.from = machine_id_;
    msg.to = "image-registry";
    msg.kind = kImagePullRequest;
    msg.traffic_class = net::TrafficClass::kControl;
    msg.size_bytes = kControlBytes;
    msg.payload = request;
    if (!transport_.send(std::move(msg)).is_ok()) {
      // No registry endpoint in this deployment: treat the image as local.
      job.pending_pull = false;
      runtime_.mark_image_cached(job.spec.image_ref);
    } else {
      env_.schedule_after_on(lane_, 90.0,
                          [this, job_id] { retry_stalled_dispatch(job_id); });
      return;  // wait for kImageData
    }
  }

  if (job.pending_restore) {
    RestoreRequest request;
    request.requester = machine_id_;
    request.job_id = job_id;
    request.bytes = job.restore_bytes;
    net::Message msg;
    msg.from = machine_id_;
    msg.to = job.restore_from;
    msg.kind = kRestoreRequest;
    msg.traffic_class = net::TrafficClass::kControl;
    msg.size_bytes = kControlBytes;
    msg.payload = request;
    if (!transport_.send(std::move(msg)).is_ok()) {
      job.pending_restore = false;  // storage gone; resume without transfer
    } else {
      env_.schedule_after_on(lane_, 180.0,
                          [this, job_id] { retry_stalled_dispatch(job_id); });
      return;  // wait for kRestoreData
    }
  }

  env_.schedule_after_on(lane_, runtime_.startup_overhead(),
                      [this, job_id] { begin_compute(job_id); });
}

void ProviderAgent::retry_stalled_dispatch(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  if (it->second.pending_pull || it->second.pending_restore) {
    // The pull/restore request or its data went missing; ask again.
    advance_dispatch(job_id);
  }
}

void ProviderAgent::handle_image_data(const ImageData& data) {
  runtime_.mark_image_cached(data.image_ref);
  // Unblock every job waiting on this image.
  std::vector<std::string> waiting;
  for (auto& [id, job] : jobs_) {
    if (job.pending_pull && job.spec.image_ref == data.image_ref) {
      job.pending_pull = false;
      waiting.push_back(id);
    }
  }
  for (const auto& id : waiting) advance_dispatch(id);
}

void ProviderAgent::handle_restore_data(const RestoreData& data) {
  auto it = jobs_.find(data.job_id);
  if (it == jobs_.end()) return;
  if (!it->second.pending_restore) return;
  it->second.pending_restore = false;
  advance_dispatch(data.job_id);
}

void ProviderAgent::handle_kill_job(const KillJobCommand& command) {
  auto it = jobs_.find(command.job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;

  JobKilledAck ack;
  ack.machine_id = machine_id_;
  ack.job_id = command.job_id;
  if (command.allow_checkpoint &&
      job.spec.type == workload::JobType::kTraining && job.compute_started) {
    auto checkpoint = write_checkpoint(job, /*count_pause=*/false);
    ack.fresh_checkpoint = checkpoint.ok();
  }
  ack.checkpointed_progress = job.checkpointed_progress;

  stop_job_events(job);
  (void)runtime_.kill(job.container_id, env_.now());
  if (hooks_.on_job_killed) hooks_.on_job_killed(command.job_id);
  const RunningJob killed = std::move(job);
  jobs_.erase(it);
  drop_from_slicer(command.job_id, killed);
  send_control(kJobKilledAck, ack, kControlBytes);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

double ProviderAgent::live_progress(const RunningJob& job) const {
  if (!job.compute_started) return job.start_progress;
  if (job.spec.type == workload::JobType::kInteractive) return 0.0;
  // A swapped-out time-sliced tenant accrues nothing until it rotates in.
  if (job.timeslice && !job.resident) return job.start_progress;
  const double work = (env_.now() - job.effective_start) * job.speed;
  return std::min(1.0, job.start_progress +
                           work / job.spec.reference_duration);
}

void ProviderAgent::begin_compute(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;  // killed while waiting for pull/restore
  RunningJob& job = it->second;

  auto started = runtime_.start(job.container_id, env_.now());
  if (!started.is_ok()) {
    GPUNION_ELOG("agent") << machine_id_ << " failed to start container: "
                          << started.to_string();
    return;
  }
  job.compute_started = true;
  job.effective_start = env_.now();

  JobStarted started_notice;
  started_notice.machine_id = machine_id_;
  started_notice.job_id = job_id;
  started_notice.start_progress = job.start_progress;
  send_control(kJobStarted, started_notice, kControlBytes);

  if (job.spec.type == workload::JobType::kInteractive) {
    // Sessions are wall-clock (including any quantum swap pauses a
    // time-sliced session sits through).
    job.completion_event = env_.schedule_after_on(
        lane_, job.spec.reference_duration,
        [this, job_id] { complete_job(job_id); });
  } else if (!job.timeslice || job.resident) {
    const util::Duration remaining =
        (1.0 - job.start_progress) * job.spec.reference_duration / job.speed;
    job.completion_event = env_.schedule_after_on(
        lane_, remaining, [this, job_id] { complete_job(job_id); });
  }
  // else: swapped-out time-sliced training — completion is armed when the
  // slicer rotates the tenant in.

  if (job.spec.type == workload::JobType::kTraining &&
      job.spec.checkpoint_interval > 0) {
    job.checkpoint_event = env_.schedule_after_on(lane_, 
        job.spec.checkpoint_interval,
        [this, job_id] { periodic_checkpoint(job_id); });
  }
}

void ProviderAgent::complete_job(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;
  job.completion_event = sim::kInvalidEvent;
  if (job.checkpoint_event != sim::kInvalidEvent) {
    env_.cancel(job.checkpoint_event);
    job.checkpoint_event = sim::kInvalidEvent;
  }
  (void)runtime_.exit(job.container_id, env_.now());

  JobCompleted done;
  done.machine_id = machine_id_;
  done.job_id = job_id;
  send_control(kJobCompleted, done, kControlBytes);
  if (hooks_.on_job_completed) hooks_.on_job_completed(job_id, 1.0);
  const RunningJob finished = std::move(job);
  jobs_.erase(it);
  drop_from_slicer(job_id, finished);
}

util::StatusOr<storage::Checkpoint> ProviderAgent::write_checkpoint(
    RunningJob& job, bool count_pause) {
  const double progress = live_progress(job);
  if (!job.spec.preferred_storage.empty()) {
    store_.set_preference(job.spec.id, job.spec.preferred_storage);
  }
  auto checkpoint = store_.write(job.spec.id, job.spec.state.state_bytes,
                                 job.spec.state.dirty_fraction, progress,
                                 env_.now());
  if (!checkpoint.ok()) return checkpoint;

  job.checkpointed_progress = progress;
  job.checkpoint_seq = checkpoint->seq;

  // Ship the delta to the storage node (backup traffic, §4).
  net::Message data;
  data.from = machine_id_;
  data.to = checkpoint->storage_node;
  data.kind = kCheckpointData;
  data.traffic_class = net::TrafficClass::kCheckpoint;
  data.size_bytes = checkpoint->stored_bytes;
  data.payload = CheckpointData{job.spec.id};
  (void)transport_.send(std::move(data));

  // Tell the coordinator about the new durable progress.
  CheckpointNotice notice;
  notice.machine_id = machine_id_;
  notice.job_id = job.spec.id;
  notice.seq = checkpoint->seq;
  notice.progress = progress;
  notice.stored_bytes = checkpoint->stored_bytes;
  notice.storage_node = checkpoint->storage_node;
  send_control(kCheckpointNotice, notice, kControlBytes);

  if (count_pause && job.completion_event != sim::kInvalidEvent) {
    // Serialization stalls training: push completion out by the pause.
    const util::Duration pause =
        workload::checkpoint_pause_seconds(job.spec.state);
    job.effective_start += pause;
    env_.cancel(job.completion_event);
    const double remaining_work =
        (1.0 - job.start_progress) * job.spec.reference_duration;
    const util::SimTime completion_at =
        job.effective_start + remaining_work / job.speed;
    const std::string job_id = job.spec.id;
    job.completion_event = env_.schedule_at_on(lane_, 
        std::max(env_.now(), completion_at),
        [this, job_id] { complete_job(job_id); });
  }
  return checkpoint;
}

void ProviderAgent::periodic_checkpoint(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;
  job.checkpoint_event = sim::kInvalidEvent;
  if (!job.compute_started) return;

  auto checkpoint = write_checkpoint(job, /*count_pause=*/true);
  if (!checkpoint.ok()) {
    GPUNION_WLOG("agent") << machine_id_ << " checkpoint failed for "
                          << job_id << ": " << checkpoint.status().to_string();
  }

  const util::Duration pause =
      checkpoint.ok() ? workload::checkpoint_pause_seconds(job.spec.state)
                      : 0.0;
  job.checkpoint_event =
      env_.schedule_after_on(lane_, job.spec.checkpoint_interval + pause,
                          [this, job_id] { periodic_checkpoint(job_id); });
}

void ProviderAgent::stop_job_events(RunningJob& job) {
  if (job.completion_event != sim::kInvalidEvent) {
    env_.cancel(job.completion_event);
    job.completion_event = sim::kInvalidEvent;
  }
  if (job.checkpoint_event != sim::kInvalidEvent) {
    env_.cancel(job.checkpoint_event);
    job.checkpoint_event = sim::kInvalidEvent;
  }
}

// ---------------------------------------------------------------------------
// Time-slicing
// ---------------------------------------------------------------------------

void ProviderAgent::on_residency_change(const std::string& job_id,
                                        bool resident,
                                        util::Duration swap_pause) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;

  if (!resident) {
    // Rotating out: fold the progress accrued this quantum and freeze.
    if (job.compute_started &&
        job.spec.type != workload::JobType::kInteractive) {
      job.start_progress = live_progress(job);
      if (job.completion_event != sim::kInvalidEvent) {
        env_.cancel(job.completion_event);
        job.completion_event = sim::kInvalidEvent;
      }
    }
    job.resident = false;
    return;
  }

  job.resident = true;
  if (!job.compute_started ||
      job.spec.type == workload::JobType::kInteractive) {
    // Interactive sessions run wall-clock (completion was armed at start);
    // not-yet-started jobs arm completion in begin_compute.
    return;
  }
  // Resume computing after the swap-in pause, from the folded progress.
  job.effective_start = env_.now() + swap_pause;
  if (job.completion_event != sim::kInvalidEvent) {
    env_.cancel(job.completion_event);
  }
  const double remaining_work =
      std::max(0.0, 1.0 - job.start_progress) * job.spec.reference_duration;
  const util::SimTime completion_at =
      job.effective_start + remaining_work / job.speed;
  job.completion_event =
      env_.schedule_at_on(lane_, std::max(env_.now(), completion_at),
                          [this, job_id] { complete_job(job_id); });
}

void ProviderAgent::evict_timeslice_tenant(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  RunningJob& job = it->second;

  if (job.spec.type == workload::JobType::kTraining && job.compute_started) {
    (void)write_checkpoint(job, /*count_pause=*/false);
  }
  int gpu_index = -1;
  if (const auto* c = runtime_.find(job.container_id);
      c != nullptr && !c->config().limits.gpu_indices.empty()) {
    gpu_index = c->config().limits.gpu_indices[0];
  }
  stop_job_events(job);
  (void)runtime_.kill(job.container_id, env_.now());
  if (hooks_.on_job_killed) hooks_.on_job_killed(job_id);
  jobs_.erase(it);
  // The slicer's tick requires the tenant be removed before the hook
  // returns; the notice lets the coordinator requeue the job elsewhere.
  if (gpu_index >= 0) slicer_.remove_tenant(gpu_index, job_id);
  KillSwitchNotice notice;
  notice.machine_id = machine_id_;
  notice.killed_jobs = {job_id};
  send_control(kKillSwitchNotice, notice, kControlBytes + 40);
  GPUNION_ILOG("agent") << machine_id_ << " evicted thrashing tenant "
                        << job_id;
}

void ProviderAgent::drop_from_slicer(const std::string& job_id,
                                     const RunningJob& job) {
  if (!job.timeslice) return;
  const auto* c = runtime_.find(job.container_id);
  if (c == nullptr || c->config().limits.gpu_indices.empty()) return;
  slicer_.remove_tenant(c->config().limits.gpu_indices[0], job_id);
}

// ---------------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------------

void ProviderAgent::send_control(int kind, std::any payload,
                                 std::uint64_t bytes) {
  net::Message msg;
  msg.from = machine_id_;
  msg.to = config_.coordinator_id;
  msg.kind = kind;
  msg.traffic_class = kind == kHeartbeat ? net::TrafficClass::kHeartbeat
                      : kind == kTelemetryReport
                          ? net::TrafficClass::kTelemetry
                          : net::TrafficClass::kControl;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  (void)transport_.send(std::move(msg));
}

void ProviderAgent::send_heartbeat() {
  if (state_ != AgentState::kActive) return;
  Heartbeat beat;
  beat.machine_id = machine_id_;
  beat.auth_token = auth_token_;
  beat.seq = ++heartbeat_seq_;
  beat.free_gpus = node_.free_gpu_count();
  beat.free_shared_slots = node_.free_shared_slot_count();
  beat.free_timeslice_slots = node_.free_timeslice_slot_count();
  beat.accepting = !paused_;
  beat.running_jobs = running_job_ids();
  ++heartbeats_sent_;
  send_control(kHeartbeat, beat,
               kHeartbeatBytes + 24 * beat.running_jobs.size());
}

void ProviderAgent::send_telemetry() {
  if (state_ != AgentState::kActive) return;
  TelemetryReport report;
  report.machine_id = machine_id_;
  report.telemetry = sampler_.sample(env_.now());
  send_control(kTelemetryReport, report,
               kTelemetryBytesPerGpu * std::max<std::size_t>(1, node_.gpu_count()));
}

}  // namespace gpunion::agent
