// Agent <-> coordinator protocol.
//
// The paper's agent "exposes REST APIs for resource advertisement, workload
// lifecycle management, and emergency controls" (§3.2).  Here each REST
// endpoint is a typed message riding over net::Transport; payload structs
// are carried in Message::payload (std::any) with Message::kind as the
// discriminator.  Sizes mirror realistic JSON bodies so traffic accounting
// is meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/telemetry.h"
#include "util/time.h"
#include "workload/job.h"

namespace gpunion::agent {

/// Message::kind values.
enum MsgKind : int {
  kRegisterRequest = 1,
  kRegisterResponse,
  kHeartbeat,
  kTelemetryReport,
  kDispatch,
  kDispatchResult,
  kJobStarted,
  kKillJob,
  kJobCompleted,
  kCheckpointNotice,
  kDepartureNotice,
  kReturnNotice,
  kKillSwitchNotice, // agent -> coordinator: provider terminated guests
  kJobKilledAck,     // agent -> coordinator: response to kKillJob
  kRestoreRequest,   // agent -> storage endpoint
  kRestoreData,      // storage endpoint -> agent (restore payload bytes)
  kCheckpointData,   // agent -> storage endpoint (backup payload bytes)
  kImagePullRequest, // agent -> image registry endpoint
  kImageData,        // registry endpoint -> agent (layer bytes)
};

/// Why a provider left; drives the coordinator's recovery path and the
/// Fig. 3 scenario taxonomy.
enum class DepartureKind {
  kScheduled,    // graceful shutdown with checkpoint grace
  kEmergency,    // immediate disconnect, no notice (detected via heartbeats)
  kTemporary,    // short unavailability, provider returns
  kReclaim,      // owner kill-switch / GPU reclaim (node stays in the fleet)
};

std::string_view departure_kind_name(DepartureKind k);

struct RegisterRequest {
  std::string machine_id;
  std::string hostname;
  std::string owner_group;
  int gpu_count = 0;
  std::string gpu_model;
  double gpu_memory_gb = 0;
  double compute_capability = 0;
  double gpu_tflops = 0;
  /// Spatial share slots per GPU (1 = whole-device only) and the per-tenant
  /// VRAM cap on a shared GPU.
  int slots_per_gpu = 1;
  double share_memory_cap_gb = 0;
  /// nvshare-style time-slice seats per GPU (<=1 = mode disabled), the
  /// working-set oversubscription bound, and the host swap bandwidth the
  /// node pays at quantum boundaries.
  int timeslice_tenants_per_gpu = 0;
  double timeslice_oversub_ratio = 0;
  double host_swap_gbps = 0;
};

struct RegisterResponse {
  bool accepted = false;
  std::string auth_token;
  util::Duration heartbeat_interval = 2.0;
};

struct Heartbeat {
  std::string machine_id;
  std::string auth_token;
  std::uint64_t seq = 0;
  int free_gpus = 0;
  /// Free slots on GPUs already running shared tenants (fully-free GPUs are
  /// counted in free_gpus).
  int free_shared_slots = 0;
  /// Free seats on GPUs already in time-slice mode (fully-free GPUs are
  /// counted in free_gpus).
  int free_timeslice_slots = 0;
  bool accepting = true;  // false while paused
  /// Ids of jobs currently hosted; lets the coordinator reconcile records
  /// whose completion/kill notification was lost in transit.
  std::vector<std::string> running_jobs;
};

struct TelemetryReport {
  std::string machine_id;
  hw::NodeTelemetry telemetry;
};

struct DispatchRequest {
  workload::JobSpec job;
  /// Durable progress to resume from (0 for fresh starts).
  double start_progress = 0;
  /// Restore transfer: bytes to pull from `restore_from` before compute
  /// begins (0 when nothing to restore).
  std::uint64_t restore_bytes = 0;
  std::string restore_from;
  /// Coordinator placed the job into a fractional spatial slot; the agent
  /// binds a shared tenant instead of whole devices.
  bool fractional = false;
  /// Coordinator placed the job into a time-slice seat; the agent binds a
  /// full-memory tenant under the per-GPU quantum scheduler.  Mutually
  /// exclusive with `fractional`.
  bool timeslice = false;
};

struct DispatchResult {
  std::string machine_id;
  std::string job_id;
  bool accepted = false;
  std::string reason;       // on rejection
  std::string container_id; // on acceptance
  std::vector<int> gpu_indices;  // devices bound on acceptance
  /// Capacity share per bound GPU (1.0 exclusive; 1/slots for a shared
  /// tenant).  Recorded in the allocation ledger.
  double gpu_fraction = 1.0;
};

/// Compute actually began (after image pull / checkpoint restore).  The
/// coordinator measures migration downtime against this, not the dispatch
/// ack, so restore transfer time is included.
struct JobStarted {
  std::string machine_id;
  std::string job_id;
  double start_progress = 0;
};

struct KillJobCommand {
  std::string job_id;
  /// Allow a final checkpoint before the kill (planned migration); the
  /// kill-switch path uses false.
  bool allow_checkpoint = true;
};

struct JobCompleted {
  std::string machine_id;
  std::string job_id;
};

struct CheckpointNotice {
  std::string machine_id;
  std::string job_id;
  std::uint64_t seq = 0;
  double progress = 0;
  std::uint64_t stored_bytes = 0;
  std::string storage_node;
};

/// Per-job outcome inside a scheduled departure.
struct DepartingJob {
  std::string job_id;
  double checkpointed_progress = 0;
  bool fresh_checkpoint = false;  // captured within the grace window
};

struct DepartureNotice {
  std::string machine_id;
  DepartureKind kind = DepartureKind::kScheduled;
  std::vector<DepartingJob> jobs;
};

struct ReturnNotice {
  std::string machine_id;
};

/// Provider pressed the kill-switch (or reclaimed GPUs for their own work):
/// the listed guest jobs were terminated without grace.
struct KillSwitchNotice {
  std::string machine_id;
  std::vector<std::string> killed_jobs;
};

/// Agent finished handling a coordinator kKillJob command.
struct JobKilledAck {
  std::string machine_id;
  std::string job_id;
  double checkpointed_progress = 0;
  bool fresh_checkpoint = false;
};

struct RestoreRequest {
  std::string requester;  // agent machine id to stream the data to
  std::string job_id;
  std::uint64_t bytes = 0;
};

struct RestoreData {
  std::string job_id;
};

struct CheckpointData {
  std::string job_id;
};

struct ImagePullRequest {
  std::string requester;
  std::string image_ref;
};

struct ImageData {
  std::string image_ref;
};

/// Salt shared by agents and tooling when deriving machine ids from
/// hostnames, so ids are computable anywhere (e.g. workload generators
/// naming a group's home nodes).
inline constexpr std::string_view kMachineIdSalt = "gpunion-campus";

/// Typical encoded sizes (bytes) for control-plane messages, for traffic
/// accounting.  Derived from JSON encodings of the structs above.
constexpr std::uint64_t kRegisterBytes = 640;
constexpr std::uint64_t kHeartbeatBytes = 220;
constexpr std::uint64_t kTelemetryBytesPerGpu = 180;
constexpr std::uint64_t kControlBytes = 300;

}  // namespace gpunion::agent
