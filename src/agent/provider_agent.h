// Provider agent — the provider-supremacy implementation (§3.4).
//
// A lightweight daemon on every provider machine.  It advertises capacity,
// executes dispatched workloads in containers, checkpoints training state,
// and — above all — obeys the *local* provider controls unconditionally:
//
//   kill_switch()        instantly terminate all guests, stay joined
//   set_paused(bool)     stop/resume accepting new allocations
//   depart_scheduled()   checkpoint guests within a grace window, notify, leave
//   depart_emergency()   vanish without notice (power pull)
//   rejoin()             register again after any departure
//   reclaim_gpus(n)      evict guests to free GPUs for the owner
//
// The agent never waits for coordinator permission for any of these: it acts
// first and informs the platform afterwards (or not at all, for emergencies —
// the coordinator must detect the loss via heartbeats).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/proto.h"
#include "agent/timeslice.h"
#include "container/runtime.h"
#include "hw/telemetry.h"
#include "net/transport.h"
#include "sim/environment.h"
#include "storage/checkpoint_store.h"
#include "util/status.h"

namespace gpunion::agent {

struct AgentConfig {
  std::string coordinator_id = "coordinator";
  std::string owner_group;
  util::Duration heartbeat_interval = 2.0;
  util::Duration telemetry_interval = 30.0;
  /// Checkpoint window honoured by graceful departures ("configurable
  /// periods for checkpoint creation", §3.4).
  util::Duration departure_grace = 120.0;
  bool enable_telemetry = true;
  /// GPU utilization a training container drives (for telemetry/power).
  double training_utilization = 0.95;
  double interactive_utilization = 0.55;
  /// Per-GPU quantum scheduler knobs (nvshare mode); only exercised on
  /// nodes whose spec enables timeslice_tenants_per_gpu.
  TimesliceConfig timeslice;
};

enum class AgentState { kOffline, kActive, kDeparted };

/// Callbacks the embedding platform can observe (statistics, tests).
struct AgentHooks {
  std::function<void(const std::string& job_id, double progress)>
      on_job_completed;
  std::function<void(const std::string& job_id)> on_job_killed;
};

class ProviderAgent {
 public:
  ProviderAgent(sim::Environment& env, net::Transport& transport,
                hw::NodeModel& node, const container::ImageRegistry& registry,
                storage::CheckpointStore& store, AgentConfig config);
  ~ProviderAgent();

  ProviderAgent(const ProviderAgent&) = delete;
  ProviderAgent& operator=(const ProviderAgent&) = delete;

  // --- Provider controls (local, unconditional) ---------------------------
  /// Registers with the coordinator and starts heartbeating.
  void join();
  /// Terminates every guest container immediately; informs the coordinator.
  /// Returns the ids of the killed jobs.
  std::vector<std::string> kill_switch();
  /// Pauses/resumes new allocations (existing guests keep running).
  void set_paused(bool paused);
  /// Graceful exit: final checkpoints within the grace window, then
  /// terminate guests, notify the coordinator and leave the platform.
  void depart_scheduled();
  /// Abrupt exit: guests die, nothing is sent.  The caller should partition
  /// the node in the network model to drop in-flight traffic.
  void depart_emergency();
  /// Re-registers after a departure (same machine id, fresh auth token).
  void rejoin();
  /// Evicts enough guests (gracefully, newest first) to free `gpus` GPUs
  /// for the owner's local work.  Returns the number of GPUs actually freed.
  int reclaim_gpus(int gpus);

  // --- Introspection --------------------------------------------------------
  AgentState state() const { return state_; }
  bool paused() const { return paused_; }
  const std::string& machine_id() const { return machine_id_; }
  /// The actor lane all of this agent's events and deliveries run on.
  sim::LaneId lane() const { return lane_; }
  std::size_t running_jobs() const { return jobs_.size(); }
  std::vector<std::string> running_job_ids() const;
  /// Live (not yet durable) progress of a running job; -1 when unknown.
  double job_progress(const std::string& job_id) const;
  container::ContainerRuntime& runtime() { return runtime_; }
  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  /// Quantum-scheduler counters (rotations, swap time, thrash actions).
  const TimesliceStats& timeslice_stats() const { return slicer_.stats(); }
  const GpuTimeSlicer& slicer() const { return slicer_; }

  void set_hooks(AgentHooks hooks) { hooks_ = std::move(hooks); }

 private:
  struct RunningJob {
    workload::JobSpec spec;
    std::string container_id;
    double start_progress = 0;     // durable progress when started here
    double checkpointed_progress = 0;
    std::uint64_t checkpoint_seq = 0;
    util::SimTime effective_start = 0;  // adjusted forward by ckpt pauses
    double speed = 1.0;                 // node speed incl. container overhead
    bool compute_started = false;
    bool timeslice = false;        // time-sliced tenant under the slicer
    bool resident = false;         // timeslice only: on-device this quantum
    bool pending_pull = false;     // waiting for image layers
    bool pending_restore = false;  // waiting for checkpoint restore data
    std::uint64_t restore_bytes = 0;
    std::string restore_from;
    sim::EventId completion_event = sim::kInvalidEvent;
    sim::EventId checkpoint_event = sim::kInvalidEvent;
  };

  // message handling
  void handle_message(net::Message&& msg);
  void handle_dispatch(DispatchRequest request);
  void handle_kill_job(const KillJobCommand& command);
  void handle_restore_data(const RestoreData& data);
  void handle_image_data(const ImageData& data);
  void advance_dispatch(const std::string& job_id);
  /// Re-issues a lost image-pull / restore request for a stalled dispatch.
  void retry_stalled_dispatch(const std::string& job_id);

  // execution
  void begin_compute(const std::string& job_id);
  void complete_job(const std::string& job_id);
  void periodic_checkpoint(const std::string& job_id);
  /// Writes a checkpoint at current progress; returns stored progress.
  /// `count_pause` extends the job's runtime by the serialization pause.
  util::StatusOr<storage::Checkpoint> write_checkpoint(RunningJob& job,
                                                       bool count_pause);
  void stop_job_events(RunningJob& job);
  double live_progress(const RunningJob& job) const;
  void reject_dispatch(const std::string& job_id, const std::string& reason);

  // time-slicing (quantum scheduler callbacks + bookkeeping)
  /// Folds/accrues progress as the slicer rotates a tenant out/in; a
  /// rotated-in training job resumes at now + swap_pause.
  void on_residency_change(const std::string& job_id, bool resident,
                           util::Duration swap_pause);
  /// Thrash eviction: checkpoint (training), kill the container, drop the
  /// tenant and notify the coordinator (treated like a reclaim).
  void evict_timeslice_tenant(const std::string& job_id);
  /// Removes a departing time-sliced job from its device's slice.
  void drop_from_slicer(const std::string& job_id, const RunningJob& job);

  // messaging helpers
  void send_control(int kind, std::any payload, std::uint64_t bytes);
  void send_register_request();
  void send_heartbeat();
  void send_telemetry();

  sim::Environment& env_;
  net::Transport& transport_;
  hw::NodeModel& node_;
  const container::ImageRegistry& registry_;
  storage::CheckpointStore& store_;
  AgentConfig config_;
  container::ContainerRuntime runtime_;
  hw::NvmlSampler sampler_;
  util::Rng rng_;

  AgentState state_ = AgentState::kOffline;
  bool paused_ = false;
  std::string machine_id_;
  sim::LaneId lane_ = sim::kMainLane;
  GpuTimeSlicer slicer_;
  std::string auth_token_;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::map<std::string, RunningJob> jobs_;  // ordered for determinism
  std::unique_ptr<sim::PeriodicTimer> heartbeat_timer_;
  std::unique_ptr<sim::PeriodicTimer> telemetry_timer_;
  AgentHooks hooks_;
};

}  // namespace gpunion::agent
