#include "agent/timeslice.h"

#include <algorithm>

namespace gpunion::agent {

GpuTimeSlicer::GpuTimeSlicer(sim::Environment& env, hw::NodeModel& node,
                             TimesliceConfig config)
    : env_(env), node_(node), config_(config) {}

GpuTimeSlicer::~GpuTimeSlicer() { clear(); }

double GpuTimeSlicer::swap_gbps() const {
  return std::max(0.1, node_.spec().host_swap_gbps);
}

void GpuTimeSlicer::add_tenant(int gpu_index, const std::string& job_id,
                               double working_set_gb) {
  Slice& slice = slices_[gpu_index];
  if (slice.quantum <= 0) slice.quantum = config_.quantum;
  slice.tenants.push_back(Tenant{job_id, working_set_gb});
  // One tenant computes uninterrupted; the second arms the rotation.
  if (slice.tenants.size() == 2 && slice.tick_event == sim::kInvalidEvent) {
    arm_tick(gpu_index, slice);
  }
}

void GpuTimeSlicer::remove_tenant(int gpu_index, const std::string& job_id) {
  auto it = slices_.find(gpu_index);
  if (it == slices_.end()) return;
  Slice& slice = it->second;
  const auto pos =
      std::find_if(slice.tenants.begin(), slice.tenants.end(),
                   [&](const Tenant& t) { return t.job_id == job_id; });
  if (pos == slice.tenants.end()) return;
  const std::size_t index =
      static_cast<std::size_t>(pos - slice.tenants.begin());
  const bool was_resident = index == slice.cursor;
  slice.tenants.erase(pos);
  if (index < slice.cursor) --slice.cursor;
  if (slice.cursor >= slice.tenants.size()) slice.cursor = 0;

  if (slice.tenants.empty()) {
    if (slice.tick_event != sim::kInvalidEvent) env_.cancel(slice.tick_event);
    slices_.erase(it);
    return;
  }
  if (was_resident) {
    // The departed tenant's pages need no writeback: the successor pays
    // only its own swap-in before computing.
    const Tenant& incoming = slice.tenants[slice.cursor];
    const double cost = incoming.working_set_gb / swap_gbps();
    (void)node_.gpu(static_cast<std::size_t>(gpu_index))
        .set_resident(incoming.job_id, env_.now());
    ++stats_.swaps;
    stats_.swap_seconds += cost;
    stats_.max_swap_per_quantum = std::max(stats_.max_swap_per_quantum, cost);
    if (hooks_.on_residency_change) {
      hooks_.on_residency_change(incoming.job_id, true, cost);
    }
  }
  if (slice.tenants.size() < 2 && slice.tick_event != sim::kInvalidEvent) {
    env_.cancel(slice.tick_event);
    slice.tick_event = sim::kInvalidEvent;
  }
}

void GpuTimeSlicer::clear() {
  for (auto& [index, slice] : slices_) {
    if (slice.tick_event != sim::kInvalidEvent) env_.cancel(slice.tick_event);
  }
  slices_.clear();
}

const std::string& GpuTimeSlicer::resident(int gpu_index) const {
  static const std::string kNone;
  auto it = slices_.find(gpu_index);
  if (it == slices_.end() || it->second.tenants.empty()) return kNone;
  return it->second.tenants[it->second.cursor].job_id;
}

util::Duration GpuTimeSlicer::quantum(int gpu_index) const {
  auto it = slices_.find(gpu_index);
  return it == slices_.end() ? config_.quantum : it->second.quantum;
}

void GpuTimeSlicer::arm_tick(int gpu_index, Slice& slice) {
  slice.tick_event = env_.schedule_after_on(
      lane_, slice.quantum, [this, gpu_index] { tick(gpu_index); });
}

void GpuTimeSlicer::tick(int gpu_index) {
  auto it = slices_.find(gpu_index);
  if (it == slices_.end()) return;
  it->second.tick_event = sim::kInvalidEvent;

  // Thrash control before rotating: the candidate swap must fit within
  // thrash_fraction of the quantum.  Widen first (nvshare's TQ adaptation);
  // once at max_quantum, evict the largest swapped-out working set — the
  // resident's pages are already on-device, so it is never the victim.
  while (it->second.tenants.size() >= 2) {
    Slice& slice = it->second;
    const Tenant& outgoing = slice.tenants[slice.cursor];
    const std::size_t next = (slice.cursor + 1) % slice.tenants.size();
    const double cost =
        (outgoing.working_set_gb + slice.tenants[next].working_set_gb) /
        swap_gbps();
    if (cost <= config_.thrash_fraction * slice.quantum) break;
    if (slice.quantum < config_.max_quantum) {
      slice.quantum = std::min(config_.max_quantum, slice.quantum * 2.0);
      ++stats_.quantum_widenings;
      continue;
    }
    if (!hooks_.on_evict) break;  // no evictor wired: rotate regardless
    std::size_t victim = slice.cursor;
    for (std::size_t j = 0; j < slice.tenants.size(); ++j) {
      if (j == slice.cursor) continue;
      if (victim == slice.cursor || slice.tenants[j].working_set_gb >
                                        slice.tenants[victim].working_set_gb) {
        victim = j;
      }
    }
    ++stats_.thrash_evictions;
    const std::string victim_id = slice.tenants[victim].job_id;
    hooks_.on_evict(victim_id);  // must remove_tenant before returning
    it = slices_.find(gpu_index);  // eviction may have erased the slice
    if (it == slices_.end()) return;
  }

  Slice& slice = it->second;
  if (slice.tenants.size() < 2) return;  // evictions left a sole tenant

  const Tenant outgoing = slice.tenants[slice.cursor];
  slice.cursor = (slice.cursor + 1) % slice.tenants.size();
  const Tenant& incoming = slice.tenants[slice.cursor];
  const double cost =
      (outgoing.working_set_gb + incoming.working_set_gb) / swap_gbps();
  (void)node_.gpu(static_cast<std::size_t>(gpu_index))
      .set_resident(incoming.job_id, env_.now());
  ++stats_.quanta;
  ++stats_.swaps;
  stats_.swap_seconds += cost;
  stats_.max_swap_per_quantum = std::max(stats_.max_swap_per_quantum, cost);
  if (hooks_.on_residency_change) {
    hooks_.on_residency_change(outgoing.job_id, false, cost);
    hooks_.on_residency_change(incoming.job_id, true, cost);
  }
  arm_tick(gpu_index, slice);
}

}  // namespace gpunion::agent
