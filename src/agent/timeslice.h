// Per-GPU time-quantum scheduler (nvshare mode).
//
// nvshare's core loop: several full-memory tenants share one device; the
// scheduler grants exclusive access to ONE of them per time quantum, and a
// tenant rotating in pays a swap cost — its working set (plus the outgoing
// tenant's writeback) crossing the host-RAM link.  A quantum that is short
// relative to the swap cost thrashes: the device spends its time moving
// pages instead of computing.  The slicer therefore
//
//   - rotates residency round-robin every quantum (deterministic order:
//     tenant arrival order per device);
//   - charges swap_cost = (outgoing_ws + incoming_ws) / host_swap_gbps at
//     each rotation, handed to the agent so progress accrual excludes it;
//   - detects thrashing (swap_cost > thrash_fraction x quantum) and first
//     WIDENS the quantum (doubling, up to max_quantum — nvshare's TQ
//     adaptation), then, if even the widest quantum thrashes, EVICTS the
//     largest swapped-out working set via the eviction hook.
//
// The slicer owns no network or container state: it is a pure scheduling
// component the ProviderAgent embeds.  All ticks run on the agent's actor
// lane, and all containers (tenant lists, rotation order) are deterministic,
// so kDeterministic replays bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hw/node.h"
#include "sim/environment.h"
#include "util/time.h"

namespace gpunion::agent {

struct TimesliceConfig {
  /// Initial scheduler time quantum (nvshare defaults to ~30 s).
  util::Duration quantum = 30.0;
  /// Widening ceiling for thrash avoidance.
  util::Duration max_quantum = 240.0;
  /// A rotation whose swap cost exceeds this fraction of the quantum is
  /// thrashing: widen the quantum, or evict once already at max_quantum.
  double thrash_fraction = 0.5;
};

struct TimesliceStats {
  std::uint64_t quanta = 0;           // completed residency rotations
  std::uint64_t swaps = 0;            // rotations that paid a swap cost
  double swap_seconds = 0;            // total modeled swap time
  std::uint64_t quantum_widenings = 0;
  std::uint64_t thrash_evictions = 0;
  double max_swap_per_quantum = 0;    // worst single-rotation swap cost
};

/// Callbacks into the owning agent.  Both run synchronously inside the
/// slicer's tick (on the agent lane).
struct TimesliceHooks {
  /// `resident` flips for the outgoing (false) and incoming (true) tenant
  /// of a rotation; `swap_pause` is the swap cost the incoming tenant pays
  /// before computing again.
  std::function<void(const std::string& job_id, bool resident,
                     util::Duration swap_pause)>
      on_residency_change;
  /// Thrash eviction: the agent must remove the tenant (kill the job and
  /// call remove_tenant) before the hook returns.
  std::function<void(const std::string& job_id)> on_evict;
};

class GpuTimeSlicer {
 public:
  GpuTimeSlicer(sim::Environment& env, hw::NodeModel& node,
                TimesliceConfig config);
  ~GpuTimeSlicer();

  GpuTimeSlicer(const GpuTimeSlicer&) = delete;
  GpuTimeSlicer& operator=(const GpuTimeSlicer&) = delete;

  void set_lane(sim::LaneId lane) { lane_ = lane; }
  void set_hooks(TimesliceHooks hooks) { hooks_ = std::move(hooks); }

  /// Registers a tenant already bound to `gpu_index` by the node model.
  /// The first tenant of a device is resident immediately (no swap cost);
  /// the second arms the quantum tick.
  void add_tenant(int gpu_index, const std::string& job_id,
                  double working_set_gb);

  /// Removes a tenant (job completed / killed / evicted).  When the
  /// resident leaves, the next tenant rotates in immediately, paying only
  /// its own swap-in cost (the departed tenant's pages need no writeback).
  void remove_tenant(int gpu_index, const std::string& job_id);

  /// Drops all slices without touching devices (kill-switch, departures —
  /// the runtime already released the GPUs).
  void clear();

  /// Resident tenant of a device; empty when the device is not sliced.
  const std::string& resident(int gpu_index) const;
  /// Current (possibly widened) quantum of a device.
  util::Duration quantum(int gpu_index) const;
  const TimesliceStats& stats() const { return stats_; }

 private:
  struct Tenant {
    std::string job_id;
    double working_set_gb = 0;
  };
  struct Slice {
    std::vector<Tenant> tenants;  // arrival order = rotation order
    std::size_t cursor = 0;       // index of the resident tenant
    util::Duration quantum = 0;
    sim::EventId tick_event = sim::kInvalidEvent;
  };

  void tick(int gpu_index);
  void arm_tick(int gpu_index, Slice& slice);
  double swap_gbps() const;

  sim::Environment& env_;
  hw::NodeModel& node_;
  TimesliceConfig config_;
  sim::LaneId lane_ = sim::kMainLane;
  TimesliceHooks hooks_;
  std::map<int, Slice> slices_;  // ordered for determinism
  TimesliceStats stats_;
};

}  // namespace gpunion::agent
