// Abstract message transport.
//
// Agents and the coordinator are written against this interface; the
// simulation binds them to SimNetwork (latency + bandwidth + accounting)
// while unit tests use LoopbackTransport (immediate delivery).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/message.h"
#include "util/status.h"

namespace gpunion::net {

/// Receives messages addressed to one endpoint.
using MessageHandler = std::function<void(Message&&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Attaches `handler` as the receiver for `id`.  Replaces any previous
  /// handler (a node re-joining after departure re-attaches).
  virtual void register_endpoint(const NodeId& id, MessageHandler handler) = 0;

  /// Lane-aware registration: deliveries to `id` fire on the actor lane
  /// `lane` (a sim::LaneId) so the endpoint's handler always runs on the
  /// worker owning that actor.  Transports without an execution model
  /// (loopback) ignore the lane and deliver synchronously.
  virtual void register_endpoint(const NodeId& id, MessageHandler handler,
                                 std::uint32_t lane) {
    (void)lane;
    register_endpoint(id, std::move(handler));
  }

  /// Detaches the endpoint; in-flight messages to it are dropped.
  virtual void unregister_endpoint(const NodeId& id) = 0;

  /// Queues `msg` for delivery.  Returns kNotFound if the destination has
  /// never been registered; delivery itself is best-effort (the destination
  /// may unregister, partition or drop while the message is in flight —
  /// exactly the volatility GPUnion is designed around).
  virtual util::Status send(Message msg) = 0;
};

}  // namespace gpunion::net
