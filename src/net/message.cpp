#include "net/message.h"

namespace gpunion::net {

std::string_view traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kHeartbeat: return "heartbeat";
    case TrafficClass::kTelemetry: return "telemetry";
    case TrafficClass::kCheckpoint: return "checkpoint";
    case TrafficClass::kMigration: return "migration";
    case TrafficClass::kImage: return "image";
    case TrafficClass::kUserData: return "user_data";
    case TrafficClass::kFederation: return "federation";
    case TrafficClass::kClassCount: break;
  }
  return "unknown";
}

}  // namespace gpunion::net
