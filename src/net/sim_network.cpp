#include "net/sim_network.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace gpunion::net {
namespace {

constexpr double kBytesPerGbit = 1e9 / 8.0;

/// Control-plane classes are prioritized (QoS) and bypass bulk queueing.
bool is_control_plane(TrafficClass c) {
  return c == TrafficClass::kControl || c == TrafficClass::kHeartbeat ||
         c == TrafficClass::kTelemetry;
}

}  // namespace

SimNetwork::SimNetwork(sim::Environment& env, SimNetworkConfig config)
    : env_(env), config_(config), drop_rng_(env.fork_rng("net.drop")) {
  assert(config_.backbone_gbps > 0 && config_.default_access_gbps > 0);
  backbone_.bytes_per_sec = config_.backbone_gbps * kBytesPerGbit;
}

SimNetwork::Endpoint& SimNetwork::endpoint_for(const NodeId& id) {
  auto [it, inserted] = endpoints_.try_emplace(id);
  if (inserted) {
    it->second.access.bytes_per_sec =
        config_.default_access_gbps * kBytesPerGbit;
  }
  return it->second;
}

void SimNetwork::register_endpoint(const NodeId& id, MessageHandler handler) {
  register_endpoint(id, std::move(handler), sim::kMainLane);
}

void SimNetwork::register_endpoint(const NodeId& id, MessageHandler handler,
                                   std::uint32_t lane) {
  assert(handler && "endpoint requires a handler");
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& ep = endpoint_for(id);
  ep.handler = std::move(handler);
  ep.lane = lane;
  ep.registered = true;
}

void SimNetwork::unregister_endpoint(const NodeId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(id);
  if (it == endpoints_.end()) return;
  it->second.registered = false;
  it->second.handler = nullptr;
}

void SimNetwork::set_access_gbps(const NodeId& id, double gbps) {
  assert(gbps > 0);
  std::lock_guard<std::mutex> lock(mu_);
  endpoint_for(id).access.bytes_per_sec = gbps * kBytesPerGbit;
}

void SimNetwork::set_path_latency(const NodeId& a, const NodeId& b,
                                  util::Duration latency) {
  assert(latency >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  path_latency_[pair_key(a, b)] = latency;
}

util::Duration SimNetwork::path_latency_locked(const NodeId& a,
                                               const NodeId& b) const {
  // Campus LANs never set overrides; keep their per-message send cost free
  // of the pair-key construction and map probe.
  if (path_latency_.empty()) return config_.base_latency;
  auto it = path_latency_.find(pair_key(a, b));
  return it == path_latency_.end() ? config_.base_latency : it->second;
}

util::Duration SimNetwork::path_latency(const NodeId& a,
                                        const NodeId& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_latency_locked(a, b);
}

double SimNetwork::path_gbps(const NodeId& a, const NodeId& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto rate_of = [this](const NodeId& id) {
    auto it = endpoints_.find(id);
    return it == endpoints_.end()
               ? config_.default_access_gbps * kBytesPerGbit
               : it->second.access.bytes_per_sec;
  };
  return std::min({rate_of(a), backbone_.bytes_per_sec, rate_of(b)}) /
         kBytesPerGbit;
}

void SimNetwork::set_partitioned(const NodeId& id, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoint_for(id).partitioned = partitioned;
}

bool SimNetwork::is_partitioned(const NodeId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(id);
  return it != endpoints_.end() && it->second.partitioned;
}

void SimNetwork::set_drop_probability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  config_.drop_probability = p;
}

void SimNetwork::account(const Message& msg, util::SimTime start,
                         util::SimTime end) {
  const auto cls = static_cast<std::size_t>(msg.traffic_class);
  class_bytes_[cls] += msg.size_bytes;
  if (msg.traffic_class == TrafficClass::kFederation) {
    federation_peer_bytes_[pair_key(msg.from, msg.to)] += msg.size_bytes;
  }
  const auto first =
      static_cast<std::uint64_t>(start / config_.accounting_bucket);
  const auto last =
      static_cast<std::uint64_t>(end / config_.accounting_bucket);
  if (last <= first) {
    buckets_[first][cls] += msg.size_bytes;
    return;
  }
  // Spread proportionally over the buckets the transmission spans, so a
  // long transfer does not spike a single bucket.
  const double duration = end - start;
  std::uint64_t booked = 0;
  for (std::uint64_t bucket = first; bucket <= last; ++bucket) {
    const double bucket_start =
        static_cast<double>(bucket) * config_.accounting_bucket;
    const double overlap =
        std::min(end, bucket_start + config_.accounting_bucket) -
        std::max(start, bucket_start);
    const auto share = static_cast<std::uint64_t>(
        static_cast<double>(msg.size_bytes) * overlap / duration);
    buckets_[bucket][cls] += share;
    booked += share;
  }
  // Rounding remainder lands in the final bucket.
  buckets_[last][cls] += msg.size_bytes - booked;
}

util::Status SimNetwork::send(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  auto dst_it = endpoints_.find(msg.to);
  if (dst_it == endpoints_.end()) {
    ++dropped_;
    return util::not_found_error("unknown destination " + msg.to);
  }

  Endpoint& src = endpoint_for(msg.from);
  Endpoint& dst = dst_it->second;
  const sim::LaneId dst_lane = dst.lane;

  const util::SimTime now = env_.now();

  if (src.partitioned || dst.partitioned) {
    account(msg, now, now);  // the NIC counter still ticks
    ++dropped_;
    return util::Status();  // silently lost, like a yanked cable
  }
  if (config_.drop_probability > 0 &&
      drop_rng_.bernoulli(config_.drop_probability)) {
    account(msg, now, now);
    ++dropped_;
    return util::Status();
  }

  const auto size = static_cast<double>(msg.size_bytes);
  // Propagation: per-path override (WAN distances) or the network default.
  const util::Duration latency = path_latency_locked(msg.from, msg.to);
  const double bottleneck_rate =
      std::min({src.access.bytes_per_sec, backbone_.bytes_per_sec,
                dst.access.bytes_per_sec});
  // Shared capped-pipe model used by both scavenger-class channels: flows
  // queue FIFO inside the channel and the class never exceeds its budget
  // no matter how many flows are in flight at once.
  auto via_paced_channel = [&](Link& channel, double gbps) {
    const double pace = std::min(gbps * kBytesPerGbit, bottleneck_rate);
    const util::SimTime start = std::max(now, channel.busy_until);
    const util::SimTime end = start + size / pace;
    channel.busy_until = end;
    account(msg, start, end);
    return end + latency;
  };
  util::SimTime t;
  if (is_control_plane(msg.traffic_class)) {
    // Control-plane messages are tiny and DSCP-prioritized on campus
    // switches: they never queue behind bulk transfers.
    t = now + size / bottleneck_rate + latency;
    account(msg, now, now);
  } else if (msg.traffic_class == TrafficClass::kFederation &&
             config_.federation_pair_gbps > 0) {
    // Per-pair WAN circuits: each endpoint pair gets its own capped pipe,
    // so one saturated pair never queues another pair's traffic (the cap
    // binds per pair, not globally).
    t = via_paced_channel(federation_pair_links_[pair_key(msg.from, msg.to)],
                          config_.federation_pair_gbps);
  } else if (msg.traffic_class == TrafficClass::kFederation &&
             config_.federation_wan_gbps > 0) {
    // Inter-campus WAN channel: federation traffic (digests, forwards,
    // shipped checkpoints) shares one capped pipe.  FIFO within the class
    // — a large cross-campus checkpoint shipment delays the digests
    // queued behind it, which is the staleness the broker has to live
    // with.
    t = via_paced_channel(wan_channel_, config_.federation_wan_gbps);
  } else if (msg.traffic_class == TrafficClass::kCheckpoint &&
             config_.backup_pace_gbps > 0) {
    // Backup channel: checkpoint uploads share one scavenger-class pipe
    // capped at the configured aggregate rate, leaving foreground links
    // free.
    t = via_paced_channel(backup_channel_, config_.backup_pace_gbps);
  } else {
    // Bulk data uses a pipelined (cut-through) flow model: the transfer
    // occupies the source access link, the backbone and the destination
    // access link concurrently from `start`, finishing at the bottleneck
    // rate.  Bulk transfers sharing a link queue behind each other FIFO.
    const util::SimTime start =
        std::max({now, src.access.busy_until, backbone_.busy_until,
                  dst.access.busy_until});
    src.access.busy_until = start + size / src.access.bytes_per_sec;
    backbone_.busy_until = start + size / backbone_.bytes_per_sec;
    dst.access.busy_until = start + size / dst.access.bytes_per_sec;
    t = start + size / bottleneck_rate + latency;
    account(msg, start, t - latency);
  }

  // Delivery fires on the receiver's lane, so the handler runs on the
  // worker that owns the destination actor.  The handler is copied out
  // under the lock and invoked without it (it may call send() again).
  env_.schedule_at_on(dst_lane, t, [this, m = std::move(msg)]() mutable {
    MessageHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = endpoints_.find(m.to);
      // Re-check on delivery: the endpoint may have departed or partitioned
      // while the message was in flight.
      if (it == endpoints_.end() || !it->second.registered ||
          it->second.partitioned || !it->second.handler) {
        ++dropped_;
        GPUNION_DLOG("net") << "dropped in-flight message to " << m.to;
        return;
      }
      ++delivered_;
      handler = it->second.handler;
    }
    handler(std::move(m));
  });
  return util::Status();
}

std::uint64_t SimNetwork::bytes_sent(TrafficClass c) const {
  std::lock_guard<std::mutex> lock(mu_);
  return class_bytes_[static_cast<std::size_t>(c)];
}

std::uint64_t SimNetwork::federation_bytes_between(const NodeId& a,
                                                   const NodeId& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = federation_peer_bytes_.find(pair_key(a, b));
  return it == federation_peer_bytes_.end() ? 0 : it->second;
}

std::uint64_t SimNetwork::total_bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (auto b : class_bytes_) total += b;
  return total;
}

util::Duration SimNetwork::backup_lag(util::SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(0.0, backup_channel_.busy_until - now);
}

util::Duration SimNetwork::federation_lag(util::SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(0.0, wan_channel_.busy_until - now);
}

std::uint64_t SimNetwork::bytes_in_window(TrafficClass c, util::SimTime t0,
                                          util::SimTime t1) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto cls = static_cast<std::size_t>(c);
  const auto b0 = static_cast<std::uint64_t>(t0 / config_.accounting_bucket);
  const auto b1 = static_cast<std::uint64_t>(t1 / config_.accounting_bucket);
  std::uint64_t total = 0;
  for (const auto& [bucket, bytes] : buckets_) {
    if (bucket >= b0 && bucket <= b1) total += bytes[cls];
  }
  return total;
}

double SimNetwork::peak_backbone_utilization(util::SimTime t0,
                                             util::SimTime t1) const {
  return peak_class_utilization(
      {TrafficClass::kControl, TrafficClass::kHeartbeat,
       TrafficClass::kTelemetry, TrafficClass::kCheckpoint,
       TrafficClass::kMigration, TrafficClass::kImage,
       TrafficClass::kUserData, TrafficClass::kFederation},
      t0, t1);
}

double SimNetwork::peak_class_utilization(
    std::initializer_list<TrafficClass> classes, util::SimTime t0,
    util::SimTime t1) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto b0 = static_cast<std::uint64_t>(t0 / config_.accounting_bucket);
  const auto b1 = static_cast<std::uint64_t>(t1 / config_.accounting_bucket);
  const double capacity_per_bucket =
      backbone_.bytes_per_sec * config_.accounting_bucket;
  double peak = 0;
  for (const auto& [bucket, bytes] : buckets_) {
    if (bucket < b0 || bucket > b1) continue;
    std::uint64_t total = 0;
    for (TrafficClass c : classes) {
      total += bytes[static_cast<std::size_t>(c)];
    }
    peak = std::max(peak, static_cast<double>(total) / capacity_per_bucket);
  }
  return peak;
}

double SimNetwork::mean_backbone_utilization(util::SimTime t0,
                                             util::SimTime t1) const {
  assert(t1 > t0);
  std::lock_guard<std::mutex> lock(mu_);
  const auto b0 = static_cast<std::uint64_t>(t0 / config_.accounting_bucket);
  const auto b1 = static_cast<std::uint64_t>(t1 / config_.accounting_bucket);
  std::uint64_t total = 0;
  for (const auto& [bucket, bytes] : buckets_) {
    if (bucket < b0 || bucket > b1) continue;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(TrafficClass::kClassCount); ++c) {
      total += bytes[c];
    }
  }
  return static_cast<double>(total) / (backbone_.bytes_per_sec * (t1 - t0));
}

}  // namespace gpunion::net
