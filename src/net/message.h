// Generic message envelope for the campus network model.
//
// The network layer is payload-agnostic: it moves sized envelopes between
// named endpoints, modelling latency, link serialization and loss, and
// accounting bytes per traffic class (the Network-Traffic-Analysis experiment
// in §4 of the paper).  Typed protocol structs live in agent/proto.h and ride
// inside `payload`.
#pragma once

#include <any>
#include <cstdint>
#include <string>
#include <string_view>

namespace gpunion::net {

/// Stable endpoint identifier (machine id or "coordinator").
using NodeId = std::string;

/// Traffic classes accounted separately, mirroring the paper's analysis of
/// control vs checkpoint/backup traffic on the campus LAN.
enum class TrafficClass {
  kControl = 0,     // registration, dispatch, kill, ack
  kHeartbeat,       // periodic liveness beacons
  kTelemetry,       // NVML metric reports
  kCheckpoint,      // ALC backup deltas
  kMigration,       // checkpoint restore transfers to the new node
  kImage,           // container image pulls
  kUserData,        // dataset/output movement
  kFederation,      // inter-campus WAN: digests, forwards, shipped checkpoints
  kClassCount,
};

std::string_view traffic_class_name(TrafficClass c);

struct Message {
  NodeId from;
  NodeId to;
  TrafficClass traffic_class = TrafficClass::kControl;
  std::uint64_t size_bytes = 0;
  /// Protocol discriminator, interpreted by the receiving endpoint
  /// (values from agent/proto.h).
  int kind = 0;
  /// Typed payload; receivers unwrap with std::any_cast.
  std::any payload;
};

}  // namespace gpunion::net
