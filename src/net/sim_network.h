// Flow-level campus LAN simulator.
//
// Topology: every node hangs off the campus backbone through a dedicated
// access link; the backbone is a single shared segment (typical for a campus
// distribution layer).  Transfers are pipelined (cut-through): a message
// starts when all three links on its path are free, occupies them for its
// serialization time on each, and completes at the bottleneck rate plus
// propagation latency.  Transfers sharing a link queue FIFO — concurrent
// checkpoint backups from one node serialize on its access link exactly like
// a real NIC.  Bytes are accounted per traffic class and per time bucket,
// which bench/network_traffic uses to report peak bandwidth utilization.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "sim/environment.h"
#include "util/rng.h"

namespace gpunion::net {

struct SimNetworkConfig {
  double backbone_gbps = 10.0;          // shared campus backbone
  double default_access_gbps = 1.0;     // per-node access link
  util::Duration base_latency = 0.0002; // 0.2 ms LAN propagation
  double drop_probability = 0.0;        // random loss (fault injection)
  util::Duration accounting_bucket = 60.0;  // traffic histogram granularity
  /// Checkpoint backups ride a shared scavenger-class channel capped at
  /// this aggregate rate (per-class QoS, like a campus switch's background
  /// queue): §4's "resilience mechanisms operate transparently without
  /// impacting concurrent network-intensive research activities".  Backup
  /// flows queue FIFO within the channel and never occupy the foreground
  /// links.  0 disables the channel (backups compete as ordinary bulk).
  double backup_pace_gbps = 0.5;
  /// Inter-campus federation traffic (capacity digests, forwarded jobs,
  /// cross-campus checkpoint shipments) rides its own capped WAN link,
  /// mirroring the scavenger backup channel: one shared pipe, FIFO within
  /// the class, accounted separately so a federation deployment can prove
  /// its gossip + migration traffic never crowds campus links.  0 disables
  /// the cap (federation traffic competes as ordinary bulk).
  double federation_wan_gbps = 1.0;
  /// Per-region-pair WAN byte cap: when > 0, federation traffic between any
  /// two endpoints paces through a dedicated per-pair pipe at this rate
  /// INSTEAD of the shared wan_channel_, so a saturated A<->B shipment
  /// never delays C<->D digests (distinct WAN circuits, as leased campus
  /// interconnects actually are).  0 keeps the single shared channel.
  double federation_pair_gbps = 0.0;
};

class SimNetwork : public Transport {
 public:
  SimNetwork(sim::Environment& env, SimNetworkConfig config = {});

  // --- Transport interface -------------------------------------------------
  // All entry points are thread-safe: the internal mutex covers topology,
  // link and accounting state, and is never held while a handler runs.
  void register_endpoint(const NodeId& id, MessageHandler handler) override;
  /// Deliveries to `id` are scheduled on actor lane `lane`, so in the
  /// parallel execution mode the handler runs on the worker owning that
  /// actor (the receiver-side mailbox discipline).
  void register_endpoint(const NodeId& id, MessageHandler handler,
                         std::uint32_t lane) override;
  void unregister_endpoint(const NodeId& id) override;
  util::Status send(Message msg) override;

  // --- Topology control -----------------------------------------------------
  /// Overrides the access-link speed of one node (e.g. the 8x4090 server on
  /// a 10 GbE uplink).
  void set_access_gbps(const NodeId& id, double gbps);

  /// Overrides the one-way propagation latency between two endpoints
  /// (symmetric; WAN instances model asymmetric campus distances with it —
  /// e.g. 4 ms to the nearby campus, 35 ms across the country).  Pairs
  /// without an override keep `config.base_latency`.
  void set_path_latency(const NodeId& a, const NodeId& b,
                        util::Duration latency);
  util::Duration path_latency(const NodeId& a, const NodeId& b) const;

  /// Bottleneck line rate (Gbit/s) between two endpoints: min of both
  /// access links and the backbone.  Class-level caps (the federation WAN
  /// channel) are not included — callers combine them as needed.  Unknown
  /// endpoints are assumed to sit on default access links.
  double path_gbps(const NodeId& a, const NodeId& b) const;

  /// Partitions a node: messages to/from it are silently dropped until
  /// healed.  Models emergency departure (power pull, cable yank).
  void set_partitioned(const NodeId& id, bool partitioned);
  bool is_partitioned(const NodeId& id) const;

  /// Message-loss fault mode: changes the random drop probability at
  /// runtime (FaultInjector's lossy-network phase; 0 restores a clean
  /// network).  Applies to sends after the call; in-flight messages are
  /// unaffected.
  void set_drop_probability(double p);

  // --- Traffic accounting ---------------------------------------------------
  std::uint64_t bytes_sent(TrafficClass c) const;
  std::uint64_t total_bytes_sent() const;
  /// Current backlog of the backup channel: how far behind real time the
  /// newest enqueued checkpoint upload will complete.  A growing lag means
  /// backup demand exceeds the scavenger budget (the full-snapshot failure
  /// mode the incremental mechanism exists to avoid).
  util::Duration backup_lag(util::SimTime now) const;
  /// Current backlog of the inter-campus WAN channel (federation class):
  /// how far behind real time the newest enqueued cross-campus transfer
  /// will complete.  A growing lag means forwarded checkpoints exceed the
  /// WAN budget — the migration-throughput ceiling of a federation.
  util::Duration federation_lag(util::SimTime now) const;
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }

  /// Peak backbone utilization (fraction of capacity) over any accounting
  /// bucket within [t0, t1]; the paper's "<2% of campus bandwidth" claim.
  /// Bulk transfers are spread across the buckets their transmission spans.
  double peak_backbone_utilization(util::SimTime t0, util::SimTime t1) const;
  /// Peak utilization counting only the given traffic classes (e.g. the
  /// backup classes for the §4 traffic analysis).
  double peak_class_utilization(std::initializer_list<TrafficClass> classes,
                                util::SimTime t0, util::SimTime t1) const;

  /// Per-peer WAN accounting, federation class only: bytes offered between
  /// the two endpoints (either direction, dropped messages included — the
  /// NIC counter view).  Lets a federation deployment see which region
  /// pair its gossip + checkpoint traffic actually rides.
  std::uint64_t federation_bytes_between(const NodeId& a,
                                         const NodeId& b) const;
  const std::map<std::pair<NodeId, NodeId>, std::uint64_t>&
  federation_peer_bytes() const {
    return federation_peer_bytes_;
  }
  /// Mean backbone utilization over [t0, t1].
  double mean_backbone_utilization(util::SimTime t0, util::SimTime t1) const;
  /// Per-class bytes within [t0, t1] (bucket resolution).
  std::uint64_t bytes_in_window(TrafficClass c, util::SimTime t0,
                                util::SimTime t1) const;

  const SimNetworkConfig& config() const { return config_; }

 private:
  struct Link {
    double bytes_per_sec = 0;
    util::SimTime busy_until = 0;
  };
  struct Endpoint {
    MessageHandler handler;
    Link access;
    sim::LaneId lane = sim::kMainLane;
    bool partitioned = false;
    bool registered = false;
  };

  Endpoint& endpoint_for(const NodeId& id);
  util::Duration path_latency_locked(const NodeId& a, const NodeId& b) const;
  /// Books `msg`'s bytes into accounting buckets, spread uniformly over the
  /// transmission interval [start, end] (a point in time for control).
  void account(const Message& msg, util::SimTime start, util::SimTime end);
  /// Direction-agnostic key for per-pair state (latency overrides,
  /// per-peer accounting).
  static std::pair<NodeId, NodeId> pair_key(const NodeId& a, const NodeId& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  sim::Environment& env_;
  SimNetworkConfig config_;
  // Guards every mutable member below: agents on different worker threads
  // send concurrently in the parallel execution mode.  Held only for state
  // bookkeeping — handlers are copied out and invoked without it.
  mutable std::mutex mu_;
  util::Rng drop_rng_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  Link backbone_;
  Link backup_channel_;  // shared scavenger-class pipe for checkpoints
  Link wan_channel_;     // shared capped pipe for inter-campus federation
  // Per-pair WAN circuits (federation_pair_gbps > 0): lazily created, one
  // Link per endpoint pair so saturation stays pairwise.
  std::map<std::pair<NodeId, NodeId>, Link> federation_pair_links_;
  std::array<std::uint64_t, static_cast<std::size_t>(TrafficClass::kClassCount)>
      class_bytes_{};
  // bucket index -> per-class bytes
  std::unordered_map<std::uint64_t,
                     std::array<std::uint64_t, static_cast<std::size_t>(
                                                   TrafficClass::kClassCount)>>
      buckets_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  // Sparse: only endpoint pairs with an explicit override.
  std::map<std::pair<NodeId, NodeId>, util::Duration> path_latency_;
  // Federation-class bytes per endpoint pair (WAN instances only in
  // practice: the class never rides campus LANs).
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> federation_peer_bytes_;
};

}  // namespace gpunion::net
