#include "net/loopback_transport.h"

namespace gpunion::net {

void LoopbackTransport::register_endpoint(const NodeId& id,
                                          MessageHandler handler) {
  handlers_[id] = std::move(handler);
}

void LoopbackTransport::unregister_endpoint(const NodeId& id) {
  handlers_.erase(id);
}

util::Status LoopbackTransport::send(Message msg) {
  if (!handlers_.contains(msg.to)) {
    ++dropped_;
    return util::not_found_error("unknown destination " + msg.to);
  }
  if (deferred_) {
    queue_.push_back(std::move(msg));
  } else {
    deliver(std::move(msg));
  }
  return util::Status();
}

void LoopbackTransport::deliver(Message&& msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end() || !it->second) {
    ++dropped_;
    return;
  }
  ++delivered_;
  it->second(std::move(msg));
}

std::size_t LoopbackTransport::flush() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    deliver(std::move(msg));
    ++n;
  }
  return n;
}

}  // namespace gpunion::net
