// Zero-latency in-memory transport for unit tests.
//
// Messages are delivered synchronously (re-entrantly) unless deferred mode
// is enabled, in which case they queue until flush() — useful for testing
// protocol interleavings deterministically without a full network model.
#pragma once

#include <deque>
#include <unordered_map>

#include "net/transport.h"

namespace gpunion::net {

class LoopbackTransport : public Transport {
 public:
  /// When `deferred` is true, messages queue until flush().
  explicit LoopbackTransport(bool deferred = false) : deferred_(deferred) {}

  void register_endpoint(const NodeId& id, MessageHandler handler) override;
  void unregister_endpoint(const NodeId& id) override;
  util::Status send(Message msg) override;

  /// Delivers all queued messages (including ones enqueued while flushing).
  /// Returns the number delivered.
  std::size_t flush();

  std::size_t queued() const { return queue_.size(); }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void deliver(Message&& msg);

  bool deferred_;
  std::unordered_map<NodeId, MessageHandler> handlers_;
  std::deque<Message> queue_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace gpunion::net
