// Token-bucket rate limiter.
//
// Provider agents rate-limit telemetry and registration retries with this;
// the network model uses it to cap per-class backup traffic when the
// operator configures a bandwidth budget.
#pragma once

#include "util/time.h"

namespace gpunion::util {

class TokenBucket {
 public:
  /// `rate` tokens refill per second, up to `burst` stored tokens.
  /// Requires rate > 0 and burst > 0.  The bucket starts full.
  TokenBucket(double rate, double burst);

  /// Attempts to take `tokens` at time `now`; returns true on success.
  bool try_consume(SimTime now, double tokens = 1.0);

  /// Time at which `tokens` will be available (>= now); kNever if tokens
  /// exceeds the burst size.
  SimTime next_available(SimTime now, double tokens = 1.0) const;

  double available(SimTime now) const;
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(SimTime now) const;

  double rate_;
  double burst_;
  mutable double tokens_;
  mutable SimTime last_refill_ = 0.0;
};

}  // namespace gpunion::util
