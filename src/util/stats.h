// Small statistics helpers used by the monitoring system and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace gpunion::util {

/// Running mean / min / max / variance (Welford).  O(1) space.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Collects samples and answers percentile queries.  O(n log n) on query.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Nearest-rank percentile, p in [0, 100].  Returns 0 when empty.
  double percentile(double p) const;
  double min() const { return percentile(0); }
  double median() const { return percentile(50); }
  double max() const { return percentile(100); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Time-weighted average of a piecewise-constant signal, e.g. GPU busy
/// fraction.  Feed change-points with set(t, value); query over [t0, t1].
class TimeWeightedValue {
 public:
  explicit TimeWeightedValue(double initial = 0.0)
      : initial_(initial), value_(initial) {}

  /// Records that the signal takes `value` from time `t` on.
  /// Times must be non-decreasing.
  void set(double t, double value);

  /// Time-weighted mean of the signal over [t0, t1]; t1 > t0.
  double average(double t0, double t1) const;

  double current() const { return value_; }

 private:
  struct Segment {
    double start;
    double value;
  };
  double initial_;
  std::vector<Segment> segments_;
  double value_;
};

}  // namespace gpunion::util
