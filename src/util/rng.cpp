#include "util/rng.h"

#include <cassert>
#include <cmath>

#include "util/sha256.h"

namespace gpunion::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  // Hash (seed, label) to a new seed so that streams are independent and
  // insensitive to draw order on the parent.
  Sha256 h;
  h.update(&seed_, sizeof(seed_));
  h.update(label);
  const auto d = h.digest();
  std::uint64_t child_seed = 0;
  for (int i = 0; i < 8; ++i) child_seed = (child_seed << 8) | d[i];
  return Rng(child_seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

int Rng::poisson(double lambda) {
  assert(lambda >= 0);
  if (lambda == 0) return 0;
  if (lambda < 30.0) {
    // Knuth's method.
    const double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double v = normal(lambda, std::sqrt(lambda));
  return v < 0 ? 0 : static_cast<int>(v + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0 && "weighted_index requires a positive weight");
  double r = uniform(0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall back to the last entry
}

}  // namespace gpunion::util
