// Simulation time primitives.
//
// GPUnion experiments run on a discrete-event kernel; time is modelled as
// seconds since simulation start in double precision.  Helpers below keep
// call sites readable (`minutes(10)` instead of `600.0`).
#pragma once

namespace gpunion::util {

/// Seconds since simulation start.
using SimTime = double;

/// Length of an interval, in seconds.
using Duration = double;

constexpr Duration seconds(double s) { return s; }
constexpr Duration milliseconds(double ms) { return ms / 1000.0; }
constexpr Duration minutes(double m) { return m * 60.0; }
constexpr Duration hours(double h) { return h * 3600.0; }
constexpr Duration days(double d) { return d * 86400.0; }
constexpr Duration weeks(double w) { return w * 7.0 * 86400.0; }

/// Sentinel for "no deadline / never".
constexpr SimTime kNever = 1e300;

}  // namespace gpunion::util
