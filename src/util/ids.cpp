#include "util/ids.h"

#include "util/sha256.h"

namespace gpunion::util {

std::string make_machine_id(std::string_view hostname, std::string_view salt) {
  Sha256 h;
  h.update(hostname);
  h.update("|");
  h.update(salt);
  return "m-" + h.hex_digest().substr(0, 16);
}

std::string make_auth_token(Rng& rng) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string token(32, '0');
  for (std::size_t i = 0; i < token.size(); i += 16) {
    std::uint64_t v = rng.next_u64();
    for (std::size_t j = 0; j < 16 && i + j < token.size(); ++j) {
      token[i + j] = kHex[v & 0x0f];
      v >>= 4;
    }
  }
  return token;
}

std::string IdSequence::next() {
  return prefix_ + "-" + std::to_string(next_++);
}

}  // namespace gpunion::util
