// Minimal leveled logger.
//
// The platform logs operational events (registrations, departures,
// migrations) at kInfo and protocol details at kDebug.  Benchmarks lower the
// level to kWarn so tables stay clean.  The logger is process-global but the
// sink is injectable for tests.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace gpunion::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr).  Passing nullptr restores
  /// the default sink.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= level_; }
  /// Thread-safe: worker threads in the parallel execution mode log
  /// concurrently; lines are serialized through an internal mutex.
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  std::mutex write_mu_;
};

/// Stream-style log statement builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component) : level_(level) {
    stream_ << "[" << component << "] ";
  }
  ~LogMessage() { Logger::instance().write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace gpunion::util

#define GPUNION_LOG(level, component)                                  \
  if (!::gpunion::util::Logger::instance().enabled(                    \
          ::gpunion::util::LogLevel::level)) {                         \
  } else                                                               \
    ::gpunion::util::LogMessage(::gpunion::util::LogLevel::level, component)

#define GPUNION_DLOG(component) GPUNION_LOG(kDebug, component)
#define GPUNION_ILOG(component) GPUNION_LOG(kInfo, component)
#define GPUNION_WLOG(component) GPUNION_LOG(kWarn, component)
#define GPUNION_ELOG(component) GPUNION_LOG(kError, component)
