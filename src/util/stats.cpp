#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gpunion::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void TimeWeightedValue::set(double t, double value) {
  assert(segments_.empty() || t >= segments_.back().start);
  if (!segments_.empty() && segments_.back().start == t) {
    segments_.back().value = value;
  } else {
    segments_.push_back({t, value});
  }
  value_ = value;
}

double TimeWeightedValue::average(double t0, double t1) const {
  assert(t1 >= t0);
  if (t1 == t0) return value_;
  double integral = 0;
  double cur_t = t0;
  double cur_value = initial_;
  for (const auto& seg : segments_) {
    if (seg.start <= t0) {
      cur_value = seg.value;  // signal value already in effect at t0
      continue;
    }
    if (seg.start >= t1) break;
    integral += (seg.start - cur_t) * cur_value;
    cur_t = seg.start;
    cur_value = seg.value;
  }
  integral += (t1 - cur_t) * cur_value;
  return integral / (t1 - t0);
}

}  // namespace gpunion::util
