#include "util/token_bucket.h"

#include <algorithm>
#include <cassert>

namespace gpunion::util {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  assert(rate > 0 && burst > 0);
}

void TokenBucket::refill(SimTime now) const {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::try_consume(SimTime now, double tokens) {
  refill(now);
  if (tokens_ + 1e-12 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

SimTime TokenBucket::next_available(SimTime now, double tokens) const {
  if (tokens > burst_) return kNever;
  refill(now);
  if (tokens_ >= tokens) return now;
  return now + (tokens - tokens_) / rate_;
}

double TokenBucket::available(SimTime now) const {
  refill(now);
  return tokens_;
}

}  // namespace gpunion::util
