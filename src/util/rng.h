// Deterministic random-number generation for simulation experiments.
//
// Every component gets its own named stream derived from the experiment seed,
// so adding a component never perturbs the draws of another (a requirement
// for the A/B experiments in bench/: baseline and GPUnion replay identical
// campus traces).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace gpunion::util {

/// xoshiro256** PRNG.  Fast, high-quality, reproducible across platforms.
class Rng {
 public:
  /// Seeds the generator; a SplitMix64 expander fills the state so that
  /// consecutive seeds give independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream from this generator's seed and a
  /// label; the same (seed, label) always yields the same stream.
  Rng fork(std::string_view label) const;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0.0, 1.0).
  double next_double();

  /// Uniform integer on [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given rate (mean 1/rate).  Requires rate > 0.
  double exponential(double rate);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  int poisson(double lambda);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace gpunion::util
