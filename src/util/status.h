// Recoverable-error handling for the GPUnion control plane.
//
// Operational failures (dispatch rejected, node departed, image not
// allow-listed...) are normal events in a voluntary-sharing platform, so they
// are reported by value via Status/StatusOr rather than exceptions.
// Exceptions remain reserved for programmer and configuration errors.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace gpunion::util {

/// Coarse error taxonomy shared across subsystems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller bug or malformed request
  kNotFound,           // id does not resolve
  kAlreadyExists,      // duplicate registration / name
  kPermissionDenied,   // auth token rejected, image not allow-listed
  kUnavailable,        // node departed / paused / unreachable
  kResourceExhausted,  // no GPU with the required capacity
  kFailedPrecondition, // wrong lifecycle state for the operation
  kDeadlineExceeded,   // grace period or RPC deadline elapsed
  kAborted,            // operation cancelled by kill-switch
  kInternal,           // invariant violation inside the platform
};

/// Human-readable name of a code ("kUnavailable" -> "unavailable").
std::string_view status_code_name(StatusCode code);

/// A success/failure result carrying a code and a message on failure.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "unavailable: node n3 departed".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

Status invalid_argument_error(std::string msg);
Status not_found_error(std::string msg);
Status already_exists_error(std::string msg);
Status permission_denied_error(std::string msg);
Status unavailable_error(std::string msg);
Status resource_exhausted_error(std::string msg);
Status failed_precondition_error(std::string msg);
Status deadline_exceeded_error(std::string msg);
Status aborted_error(std::string msg);
Status internal_error(std::string msg);

/// Either a value or a failure Status.  Deliberately minimal: the platform
/// only needs value(), status() and ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  StatusOr(Status status) : status_(std::move(status)) {   // NOLINT(implicit)
    assert(!status_.is_ok() && "StatusOr requires a non-ok Status");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "StatusOr::value on error");
    return *value_;
  }
  T& value() & {
    assert(ok() && "StatusOr::value on error");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "StatusOr::value on error");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // ok iff value_ holds
};

}  // namespace gpunion::util

/// Propagates a non-ok Status from an expression, like absl's macro.
#define GPUNION_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::gpunion::util::Status _st = (expr);              \
    if (!_st.is_ok()) return _st;                      \
  } while (false)
