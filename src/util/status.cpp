#include "util/status.h"

namespace gpunion::util {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kPermissionDenied: return "permission_denied";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

Status invalid_argument_error(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status not_found_error(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status already_exists_error(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status permission_denied_error(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status unavailable_error(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status resource_exhausted_error(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status failed_precondition_error(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status deadline_exceeded_error(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status aborted_error(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

}  // namespace gpunion::util
