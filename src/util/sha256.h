// Standalone SHA-256 (FIPS 180-4).
//
// Used for container-image digests, machine identifiers and checkpoint
// integrity tags.  No external dependencies; verified against NIST test
// vectors in tests/util/sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gpunion::util {

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(data1); h.update(data2);
///   std::string hex = h.hex_digest();
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  /// Absorbs `data` into the hash state.
  void update(std::string_view data);
  void update(const void* data, std::size_t len);

  /// Finalizes and returns the 32-byte digest.  The hasher must not be
  /// updated afterwards; call reset() to reuse it.
  std::array<std::uint8_t, kDigestSize> digest();

  /// Finalizes and returns the digest as lowercase hex.
  std::string hex_digest();

  /// Returns the hasher to its initial state.
  void reset();

  /// One-shot convenience: hex digest of `data`.
  static std::string hex_of(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace gpunion::util
