#include "util/logging.h"

#include <cstdio>

namespace gpunion::util {
namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

}  // namespace

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "%s %s\n", level_tag(level), message.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "%s %s\n", level_tag(level), message.c_str());
    };
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  sink_(level, message);
}

}  // namespace gpunion::util
