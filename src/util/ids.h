// Identifier and credential generation.
//
// Machine identifiers follow the paper's registration flow: a unique id is
// derived from stable node attributes (hostname + fleet salt) via SHA-256;
// authentication tokens are random 128-bit hex strings minted per session.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace gpunion::util {

/// Deterministic machine identifier: "m-" + first 16 hex chars of
/// SHA-256(hostname || salt).  Stable across restarts of the same node.
std::string make_machine_id(std::string_view hostname, std::string_view salt);

/// Random authentication token: 32 hex chars drawn from `rng`.
std::string make_auth_token(Rng& rng);

/// Sequential, human-readable ids: prefix-0, prefix-1, ...
class IdSequence {
 public:
  explicit IdSequence(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string next();
  std::uint64_t count() const { return next_; }

 private:
  std::string prefix_;
  std::uint64_t next_ = 0;
};

}  // namespace gpunion::util
