// Central system database.
//
// §3.2: "State persistence is handled through a centralized database that
// maintains node registrations, resource allocations, and historical
// monitoring data."  §5.2 identifies this database (with heartbeat
// processing) as the scalability bottleneck beyond ~200 nodes, so the model
// tracks an operation rate and exposes an M/M/1 latency estimate that
// bench/scalability sweeps.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/time.h"
#include "workload/job.h"

namespace gpunion::db {

enum class NodeStatus { kActive, kPaused, kUnavailable, kDeparted };

std::string_view node_status_name(NodeStatus s);

struct NodeRecord {
  std::string machine_id;
  std::string hostname;
  int gpu_count = 0;
  std::string gpu_model;
  NodeStatus status = NodeStatus::kActive;
  util::SimTime registered_at = 0;
  util::SimTime last_heartbeat = 0;
  std::string auth_token_hash;  // sha256 of the issued token
  // Full hardware profile, so a restarted coordinator can rebuild its
  // scheduling directory from the registry alone (crash recovery) instead
  // of waiting for every node to re-register.
  std::string owner_group;
  double gpu_memory_gb = 0;
  double compute_capability = 0;
  double gpu_tflops = 0;
  int slots_per_gpu = 1;
  double share_memory_cap_gb = 0;
  int timeslice_tenants_per_gpu = 0;
  double timeslice_oversub_ratio = 0;
  double host_swap_gbps = 0;
};

enum class AllocationOutcome {
  kRunning,
  kCompleted,
  kMigrated,     // moved to another node (provider departure)
  kKilled,       // provider kill-switch, no recovery requested
  kLost,         // emergency departure with no usable checkpoint
};

struct AllocationRecord {
  std::uint64_t allocation_id = 0;
  std::string job_id;
  std::string machine_id;
  std::vector<int> gpu_indices;
  /// Capacity share per bound GPU: 1.0 for an exclusive allocation,
  /// 1/slots_per_gpu for a fractional time-sliced tenant.
  double gpu_fraction = 1.0;
  /// Interactive session (bursty duty cycle) vs saturating batch/training;
  /// drives delivered-utilization accounting.
  bool interactive = false;
  util::SimTime started_at = 0;
  util::SimTime ended_at = 0;  // 0 while running
  AllocationOutcome outcome = AllocationOutcome::kRunning;
};

/// A pending resource request in the scheduler's priority queue (§3.5:
/// "a round-robin scheduler which processes pending resource requests from
/// a priority queue stored in the central database").
struct PendingRequest {
  std::string job_id;
  int priority = 0;  // higher first
  util::SimTime submitted_at = 0;
};

struct MetricPoint {
  util::SimTime at = 0;
  double value = 0;
};

/// Region-scoped job provenance: which campus a job was first submitted in
/// and which campus ended up executing it.  Written by the federation
/// gateways on both sides of a cross-campus forward, so either region's
/// database can answer "whose job is this?" after the job has left its
/// origin coordinator entirely.
struct JobProvenance {
  std::string job_id;
  std::string origin_region;
  std::string executing_region;
  util::SimTime recorded_at = 0;
  /// Hop chain "origin>hop>...>executing" for chained re-forwards; a
  /// direct forward reads "origin>executing".  Empty on legacy rows.
  std::string route;
};

/// Durable mirror of one coordinator JobRecord — everything a restarted
/// coordinator needs to reconstruct live jobs, per-node indexes and
/// re-dispatch decisions that were granted but never delivered.  Phases and
/// causes are stored as ints so db/ stays independent of sched/.
struct JobStateRecord {
  std::string job_id;
  workload::JobSpec spec;
  int phase = 0;  // sched::JobPhase
  std::string node;
  std::string preferred_node;
  std::string displaced_from;
  bool migrate_back_pending = false;
  std::string migrate_back_target;
  double checkpointed_progress = 0;
  util::SimTime last_checkpoint_at = -1;
  int interruptions = 0;
  int migrations = 0;
  int migrate_backs = 0;
  util::SimTime submitted_at = 0;
  util::SimTime first_dispatched_at = -1;
  util::SimTime completed_at = -1;
  double lost_work_seconds = 0;
  int last_interruption_cause = 0;  // workload::InterruptionKind
  std::uint64_t open_allocation = 0;
  std::uint64_t dispatch_generation = 0;
  bool reclaim_requested = false;
  int dispatch_rejects = 0;
  bool awaiting_dispatch_settle = false;
  bool fractional_slot = false;
  bool timeslice_slot = false;
  util::SimTime running_since = -1;
  double segment_start_progress = 0;
  double node_speed = 1.0;
  /// Causal trace carried by the job (obs::TraceContext, stored as plain
  /// ints so db/ stays independent of obs/).  Survives crash recovery so a
  /// redispatched job continues its trace.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent_span = 0;
};

/// Durable mirror of one gateway in-flight outbound forward.  Persisted
/// only once the job is WITHDRAWN from the local coordinator — from that
/// moment this row is the only place the job exists, so a gateway crash
/// without it would lose the job outright.
struct ForwardStateRecord {
  std::string job_id;
  workload::JobSpec spec;
  double start_progress = 0;
  std::uint64_t checkpoint_bytes = 0;
  int state = 0;  // federation::OutboundForward::State
  std::uint64_t handoff_id = 0;
  int transfer_attempts = 0;
  int attempts = 0;
  std::string origin_region;
  std::string origin_gateway;
  std::vector<std::string> chain;
  std::string awaiting_gateway;
  util::SimTime recorded_at = 0;
  /// Causal trace of the in-flight forward (plain ints; see JobStateRecord).
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent_span = 0;
};

/// Durable receive-side hand-off dedup row: (sender gateway, handoff id)
/// per admitted job.  Survives a gateway restart so an origin's
/// at-least-once transfer retry is re-acked, never re-admitted.
struct HandoffRecord {
  std::string job_id;
  std::string from_gateway;
  std::uint64_t handoff_id = 0;
  util::SimTime recorded_at = 0;
};

struct DatabaseConfig {
  /// Mean service time of one DB operation (single writer), seconds.
  double op_service_time = 0.0008;
  /// Ring-buffer length per monitoring series.
  std::size_t history_limit = 4096;
};

/// Abstract system-database surface every store implements.  The control
/// plane (Coordinator, RegionGateway, Scraper, Platform) programs against
/// this interface so the single-writer SystemDatabase and the sharded,
/// write-behind ShardedDatabase are interchangeable — the legacy path stays
/// selectable for A/B benching without touching any consumer.
class Database {
 public:
  virtual ~Database() = default;

  // --- Node registry --------------------------------------------------------
  virtual util::Status upsert_node(NodeRecord record) = 0;
  virtual util::StatusOr<NodeRecord> node(const std::string& machine_id)
      const = 0;
  virtual util::Status set_node_status(const std::string& machine_id,
                                       NodeStatus s) = 0;
  virtual util::Status touch_heartbeat(const std::string& machine_id,
                                       util::SimTime at) = 0;
  /// Applies many heartbeat touches as one batched write per writer (see
  /// SystemDatabase::touch_heartbeats).  Returns rows updated.
  virtual std::size_t touch_heartbeats(
      const std::vector<std::pair<std::string, util::SimTime>>& batch) = 0;
  virtual std::vector<NodeRecord> nodes() const = 0;
  virtual std::vector<NodeRecord> nodes_with_status(NodeStatus s) const = 0;

  // --- Allocation ledger -----------------------------------------------------
  virtual std::uint64_t open_allocation(const std::string& job_id,
                                        const std::string& machine_id,
                                        std::vector<int> gpu_indices,
                                        util::SimTime at,
                                        double gpu_fraction = 1.0,
                                        bool interactive = false) = 0;
  virtual util::Status close_allocation(std::uint64_t allocation_id,
                                        AllocationOutcome outcome,
                                        util::SimTime at) = 0;
  virtual std::vector<AllocationRecord> allocations_for_job(
      const std::string& job_id) const = 0;
  virtual const std::vector<AllocationRecord>& allocation_ledger() const = 0;

  // --- Pending request queue ---------------------------------------------------
  virtual void enqueue_request(PendingRequest request) = 0;
  virtual void enqueue_request_front(PendingRequest request) = 0;
  virtual std::optional<PendingRequest> pop_request() = 0;
  virtual bool remove_request(const std::string& job_id) = 0;
  virtual std::size_t queue_depth() const = 0;

  // --- Job provenance (federation) ---------------------------------------------
  virtual void record_provenance(JobProvenance provenance) = 0;
  virtual const JobProvenance* provenance(const std::string& job_id) const = 0;
  virtual const std::vector<JobProvenance>& provenance_log() const = 0;

  // --- Monitoring history -----------------------------------------------------
  virtual void record_metric(const std::string& series, util::SimTime at,
                             double value) = 0;
  virtual const std::deque<MetricPoint>& series(
      const std::string& name) const = 0;
  virtual std::vector<std::string> series_names() const = 0;

  // --- Durable control-plane state (crash recovery) ----------------------------
  // Written by the Coordinator / RegionGateway so a crashed control plane
  // can rebuild itself from the database.  Each row rides the group commit
  // of the decision that produced it (the decision already paid its round
  // trip), so none of these charge ops — the PR 4 decision-path accounting
  // and every A/B bench stay comparable by construction.
  virtual void put_job_state(JobStateRecord record) = 0;
  virtual bool erase_job_state(const std::string& job_id) = 0;
  virtual const JobStateRecord* job_state(const std::string& job_id) const = 0;
  /// All rows, job-id order (deterministic rebuild).
  virtual std::vector<JobStateRecord> job_states() const = 0;

  /// Small durable counter blobs (stats journals), keyed by owner.
  virtual void put_journal(const std::string& key,
                           std::vector<std::int64_t> values) = 0;
  virtual const std::vector<std::int64_t>* journal(
      const std::string& key) const = 0;

  virtual void put_forward_state(ForwardStateRecord record) = 0;
  virtual bool erase_forward_state(const std::string& job_id) = 0;
  /// All rows, job-id order.
  virtual std::vector<ForwardStateRecord> forward_states() const = 0;

  virtual void put_handoff(HandoffRecord record) = 0;
  /// All rows, job-id order.
  virtual std::vector<HandoffRecord> handoffs() const = 0;

  // --- Contention model --------------------------------------------------------
  virtual std::uint64_t op_count() const = 0;
  virtual double estimated_latency(double ops_per_sec) const = 0;
  virtual double service_rate() const = 0;
};

class SystemDatabase : public Database {
 public:
  explicit SystemDatabase(DatabaseConfig config = {});

  // --- Node registry --------------------------------------------------------
  util::Status upsert_node(NodeRecord record) override;
  util::StatusOr<NodeRecord> node(const std::string& machine_id)
      const override;
  util::Status set_node_status(const std::string& machine_id,
                               NodeStatus s) override;
  util::Status touch_heartbeat(const std::string& machine_id,
                               util::SimTime at) override;
  /// Applies many heartbeat touches as ONE modeled database operation (a
  /// single batched UPDATE).  Coalescing per-beat writes into periodic
  /// flushes is what keeps the §5.2 "database contention" op rate
  /// O(flushes) instead of O(heartbeats).  Unknown machines are skipped;
  /// returns the number of rows updated.
  std::size_t touch_heartbeats(
      const std::vector<std::pair<std::string, util::SimTime>>& batch)
      override;
  std::vector<NodeRecord> nodes() const override;
  std::vector<NodeRecord> nodes_with_status(NodeStatus s) const override;

  // --- Allocation ledger -----------------------------------------------------
  std::uint64_t open_allocation(const std::string& job_id,
                                const std::string& machine_id,
                                std::vector<int> gpu_indices,
                                util::SimTime at, double gpu_fraction = 1.0,
                                bool interactive = false) override;
  util::Status close_allocation(std::uint64_t allocation_id,
                                AllocationOutcome outcome,
                                util::SimTime at) override;
  std::vector<AllocationRecord> allocations_for_job(
      const std::string& job_id) const override;
  const std::vector<AllocationRecord>& allocation_ledger() const override {
    return ledger_;
  }

  // --- Pending request queue ---------------------------------------------------
  void enqueue_request(PendingRequest request) override;
  /// Re-queues at the *head* of its priority class (displaced jobs keep
  /// their place under GPUnion's policy; Slurm-style resubmission uses the
  /// tail via enqueue_request).
  void enqueue_request_front(PendingRequest request) override;
  /// Pops the highest-priority (FIFO within a priority) request.
  std::optional<PendingRequest> pop_request() override;
  /// Removes a queued request by job id (job cancelled); false if absent.
  bool remove_request(const std::string& job_id) override;
  std::size_t queue_depth() const override;

  // --- Job provenance (federation) ---------------------------------------------
  /// Records (or updates) where a job came from and where it executes.
  /// Latest record per job wins for the lookup; the full log is kept for
  /// audit (one appended row per forward hop).
  void record_provenance(JobProvenance provenance) override;
  /// Latest provenance for a job; nullptr for never-forwarded jobs.
  const JobProvenance* provenance(const std::string& job_id) const override;
  const std::vector<JobProvenance>& provenance_log() const override {
    return provenance_log_;
  }

  // --- Monitoring history -----------------------------------------------------
  void record_metric(const std::string& series, util::SimTime at,
                     double value) override;
  const std::deque<MetricPoint>& series(const std::string& name)
      const override;
  std::vector<std::string> series_names() const override;

  // --- Durable control-plane state (uncharged; see Database) -------------------
  void put_job_state(JobStateRecord record) override;
  bool erase_job_state(const std::string& job_id) override;
  const JobStateRecord* job_state(const std::string& job_id) const override;
  std::vector<JobStateRecord> job_states() const override;
  void put_journal(const std::string& key,
                   std::vector<std::int64_t> values) override;
  const std::vector<std::int64_t>* journal(
      const std::string& key) const override;
  void put_forward_state(ForwardStateRecord record) override;
  bool erase_forward_state(const std::string& job_id) override;
  std::vector<ForwardStateRecord> forward_states() const override;
  void put_handoff(HandoffRecord record) override;
  std::vector<HandoffRecord> handoffs() const override;

  // --- Contention model --------------------------------------------------------
  /// Every public mutation/query above counts as one operation.
  std::uint64_t op_count() const override { return ops_; }

  /// M/M/1 sojourn-time estimate for a sustained `ops_per_sec` load.
  /// Saturates (returns kNever) at/above the service rate — this is the
  /// ">200 nodes" wall in §5.2.
  double estimated_latency(double ops_per_sec) const override;
  double service_rate() const override { return 1.0 / config_.op_service_time; }

 private:
  void count_op() const { ++ops_; }

  DatabaseConfig config_;
  std::map<std::string, NodeRecord> nodes_;  // ordered: deterministic scans
  std::vector<AllocationRecord> ledger_;
  std::unordered_map<std::uint64_t, std::size_t> ledger_index_;
  // priority -> FIFO of requests; processed highest priority first.
  std::map<int, std::deque<PendingRequest>, std::greater<>> queue_;
  std::unordered_map<std::string, std::deque<MetricPoint>> metrics_;
  std::vector<JobProvenance> provenance_log_;
  std::unordered_map<std::string, std::size_t> provenance_index_;  // latest row
  // Durable control-plane state (ordered: deterministic rebuild scans).
  std::map<std::string, JobStateRecord> job_states_;
  std::map<std::string, std::vector<std::int64_t>> journal_;
  std::map<std::string, ForwardStateRecord> forward_states_;
  std::map<std::string, HandoffRecord> handoffs_;
  std::uint64_t next_allocation_id_ = 1;
  mutable std::uint64_t ops_ = 0;
};

}  // namespace gpunion::db
