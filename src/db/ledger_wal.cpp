#include "db/ledger_wal.h"

#include <algorithm>

namespace gpunion::db {

std::string_view wal_op_name(WalOp op) {
  switch (op) {
    case WalOp::kUpsertNode: return "upsert_node";
    case WalOp::kSetNodeStatus: return "set_node_status";
    case WalOp::kTouchHeartbeat: return "touch_heartbeat";
    case WalOp::kTouchHeartbeatBatch: return "touch_heartbeat_batch";
    case WalOp::kOpenAllocation: return "open_allocation";
    case WalOp::kCloseAllocation: return "close_allocation";
    case WalOp::kEnqueue: return "enqueue";
    case WalOp::kPop: return "pop";
    case WalOp::kRemoveRequest: return "remove_request";
    case WalOp::kProvenance: return "provenance";
    case WalOp::kMetric: return "metric";
    case WalOp::kPutJobState: return "put_job_state";
    case WalOp::kEraseJobState: return "erase_job_state";
    case WalOp::kJournalPut: return "journal_put";
    case WalOp::kPutForward: return "put_forward";
    case WalOp::kEraseForward: return "erase_forward";
    case WalOp::kPutHandoff: return "put_handoff";
  }
  return "unknown";
}

std::size_t TableImage::queue_rows() const {
  std::size_t n = 0;
  for (const auto& [priority, bucket] : queue) n += bucket.size();
  return n;
}

void apply_to_image(TableImage& image, const WalRecord& record,
                    std::size_t history_limit) {
  switch (record.op) {
    case WalOp::kUpsertNode:
      image.nodes[record.key] = record.node;
      break;
    case WalOp::kSetNodeStatus: {
      auto it = image.nodes.find(record.key);
      if (it != image.nodes.end()) it->second.status = record.status;
      break;
    }
    case WalOp::kTouchHeartbeat: {
      auto it = image.nodes.find(record.key);
      if (it != image.nodes.end()) it->second.last_heartbeat = record.at;
      break;
    }
    case WalOp::kTouchHeartbeatBatch:
      for (const auto& [machine_id, at] : record.batch_rows) {
        auto it = image.nodes.find(machine_id);
        if (it == image.nodes.end()) continue;
        it->second.last_heartbeat = std::max(it->second.last_heartbeat, at);
      }
      break;
    case WalOp::kOpenAllocation:
      image.allocations[record.allocation.allocation_id] = record.allocation;
      image.next_allocation_id = std::max(
          image.next_allocation_id, record.allocation.allocation_id + 1);
      break;
    case WalOp::kCloseAllocation: {
      auto it = image.allocations.find(record.allocation_id);
      if (it != image.allocations.end() &&
          it->second.outcome == AllocationOutcome::kRunning) {
        it->second.outcome = record.outcome;
        it->second.ended_at = record.at;
      }
      break;
    }
    case WalOp::kEnqueue:
      image.queue[record.request.priority][record.queue_seq] = record.request;
      image.queue_back_seq = std::max(image.queue_back_seq, record.queue_seq);
      image.queue_front_seq =
          std::min(image.queue_front_seq, record.queue_seq);
      break;
    case WalOp::kPop: {
      // The live pop removed the (priority desc, seq asc) front; by seq
      // order within the bucket that is the first row with this job id.
      auto bucket = image.queue.find(record.priority);
      if (bucket == image.queue.end()) break;
      for (auto it = bucket->second.begin(); it != bucket->second.end();
           ++it) {
        if (it->second.job_id == record.key) {
          bucket->second.erase(it);
          break;
        }
      }
      if (bucket->second.empty()) image.queue.erase(bucket);
      break;
    }
    case WalOp::kRemoveRequest:
      // Same scan order as the live removal: priority desc, seq asc.
      for (auto bucket = image.queue.begin(); bucket != image.queue.end();
           ++bucket) {
        bool removed = false;
        for (auto it = bucket->second.begin(); it != bucket->second.end();
             ++it) {
          if (it->second.job_id == record.key) {
            bucket->second.erase(it);
            removed = true;
            break;
          }
        }
        if (removed) {
          if (bucket->second.empty()) image.queue.erase(bucket);
          break;
        }
      }
      break;
    case WalOp::kProvenance:
      // Keyed by WAL seq: materializing in key order reproduces the global
      // append order of the live provenance log.
      image.provenance[record.seq] = record.provenance;
      break;
    case WalOp::kMetric: {
      auto& points = image.metrics[record.key];
      points.push_back(MetricPoint{record.at, record.value});
      while (points.size() > history_limit) points.pop_front();
      break;
    }
    case WalOp::kPutJobState:
      image.job_states[record.key] = record.job_state;
      break;
    case WalOp::kEraseJobState:
      image.job_states.erase(record.key);
      break;
    case WalOp::kJournalPut:
      image.journal[record.key] = record.journal;
      break;
    case WalOp::kPutForward:
      image.forwards[record.key] = record.forward;
      break;
    case WalOp::kEraseForward:
      image.forwards.erase(record.key);
      break;
    case WalOp::kPutHandoff:
      image.handoffs[record.key] = record.handoff;
      break;
  }
}

std::uint64_t LedgerWal::append(WalRecord record) {
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
  ++stats_.appended;
  stats_.max_depth = std::max(stats_.max_depth, records_.size());
  return records_.back().seq;
}

void LedgerWal::mark_applied(std::size_t shard, std::uint64_t seq) {
  applied_[shard] = std::max(applied_[shard], seq);
}

std::size_t LedgerWal::truncate_applied() {
  std::size_t dropped = 0;
  while (!records_.empty() &&
         records_.front().seq <= applied_[records_.front().shard]) {
    records_.pop_front();
    ++dropped;
  }
  stats_.truncated += dropped;
  return dropped;
}

void LedgerWal::note_recovery(std::uint64_t replayed) {
  ++stats_.recoveries;
  stats_.replayed += replayed;
}

}  // namespace gpunion::db
