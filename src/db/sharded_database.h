// Sharded, multi-writer system database with write-behind ledgering.
//
// PR 2 batched the heartbeat writes; bench_scalability's M/M/1 model then
// showed the next wall (ROADMAP): the ~10 synchronous DB ops the scheduler
// pays per decision saturate the single-writer database past ~2k nodes
// under load.  This store removes that wall along two axes:
//
//  * Sharding: tables are partitioned by key — queue rows and provenance
//    by JOB id, node registry / heartbeats / allocations by NODE id
//    (deterministic FNV-1a routing) — across N writer shards, each with
//    its own op counter and M/M/1 latency model.  Synchronous load that
//    used to queue behind one writer spreads across N lanes; unkeyed ops
//    (queue pops, depth probes) rotate round-robin, and fan-out reads
//    (nodes(), allocations_for_job on a node-partitioned table) pay one
//    scatter-gather op per shard.
//
//  * Write-behind: the coordinator's per-decision mutations (allocation
//    open/close, pending-queue inserts, provenance, metric points) are
//    absorbed by a WriteBehindLedger and group-committed to their shards
//    on a flush interval or size threshold — one modeled write per touched
//    shard per flush instead of one per mutation.
//
// Consistency model: mutations apply to the shared in-memory tables
// immediately and only their durable shard write is deferred, so every
// in-process reader (Coordinator, Directory consumers, RegionGateway) gets
// read-your-writes on ledgered-but-unflushed state; shard op counters
// advance at commit time.  This is the same modeling contract PR 2
// established for touch_heartbeats (apply all rows, count one batched
// write).
//
// DbConfig{shard_count = 1, write_behind = false} reproduces the legacy
// single-writer behaviour exactly (same final table contents AND the same
// op accounting as SystemDatabase), which is what bench/scalability_campus
// A/Bs against.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/database.h"
#include "db/ledger_wal.h"
#include "db/shard_executor.h"
#include "db/write_behind_ledger.h"
#include "util/status.h"
#include "util/time.h"

namespace gpunion::obs {
class Tracer;
}  // namespace gpunion::obs

namespace gpunion::db {

struct DbConfig {
  /// Writer shards the tables are partitioned across.
  int shard_count = 4;
  /// Absorb per-decision mutations into the write-behind ledger (off = every
  /// mutation is one synchronous shard write, the legacy path).
  bool write_behind = true;
  /// Background ledger-flush cadence.  The database is passive (no event
  /// loop of its own); the owner — Platform — drives flush_ledger() from a
  /// timer at this period.
  util::Duration flush_interval = 2.0;
  /// Pending ledger entries that force an immediate threshold flush.
  std::size_t flush_threshold = 256;
  /// Contention-aware adaptive flush: the owner's timer asks
  /// recommended_flush_interval() after each flush and re-paces itself —
  /// shorter as the pending ledger/WAL fills toward the threshold, longer
  /// when idle.  Off by default: the fixed flush_interval stays in force.
  bool adaptive_flush = false;
  util::Duration flush_interval_min = 0.5;
  util::Duration flush_interval_max = 8.0;
  /// Mean service time of one op on ONE writer shard, seconds.
  double op_service_time = 0.0008;
  /// Ring-buffer length per monitoring series.
  std::size_t history_limit = 4096;
};

/// What crash_and_recover() reconstructed (observability + bench fodder).
struct RecoveryReport {
  std::size_t wal_depth_at_crash = 0;  // durable log records found
  std::size_t replayed = 0;            // applied ahead of their shard image
  std::size_t skipped_applied = 0;     // idempotently skipped (<= watermark)
  std::size_t nodes = 0;
  std::size_t allocations = 0;
  std::size_t queue_rows = 0;
  std::size_t job_states = 0;
  std::size_t forward_states = 0;
  std::size_t handoffs = 0;
};

class ShardedDatabase : public Database {
 public:
  explicit ShardedDatabase(DbConfig config = {});

  // --- Database interface (see db/database.h) -------------------------------
  util::Status upsert_node(NodeRecord record) override;
  util::StatusOr<NodeRecord> node(const std::string& machine_id)
      const override;
  util::Status set_node_status(const std::string& machine_id,
                               NodeStatus s) override;
  util::Status touch_heartbeat(const std::string& machine_id,
                               util::SimTime at) override;
  /// One batched write per shard holding at least one row of the batch.
  std::size_t touch_heartbeats(
      const std::vector<std::pair<std::string, util::SimTime>>& batch)
      override;
  std::vector<NodeRecord> nodes() const override;
  std::vector<NodeRecord> nodes_with_status(NodeStatus s) const override;

  std::uint64_t open_allocation(const std::string& job_id,
                                const std::string& machine_id,
                                std::vector<int> gpu_indices,
                                util::SimTime at, double gpu_fraction = 1.0,
                                bool interactive = false) override;
  util::Status close_allocation(std::uint64_t allocation_id,
                                AllocationOutcome outcome,
                                util::SimTime at) override;
  std::vector<AllocationRecord> allocations_for_job(
      const std::string& job_id) const override;
  const std::vector<AllocationRecord>& allocation_ledger() const override {
    return ledger_;
  }

  void enqueue_request(PendingRequest request) override;
  void enqueue_request_front(PendingRequest request) override;
  std::optional<PendingRequest> pop_request() override;
  bool remove_request(const std::string& job_id) override;
  std::size_t queue_depth() const override;

  void record_provenance(JobProvenance provenance) override;
  const JobProvenance* provenance(const std::string& job_id) const override;
  const std::vector<JobProvenance>& provenance_log() const override {
    return provenance_log_;
  }

  void record_metric(const std::string& series, util::SimTime at,
                     double value) override;
  const std::deque<MetricPoint>& series(const std::string& name)
      const override;
  std::vector<std::string> series_names() const override;

  // --- Durable control-plane state (uncharged; see Database) -------------------
  // Reads are served straight from the durable image: these tables are
  // WAL'd and applied synchronously, so image == live for them always.
  void put_job_state(JobStateRecord record) override;
  bool erase_job_state(const std::string& job_id) override;
  const JobStateRecord* job_state(const std::string& job_id) const override;
  std::vector<JobStateRecord> job_states() const override;
  void put_journal(const std::string& key,
                   std::vector<std::int64_t> values) override;
  const std::vector<std::int64_t>* journal(
      const std::string& key) const override;
  void put_forward_state(ForwardStateRecord record) override;
  bool erase_forward_state(const std::string& job_id) override;
  std::vector<ForwardStateRecord> forward_states() const override;
  void put_handoff(HandoffRecord record) override;
  std::vector<HandoffRecord> handoffs() const override;

  /// Total charged ops summed across shards (sync + flush commits).
  std::uint64_t op_count() const override;
  /// M/M/1 sojourn time for `ops_per_sec` split evenly across the shards
  /// (per-shard arrival rate ops/N against the per-shard service rate).
  double estimated_latency(double ops_per_sec) const override;
  /// Service rate of ONE writer shard (the fleet serves shard_count x this).
  double service_rate() const override {
    return 1.0 / config_.op_service_time;
  }

  // --- Sharding introspection -------------------------------------------------
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Deterministic owner shard of node-keyed rows (registry, heartbeats,
  /// allocations).
  std::size_t shard_for_node(std::string_view machine_id) const {
    return route(machine_id);
  }
  /// Deterministic owner shard of job-keyed rows (queue, provenance).
  std::size_t shard_for_job(std::string_view job_id) const {
    return route(job_id);
  }
  /// Ops charged to one shard (sync writes/reads + its ledger commits).
  std::uint64_t shard_ops(std::size_t shard) const {
    return shards_.at(shard).ops;
  }
  /// Rows currently owned by one shard (registry + allocations + queue +
  /// provenance inserts; audit of the partitioning, not a cost model).
  std::uint64_t shard_rows(std::size_t shard) const {
    return shards_.at(shard).rows;
  }
  std::vector<std::uint64_t> shard_op_counts() const;
  /// M/M/1 sojourn time on ONE shard sustaining `shard_ops_per_sec`.
  double estimated_shard_latency(double shard_ops_per_sec) const;

  // --- Write-behind ledger ------------------------------------------------------
  const WriteBehindLedger& ledger() const { return ledger_log_; }
  /// Group-commits pending ledger entries to their shards.  Threshold
  /// flushes happen automatically inside absorbing mutations; the interval
  /// flush is driven by the owner's timer.  Returns entries committed.
  /// With an executor attached, each shard's commit runs on that shard's
  /// thread (fork-join: all commits complete before this returns).
  /// `at` is the commit time for trace spans (owner timers pass now();
  /// callers without a clock leave -1 and the newest absorbed entry's
  /// timestamp stands in).
  std::size_t flush_ledger(FlushTrigger trigger = FlushTrigger::kExplicit,
                           util::SimTime at = -1);

  /// Attaches a tracer: each flushed ledger entry (except background metric
  /// points) closes one db_group_commit span on the trace of the job whose
  /// key it carries — ack-to-durable latency becomes visible per job.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches per-shard commit threads (parallel execution mode).  The
  /// executor must outlive the database or be detached with nullptr.
  void set_executor(ShardExecutor* executor) { executor_ = executor; }
  ShardExecutor* executor() const { return executor_; }

  /// Contention-aware flush pacing (DbConfig::adaptive_flush): the period
  /// the owner's flush timer should run at given the current pending
  /// ledger/WAL depth — flush_interval_min when the log is within half the
  /// threshold of forcing a flush, flush_interval_max when idle, linear in
  /// between.  Returns the fixed flush_interval when adaptation is off.
  util::Duration recommended_flush_interval() const;

  // --- Write-ahead log & crash recovery ----------------------------------------
  const LedgerWal& wal() const { return wal_; }
  /// The durable image a restarted process would read back (tests/benches).
  const TableImage& durable_image() const { return image_; }

  /// Models a process crash and restart: discards every live table and
  /// rebuilds them from durable state only — the per-shard images plus a
  /// replay of WAL-ahead-of-shard records in global seq order (idempotent:
  /// records at/below a shard's applied watermark are skipped).  Because
  /// every mutation was WAL'd before its caller saw the ack, the rebuilt
  /// tables equal the pre-crash live tables exactly; op counters and the
  /// WriteBehindLedger's pending (cost) entries survive, so charging and
  /// the A/B benches stay continuous across the crash.
  RecoveryReport crash_and_recover();

  /// Report of the most recent crash_and_recover() (all-zero before the
  /// first), plus how many recoveries this store has performed — the dark
  /// data the platform surfaces as metrics.
  const RecoveryReport& last_recovery_report() const {
    return last_recovery_report_;
  }
  std::uint64_t recoveries() const { return recoveries_; }

  /// One-shot fault arming (FaultInjector): the next flush skips SHARD's
  /// image commit (records stay in the WAL; the retry is the next flush)...
  void arm_commit_failure(std::size_t shard);
  /// ...or stops mid-group-commit after K shard images advanced, without
  /// truncating — the torn state a crash_and_recover() must then heal.
  void arm_flush_crash(std::size_t shards_before_crash);
  std::uint64_t commit_failures() const { return commit_failures_; }
  /// True when the last flush stopped early under arm_flush_crash.
  bool flush_interrupted() const { return flush_interrupted_; }

  // --- Pending-queue work stealing ---------------------------------------------
  /// Pops served by the rotating (charged) shard's own partition.
  std::uint64_t local_pops() const { return local_pops_; }
  /// Pops whose globally best request lived in another shard's partition
  /// (the stealing cross-partition case).
  std::uint64_t stolen_pops() const { return stolen_pops_; }

  // --- Decision-path accounting -------------------------------------------------
  /// Ops charged synchronously at call time (everything except ledger
  /// group commits).
  std::uint64_t sync_op_count() const { return sync_ops_; }
  /// Synchronous ops on the scheduler's decision path: pending-queue
  /// mutations, allocation open/close, provenance.  With write-behind on,
  /// only the queue pops/removals remain here — the rest moves to the
  /// ledger; this
  /// counter (over dispatches) is the bench's "ops per decision".
  std::uint64_t decision_path_sync_ops() const {
    return decision_path_sync_ops_;
  }

  const DbConfig& config() const { return config_; }

 private:
  struct Shard {
    std::uint64_t ops = 0;   // charged ops (sync + group commits)
    std::uint64_t rows = 0;  // owned rows (audit of the partitioning)
  };

  /// One pending-queue row.  `seq` is a global insertion stamp: back pushes
  /// count up from 1, front pushes count down from -1, so ascending seq
  /// within a priority reproduces the legacy single-deque order exactly
  /// (newest push_front first, then FIFO push_backs).
  struct QueueItem {
    PendingRequest request;
    std::int64_t seq;
  };
  /// Per-shard slice of the pending queue, keyed like the legacy queue
  /// (priority desc).  A shard's partition holds the jobs it owns
  /// (shard_for_job); pops steal across partitions for the global best.
  struct QueuePartition {
    std::map<int, std::deque<QueueItem>, std::greater<>> by_priority;
  };

  std::size_t route(std::string_view key) const;
  /// Charges one synchronous op to `shard`.
  void charge(std::size_t shard, bool decision_path) const;
  /// Rotating writer for unkeyed ops (queue pops / depth probes): any lane
  /// can serve them, so the load spreads deterministically.
  std::size_t rotate() const;
  /// Absorbs a decision-path mutation: ledgered under write-behind
  /// (threshold-flushing when the log fills), synchronous otherwise.
  void absorb(LedgerOpKind kind, std::size_t shard, std::string key,
              std::uint64_t allocation_id, util::SimTime at);
  /// Appends one WAL record.  `deferred` mutations (write-behind absorbs)
  /// leave their shard image to the next group commit; everything else is
  /// durable at call time — the synchronous round trip IS the write — so
  /// the shard's image advances (and the applied prefix truncates) here.
  void wal_append(WalRecord record, bool deferred);
  /// Applies SHARD's pending WAL records with seq <= upto to the image.
  void advance_image(std::size_t shard, std::uint64_t upto_seq);
  /// Replaces every live table with a materialization of image_.
  void rebuild_live_tables();

  DbConfig config_;
  // Mutable like SystemDatabase::ops_: reads are charged ops too.
  mutable std::vector<Shard> shards_;
  WriteBehindLedger ledger_log_;
  LedgerWal wal_;
  TableImage image_;
  std::vector<bool> armed_commit_failures_;
  /// >= 0: next flush advances this many shard images, then stops.
  int armed_flush_crash_ = -1;
  std::uint64_t commit_failures_ = 0;
  bool flush_interrupted_ = false;

  // Logical tables (merged view; each row owned by exactly one shard).
  std::map<std::string, NodeRecord> nodes_;  // ordered: deterministic scans
  std::vector<AllocationRecord> ledger_;
  std::unordered_map<std::uint64_t, std::size_t> ledger_index_;
  std::vector<QueuePartition> queue_parts_;  // one per shard
  std::int64_t queue_back_seq_ = 0;   // next back push stamps ++this
  std::int64_t queue_front_seq_ = 0;  // next front push stamps --this
  std::size_t queued_rows_ = 0;       // cached depth (O(1) probes)
  std::unordered_map<std::string, std::deque<MetricPoint>> metrics_;
  std::vector<JobProvenance> provenance_log_;
  std::unordered_map<std::string, std::size_t> provenance_index_;
  std::uint64_t next_allocation_id_ = 1;

  mutable std::uint64_t sync_ops_ = 0;
  mutable std::uint64_t decision_path_sync_ops_ = 0;
  mutable std::size_t rotate_cursor_ = 0;
  std::uint64_t local_pops_ = 0;
  std::uint64_t stolen_pops_ = 0;
  ShardExecutor* executor_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  RecoveryReport last_recovery_report_;
  std::uint64_t recoveries_ = 0;
};

}  // namespace gpunion::db
