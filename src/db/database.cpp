#include "db/database.h"

#include <algorithm>

namespace gpunion::db {

std::string_view node_status_name(NodeStatus s) {
  switch (s) {
    case NodeStatus::kActive: return "active";
    case NodeStatus::kPaused: return "paused";
    case NodeStatus::kUnavailable: return "unavailable";
    case NodeStatus::kDeparted: return "departed";
  }
  return "unknown";
}

SystemDatabase::SystemDatabase(DatabaseConfig config) : config_(config) {}

util::Status SystemDatabase::upsert_node(NodeRecord record) {
  count_op();
  if (record.machine_id.empty()) {
    return util::invalid_argument_error("node record requires a machine id");
  }
  nodes_[record.machine_id] = std::move(record);
  return util::Status();
}

util::StatusOr<NodeRecord> SystemDatabase::node(
    const std::string& machine_id) const {
  count_op();
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  return it->second;
}

util::Status SystemDatabase::set_node_status(const std::string& machine_id,
                                             NodeStatus s) {
  count_op();
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.status = s;
  return util::Status();
}

util::Status SystemDatabase::touch_heartbeat(const std::string& machine_id,
                                             util::SimTime at) {
  count_op();
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.last_heartbeat = at;
  return util::Status();
}

std::size_t SystemDatabase::touch_heartbeats(
    const std::vector<std::pair<std::string, util::SimTime>>& batch) {
  count_op();
  std::size_t applied = 0;
  for (const auto& [machine_id, at] : batch) {
    auto it = nodes_.find(machine_id);
    if (it == nodes_.end()) continue;
    it->second.last_heartbeat = std::max(it->second.last_heartbeat, at);
    ++applied;
  }
  return applied;
}

std::vector<NodeRecord> SystemDatabase::nodes() const {
  count_op();
  std::vector<NodeRecord> out;
  out.reserve(nodes_.size());
  for (const auto& [id, record] : nodes_) out.push_back(record);
  return out;
}

std::vector<NodeRecord> SystemDatabase::nodes_with_status(NodeStatus s) const {
  count_op();
  std::vector<NodeRecord> out;
  for (const auto& [id, record] : nodes_) {
    if (record.status == s) out.push_back(record);
  }
  return out;
}

std::uint64_t SystemDatabase::open_allocation(const std::string& job_id,
                                              const std::string& machine_id,
                                              std::vector<int> gpu_indices,
                                              util::SimTime at,
                                              double gpu_fraction,
                                              bool interactive) {
  count_op();
  AllocationRecord record;
  record.allocation_id = next_allocation_id_++;
  record.job_id = job_id;
  record.machine_id = machine_id;
  record.gpu_indices = std::move(gpu_indices);
  record.gpu_fraction = gpu_fraction;
  record.interactive = interactive;
  record.started_at = at;
  ledger_index_[record.allocation_id] = ledger_.size();
  ledger_.push_back(std::move(record));
  return ledger_.back().allocation_id;
}

util::Status SystemDatabase::close_allocation(std::uint64_t allocation_id,
                                              AllocationOutcome outcome,
                                              util::SimTime at) {
  count_op();
  auto it = ledger_index_.find(allocation_id);
  if (it == ledger_index_.end()) {
    return util::not_found_error("allocation " +
                                 std::to_string(allocation_id));
  }
  AllocationRecord& record = ledger_[it->second];
  if (record.outcome != AllocationOutcome::kRunning) {
    return util::failed_precondition_error(
        "allocation " + std::to_string(allocation_id) + " already closed");
  }
  record.outcome = outcome;
  record.ended_at = at;
  return util::Status();
}

std::vector<AllocationRecord> SystemDatabase::allocations_for_job(
    const std::string& job_id) const {
  count_op();
  std::vector<AllocationRecord> out;
  for (const auto& record : ledger_) {
    if (record.job_id == job_id) out.push_back(record);
  }
  return out;
}

void SystemDatabase::enqueue_request(PendingRequest request) {
  count_op();
  queue_[request.priority].push_back(std::move(request));
}

void SystemDatabase::enqueue_request_front(PendingRequest request) {
  count_op();
  queue_[request.priority].push_front(std::move(request));
}

std::optional<PendingRequest> SystemDatabase::pop_request() {
  count_op();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->second.empty()) {
      it = queue_.erase(it);
      continue;
    }
    PendingRequest request = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queue_.erase(it);
    return request;
  }
  return std::nullopt;
}

bool SystemDatabase::remove_request(const std::string& job_id) {
  count_op();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    auto& fifo = it->second;
    for (auto rit = fifo.begin(); rit != fifo.end(); ++rit) {
      if (rit->job_id == job_id) {
        fifo.erase(rit);
        if (fifo.empty()) queue_.erase(it);
        return true;
      }
    }
  }
  return false;
}

std::size_t SystemDatabase::queue_depth() const {
  count_op();
  std::size_t n = 0;
  for (const auto& [priority, fifo] : queue_) n += fifo.size();
  return n;
}

void SystemDatabase::record_provenance(JobProvenance provenance) {
  count_op();
  provenance_index_[provenance.job_id] = provenance_log_.size();
  provenance_log_.push_back(std::move(provenance));
}

const JobProvenance* SystemDatabase::provenance(
    const std::string& job_id) const {
  count_op();
  auto it = provenance_index_.find(job_id);
  return it == provenance_index_.end() ? nullptr
                                       : &provenance_log_[it->second];
}

void SystemDatabase::record_metric(const std::string& series, util::SimTime at,
                                   double value) {
  count_op();
  auto& points = metrics_[series];
  points.push_back(MetricPoint{at, value});
  while (points.size() > config_.history_limit) points.pop_front();
}

const std::deque<MetricPoint>& SystemDatabase::series(
    const std::string& name) const {
  static const std::deque<MetricPoint> kEmpty;
  count_op();
  auto it = metrics_.find(name);
  return it == metrics_.end() ? kEmpty : it->second;
}

std::vector<std::string> SystemDatabase::series_names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, points] : metrics_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void SystemDatabase::put_job_state(JobStateRecord record) {
  job_states_[record.job_id] = std::move(record);
}

bool SystemDatabase::erase_job_state(const std::string& job_id) {
  return job_states_.erase(job_id) > 0;
}

const JobStateRecord* SystemDatabase::job_state(
    const std::string& job_id) const {
  auto it = job_states_.find(job_id);
  return it == job_states_.end() ? nullptr : &it->second;
}

std::vector<JobStateRecord> SystemDatabase::job_states() const {
  std::vector<JobStateRecord> out;
  out.reserve(job_states_.size());
  for (const auto& [id, record] : job_states_) out.push_back(record);
  return out;
}

void SystemDatabase::put_journal(const std::string& key,
                                 std::vector<std::int64_t> values) {
  journal_[key] = std::move(values);
}

const std::vector<std::int64_t>* SystemDatabase::journal(
    const std::string& key) const {
  auto it = journal_.find(key);
  return it == journal_.end() ? nullptr : &it->second;
}

void SystemDatabase::put_forward_state(ForwardStateRecord record) {
  forward_states_[record.job_id] = std::move(record);
}

bool SystemDatabase::erase_forward_state(const std::string& job_id) {
  return forward_states_.erase(job_id) > 0;
}

std::vector<ForwardStateRecord> SystemDatabase::forward_states() const {
  std::vector<ForwardStateRecord> out;
  out.reserve(forward_states_.size());
  for (const auto& [id, record] : forward_states_) out.push_back(record);
  return out;
}

void SystemDatabase::put_handoff(HandoffRecord record) {
  handoffs_[record.job_id] = std::move(record);
}

std::vector<HandoffRecord> SystemDatabase::handoffs() const {
  std::vector<HandoffRecord> out;
  out.reserve(handoffs_.size());
  for (const auto& [id, record] : handoffs_) out.push_back(record);
  return out;
}

double SystemDatabase::estimated_latency(double ops_per_sec) const {
  const double mu = service_rate();
  if (ops_per_sec >= mu) return util::kNever;  // saturated
  return 1.0 / (mu - ops_per_sec);
}

}  // namespace gpunion::db
