// Per-shard commit executor for the write-behind database.
//
// Gives each writer shard real thread affinity: every task for shard S runs
// on thread S % threads, in submission order, so a shard's durable state
// (op counters, group-commit bookkeeping) is thread-confined — no per-shard
// locking, the actor discipline instead.  flush_ledger() uses it fork-join
// style: one group-commit task per touched shard, then barrier(), so the
// caller observes all commits complete (the barrier is the happens-before
// edge back to the simulation thread).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "sim/mailbox.h"

namespace gpunion::db {

class ShardExecutor {
 public:
  /// Spawns `threads` (>= 1) commit threads.
  explicit ShardExecutor(std::size_t threads);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  std::size_t thread_count() const { return lanes_.size(); }

  /// Enqueues `task` on shard's thread (shard % threads).  Tasks for one
  /// shard run in submission order; tasks for different shards on the same
  /// thread interleave in post order.
  void run(std::size_t shard, std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void barrier();

  /// Tasks executed over the executor's lifetime.
  std::uint64_t tasks_run() const;

 private:
  struct Lane {
    sim::Mailbox<std::function<void()>> mailbox;
    std::thread thread;
  };

  void thread_main(Lane& lane);

  // deque: Lane holds a mailbox with a mutex (immovable); the set is fixed
  // at construction and deque never relocates elements.
  std::deque<Lane> lanes_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace gpunion::db
