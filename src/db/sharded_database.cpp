#include "db/sharded_database.h"

#include <algorithm>

namespace gpunion::db {

ShardedDatabase::ShardedDatabase(DbConfig config)
    : config_(config),
      shards_(static_cast<std::size_t>(std::max(1, config.shard_count))),
      ledger_log_(std::max<std::size_t>(1, config.flush_threshold)),
      queue_parts_(shards_.size()) {
  config_.shard_count = static_cast<int>(shards_.size());
}

std::size_t ShardedDatabase::route(std::string_view key) const {
  // FNV-1a 64: deterministic across platforms and runs (std::hash is not
  // guaranteed to be), so shard ownership is reproducible.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

void ShardedDatabase::charge(std::size_t shard, bool decision_path) const {
  ++shards_[shard].ops;
  ++sync_ops_;
  if (decision_path) ++decision_path_sync_ops_;
}

std::size_t ShardedDatabase::rotate() const {
  const std::size_t shard = rotate_cursor_;
  rotate_cursor_ = (rotate_cursor_ + 1) % shards_.size();
  return shard;
}

void ShardedDatabase::absorb(LedgerOpKind kind, std::size_t shard,
                             std::string key, std::uint64_t allocation_id,
                             util::SimTime at) {
  if (!config_.write_behind) {
    // Monitoring writes are background traffic, never scheduler decisions
    // — they must not inflate the legacy side of the decision-path A/B.
    charge(shard, /*decision_path=*/kind != LedgerOpKind::kMetric);
    return;
  }
  if (ledger_log_.absorb(
          LedgerEntry{kind, shard, std::move(key), allocation_id, at})) {
    flush_ledger(FlushTrigger::kThreshold);
  }
}

std::size_t ShardedDatabase::flush_ledger(FlushTrigger trigger) {
  if (executor_ == nullptr) {
    return ledger_log_.flush(trigger,
                             [this](std::size_t shard, std::size_t entries) {
                               // One group commit per touched shard, however
                               // many entries it absorbs.
                               (void)entries;
                               ++shards_[shard].ops;
                             });
  }
  // Fork-join: each touched shard's group commit runs on its own commit
  // thread (shard state is thread-confined there), and the barrier makes
  // every commit visible to the caller before flush_ledger returns.
  const std::size_t committed = ledger_log_.flush(
      trigger, [this](std::size_t shard, std::size_t entries) {
        (void)entries;
        executor_->run(shard, [this, shard] { ++shards_[shard].ops; });
      });
  executor_->barrier();
  return committed;
}

// ---------------------------------------------------------------------------
// Node registry (sharded by machine id)
// ---------------------------------------------------------------------------

util::Status ShardedDatabase::upsert_node(NodeRecord record) {
  // The round trip happens before validation (legacy op-accounting parity).
  const std::size_t shard = shard_for_node(record.machine_id);
  charge(shard, /*decision_path=*/false);
  if (record.machine_id.empty()) {
    return util::invalid_argument_error("node record requires a machine id");
  }
  auto [it, inserted] =
      nodes_.insert_or_assign(record.machine_id, std::move(record));
  (void)it;
  if (inserted) ++shards_[shard].rows;
  return util::Status();
}

util::StatusOr<NodeRecord> ShardedDatabase::node(
    const std::string& machine_id) const {
  charge(shard_for_node(machine_id), /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  return it->second;
}

util::Status ShardedDatabase::set_node_status(const std::string& machine_id,
                                              NodeStatus s) {
  charge(shard_for_node(machine_id), /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.status = s;
  return util::Status();
}

util::Status ShardedDatabase::touch_heartbeat(const std::string& machine_id,
                                              util::SimTime at) {
  charge(shard_for_node(machine_id), /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.last_heartbeat = at;
  return util::Status();
}

std::size_t ShardedDatabase::touch_heartbeats(
    const std::vector<std::pair<std::string, util::SimTime>>& batch) {
  // One batched write per shard owning at least one row of the batch (the
  // PR 2 coalescing contract, now multi-writer).  An empty batch is still
  // one round trip (legacy op-accounting parity).
  if (batch.empty()) {
    charge(rotate(), /*decision_path=*/false);
    return 0;
  }
  std::vector<bool> touched(shards_.size(), false);
  std::size_t applied = 0;
  for (const auto& [machine_id, at] : batch) {
    touched[shard_for_node(machine_id)] = true;
    auto it = nodes_.find(machine_id);
    if (it == nodes_.end()) continue;
    it->second.last_heartbeat = std::max(it->second.last_heartbeat, at);
    ++applied;
  }
  for (std::size_t shard = 0; shard < touched.size(); ++shard) {
    if (touched[shard]) charge(shard, /*decision_path=*/false);
  }
  return applied;
}

std::vector<NodeRecord> ShardedDatabase::nodes() const {
  // Scatter-gather: every shard serves its partition of the scan.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<NodeRecord> out;
  out.reserve(nodes_.size());
  for (const auto& [id, record] : nodes_) out.push_back(record);
  return out;
}

std::vector<NodeRecord> ShardedDatabase::nodes_with_status(
    NodeStatus s) const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<NodeRecord> out;
  for (const auto& [id, record] : nodes_) {
    if (record.status == s) out.push_back(record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allocation ledger (sharded by machine id; write-behind)
// ---------------------------------------------------------------------------

std::uint64_t ShardedDatabase::open_allocation(const std::string& job_id,
                                               const std::string& machine_id,
                                               std::vector<int> gpu_indices,
                                               util::SimTime at,
                                               double gpu_fraction,
                                               bool interactive) {
  const std::size_t shard = shard_for_node(machine_id);
  AllocationRecord record;
  record.allocation_id = next_allocation_id_++;
  record.job_id = job_id;
  record.machine_id = machine_id;
  record.gpu_indices = std::move(gpu_indices);
  record.gpu_fraction = gpu_fraction;
  record.interactive = interactive;
  record.started_at = at;
  const std::uint64_t id = record.allocation_id;
  ledger_index_[id] = ledger_.size();
  ledger_.push_back(std::move(record));
  ++shards_[shard].rows;
  absorb(LedgerOpKind::kAllocationOpen, shard, machine_id, id, at);
  return id;
}

util::Status ShardedDatabase::close_allocation(std::uint64_t allocation_id,
                                               AllocationOutcome outcome,
                                               util::SimTime at) {
  auto it = ledger_index_.find(allocation_id);
  if (it == ledger_index_.end()) {
    return util::not_found_error("allocation " +
                                 std::to_string(allocation_id));
  }
  AllocationRecord& record = ledger_[it->second];
  if (record.outcome != AllocationOutcome::kRunning) {
    return util::failed_precondition_error(
        "allocation " + std::to_string(allocation_id) + " already closed");
  }
  record.outcome = outcome;
  record.ended_at = at;
  absorb(LedgerOpKind::kAllocationClose, shard_for_node(record.machine_id),
         record.machine_id, allocation_id, at);
  return util::Status();
}

std::vector<AllocationRecord> ShardedDatabase::allocations_for_job(
    const std::string& job_id) const {
  // A by-job query over a node-partitioned table: scatter to every shard.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<AllocationRecord> out;
  for (const auto& record : ledger_) {
    if (record.job_id == job_id) out.push_back(record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pending request queue (rows sharded by job id; pops rotate)
// ---------------------------------------------------------------------------

void ShardedDatabase::enqueue_request(PendingRequest request) {
  const std::size_t shard = shard_for_job(request.job_id);
  ++shards_[shard].rows;
  ++queued_rows_;
  absorb(LedgerOpKind::kEnqueue, shard, request.job_id, 0,
         request.submitted_at);
  const int priority = request.priority;
  queue_parts_[shard].by_priority[priority].push_back(
      QueueItem{std::move(request), ++queue_back_seq_});
}

void ShardedDatabase::enqueue_request_front(PendingRequest request) {
  const std::size_t shard = shard_for_job(request.job_id);
  ++shards_[shard].rows;
  ++queued_rows_;
  absorb(LedgerOpKind::kEnqueue, shard, request.job_id, 0,
         request.submitted_at);
  const int priority = request.priority;
  queue_parts_[shard].by_priority[priority].push_front(
      QueueItem{std::move(request), --queue_front_seq_});
}

std::optional<PendingRequest> ShardedDatabase::pop_request() {
  // The scheduler's pop is the one queue op that stays synchronous: it is
  // a read-modify-write whose result the decision needs NOW.  Any writer
  // lane can serve it (multi-writer), so the load rotates.  The serving
  // shard pops from its own partition when it holds the globally best
  // request and STEALS from the partition that does otherwise — same
  // (priority desc, insertion order) result as the legacy single queue,
  // with per-shard storage.
  const std::size_t server = rotate();
  charge(server, /*decision_path=*/true);
  std::size_t best_shard = queue_parts_.size();
  int best_priority = 0;
  std::int64_t best_seq = 0;
  for (std::size_t shard = 0; shard < queue_parts_.size(); ++shard) {
    auto& parts = queue_parts_[shard].by_priority;
    auto it = parts.begin();
    while (it != parts.end() && it->second.empty()) it = parts.erase(it);
    if (it == parts.end()) continue;
    const int priority = it->first;
    const std::int64_t seq = it->second.front().seq;
    if (best_shard == queue_parts_.size() || priority > best_priority ||
        (priority == best_priority && seq < best_seq)) {
      best_shard = shard;
      best_priority = priority;
      best_seq = seq;
    }
  }
  if (best_shard == queue_parts_.size()) return std::nullopt;
  if (best_shard == server) {
    ++local_pops_;
  } else {
    ++stolen_pops_;
  }
  auto& parts = queue_parts_[best_shard].by_priority;
  auto it = parts.find(best_priority);
  PendingRequest request = std::move(it->second.front().request);
  it->second.pop_front();
  if (it->second.empty()) parts.erase(it);
  if (shards_[best_shard].rows > 0) --shards_[best_shard].rows;
  if (queued_rows_ > 0) --queued_rows_;
  return request;
}

bool ShardedDatabase::remove_request(const std::string& job_id) {
  // Like pop_request, a synchronous read-modify-write in BOTH modes: the
  // found/not-found answer is consumed immediately, so the round trip to
  // the owning shard cannot be deferred (and a miss still paid for it).
  // Partitioning makes this O(owning partition): the job can only live in
  // its owner shard's slice of the queue.
  const std::size_t shard = shard_for_job(job_id);
  charge(shard, /*decision_path=*/true);
  auto& parts = queue_parts_[shard].by_priority;
  for (auto it = parts.begin(); it != parts.end(); ++it) {
    auto& fifo = it->second;
    for (auto rit = fifo.begin(); rit != fifo.end(); ++rit) {
      if (rit->request.job_id == job_id) {
        fifo.erase(rit);
        if (fifo.empty()) parts.erase(it);
        if (shards_[shard].rows > 0) --shards_[shard].rows;
        if (queued_rows_ > 0) --queued_rows_;
        return true;
      }
    }
  }
  return false;
}

std::size_t ShardedDatabase::queue_depth() const {
  // Depth probe (heartbeat path): a metadata read any lane can answer.
  // The row count is maintained on mutation, so the probe is O(1) instead
  // of a scan over every partition.
  charge(rotate(), /*decision_path=*/false);
  return queued_rows_;
}

// ---------------------------------------------------------------------------
// Provenance (sharded by job id; write-behind)
// ---------------------------------------------------------------------------

void ShardedDatabase::record_provenance(JobProvenance provenance) {
  const std::size_t shard = shard_for_job(provenance.job_id);
  ++shards_[shard].rows;
  const std::string job_id = provenance.job_id;
  const util::SimTime at = provenance.recorded_at;
  provenance_index_[provenance.job_id] = provenance_log_.size();
  provenance_log_.push_back(std::move(provenance));
  absorb(LedgerOpKind::kProvenance, shard, job_id, 0, at);
}

const JobProvenance* ShardedDatabase::provenance(
    const std::string& job_id) const {
  charge(shard_for_job(job_id), /*decision_path=*/false);
  auto it = provenance_index_.find(job_id);
  return it == provenance_index_.end() ? nullptr
                                       : &provenance_log_[it->second];
}

// ---------------------------------------------------------------------------
// Monitoring history (sharded by series name; write-behind)
// ---------------------------------------------------------------------------

void ShardedDatabase::record_metric(const std::string& series,
                                    util::SimTime at, double value) {
  auto& points = metrics_[series];
  points.push_back(MetricPoint{at, value});
  while (points.size() > config_.history_limit) points.pop_front();
  absorb(LedgerOpKind::kMetric, route(series), series, 0, at);
}

const std::deque<MetricPoint>& ShardedDatabase::series(
    const std::string& name) const {
  static const std::deque<MetricPoint> kEmpty;
  charge(route(name), /*decision_path=*/false);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? kEmpty : it->second;
}

std::vector<std::string> ShardedDatabase::series_names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, points] : metrics_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Contention model
// ---------------------------------------------------------------------------

std::uint64_t ShardedDatabase::op_count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.ops;
  return total;
}

std::vector<std::uint64_t> ShardedDatabase::shard_op_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) out.push_back(shard.ops);
  return out;
}

double ShardedDatabase::estimated_shard_latency(
    double shard_ops_per_sec) const {
  const double mu = service_rate();
  if (shard_ops_per_sec >= mu) return util::kNever;  // this writer saturated
  return 1.0 / (mu - shard_ops_per_sec);
}

double ShardedDatabase::estimated_latency(double ops_per_sec) const {
  return estimated_shard_latency(ops_per_sec /
                                 static_cast<double>(shards_.size()));
}

}  // namespace gpunion::db
