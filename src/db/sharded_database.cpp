#include "db/sharded_database.h"

#include <algorithm>

#include "obs/trace.h"

namespace gpunion::db {

namespace {

WalRecord make_wal(WalOp op, std::size_t shard, std::string key) {
  WalRecord record;
  record.op = op;
  record.shard = shard;
  record.key = std::move(key);
  return record;
}

}  // namespace

ShardedDatabase::ShardedDatabase(DbConfig config)
    : config_(config),
      shards_(static_cast<std::size_t>(std::max(1, config.shard_count))),
      ledger_log_(std::max<std::size_t>(1, config.flush_threshold)),
      wal_(shards_.size()),
      armed_commit_failures_(shards_.size(), false),
      queue_parts_(shards_.size()) {
  config_.shard_count = static_cast<int>(shards_.size());
  if (config_.flush_interval_min > config_.flush_interval_max) {
    config_.flush_interval_min = config_.flush_interval_max;
  }
}

std::size_t ShardedDatabase::route(std::string_view key) const {
  // FNV-1a 64: deterministic across platforms and runs (std::hash is not
  // guaranteed to be), so shard ownership is reproducible.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

void ShardedDatabase::charge(std::size_t shard, bool decision_path) const {
  ++shards_[shard].ops;
  ++sync_ops_;
  if (decision_path) ++decision_path_sync_ops_;
}

std::size_t ShardedDatabase::rotate() const {
  const std::size_t shard = rotate_cursor_;
  rotate_cursor_ = (rotate_cursor_ + 1) % shards_.size();
  return shard;
}

void ShardedDatabase::absorb(LedgerOpKind kind, std::size_t shard,
                             std::string key, std::uint64_t allocation_id,
                             util::SimTime at) {
  if (!config_.write_behind) {
    // Monitoring writes are background traffic, never scheduler decisions
    // — they must not inflate the legacy side of the decision-path A/B.
    charge(shard, /*decision_path=*/kind != LedgerOpKind::kMetric);
    return;
  }
  if (ledger_log_.absorb(
          LedgerEntry{kind, shard, std::move(key), allocation_id, at})) {
    flush_ledger(FlushTrigger::kThreshold);
  }
}

std::size_t ShardedDatabase::flush_ledger(FlushTrigger trigger,
                                          util::SimTime at) {
  // Ack-to-durable spans: each pending entry was acked to its caller at
  // recorded_at and becomes durable now, so the group commit closes one
  // db_group_commit span per entry on the owning job's trace.  Background
  // metric points carry series names, not job ids — skip them.
  if (tracer_ != nullptr && tracer_->enabled() && !ledger_log_.empty()) {
    util::SimTime commit_at = at;
    if (commit_at < 0) {
      for (const LedgerEntry& entry : ledger_log_.pending_entries()) {
        commit_at = std::max(commit_at, entry.recorded_at);
      }
    }
    for (const LedgerEntry& entry : ledger_log_.pending_entries()) {
      if (entry.kind == LedgerOpKind::kMetric) continue;
      tracer_->close_span(tracer_->open_span(),
                          obs::Tracer::trace_for_job(entry.key),
                          /*parent_span=*/0, obs::stage::kDbGroupCommit,
                          "db", entry.recorded_at, commit_at,
                          std::string(ledger_op_name(entry.kind)));
    }
  }
  std::size_t committed = 0;
  if (executor_ == nullptr) {
    committed = ledger_log_.flush(
        trigger, [this](std::size_t shard, std::size_t entries) {
          // One group commit per touched shard, however many entries it
          // absorbs.
          (void)entries;
          ++shards_[shard].ops;
        });
  } else {
    // Fork-join: each touched shard's group commit runs on its own commit
    // thread (shard state is thread-confined there), and the barrier makes
    // every commit visible to the caller before flush_ledger returns.
    committed = ledger_log_.flush(
        trigger, [this](std::size_t shard, std::size_t entries) {
          (void)entries;
          executor_->run(shard, [this, shard] { ++shards_[shard].ops; });
        });
    executor_->barrier();
  }
  // Group commit advances each shard's durable image past its pending WAL
  // records (caller thread, shard order: image containers are keyed, so
  // per-shard application order cannot change the result).  Armed faults
  // model a failed shard commit (records stay in the WAL for the next
  // flush) or a crash mid-group-commit (stop early, no truncation — the
  // torn state recovery has to heal).
  const std::uint64_t upto = wal_.last_seq();
  flush_interrupted_ = false;
  std::size_t advanced = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    if (armed_flush_crash_ >= 0 &&
        advanced >= static_cast<std::size_t>(armed_flush_crash_)) {
      flush_interrupted_ = true;
      break;
    }
    if (armed_commit_failures_[shard]) {
      armed_commit_failures_[shard] = false;
      ++commit_failures_;
      continue;
    }
    advance_image(shard, upto);
    ++advanced;
  }
  armed_flush_crash_ = -1;
  if (!flush_interrupted_) wal_.truncate_applied();
  return committed;
}

util::Duration ShardedDatabase::recommended_flush_interval() const {
  if (!config_.adaptive_flush) return config_.flush_interval;
  const std::size_t depth = std::max(ledger_log_.pending(), wal_.depth());
  // Contention knee: half the threshold.  Past it the next absorbs are
  // about to force a threshold flush anyway — run at the floor so group
  // commits stay small; idle logs stretch to the ceiling.
  const double knee =
      0.5 * static_cast<double>(std::max<std::size_t>(1, config_.flush_threshold));
  if (depth == 0) return config_.flush_interval_max;
  const double frac =
      std::min(1.0, static_cast<double>(depth) / knee);
  return config_.flush_interval_max -
         frac * (config_.flush_interval_max - config_.flush_interval_min);
}

void ShardedDatabase::wal_append(WalRecord record, bool deferred) {
  const std::size_t shard = record.shard;
  const std::uint64_t seq = wal_.append(std::move(record));
  if (deferred && config_.write_behind) return;  // durable at next flush
  advance_image(shard, seq);
  wal_.truncate_applied();
}

void ShardedDatabase::advance_image(std::size_t shard,
                                    std::uint64_t upto_seq) {
  for (const WalRecord& record : wal_.records()) {
    if (record.seq > upto_seq) break;
    if (record.shard != shard || record.seq <= wal_.applied_seq(shard)) {
      continue;
    }
    apply_to_image(image_, record, config_.history_limit);
  }
  wal_.mark_applied(shard, upto_seq);
}

void ShardedDatabase::arm_commit_failure(std::size_t shard) {
  if (shard < armed_commit_failures_.size()) {
    armed_commit_failures_[shard] = true;
  }
}

void ShardedDatabase::arm_flush_crash(std::size_t shards_before_crash) {
  armed_flush_crash_ = static_cast<int>(shards_before_crash);
}

RecoveryReport ShardedDatabase::crash_and_recover() {
  RecoveryReport report;
  report.wal_depth_at_crash = wal_.depth();
  // A restarted process sees only durable state: the shard images plus the
  // WAL tail.  Replay ahead-of-shard records in global seq order; replay
  // is idempotent because records a shard already committed sit at/below
  // its applied watermark and are skipped.
  for (const WalRecord& record : wal_.records()) {
    if (record.seq <= wal_.applied_seq(record.shard)) {
      ++report.skipped_applied;
      continue;
    }
    apply_to_image(image_, record, config_.history_limit);
    ++report.replayed;
  }
  // The replayed image is the recovery checkpoint: every shard is now
  // current, so the whole log truncates.
  const std::uint64_t last = wal_.last_seq();
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    wal_.mark_applied(shard, last);
  }
  wal_.truncate_applied();
  wal_.note_recovery(report.replayed);
  // Disarm any pending faults: they belonged to the crashed incarnation.
  armed_commit_failures_.assign(shards_.size(), false);
  armed_flush_crash_ = -1;
  flush_interrupted_ = false;
  rebuild_live_tables();
  report.nodes = nodes_.size();
  report.allocations = ledger_.size();
  report.queue_rows = queued_rows_;
  report.job_states = image_.job_states.size();
  report.forward_states = image_.forwards.size();
  report.handoffs = image_.handoffs.size();
  last_recovery_report_ = report;
  ++recoveries_;
  return report;
}

void ShardedDatabase::rebuild_live_tables() {
  // Live tables are rebuilt from the image alone — nothing the WAL did not
  // make durable survives.  Op counters, local/stolen pop stats and the
  // WriteBehindLedger's pending COST entries are accounting, not state:
  // they persist so charging stays continuous across the crash (the
  // deferred group commits are still paid at the next flush).
  nodes_ = image_.nodes;
  ledger_.clear();
  ledger_index_.clear();
  for (const auto& [id, record] : image_.allocations) {
    ledger_index_[id] = ledger_.size();
    ledger_.push_back(record);  // id order == open order
  }
  next_allocation_id_ = image_.next_allocation_id;
  queue_parts_.assign(shards_.size(), QueuePartition{});
  queued_rows_ = 0;
  for (const auto& [priority, bucket] : image_.queue) {
    for (const auto& [seq, request] : bucket) {
      // Seq order within a priority reproduces each partition's deque
      // order (front pushes carry negative stamps and sort first).
      queue_parts_[shard_for_job(request.job_id)]
          .by_priority[priority]
          .push_back(QueueItem{request, seq});
      ++queued_rows_;
    }
  }
  queue_back_seq_ = image_.queue_back_seq;
  queue_front_seq_ = image_.queue_front_seq;
  provenance_log_.clear();
  provenance_index_.clear();
  for (const auto& [seq, row] : image_.provenance) {
    provenance_index_[row.job_id] = provenance_log_.size();
    provenance_log_.push_back(row);  // WAL-seq order == append order
  }
  metrics_.clear();
  for (const auto& [name, points] : image_.metrics) metrics_[name] = points;
  // Row-ownership audit counters, recomputed from the rebuilt tables (the
  // same net counts the per-mutation ++/-- maintained).
  for (Shard& shard : shards_) shard.rows = 0;
  for (const auto& [id, record] : nodes_) {
    ++shards_[shard_for_node(id)].rows;
  }
  for (const AllocationRecord& record : ledger_) {
    ++shards_[shard_for_node(record.machine_id)].rows;
  }
  for (std::size_t shard = 0; shard < queue_parts_.size(); ++shard) {
    for (const auto& [priority, fifo] : queue_parts_[shard].by_priority) {
      shards_[shard].rows += fifo.size();
    }
  }
  for (const JobProvenance& row : provenance_log_) {
    ++shards_[shard_for_job(row.job_id)].rows;
  }
}

// ---------------------------------------------------------------------------
// Node registry (sharded by machine id)
// ---------------------------------------------------------------------------

util::Status ShardedDatabase::upsert_node(NodeRecord record) {
  // The round trip happens before validation (legacy op-accounting parity).
  const std::size_t shard = shard_for_node(record.machine_id);
  charge(shard, /*decision_path=*/false);
  if (record.machine_id.empty()) {
    return util::invalid_argument_error("node record requires a machine id");
  }
  WalRecord wal = make_wal(WalOp::kUpsertNode, shard, record.machine_id);
  wal.node = record;
  auto [it, inserted] =
      nodes_.insert_or_assign(record.machine_id, std::move(record));
  (void)it;
  if (inserted) ++shards_[shard].rows;
  wal_append(std::move(wal), /*deferred=*/false);
  return util::Status();
}

util::StatusOr<NodeRecord> ShardedDatabase::node(
    const std::string& machine_id) const {
  charge(shard_for_node(machine_id), /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  return it->second;
}

util::Status ShardedDatabase::set_node_status(const std::string& machine_id,
                                              NodeStatus s) {
  const std::size_t shard = shard_for_node(machine_id);
  charge(shard, /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.status = s;
  WalRecord wal = make_wal(WalOp::kSetNodeStatus, shard, machine_id);
  wal.status = s;
  wal_append(std::move(wal), /*deferred=*/false);
  return util::Status();
}

util::Status ShardedDatabase::touch_heartbeat(const std::string& machine_id,
                                              util::SimTime at) {
  const std::size_t shard = shard_for_node(machine_id);
  charge(shard, /*decision_path=*/false);
  auto it = nodes_.find(machine_id);
  if (it == nodes_.end()) {
    return util::not_found_error("node " + machine_id + " not registered");
  }
  it->second.last_heartbeat = at;
  WalRecord wal = make_wal(WalOp::kTouchHeartbeat, shard, machine_id);
  wal.at = at;
  wal_append(std::move(wal), /*deferred=*/false);
  return util::Status();
}

std::size_t ShardedDatabase::touch_heartbeats(
    const std::vector<std::pair<std::string, util::SimTime>>& batch) {
  // One batched write per shard owning at least one row of the batch (the
  // PR 2 coalescing contract, now multi-writer).  An empty batch is still
  // one round trip (legacy op-accounting parity).
  if (batch.empty()) {
    charge(rotate(), /*decision_path=*/false);
    return 0;
  }
  // Rows grouped per shard: one batched write AND one WAL record per
  // touched shard.
  std::vector<std::vector<std::pair<std::string, util::SimTime>>> by_shard(
      shards_.size());
  std::size_t applied = 0;
  for (const auto& [machine_id, at] : batch) {
    by_shard[shard_for_node(machine_id)].emplace_back(machine_id, at);
    auto it = nodes_.find(machine_id);
    if (it == nodes_.end()) continue;
    it->second.last_heartbeat = std::max(it->second.last_heartbeat, at);
    ++applied;
  }
  for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
    if (by_shard[shard].empty()) continue;
    charge(shard, /*decision_path=*/false);
    WalRecord wal = make_wal(WalOp::kTouchHeartbeatBatch, shard, {});
    wal.batch_rows = std::move(by_shard[shard]);
    wal_append(std::move(wal), /*deferred=*/false);
  }
  return applied;
}

std::vector<NodeRecord> ShardedDatabase::nodes() const {
  // Scatter-gather: every shard serves its partition of the scan.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<NodeRecord> out;
  out.reserve(nodes_.size());
  for (const auto& [id, record] : nodes_) out.push_back(record);
  return out;
}

std::vector<NodeRecord> ShardedDatabase::nodes_with_status(
    NodeStatus s) const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<NodeRecord> out;
  for (const auto& [id, record] : nodes_) {
    if (record.status == s) out.push_back(record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allocation ledger (sharded by machine id; write-behind)
// ---------------------------------------------------------------------------

std::uint64_t ShardedDatabase::open_allocation(const std::string& job_id,
                                               const std::string& machine_id,
                                               std::vector<int> gpu_indices,
                                               util::SimTime at,
                                               double gpu_fraction,
                                               bool interactive) {
  const std::size_t shard = shard_for_node(machine_id);
  AllocationRecord record;
  record.allocation_id = next_allocation_id_++;
  record.job_id = job_id;
  record.machine_id = machine_id;
  record.gpu_indices = std::move(gpu_indices);
  record.gpu_fraction = gpu_fraction;
  record.interactive = interactive;
  record.started_at = at;
  const std::uint64_t id = record.allocation_id;
  WalRecord wal = make_wal(WalOp::kOpenAllocation, shard, machine_id);
  wal.allocation = record;
  ledger_index_[id] = ledger_.size();
  ledger_.push_back(std::move(record));
  ++shards_[shard].rows;
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kAllocationOpen, shard, machine_id, id, at);
  return id;
}

util::Status ShardedDatabase::close_allocation(std::uint64_t allocation_id,
                                               AllocationOutcome outcome,
                                               util::SimTime at) {
  auto it = ledger_index_.find(allocation_id);
  if (it == ledger_index_.end()) {
    return util::not_found_error("allocation " +
                                 std::to_string(allocation_id));
  }
  AllocationRecord& record = ledger_[it->second];
  if (record.outcome != AllocationOutcome::kRunning) {
    return util::failed_precondition_error(
        "allocation " + std::to_string(allocation_id) + " already closed");
  }
  record.outcome = outcome;
  record.ended_at = at;
  const std::size_t shard = shard_for_node(record.machine_id);
  WalRecord wal = make_wal(WalOp::kCloseAllocation, shard, record.machine_id);
  wal.allocation_id = allocation_id;
  wal.outcome = outcome;
  wal.at = at;
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kAllocationClose, shard, record.machine_id,
         allocation_id, at);
  return util::Status();
}

std::vector<AllocationRecord> ShardedDatabase::allocations_for_job(
    const std::string& job_id) const {
  // A by-job query over a node-partitioned table: scatter to every shard.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    charge(shard, /*decision_path=*/false);
  }
  std::vector<AllocationRecord> out;
  for (const auto& record : ledger_) {
    if (record.job_id == job_id) out.push_back(record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pending request queue (rows sharded by job id; pops rotate)
// ---------------------------------------------------------------------------

void ShardedDatabase::enqueue_request(PendingRequest request) {
  const std::size_t shard = shard_for_job(request.job_id);
  ++shards_[shard].rows;
  ++queued_rows_;
  const std::int64_t seq = ++queue_back_seq_;
  WalRecord wal = make_wal(WalOp::kEnqueue, shard, request.job_id);
  wal.request = request;
  wal.queue_seq = seq;
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kEnqueue, shard, request.job_id, 0,
         request.submitted_at);
  const int priority = request.priority;
  queue_parts_[shard].by_priority[priority].push_back(
      QueueItem{std::move(request), seq});
}

void ShardedDatabase::enqueue_request_front(PendingRequest request) {
  const std::size_t shard = shard_for_job(request.job_id);
  ++shards_[shard].rows;
  ++queued_rows_;
  const std::int64_t seq = --queue_front_seq_;
  WalRecord wal = make_wal(WalOp::kEnqueue, shard, request.job_id);
  wal.request = request;
  wal.queue_seq = seq;
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kEnqueue, shard, request.job_id, 0,
         request.submitted_at);
  const int priority = request.priority;
  queue_parts_[shard].by_priority[priority].push_front(
      QueueItem{std::move(request), seq});
}

std::optional<PendingRequest> ShardedDatabase::pop_request() {
  // The scheduler's pop is the one queue op that stays synchronous: it is
  // a read-modify-write whose result the decision needs NOW.  Any writer
  // lane can serve it (multi-writer), so the load rotates.  The serving
  // shard pops from its own partition when it holds the globally best
  // request and STEALS from the partition that does otherwise — same
  // (priority desc, insertion order) result as the legacy single queue,
  // with per-shard storage.
  const std::size_t server = rotate();
  charge(server, /*decision_path=*/true);
  std::size_t best_shard = queue_parts_.size();
  int best_priority = 0;
  std::int64_t best_seq = 0;
  for (std::size_t shard = 0; shard < queue_parts_.size(); ++shard) {
    auto& parts = queue_parts_[shard].by_priority;
    auto it = parts.begin();
    while (it != parts.end() && it->second.empty()) it = parts.erase(it);
    if (it == parts.end()) continue;
    const int priority = it->first;
    const std::int64_t seq = it->second.front().seq;
    if (best_shard == queue_parts_.size() || priority > best_priority ||
        (priority == best_priority && seq < best_seq)) {
      best_shard = shard;
      best_priority = priority;
      best_seq = seq;
    }
  }
  if (best_shard == queue_parts_.size()) return std::nullopt;
  if (best_shard == server) {
    ++local_pops_;
  } else {
    ++stolen_pops_;
  }
  auto& parts = queue_parts_[best_shard].by_priority;
  auto it = parts.find(best_priority);
  PendingRequest request = std::move(it->second.front().request);
  it->second.pop_front();
  if (it->second.empty()) parts.erase(it);
  if (shards_[best_shard].rows > 0) --shards_[best_shard].rows;
  if (queued_rows_ > 0) --queued_rows_;
  WalRecord wal = make_wal(WalOp::kPop, best_shard, request.job_id);
  wal.priority = best_priority;
  wal_append(std::move(wal), /*deferred=*/false);
  return request;
}

bool ShardedDatabase::remove_request(const std::string& job_id) {
  // Like pop_request, a synchronous read-modify-write in BOTH modes: the
  // found/not-found answer is consumed immediately, so the round trip to
  // the owning shard cannot be deferred (and a miss still paid for it).
  // Partitioning makes this O(owning partition): the job can only live in
  // its owner shard's slice of the queue.
  const std::size_t shard = shard_for_job(job_id);
  charge(shard, /*decision_path=*/true);
  auto& parts = queue_parts_[shard].by_priority;
  for (auto it = parts.begin(); it != parts.end(); ++it) {
    auto& fifo = it->second;
    for (auto rit = fifo.begin(); rit != fifo.end(); ++rit) {
      if (rit->request.job_id == job_id) {
        fifo.erase(rit);
        if (fifo.empty()) parts.erase(it);
        if (shards_[shard].rows > 0) --shards_[shard].rows;
        if (queued_rows_ > 0) --queued_rows_;
        wal_append(make_wal(WalOp::kRemoveRequest, shard, job_id),
                   /*deferred=*/false);
        return true;
      }
    }
  }
  return false;
}

std::size_t ShardedDatabase::queue_depth() const {
  // Depth probe (heartbeat path): a metadata read any lane can answer.
  // The row count is maintained on mutation, so the probe is O(1) instead
  // of a scan over every partition.
  charge(rotate(), /*decision_path=*/false);
  return queued_rows_;
}

// ---------------------------------------------------------------------------
// Provenance (sharded by job id; write-behind)
// ---------------------------------------------------------------------------

void ShardedDatabase::record_provenance(JobProvenance provenance) {
  const std::size_t shard = shard_for_job(provenance.job_id);
  ++shards_[shard].rows;
  const std::string job_id = provenance.job_id;
  const util::SimTime at = provenance.recorded_at;
  WalRecord wal = make_wal(WalOp::kProvenance, shard, job_id);
  wal.provenance = provenance;
  provenance_index_[provenance.job_id] = provenance_log_.size();
  provenance_log_.push_back(std::move(provenance));
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kProvenance, shard, job_id, 0, at);
}

const JobProvenance* ShardedDatabase::provenance(
    const std::string& job_id) const {
  charge(shard_for_job(job_id), /*decision_path=*/false);
  auto it = provenance_index_.find(job_id);
  return it == provenance_index_.end() ? nullptr
                                       : &provenance_log_[it->second];
}

// ---------------------------------------------------------------------------
// Monitoring history (sharded by series name; write-behind)
// ---------------------------------------------------------------------------

void ShardedDatabase::record_metric(const std::string& series,
                                    util::SimTime at, double value) {
  auto& points = metrics_[series];
  points.push_back(MetricPoint{at, value});
  while (points.size() > config_.history_limit) points.pop_front();
  const std::size_t shard = route(series);
  WalRecord wal = make_wal(WalOp::kMetric, shard, series);
  wal.at = at;
  wal.value = value;
  wal_append(std::move(wal), /*deferred=*/true);
  absorb(LedgerOpKind::kMetric, shard, series, 0, at);
}

const std::deque<MetricPoint>& ShardedDatabase::series(
    const std::string& name) const {
  static const std::deque<MetricPoint> kEmpty;
  charge(route(name), /*decision_path=*/false);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? kEmpty : it->second;
}

std::vector<std::string> ShardedDatabase::series_names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, points] : metrics_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Durable control-plane state (uncharged; WAL'd and applied synchronously,
// so reads come straight from the durable image)
// ---------------------------------------------------------------------------

void ShardedDatabase::put_job_state(JobStateRecord record) {
  WalRecord wal =
      make_wal(WalOp::kPutJobState, shard_for_job(record.job_id),
               record.job_id);
  wal.job_state = std::move(record);
  wal_append(std::move(wal), /*deferred=*/false);
}

bool ShardedDatabase::erase_job_state(const std::string& job_id) {
  if (image_.job_states.find(job_id) == image_.job_states.end()) return false;
  wal_append(make_wal(WalOp::kEraseJobState, shard_for_job(job_id), job_id),
             /*deferred=*/false);
  return true;
}

const JobStateRecord* ShardedDatabase::job_state(
    const std::string& job_id) const {
  auto it = image_.job_states.find(job_id);
  return it == image_.job_states.end() ? nullptr : &it->second;
}

std::vector<JobStateRecord> ShardedDatabase::job_states() const {
  std::vector<JobStateRecord> out;
  out.reserve(image_.job_states.size());
  for (const auto& [id, record] : image_.job_states) out.push_back(record);
  return out;
}

void ShardedDatabase::put_journal(const std::string& key,
                                  std::vector<std::int64_t> values) {
  WalRecord wal = make_wal(WalOp::kJournalPut, route(key), key);
  wal.journal = std::move(values);
  wal_append(std::move(wal), /*deferred=*/false);
}

const std::vector<std::int64_t>* ShardedDatabase::journal(
    const std::string& key) const {
  auto it = image_.journal.find(key);
  return it == image_.journal.end() ? nullptr : &it->second;
}

void ShardedDatabase::put_forward_state(ForwardStateRecord record) {
  WalRecord wal = make_wal(WalOp::kPutForward, shard_for_job(record.job_id),
                           record.job_id);
  wal.forward = std::move(record);
  wal_append(std::move(wal), /*deferred=*/false);
}

bool ShardedDatabase::erase_forward_state(const std::string& job_id) {
  if (image_.forwards.find(job_id) == image_.forwards.end()) return false;
  wal_append(make_wal(WalOp::kEraseForward, shard_for_job(job_id), job_id),
             /*deferred=*/false);
  return true;
}

std::vector<ForwardStateRecord> ShardedDatabase::forward_states() const {
  std::vector<ForwardStateRecord> out;
  out.reserve(image_.forwards.size());
  for (const auto& [id, record] : image_.forwards) out.push_back(record);
  return out;
}

void ShardedDatabase::put_handoff(HandoffRecord record) {
  WalRecord wal = make_wal(WalOp::kPutHandoff, shard_for_job(record.job_id),
                           record.job_id);
  wal.handoff = std::move(record);
  wal_append(std::move(wal), /*deferred=*/false);
}

std::vector<HandoffRecord> ShardedDatabase::handoffs() const {
  std::vector<HandoffRecord> out;
  out.reserve(image_.handoffs.size());
  for (const auto& [id, record] : image_.handoffs) out.push_back(record);
  return out;
}

// ---------------------------------------------------------------------------
// Contention model
// ---------------------------------------------------------------------------

std::uint64_t ShardedDatabase::op_count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.ops;
  return total;
}

std::vector<std::uint64_t> ShardedDatabase::shard_op_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) out.push_back(shard.ops);
  return out;
}

double ShardedDatabase::estimated_shard_latency(
    double shard_ops_per_sec) const {
  const double mu = service_rate();
  if (shard_ops_per_sec >= mu) return util::kNever;  // this writer saturated
  return 1.0 / (mu - shard_ops_per_sec);
}

double ShardedDatabase::estimated_latency(double ops_per_sec) const {
  return estimated_shard_latency(ops_per_sec /
                                 static_cast<double>(shards_.size()));
}

}  // namespace gpunion::db
