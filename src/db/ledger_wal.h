// Write-ahead log + durable table image for the sharded database.
//
// PR 4's WriteBehindLedger made acknowledged decisions cheap by deferring
// their durable shard writes to group commits — and thereby made the
// coordinator the one component that could not die: a crash between ack
// and flush lost every absorbed mutation.  This WAL closes that hole with
// the classic ordering
//
//     append(WAL record)  ->  ack caller  ->  ...  ->  group commit
//
// Every mutation appends a full-payload WalRecord (the in-sim durable log
// object) BEFORE the caller sees the ack.  The durable state of each shard
// is modeled by a TableImage that advances only when that shard commits:
// synchronous ops advance their shard at call time (the round trip IS the
// write), write-behind ops advance at flush, and records a shard has
// applied are truncated from the log.  Recovery is then mechanical: start
// from the image, replay WAL-ahead-of-shard records in global sequence
// order — skipping anything the shard already applied, so replay is
// idempotent — and the result equals the pre-crash live tables exactly,
// because every live mutation was WAL'd first.
//
// The WAL is bookkeeping, not cost: op charging (shard counters, M/M/1
// latency model, decision-path accounting) is completely unchanged, so the
// PR 4 A/B benches and op-parity tests hold by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "util/time.h"

namespace gpunion::db {

/// Every mutation the database accepts, WAL-record form.
enum class WalOp {
  kUpsertNode,
  kSetNodeStatus,
  kTouchHeartbeat,       // one node, assignment semantics
  kTouchHeartbeatBatch,  // one record per touched shard, max-merge semantics
  kOpenAllocation,
  kCloseAllocation,
  kEnqueue,  // queue_seq > 0: tail push; < 0: front push
  kPop,
  kRemoveRequest,
  kProvenance,
  kMetric,
  kPutJobState,
  kEraseJobState,
  kJournalPut,
  kPutForward,
  kEraseForward,
  kPutHandoff,
};

std::string_view wal_op_name(WalOp op);

/// One logged mutation, payload included — the log alone must be able to
/// reconstruct the mutation on replay.  Flat optional fields per op (the
/// codebase's record idiom); only the fields an op uses are meaningful.
struct WalRecord {
  std::uint64_t seq = 0;  // global, stamped by LedgerWal::append
  std::size_t shard = 0;  // owner of the durable row(s) this mutates
  WalOp op = WalOp::kUpsertNode;
  std::string key;        // machine id / job id / series name / blob key
  util::SimTime at = 0;

  NodeRecord node;                          // kUpsertNode
  NodeStatus status = NodeStatus::kActive;  // kSetNodeStatus
  std::vector<std::pair<std::string, util::SimTime>>
      batch_rows;                           // kTouchHeartbeatBatch
  AllocationRecord allocation;              // kOpenAllocation
  std::uint64_t allocation_id = 0;          // kCloseAllocation
  AllocationOutcome outcome = AllocationOutcome::kRunning;
  PendingRequest request;                   // kEnqueue
  std::int64_t queue_seq = 0;               // kEnqueue (insertion stamp)
  int priority = 0;                         // kPop
  double value = 0;                         // kMetric
  JobProvenance provenance;                 // kProvenance
  JobStateRecord job_state;                 // kPutJobState
  std::vector<std::int64_t> journal;        // kJournalPut
  ForwardStateRecord forward;               // kPutForward
  HandoffRecord handoff;                    // kPutHandoff
};

/// What a restarted process would read back from the shards: one logical
/// durable image, advanced per shard as commits land.  Containers are
/// keyed maps, so applying shard A's records before shard B's (commit
/// order) and applying strictly by global seq (recovery order) converge to
/// the same image; insertion-ordered live views (allocation ledger,
/// provenance log, queue FIFOs) are re-materialized from the keys.
struct TableImage {
  std::map<std::string, NodeRecord> nodes;
  std::map<std::uint64_t, AllocationRecord> allocations;  // key: allocation id
  /// priority -> (insertion stamp -> request); stamp order within a
  /// priority reproduces the live deque order exactly.
  std::map<int, std::map<std::int64_t, PendingRequest>, std::greater<>> queue;
  std::int64_t queue_back_seq = 0;   // max tail stamp ever applied
  std::int64_t queue_front_seq = 0;  // min front stamp ever applied
  std::map<std::uint64_t, JobProvenance> provenance;  // key: WAL seq
  std::map<std::string, std::deque<MetricPoint>> metrics;
  std::map<std::string, JobStateRecord> job_states;
  std::map<std::string, std::vector<std::int64_t>> journal;
  std::map<std::string, ForwardStateRecord> forwards;
  std::map<std::string, HandoffRecord> handoffs;
  std::uint64_t next_allocation_id = 1;

  std::size_t queue_rows() const;
};

/// Applies one WAL record to an image.  Must be the ONLY way image state
/// advances (commit time and recovery replay share it, so they cannot
/// disagree).  Replay of an already-applied record is the caller's job to
/// prevent (seq <= applied_seq(shard)); applications themselves assume
/// records arrive in seq order per shard.
void apply_to_image(TableImage& image, const WalRecord& record,
                    std::size_t history_limit);

struct WalStats {
  std::uint64_t appended = 0;
  std::uint64_t truncated = 0;  // records dropped after their shard applied
  std::uint64_t recoveries = 0;
  std::uint64_t replayed = 0;   // records replayed across all recoveries
  std::size_t max_depth = 0;    // high-water mark of the pending log
};

/// The durable log object.  Append-only; per-shard applied watermarks let
/// group commits truncate exactly the prefix every owning shard has made
/// durable, and let recovery skip already-applied records idempotently.
class LedgerWal {
 public:
  explicit LedgerWal(std::size_t shard_count) : applied_(shard_count, 0) {}

  /// Stamps the record's global seq and appends it; returns the seq.
  std::uint64_t append(WalRecord record);

  const std::deque<WalRecord>& records() const { return records_; }
  std::size_t depth() const { return records_.size(); }
  /// Highest seq ever stamped (0 when nothing was appended).
  std::uint64_t last_seq() const { return next_seq_ - 1; }

  std::uint64_t applied_seq(std::size_t shard) const {
    return applied_[shard];
  }
  /// Advances one shard's durable watermark (monotonic).
  void mark_applied(std::size_t shard, std::uint64_t seq);

  /// Drops the prefix of records whose owning shard has applied them;
  /// returns how many were dropped.
  std::size_t truncate_applied();

  void note_recovery(std::uint64_t replayed);

  const WalStats& stats() const { return stats_; }

 private:
  std::deque<WalRecord> records_;
  std::vector<std::uint64_t> applied_;  // per shard
  std::uint64_t next_seq_ = 1;
  WalStats stats_;
};

}  // namespace gpunion::db
