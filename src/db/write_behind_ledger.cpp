#include "db/write_behind_ledger.h"

#include <algorithm>
#include <map>

namespace gpunion::db {

std::string_view ledger_op_name(LedgerOpKind kind) {
  switch (kind) {
    case LedgerOpKind::kEnqueue: return "enqueue";
    case LedgerOpKind::kAllocationOpen: return "allocation_open";
    case LedgerOpKind::kAllocationClose: return "allocation_close";
    case LedgerOpKind::kProvenance: return "provenance";
    case LedgerOpKind::kMetric: return "metric";
  }
  return "unknown";
}

bool WriteBehindLedger::absorb(LedgerEntry entry) {
  pending_.push_back(std::move(entry));
  ++stats_.absorbed;
  stats_.max_pending = std::max(stats_.max_pending, pending_.size());
  return pending_.size() >= flush_threshold_;
}

std::size_t WriteBehindLedger::flush(
    FlushTrigger trigger,
    const std::function<void(std::size_t shard, std::size_t entries)>&
        commit) {
  if (pending_.empty()) return 0;
  // Ordered: commits fire in shard order for deterministic accounting.
  std::map<std::size_t, std::size_t> per_shard;
  for (const LedgerEntry& entry : pending_) ++per_shard[entry.shard];
  for (const auto& [shard, entries] : per_shard) {
    commit(shard, entries);
    ++stats_.shard_commits;
  }
  const std::size_t flushed = pending_.size();
  pending_.clear();
  stats_.entries_flushed += flushed;
  ++stats_.flushes;
  switch (trigger) {
    case FlushTrigger::kInterval: ++stats_.interval_flushes; break;
    case FlushTrigger::kThreshold: ++stats_.threshold_flushes; break;
    case FlushTrigger::kExplicit: ++stats_.explicit_flushes; break;
  }
  return flushed;
}

}  // namespace gpunion::db
