// Write-behind allocation ledger.
//
// The coordinator's per-decision mutations (allocation open/close, job
// state transitions in the pending queue, provenance, metric points) are
// absorbed into this append-only in-memory ledger instead of paying one
// synchronous database write each.  Pending entries are group-committed to
// their owning writer shards when either the size threshold is crossed
// (absorb() tells the caller) or the owner's flush timer fires.
//
// Semantics mirror a group-commit write-behind cache: the mutation itself
// is applied to the shared in-memory tables immediately — so every reader
// in the process (Coordinator, Directory consumers, RegionGateway) gets
// read-your-writes on ledgered-but-unflushed state — while the modeled
// durable write is deferred and charged to the shard at flush time, one
// batched commit per touched shard (the same accounting contract as
// SystemDatabase::touch_heartbeats).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.h"

namespace gpunion::db {

enum class LedgerOpKind {
  kEnqueue,  // pending-queue insert (submit / requeue).  Pops and removals
             // stay synchronous: their result is consumed immediately.
  kAllocationOpen,
  kAllocationClose,
  kProvenance,
  kMetric,
};

std::string_view ledger_op_name(LedgerOpKind kind);

enum class FlushTrigger { kInterval, kThreshold, kExplicit };

/// One absorbed mutation: what happened, which shard owns the durable row,
/// and the row key (job id, machine id or series name) for the audit trail.
struct LedgerEntry {
  LedgerOpKind kind = LedgerOpKind::kEnqueue;
  std::size_t shard = 0;
  std::string key;
  std::uint64_t allocation_id = 0;  // allocation ops only
  util::SimTime recorded_at = 0;
};

struct LedgerStats {
  std::uint64_t absorbed = 0;         // entries ever appended
  std::uint64_t entries_flushed = 0;  // entries committed to shards
  std::uint64_t flushes = 0;
  std::uint64_t interval_flushes = 0;
  std::uint64_t threshold_flushes = 0;
  std::uint64_t explicit_flushes = 0;
  /// Per-shard group commits issued across all flushes (the modeled write
  /// ops the ledger actually pays, vs `absorbed` it would have paid).
  std::uint64_t shard_commits = 0;
  std::size_t max_pending = 0;  // high-water mark of the pending log
};

class WriteBehindLedger {
 public:
  explicit WriteBehindLedger(std::size_t flush_threshold)
      : flush_threshold_(flush_threshold) {}

  /// Appends one mutation.  Returns true when the append reached the flush
  /// threshold — the owner must flush (the ledger has no shard access of
  /// its own).
  bool absorb(LedgerEntry entry);

  std::size_t pending() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }
  const std::vector<LedgerEntry>& pending_entries() const { return pending_; }

  /// Group-commits the pending log: `commit(shard, entries)` is invoked
  /// once per shard that owns at least one pending entry (shard order),
  /// then the log is cleared.  Returns the number of entries flushed.
  std::size_t flush(
      FlushTrigger trigger,
      const std::function<void(std::size_t shard, std::size_t entries)>&
          commit);

  const LedgerStats& stats() const { return stats_; }

 private:
  std::size_t flush_threshold_;
  std::vector<LedgerEntry> pending_;
  LedgerStats stats_;
};

}  // namespace gpunion::db
