#include "db/shard_executor.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gpunion::db {

ShardExecutor::ShardExecutor(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  for (std::size_t i = 0; i < n; ++i) lanes_.emplace_back();
  for (Lane& lane : lanes_) {
    lane.thread = std::thread([this, &lane] { thread_main(lane); });
  }
}

ShardExecutor::~ShardExecutor() {
  barrier();
  for (Lane& lane : lanes_) lane.mailbox.stop();
  for (Lane& lane : lanes_) lane.thread.join();
}

void ShardExecutor::run(std::size_t shard, std::function<void()> task) {
  assert(task && "ShardExecutor::run requires a callable");
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }
  lanes_[shard % lanes_.size()].mailbox.post(std::move(task));
}

void ShardExecutor::barrier() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

std::uint64_t ShardExecutor::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void ShardExecutor::thread_main(Lane& lane) {
  for (;;) {
    std::vector<std::function<void()>> batch = lane.mailbox.drain_blocking();
    if (batch.empty()) return;  // stop() and nothing pending
    for (auto& task : batch) task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += batch.size();
      if (completed_ == submitted_) idle_cv_.notify_all();
    }
  }
}

}  // namespace gpunion::db
