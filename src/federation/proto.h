// Inter-campus federation protocol.
//
// The federation layer generalizes GPUnion's single-campus model to a set of
// autonomous campuses (SHARY-style).  In the default MESH topology each
// region's gateway replicates the federation's capacity directory via
// peer-to-peer gossip, ranks candidate regions locally (WAN-cost-aware:
// staleness, RTT, checkpoint shipping time vs. expected queue wait) and
// forwards jobs it cannot serve — shipping their latest checkpoint across
// the WAN — to a region that admits them.  The legacy HUB topology keeps a
// single FederationBroker as the gossip sink and ranking oracle (A/B
// benching).  Either way regions keep their autonomy: admission is decided
// by the *target* gateway against its live directory, never by anyone's
// (possibly stale) digest view.
//
// Messages ride net::Transport exactly like the agent protocol, but on the
// inter-campus WAN network and under TrafficClass::kFederation, so the
// capped WAN channel paces them and accounting keeps them separate from
// campus traffic.  Kind values start at 101 to stay disjoint from
// agent::MsgKind.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "federation/region_directory.h"
#include "obs/trace.h"
#include "sched/directory.h"
#include "util/time.h"
#include "workload/job.h"

namespace gpunion::federation {

/// How placement queries travel.  kMesh (default) answers them from each
/// gateway's replicated RegionDirectory, kept convergent by peer-to-peer
/// gossip — no hub, nothing to die that blinds the others.  kHub is the
/// original single-FederationBroker topology, kept for A/B benching.
enum class FederationTopology { kMesh, kHub };

inline std::string_view federation_topology_name(FederationTopology t) {
  return t == FederationTopology::kMesh ? "mesh" : "hub";
}

/// Message::kind values (disjoint from agent::MsgKind).
enum MsgKind : int {
  kCapacityDigest = 101,  // gateway -> broker: periodic gossip (hub mode)
  kRankingRequest,        // gateway -> broker: where could this job go?
  kRankingResponse,       // broker -> gateway
  kForwardRequest,        // origin gateway -> target gateway (control)
  kForwardAccept,         // target -> origin: admitted, send the job
  kForwardRefuse,         // target -> origin: admission denied
  kJobTransfer,           // origin -> target: spec + checkpoint payload bytes
  kRemoteOutcome,         // target -> origin: forwarded job reached a terminal
  kJobTransferAck,        // target -> origin: transfer landed (or was refused)
  kDirectoryGossip,       // gateway -> gateway: replicated directory push
  kDirectoryPullRequest,  // rejoining gateway -> peer: send me your directory
  kDirectoryPullResponse, // peer -> rejoining gateway: full directory state
};

/// One region's gossip digest: the O(1) capacity summary its directory
/// already maintains, stamped for staleness accounting.  This is the whole
/// point of the broker seeing O(regions) traffic — a digest replaces the
/// thousands of per-node heartbeats that stay inside the region.
struct DigestMessage {
  std::string region;
  std::string gateway_id;
  sched::CapacitySummary capacity;
  std::uint64_t seq = 0;
  util::SimTime generated_at = 0;
};

struct RankingRequest {
  std::string origin_region;
  std::string reply_to;  // gateway endpoint id
  std::uint64_t request_id = 0;
  // Job shape, for basic fit filtering.
  int gpu_count = 1;
  double gpu_memory_gb = 0;
  double min_compute_capability = 0;
};

/// One ranked candidate region, with the staleness of the digest the
/// ranking was computed from (the gossip trade-off made visible).  The
/// WAN-aware fields are filled by the mesh topology's local ranking; the
/// hub broker ranks on free capacity alone and leaves them zero.
struct RegionScore {
  std::string region;
  std::string gateway_id;
  int free_gpus = 0;
  int free_shared_slots = 0;
  util::Duration digest_age = 0;
  /// Modeled control round-trip to the region's gateway.
  util::Duration rtt = 0;
  /// Expected seconds until the job makes progress there: checkpoint
  /// shipping time + RTT + staleness distrust + busy-wait penalty.
  double expected_cost = 0;
};

/// Brokerless capacity gossip: one gateway pushing its whole replicated
/// directory (own entry freshly stamped, peers' entries relayed with the
/// ORIGIN's version stamps) to a rotating subset of peers.
struct DirectoryGossip {
  std::string from_region;
  std::string from_gateway;
  std::vector<DirectoryEntry> entries;
};

struct RankingResponse {
  std::uint64_t request_id = 0;
  std::vector<RegionScore> ranking;  // best first
};

/// Anti-entropy: a gateway rejoining after a crash starts with an EMPTY
/// replica and would otherwise wait O(peers / fanout) push-gossip rounds to
/// re-learn the federation.  One pull round-trip to a single live peer
/// transfers that peer's whole directory (origin stamps preserved, so merge
/// dominance still holds) and restores full ranking coverage immediately.
struct DirectoryPullRequest {
  std::string from_region;
  std::string reply_to;  // rejoining gateway endpoint id
};

struct DirectoryPullResponse {
  std::string from_region;
  std::string from_gateway;
  std::vector<DirectoryEntry> entries;
};

/// Control-plane probe: "would you take this job?"  Carries the spec so the
/// target can run real admission (policy cap, live capacity); the
/// checkpoint payload and its restore progress ride only the JobTransfer
/// that follows an accept.
struct ForwardRequest {
  std::string origin_region;
  std::string reply_to;  // origin gateway endpoint id
  workload::JobSpec job;
};

struct ForwardAccept {
  std::string region;  // accepting region
  std::string job_id;
};

struct ForwardRefuse {
  std::string region;
  std::string job_id;
  /// "policy" | "admission-cap" | "capacity" | "duplicate-id"
  std::string reason;
};

/// The job itself.  Message::size_bytes = control overhead + the shipped
/// checkpoint payload, so cross-campus migrations pay real WAN time on the
/// capped federation channel.
struct JobTransfer {
  /// First-submission region/gateway (provenance + outcome reporting).  On
  /// a chained forward these keep naming the TRUE origin, not the hop.
  std::string origin_region;
  std::string origin_gateway;
  /// The gateway driving THIS transfer; acks route here (== origin_gateway
  /// except on chained forwards).
  std::string reply_to;
  /// Which (re)send this is; echoed in the ack so the sender can tell a
  /// stale refusal from the verdict on its newest attempt.
  int attempt = 1;
  /// Unique per hand-off at the sending gateway.  The receiver remembers
  /// (reply_to, handoff_id) per admitted job, so a retried duplicate of a
  /// hand-off it already processed is re-acked — never re-admitted — even
  /// after the job has moved on (chained forward), while a genuinely NEW
  /// hand-off of the same job (it came back and left again) is not
  /// mistaken for a duplicate.
  std::uint64_t handoff_id = 0;
  /// Hop provenance: every region that has hosted (or originated) the job,
  /// origin first, ENDING with the sending region.  The receiver appends
  /// itself, so after a chained re-forward A -> B -> C the chain at C reads
  /// [A, B, C].  Senders never offer a job to a region already in its
  /// chain (BGP-style path-vector loop avoidance), keeping chains acyclic.
  std::vector<std::string> chain;
  workload::JobSpec job;
  double start_progress = 0;
  std::uint64_t checkpoint_bytes = 0;
  /// Causal trace crossing the WAN with the job: trace_id identifies the
  /// end-to-end trace, parent_span is the sender's fed_transfer span so the
  /// receiver's admit span parents to it (one trace spans A -> B -> C).
  obs::TraceContext trace;
};

struct RemoteOutcome {
  std::string region;  // executing region
  std::string job_id;
  bool completed = false;  // false: cancelled/denied/disrupted remotely
};

/// Settles a kJobTransfer: the origin keeps the job's spec, checkpoint
/// chain and outbound state until this arrives (retrying the transfer on
/// timeout), so a dropped WAN message can delay a hand-off but never lose
/// the job.  accepted=false (reservation lapsed and live re-admission
/// refused, or the target could not submit) tells the origin to take the
/// job back immediately.
struct JobTransferAck {
  std::string region;  // acking region
  std::string job_id;
  /// Echo of JobTransfer::attempt.  An accept settles the hand-off no
  /// matter which attempt it answers (the receiver is idempotent); a
  /// refusal only counts when it answers the NEWEST attempt — acting on a
  /// stale refusal while a retry is still in flight could run the job in
  /// two regions.
  int attempt = 1;
  bool accepted = true;
};

/// Typical encoded sizes (bytes) for federation control messages.
constexpr std::uint64_t kDigestBytes = 260;
constexpr std::uint64_t kControlBytes = 420;  // carries a JobSpec
/// A DirectoryGossip pays one digest per relayed entry: mesh gossip costs
/// O(regions) bytes per push, still independent of node count.
constexpr std::uint64_t kGossipEntryBytes = kDigestBytes;

}  // namespace gpunion::federation
