#include "federation/region_directory.h"

namespace gpunion::federation {

void RegionDirectory::update_self(const std::string& gateway_id,
                                  sched::CapacitySummary capacity,
                                  std::uint64_t version, util::SimTime now) {
  DirectoryEntry& self = entries_[self_region_];
  self.region = self_region_;
  self.gateway_id = gateway_id;
  self.capacity = capacity;
  self.version = version;
  self.generated_at = now;
  self.received_at = now;
  ++stats_.self_updates;
}

bool RegionDirectory::merge(const DirectoryEntry& incoming,
                            util::SimTime now) {
  // This replica is the origin of its own entry; a relayed copy is by
  // definition no newer and accepting one could resurrect a pre-restart
  // snapshot of ourselves.
  if (incoming.region == self_region_) return false;
  auto it = entries_.find(incoming.region);
  if (it != entries_.end()) {
    const DirectoryEntry& current = it->second;
    const bool newer =
        incoming.generated_at > current.generated_at ||
        (incoming.generated_at == current.generated_at &&
         incoming.version > current.version);
    if (!newer) {
      ++stats_.merges_ignored;
      return false;
    }
  }
  DirectoryEntry& entry = entries_[incoming.region];
  entry = incoming;
  entry.received_at = now;  // local receipt, never the relay's
  ++stats_.merges_applied;
  return true;
}

const DirectoryEntry* RegionDirectory::entry(const std::string& region) const {
  auto it = entries_.find(region);
  return it == entries_.end() ? nullptr : &it->second;
}

std::map<std::string, std::uint64_t> RegionDirectory::version_vector() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [region, entry] : entries_) out[region] = entry.version;
  return out;
}

}  // namespace gpunion::federation
