// Region gateway: one campus's membership in the federation.
//
// Wraps the local Coordinator without touching its internals:
//  - MESH topology (default): maintains a replicated RegionDirectory and
//    pushes it peer-to-peer every digest interval (rotating fanout); ranks
//    candidate regions LOCALLY from the replica with a WAN-cost-aware
//    score (digest staleness, modeled inter-region RTT and bandwidth,
//    checkpoint shipping time vs. expected queue wait) — zero broker
//    round-trips per placement query, and no single component whose death
//    blinds the federation;
//  - HUB topology (legacy, A/B benching): gossips a capacity digest (the
//    O(1) Directory::capacity_summary()) to the FederationBroker and asks
//    it for a free-capacity ranking when a job must leave the campus;
//  - watches the local pending queue and, when a job has waited past the
//    forwarding threshold with no local capacity in sight, withdraws the
//    job and offers it to candidate regions in rank order;
//  - admits (or refuses) jobs forwarded *to* this region under a local
//    admission policy — autonomy is preserved: a region can cap or refuse
//    remote work outright, and admission is always checked against the
//    live directory, never anyone's digest;
//  - ships the latest checkpoint of a forwarded job over the capped
//    inter-campus WAN channel (TrafficClass::kFederation) and seeds the
//    destination's checkpoint store, so a cross-campus migration resumes
//    from durable progress instead of restarting;
//  - preserves hop provenance across CHAINED re-forwards: a region hosting
//    displaced jobs for someone else can re-forward them when it degrades
//    in turn, with the A -> B -> C chain carried on the wire, recorded in
//    both databases, and kept acyclic by path-vector loop avoidance (a job
//    is never offered to a region already in its chain).
//
// Rankings may be computed on stale replicas/digests; the refusal/re-route
// loop here is what makes that safe (forward refused at the target -> next
// region in the ranking -> local requeue with backoff when everyone says
// no).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "federation/proto.h"
#include "federation/region_directory.h"
#include "net/transport.h"
#include "sched/coordinator.h"
#include "sim/environment.h"
#include "storage/checkpoint_store.h"
#include "util/rng.h"
#include "util/stats.h"

namespace gpunion::federation {

/// Modeled WAN path between two gateways, supplied by the platform (the
/// gateway itself only sees the abstract Transport): control round-trip
/// and the effective shipping rate for bulk checkpoint payloads.  Feeds
/// the mesh ranking's cost terms and the interactive latency budget.
struct WanPathModel {
  util::Duration rtt = 0;
  double gbps = 1.0;
};
using WanPathFn = std::function<WanPathModel(const std::string& from_gateway,
                                             const std::string& to_gateway)>;

/// Per-region federation policy: what this campus forwards out, and what it
/// is willing to take in.  Regional autonomy lives here.
struct RegionPolicy {
  /// Inbound admission.
  bool accept_remote = true;
  /// Max forwarded jobs hosted concurrently (reservations + running).
  int max_remote_jobs = 64;
  /// Free whole GPUs kept back for local submitters when admitting.
  int min_free_gpus_reserve = 0;

  /// Outbound forwarding.
  bool forward_training = true;      // also covers batch jobs
  bool forward_interactive = false;  // cross-campus Jupyter: off by default
  /// Pending age before a job becomes a forward candidate.
  util::Duration forward_after = 60.0;
  /// Give up on an unanswered ranking/forward request after this long.
  util::Duration forward_timeout = 30.0;
  /// After every candidate region refused, wait this long before trying to
  /// forward the same job again.
  util::Duration forward_retry_backoff = 120.0;
  /// Regions tried per ranking before returning the job to the local queue.
  int max_forward_attempts = 3;
  /// Multiplicative jitter (+/- this fraction, uniform) applied to every
  /// retry/backoff delay (forward retry backoff, transfer resend backoff).
  /// Without it, every gateway that backed off a crashed region retries at
  /// the exact same instant it comes back — a synchronized thundering herd
  /// into the recovering coordinator.  Protocol *timeouts* (forward_timeout,
  /// the base transfer ack deadline) stay exact.  0 disables.
  double retry_jitter = 0.15;
  /// Base ack deadline per transfer attempt (doubles per retry, capped at
  /// 8x).  Much larger than forward_timeout: a shipment carries gigabytes
  /// through the capped WAN channel and queues FIFO behind its peers (an
  /// outage burst backs the channel up for tens of seconds), and a
  /// premature retry re-ships the whole payload.  Transfers retry until
  /// acked — at-least-once with an idempotent receiver — because giving
  /// up after an accepted hand-off could run the job twice.
  util::Duration transfer_ack_timeout = 120.0;

  /// Gossip cadence (also drives the remote-job outcome sweep).
  util::Duration digest_interval = 10.0;
  /// An accepted forward whose transfer never arrives frees its admission
  /// slot after this long.
  util::Duration reservation_ttl = 60.0;

  /// --- Mesh topology -------------------------------------------------------
  /// Peers pushed to per gossip tick (rotating deterministically, so every
  /// peer is reached within ceil(peers / fanout) ticks even when the
  /// federation outgrows the fanout).
  int gossip_fanout = 3;
  /// Replica entries whose origin stamp is older than this are dropped
  /// from rankings entirely (region presumed unreachable) — the mesh
  /// counterpart of BrokerConfig::digest_hard_ttl.
  util::Duration directory_hard_ttl = 120.0;
  /// On recover(), pull the full directory from one live peer instead of
  /// waiting O(peers / fanout) push-gossip rounds to re-learn the
  /// federation (anti-entropy region rejoin).  Mesh topology only.
  bool anti_entropy_pull = true;

  /// --- WAN-cost ranking (mesh) ---------------------------------------------
  /// Seconds of ranking cost per second of replica staleness: an old
  /// digest is less trustworthy, so fresher regions win ties.
  double stale_cost_weight = 0.5;
  /// Expected extra wait when the replica shows no free GPU/slot fitting
  /// the job (the region may still admit — its live view decides — but a
  /// digest-busy region ranks behind a digest-free one).
  util::Duration busy_wait_penalty = 120.0;
  /// Interactive sessions are forwarded only to regions whose modeled WAN
  /// RTT fits this budget (a cross-country Jupyter kernel is useless);
  /// with no region inside the budget the session stays pending locally.
  util::Duration max_interactive_rtt = 0.1;
};

struct GatewayStats {
  // Outbound (jobs this region pushed elsewhere).
  std::uint64_t ranking_requests = 0;    // hub round-trips
  std::uint64_t local_rankings = 0;      // mesh: answered from the replica
  std::uint64_t forwards_attempted = 0;  // ForwardRequests sent
  std::uint64_t forwards_admitted = 0;   // accepted by a remote region
  std::uint64_t forwards_refused = 0;    // refusals received
  std::uint64_t forward_timeouts = 0;    // unanswered requests
  std::uint64_t reroutes = 0;            // retries at the 2nd..Nth region
  std::uint64_t forwards_returned = 0;   // every candidate refused
  std::uint64_t forwards_aborted = 0;    // withdraw raced / empty ranking
  std::uint64_t transfers_delivered = 0;  // transfer acks received (hand-off)
  std::uint64_t transfer_retries = 0;     // unacked transfers re-sent
  std::uint64_t transfers_bounced = 0;    // ack said refused; job came home
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t checkpoint_bytes_shipped = 0;
  std::uint64_t remote_completions = 0;  // forwarded job completed remotely
  std::uint64_t remote_failures = 0;     // forwarded job died remotely
  // Ranking filters.
  std::uint64_t chain_loops_avoided = 0;      // candidate already in chain
  std::uint64_t interactive_rtt_filtered = 0;  // RTT budget exceeded
  /// Replica staleness actually ranked on (mesh counterpart of the
  /// broker's digest_age_at_query).
  util::SampleSet directory_age_at_rank;
  // Inbound (jobs other regions pushed here).
  std::uint64_t remote_admitted = 0;     // accepts issued (reservations)
  std::uint64_t remote_jobs_taken = 0;   // transfers actually hosted
  std::uint64_t remote_refused_policy = 0;
  std::uint64_t remote_refused_cap = 0;
  std::uint64_t remote_refused_capacity = 0;
  std::uint64_t remote_refused_duplicate = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t transfers_unreserved = 0;  // landed after their TTL lapsed
  std::uint64_t cross_campus_migrations_in = 0;  // admitted with progress > 0
  std::uint64_t reservations_expired = 0;
  // Gossip.
  std::uint64_t digests_published = 0;  // own digest (re)stamped
  std::uint64_t gossips_sent = 0;       // mesh directory pushes sent
  std::uint64_t gossips_received = 0;   // mesh directory pushes received
  // Anti-entropy (region rejoin).
  std::uint64_t anti_entropy_pulls = 0;    // pull requests sent
  std::uint64_t anti_entropy_served = 0;   // pull requests answered
  std::uint64_t anti_entropy_entries = 0;  // entries merged from pulls
};

/// What a gateway recover() rebuilt / settled, for tests and benches.
struct GatewayRecoveryStats {
  std::uint64_t recoveries = 0;
  /// Forward rows in kAwaitingTransferAck whose transfer was re-sent (the
  /// hand-off continues where the crash interrupted it).
  std::uint64_t forwards_resumed = 0;
  /// Forward rows still awaiting an offer reply: the job was resubmitted to
  /// the local queue (the target only held a TTL reservation, which lapses
  /// on its own, so repatriating cannot run the job twice).
  std::uint64_t forwards_repatriated = 0;
  std::uint64_t remote_jobs_rebuilt = 0;  // hosted guests re-learned
  std::uint64_t handoffs_rebuilt = 0;     // dedup rows re-learned
};

class RegionGateway {
 public:
  /// `lane`: actor lane the gateway runs on.  Must be the lane of the
  /// region's coordinator/platform — the gateway calls straight into the
  /// coordinator, so they form one actor.
  RegionGateway(sim::Environment& env, sched::Coordinator& coordinator,
                storage::CheckpointStore& store, db::Database& database,
                net::Transport& wan, std::string region_name,
                std::string broker_id, RegionPolicy policy = {},
                FederationTopology topology = FederationTopology::kHub,
                WanPathFn wan_path = {}, sim::LaneId lane = sim::kMainLane);
  ~RegionGateway();

  RegionGateway(const RegionGateway&) = delete;
  RegionGateway& operator=(const RegionGateway&) = delete;

  /// Registers the WAN endpoint, publishes the first digest immediately and
  /// starts the gossip/sweep timer.
  void start();

  /// Seeds a mesh peer (the platform introduces the initial membership;
  /// gossip discovers regions that join later).
  void add_peer(const std::string& region, const std::string& gateway_id);

  const std::string& region() const { return region_; }
  /// WAN endpoint id ("gw-<region>").
  const std::string& gateway_id() const { return gateway_id_; }
  const GatewayStats& stats() const { return stats_; }
  const RegionPolicy& policy() const { return policy_; }
  FederationTopology topology() const { return topology_; }
  /// This gateway's replica of the federation directory (mesh mode; empty
  /// in hub mode, where the broker holds the only directory).
  const RegionDirectory& directory() const { return directory_; }
  /// Forwarded jobs currently reserved or running here.
  int remote_jobs_active() const {
    return static_cast<int>(remote_jobs_.size() + pending_inbound_.size());
  }
  /// Outbound forwards currently in flight (ranking or offer outstanding).
  int forwards_in_flight() const { return static_cast<int>(outbound_.size()); }
  /// True while `job_id` has an outbound forward in flight (the job may be
  /// absent from the coordinator without having landed anywhere yet).
  bool forwarding(const std::string& job_id) const {
    return outbound_.contains(job_id);
  }
  /// In-flight forwards whose job has already been withdrawn from the
  /// local coordinator (offer or transfer outstanding).  Closes the
  /// accounting identity: jobs_withdrawn == transfers_delivered +
  /// forwards_returned + withdrawn_in_flight.
  int withdrawn_in_flight() const {
    int n = 0;
    for (const auto& [job_id, forward] : outbound_) {
      if (forward.withdrawn) ++n;
    }
    return n;
  }
  /// Hop chain of a job admitted here via a federation transfer (origin
  /// first, this region last), or nullptr for jobs never hosted here.
  /// Retained for the run, like the hand-off dedup table.
  const std::vector<std::string>* provenance_chain(
      const std::string& job_id) const {
    auto it = chains_.find(job_id);
    return it == chains_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, std::vector<std::string>>& hosted_chains()
      const {
    return chains_;
  }

  /// One gossip/sweep/forward-scan tick (timer-driven; public for tests).
  void tick();

  // --- Crash / restart -------------------------------------------------------
  // Crash-in-place, like the coordinator: the object cannot be destroyed
  // (scheduled events capture `this`), so crash() marks the gateway down —
  // inbound WAN messages are dropped, the tick timer stops, and every
  // in-memory table is wiped.  recover() rebuilds from the durable tables
  // the gateway wrote as it worked: forward-state rows (the ONLY copy of a
  // withdrawn job in flight), hand-off dedup rows, hosted-job provenance
  // and the stats journal.  epoch_ invalidates one-shot timeouts armed
  // before the crash.
  void crash();
  void recover();
  bool crashed() const { return crashed_; }
  const GatewayRecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  /// Pulls the full directory from one live peer (rotating), merging the
  /// response like gossip.  recover() calls this when anti_entropy_pull is
  /// set; public so tests and benches can A/B rejoin convergence.
  void request_anti_entropy();

  /// `base` +/- retry_jitter fraction, drawn from this gateway's private
  /// stream (see RegionPolicy::retry_jitter).  Every retry/backoff delay
  /// goes through this; public so tests can assert the de-correlation.
  util::Duration jittered(util::Duration base);

 private:
  /// Outbound forward state machine, one entry per job in flight.  The
  /// entry (and with it the job's spec and checkpoint chain) survives
  /// until the target acknowledges the transfer, so no single lost WAN
  /// message can lose the job.
  struct OutboundForward {
    enum class State { kAwaitingRanking, kAwaitingReply, kAwaitingTransferAck };
    State state = State::kAwaitingRanking;
    std::uint64_t generation = 0;  // guards stale timeout events
    std::uint64_t request_id = 0;
    workload::JobSpec spec;  // populated once withdrawn
    double start_progress = 0;
    std::uint64_t checkpoint_bytes = 0;
    int transfer_attempts = 0;
    std::uint64_t handoff_id = 0;  // stamped when the offer is accepted
    /// First-submission region/gateway.  Usually this region — but when a
    /// job hosted here for someone else is forwarded onward (chained
    /// forward during a local outage), provenance and outcome reporting
    /// keep pointing at the true origin.
    std::string origin_region;
    std::string origin_gateway;
    /// Hop provenance ending with THIS region (see JobTransfer::chain).
    std::vector<std::string> chain;
    std::vector<RegionScore> ranking;
    std::size_t next_region = 0;
    std::string awaiting_gateway;
    int attempts = 0;
    bool withdrawn = false;
    /// Causal trace carried over from the withdrawn job; the gateway's
    /// fed_* spans chain onto it and it crosses the WAN in JobTransfer.
    obs::TraceContext trace;
    /// Pre-allocated fed_transfer span id (open at send, closed at ack) so
    /// the receiver's admit span can parent to it mid-flight.
    std::uint64_t transfer_span = 0;
    /// When the current offer left this gateway (start of the fed_offer
    /// span; -1 while no offer is outstanding).
    util::SimTime offer_sent_at = -1;
    /// When the first transfer attempt left (start of the fed_transfer
    /// span; retries keep the original start).
    util::SimTime transfer_sent_at = -1;
  };
  /// A forwarded job running here for another region.
  struct RemoteJob {
    std::string origin_gateway;
    std::string origin_region;
    util::SimTime admitted_at = 0;
  };

  void handle_message(net::Message&& msg);
  void handle_ranking_response(const RankingResponse& response);
  void handle_forward_request(const ForwardRequest& request);
  void handle_forward_accept(const ForwardAccept& accept);
  void handle_forward_refuse(const ForwardRefuse& refuse);
  void handle_job_transfer(const JobTransfer& transfer);
  void handle_transfer_ack(const JobTransferAck& ack);
  void handle_remote_outcome(const RemoteOutcome& outcome);
  void handle_directory_gossip(const DirectoryGossip& gossip);
  void handle_directory_pull(const DirectoryPullRequest& request);
  void handle_directory_pull_response(const DirectoryPullResponse& response);
  /// (Re)sends the JobTransfer for an accepted forward and re-arms its
  /// ack timeout.
  void send_transfer(const std::string& job_id);

  void publish_digest();
  void sweep_remote_jobs();
  void scan_for_forwards();
  void initiate_forward(const std::string& job_id);
  /// WAN-cost-aware candidate ranking from the local replica (mesh mode):
  /// staleness-filtered, envelope-filtered, loop-avoided, RTT-budgeted,
  /// ordered by expected cost.  `checkpoint_bytes` sizes the shipping term.
  std::vector<RegionScore> rank_locally(const workload::JobSpec& job,
                                        std::uint64_t checkpoint_bytes,
                                        const std::vector<std::string>& chain);
  /// Shared ranking-eligibility predicate (stats-counting): true when a
  /// candidate region may not be offered this job — already in the job's
  /// hop chain, or (interactive) beyond the RTT budget.  Used by BOTH the
  /// mesh ranking and the hub ranking filter so the rules cannot drift.
  bool ranking_excluded(const workload::JobSpec& job,
                        const std::string& region,
                        const std::string& target_gateway,
                        const std::vector<std::string>& chain);
  /// Drops broker-ranking candidates that fail ranking_excluded().
  void filter_ranking(std::vector<RegionScore>& ranking,
                      const workload::JobSpec& job,
                      const std::vector<std::string>& chain);
  /// Resolves the true origin + hop chain for forwarding `job_id` out of
  /// here (a chained forward keeps the original submitter's identity).
  void resolve_origin(const std::string& job_id, OutboundForward& forward);
  /// Offers the withdrawn job to the next region in the ranking, or hands
  /// it back to the local queue when the ranking is exhausted.
  void try_next_region(const std::string& job_id);
  void return_job_home(const std::string& job_id);
  void arm_timeout(const std::string& job_id, std::uint64_t generation,
                   util::Duration delay);
  /// True when some local node could host the job's shape right now: a
  /// per-node check against the live indexed view (GPU count on one node,
  /// memory, compute capability), not the fleet-wide aggregate — four free
  /// GPUs on four different nodes cannot place a 4-GPU job.
  bool locally_placeable(const workload::JobSpec& job);
  /// "" = admit; otherwise the refusal reason.
  std::string admission_verdict(const workload::JobSpec& job);
  /// Submits an arrived transfer locally; false when the coordinator
  /// refused the submission (the ack tells the origin to take it back).
  bool admit_transfer(const JobTransfer& transfer);
  void send(const std::string& to, int kind, std::any payload,
            std::uint64_t bytes);
  /// Mirrors an in-flight forward to its durable row (no-op until the job
  /// is withdrawn — before that the coordinator's own row covers it) and
  /// journals the stats counters in the same breath, so the accounting
  /// identity (withdrawn == delivered + returned + in flight) survives a
  /// crash at any event boundary.
  void persist_forward(const std::string& job_id,
                       const OutboundForward& forward);
  void erase_forward(const std::string& job_id);
  void persist_stats();
  /// Reloads stats, dedup table, hosted guests and in-flight forwards from
  /// the durable tables; resumes or repatriates each recovered forward.
  void rebuild_from_db();

  sim::Environment& env_;
  sim::LaneId lane_ = sim::kMainLane;
  sched::Coordinator& coordinator_;
  storage::CheckpointStore& store_;
  db::Database& database_;
  net::Transport& wan_;
  std::string region_;
  std::string gateway_id_;
  std::string broker_id_;
  RegionPolicy policy_;
  FederationTopology topology_;
  WanPathFn wan_path_;
  sim::PeriodicTimer tick_timer_;

  std::uint64_t digest_seq_ = 0;
  std::uint64_t next_request_id_ = 1;
  // All ordered maps: deterministic iteration for reproducible runs.
  /// Replicated federation directory (mesh; holds only self in hub mode).
  RegionDirectory directory_;
  /// Known peer gateways by region (seeded by the platform, extended by
  /// gossip).  The rotation cursor spreads fanout-limited pushes evenly.
  std::map<std::string, std::string> peers_;
  std::size_t gossip_cursor_ = 0;
  std::map<std::string, OutboundForward> outbound_;       // by job id
  std::map<std::string, util::SimTime> retry_after_;      // forward backoff
  /// Accepted forwards whose JobTransfer has not arrived yet: job id ->
  /// reservation expiry (everything else about the hand-off rides the
  /// transfer itself).
  std::map<std::string, util::SimTime> pending_inbound_;
  std::map<std::string, RemoteJob> remote_jobs_;
  /// Hop chain of every job admitted here via a transfer (origin first,
  /// this region last).  Survives completion and onward chaining, so
  /// provenance outlives the remote_jobs_ entry.
  std::map<std::string, std::vector<std::string>> chains_;
  /// Hand-offs this region has admitted, by job id -> (sender gateway,
  /// handoff id).  Retried duplicates of a processed transfer re-ack from
  /// here instead of re-admitting — essential once the job has chained
  /// onward and no coordinator record remains.  Retained for the run
  /// (one small entry per cross-campus hand-off, like the job archive).
  std::map<std::string, std::pair<std::string, std::uint64_t>>
      handled_handoffs_;
  GatewayStats stats_;
  GatewayRecoveryStats recovery_stats_;
  /// Jitter stream for retry/backoff de-correlation, forked per gateway so
  /// adding a region never perturbs another's draws.
  util::Rng rng_;
  bool started_ = false;
  /// True between crash() and recover(): inbound messages are dropped and
  /// no timers run (the process is down).
  bool crashed_ = false;
  /// Bumped by crash() and recover(); one-shot timeout events capture it
  /// at arm time and bail on mismatch, so a timer armed before a crash can
  /// never fire into rebuilt state.
  std::uint64_t epoch_ = 0;
  /// Rotates anti-entropy pulls across peers.
  std::size_t pull_cursor_ = 0;
};

}  // namespace gpunion::federation
