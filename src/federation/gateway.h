// Region gateway: one campus's membership in the federation.
//
// Wraps the local Coordinator without touching its internals:
//  - gossips a capacity digest (the O(1) Directory::capacity_summary()) to
//    the federation broker every digest interval — the region's thousands
//    of heartbeats stay local, the broker sees one message per interval;
//  - watches the local pending queue and, when a job has waited past the
//    forwarding threshold with no local capacity in sight, asks the broker
//    for a region ranking, withdraws the job and offers it to candidate
//    regions in rank order;
//  - admits (or refuses) jobs forwarded *to* this region under a local
//    admission policy — autonomy is preserved: a region can cap or refuse
//    remote work outright, and admission is always checked against the
//    live directory, never the broker's digest;
//  - ships the latest checkpoint of a forwarded job over the capped
//    inter-campus WAN channel (TrafficClass::kFederation) and seeds the
//    destination's checkpoint store, so a cross-campus migration resumes
//    from durable progress instead of restarting.
//
// The broker may rank on stale digests; the refusal/re-route loop here is
// what makes that safe (forward refused at the target -> next region in
// the ranking -> local requeue with backoff when everyone says no).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "federation/proto.h"
#include "net/transport.h"
#include "sched/coordinator.h"
#include "sim/environment.h"
#include "storage/checkpoint_store.h"

namespace gpunion::federation {

/// Per-region federation policy: what this campus forwards out, and what it
/// is willing to take in.  Regional autonomy lives here.
struct RegionPolicy {
  /// Inbound admission.
  bool accept_remote = true;
  /// Max forwarded jobs hosted concurrently (reservations + running).
  int max_remote_jobs = 64;
  /// Free whole GPUs kept back for local submitters when admitting.
  int min_free_gpus_reserve = 0;

  /// Outbound forwarding.
  bool forward_training = true;      // also covers batch jobs
  bool forward_interactive = false;  // cross-campus Jupyter: off by default
  /// Pending age before a job becomes a forward candidate.
  util::Duration forward_after = 60.0;
  /// Give up on an unanswered ranking/forward request after this long.
  util::Duration forward_timeout = 30.0;
  /// After every candidate region refused, wait this long before trying to
  /// forward the same job again.
  util::Duration forward_retry_backoff = 120.0;
  /// Regions tried per ranking before returning the job to the local queue.
  int max_forward_attempts = 3;
  /// Base ack deadline per transfer attempt (doubles per retry, capped at
  /// 8x).  Much larger than forward_timeout: a shipment carries gigabytes
  /// through the capped WAN channel and queues FIFO behind its peers (an
  /// outage burst backs the channel up for tens of seconds), and a
  /// premature retry re-ships the whole payload.  Transfers retry until
  /// acked — at-least-once with an idempotent receiver — because giving
  /// up after an accepted hand-off could run the job twice.
  util::Duration transfer_ack_timeout = 120.0;

  /// Gossip cadence (also drives the remote-job outcome sweep).
  util::Duration digest_interval = 10.0;
  /// An accepted forward whose transfer never arrives frees its admission
  /// slot after this long.
  util::Duration reservation_ttl = 60.0;
};

struct GatewayStats {
  // Outbound (jobs this region pushed elsewhere).
  std::uint64_t ranking_requests = 0;
  std::uint64_t forwards_attempted = 0;  // ForwardRequests sent
  std::uint64_t forwards_admitted = 0;   // accepted by a remote region
  std::uint64_t forwards_refused = 0;    // refusals received
  std::uint64_t forward_timeouts = 0;    // unanswered requests
  std::uint64_t reroutes = 0;            // retries at the 2nd..Nth region
  std::uint64_t forwards_returned = 0;   // every candidate refused
  std::uint64_t forwards_aborted = 0;    // withdraw raced / empty ranking
  std::uint64_t transfers_delivered = 0;  // transfer acks received (hand-off)
  std::uint64_t transfer_retries = 0;     // unacked transfers re-sent
  std::uint64_t transfers_bounced = 0;    // ack said refused; job came home
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t checkpoint_bytes_shipped = 0;
  std::uint64_t remote_completions = 0;  // forwarded job completed remotely
  std::uint64_t remote_failures = 0;     // forwarded job died remotely
  // Inbound (jobs other regions pushed here).
  std::uint64_t remote_admitted = 0;     // accepts issued (reservations)
  std::uint64_t remote_jobs_taken = 0;   // transfers actually hosted
  std::uint64_t remote_refused_policy = 0;
  std::uint64_t remote_refused_cap = 0;
  std::uint64_t remote_refused_capacity = 0;
  std::uint64_t remote_refused_duplicate = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t transfers_unreserved = 0;  // landed after their TTL lapsed
  std::uint64_t cross_campus_migrations_in = 0;  // admitted with progress > 0
  std::uint64_t reservations_expired = 0;
  // Gossip.
  std::uint64_t digests_published = 0;
};

class RegionGateway {
 public:
  RegionGateway(sim::Environment& env, sched::Coordinator& coordinator,
                storage::CheckpointStore& store, db::Database& database,
                net::Transport& wan, std::string region_name,
                std::string broker_id, RegionPolicy policy = {});
  ~RegionGateway();

  RegionGateway(const RegionGateway&) = delete;
  RegionGateway& operator=(const RegionGateway&) = delete;

  /// Registers the WAN endpoint, publishes the first digest immediately and
  /// starts the gossip/sweep timer.
  void start();

  const std::string& region() const { return region_; }
  /// WAN endpoint id ("gw-<region>").
  const std::string& gateway_id() const { return gateway_id_; }
  const GatewayStats& stats() const { return stats_; }
  const RegionPolicy& policy() const { return policy_; }
  /// Forwarded jobs currently reserved or running here.
  int remote_jobs_active() const {
    return static_cast<int>(remote_jobs_.size() + pending_inbound_.size());
  }
  /// Outbound forwards currently in flight (ranking or offer outstanding).
  int forwards_in_flight() const { return static_cast<int>(outbound_.size()); }
  /// True while `job_id` has an outbound forward in flight (the job may be
  /// absent from the coordinator without having landed anywhere yet).
  bool forwarding(const std::string& job_id) const {
    return outbound_.contains(job_id);
  }
  /// In-flight forwards whose job has already been withdrawn from the
  /// local coordinator (offer or transfer outstanding).  Closes the
  /// accounting identity: jobs_withdrawn == transfers_delivered +
  /// forwards_returned + withdrawn_in_flight.
  int withdrawn_in_flight() const {
    int n = 0;
    for (const auto& [job_id, forward] : outbound_) {
      if (forward.withdrawn) ++n;
    }
    return n;
  }

  /// One gossip/sweep/forward-scan tick (timer-driven; public for tests).
  void tick();

 private:
  /// Outbound forward state machine, one entry per job in flight.  The
  /// entry (and with it the job's spec and checkpoint chain) survives
  /// until the target acknowledges the transfer, so no single lost WAN
  /// message can lose the job.
  struct OutboundForward {
    enum class State { kAwaitingRanking, kAwaitingReply, kAwaitingTransferAck };
    State state = State::kAwaitingRanking;
    std::uint64_t generation = 0;  // guards stale timeout events
    std::uint64_t request_id = 0;
    workload::JobSpec spec;  // populated once withdrawn
    double start_progress = 0;
    std::uint64_t checkpoint_bytes = 0;
    int transfer_attempts = 0;
    std::uint64_t handoff_id = 0;  // stamped when the offer is accepted
    /// First-submission region/gateway.  Usually this region — but when a
    /// job hosted here for someone else is forwarded onward (chained
    /// forward during a local outage), provenance and outcome reporting
    /// keep pointing at the true origin.
    std::string origin_region;
    std::string origin_gateway;
    std::vector<RegionScore> ranking;
    std::size_t next_region = 0;
    std::string awaiting_gateway;
    int attempts = 0;
    bool withdrawn = false;
  };
  /// A forwarded job running here for another region.
  struct RemoteJob {
    std::string origin_gateway;
    std::string origin_region;
    util::SimTime admitted_at = 0;
  };

  void handle_message(net::Message&& msg);
  void handle_ranking_response(const RankingResponse& response);
  void handle_forward_request(const ForwardRequest& request);
  void handle_forward_accept(const ForwardAccept& accept);
  void handle_forward_refuse(const ForwardRefuse& refuse);
  void handle_job_transfer(const JobTransfer& transfer);
  void handle_transfer_ack(const JobTransferAck& ack);
  void handle_remote_outcome(const RemoteOutcome& outcome);
  /// (Re)sends the JobTransfer for an accepted forward and re-arms its
  /// ack timeout.
  void send_transfer(const std::string& job_id);

  void publish_digest();
  void sweep_remote_jobs();
  void scan_for_forwards();
  void initiate_forward(const std::string& job_id);
  /// Offers the withdrawn job to the next region in the ranking, or hands
  /// it back to the local queue when the ranking is exhausted.
  void try_next_region(const std::string& job_id);
  void return_job_home(const std::string& job_id);
  void arm_timeout(const std::string& job_id, std::uint64_t generation,
                   util::Duration delay);
  /// True when some local node could host the job's shape right now: a
  /// per-node check against the live indexed view (GPU count on one node,
  /// memory, compute capability), not the fleet-wide aggregate — four free
  /// GPUs on four different nodes cannot place a 4-GPU job.
  bool locally_placeable(const workload::JobSpec& job);
  /// "" = admit; otherwise the refusal reason.
  std::string admission_verdict(const workload::JobSpec& job);
  /// Submits an arrived transfer locally; false when the coordinator
  /// refused the submission (the ack tells the origin to take it back).
  bool admit_transfer(const std::string& origin_gateway,
                      const std::string& origin_region,
                      const workload::JobSpec& job, double start_progress);
  void send(const std::string& to, int kind, std::any payload,
            std::uint64_t bytes);

  sim::Environment& env_;
  sched::Coordinator& coordinator_;
  storage::CheckpointStore& store_;
  db::Database& database_;
  net::Transport& wan_;
  std::string region_;
  std::string gateway_id_;
  std::string broker_id_;
  RegionPolicy policy_;
  sim::PeriodicTimer tick_timer_;

  std::uint64_t digest_seq_ = 0;
  std::uint64_t next_request_id_ = 1;
  // All ordered maps: deterministic iteration for reproducible runs.
  std::map<std::string, OutboundForward> outbound_;       // by job id
  std::map<std::string, util::SimTime> retry_after_;      // forward backoff
  /// Accepted forwards whose JobTransfer has not arrived yet: job id ->
  /// reservation expiry (everything else about the hand-off rides the
  /// transfer itself).
  std::map<std::string, util::SimTime> pending_inbound_;
  std::map<std::string, RemoteJob> remote_jobs_;
  /// Hand-offs this region has admitted, by job id -> (sender gateway,
  /// handoff id).  Retried duplicates of a processed transfer re-ack from
  /// here instead of re-admitting — essential once the job has chained
  /// onward and no coordinator record remains.  Retained for the run
  /// (one small entry per cross-campus hand-off, like the job archive).
  std::map<std::string, std::pair<std::string, std::uint64_t>>
      handled_handoffs_;
  GatewayStats stats_;
  bool started_ = false;
};

}  // namespace gpunion::federation
