#include "federation/broker.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace gpunion::federation {

FederationBroker::FederationBroker(sim::Environment& env, net::Transport& wan,
                                   BrokerConfig config)
    : env_(env),
      lane_(env.register_lane("broker")),
      wan_(wan),
      config_(std::move(config)) {}

void FederationBroker::start() {
  assert(!started_ && "FederationBroker::start called twice");
  started_ = true;
  wan_.register_endpoint(
      config_.id,
      [this](net::Message&& msg) { handle_message(std::move(msg)); }, lane_);
}

void FederationBroker::handle_message(net::Message&& msg) {
  switch (msg.kind) {
    case kCapacityDigest:
      handle_digest(std::any_cast<const DigestMessage&>(msg.payload));
      break;
    case kRankingRequest:
      handle_ranking_request(
          std::any_cast<const RankingRequest&>(msg.payload));
      break;
    default:
      GPUNION_WLOG("broker") << "unexpected message kind " << msg.kind;
  }
}

void FederationBroker::handle_digest(const DigestMessage& digest) {
  RegionEntry& entry = regions_[digest.region];
  if (entry.region.empty()) {
    entry.region = digest.region;
    GPUNION_ILOG("broker") << "region " << digest.region << " joined via "
                           << digest.gateway_id;
  } else if (digest.generated_at <= entry.digest_generated_at) {
    // Drop only digests GENERATED no later than the one on file (replays
    // and reordering).  A restarted gateway resets its sequence counter
    // but stamps fresh times, so it re-enters rankings immediately — a
    // seq-based guard would lock it out forever.
    ++stats_.stale_digests_dropped;
    return;
  }
  entry.gateway_id = digest.gateway_id;
  entry.capacity = digest.capacity;
  entry.digest_seq = digest.seq;
  entry.digest_generated_at = digest.generated_at;
  entry.received_at = env_.now();
  ++entry.digests_received;
  ++stats_.digests_received;
}

void FederationBroker::handle_ranking_request(const RankingRequest& request) {
  ++stats_.ranking_requests;
  RankingResponse response;
  response.request_id = request.request_id;
  for (const auto& [region, entry] : regions_) {
    if (region == request.origin_region) continue;
    const util::Duration age = env_.now() - entry.received_at;
    if (age > config_.digest_hard_ttl) continue;  // presumed unreachable
    // Basic fit from the digest's hardware envelope: could this region
    // *ever* host the shape (enough GPUs on one node, VRAM, compute
    // capability)?  Free-capacity staleness is deliberately tolerated — a
    // region digested as busy may have drained, and one digested as free
    // may have filled; target-side admission settles it either way.  The
    // envelope, by contrast, only changes on (re)registration, so this
    // filter essentially never drops a feasible region.
    if (entry.capacity.max_node_gpus < request.gpu_count) continue;
    if (entry.capacity.max_gpu_memory_gb < request.gpu_memory_gb) continue;
    if (entry.capacity.max_compute_capability <
        request.min_compute_capability) {
      continue;
    }
    stats_.digest_age_at_query.add(age);
    RegionScore score;
    score.region = region;
    score.gateway_id = entry.gateway_id;
    score.free_gpus = entry.capacity.free_gpus;
    score.free_shared_slots = entry.capacity.free_shared_slots;
    score.digest_age = age;
    response.ranking.push_back(std::move(score));
  }
  // Most digest-free capacity first; region name breaks ties so identical
  // digests rank deterministically.
  std::stable_sort(response.ranking.begin(), response.ranking.end(),
                   [](const RegionScore& a, const RegionScore& b) {
                     if (a.free_gpus != b.free_gpus) {
                       return a.free_gpus > b.free_gpus;
                     }
                     if (a.free_shared_slots != b.free_shared_slots) {
                       return a.free_shared_slots > b.free_shared_slots;
                     }
                     return a.region < b.region;
                   });

  net::Message reply;
  reply.from = config_.id;
  reply.to = request.reply_to;
  reply.kind = kRankingResponse;
  reply.traffic_class = net::TrafficClass::kFederation;
  reply.size_bytes =
      kDigestBytes + 60 * static_cast<std::uint64_t>(response.ranking.size());
  reply.payload = std::move(response);
  (void)wan_.send(std::move(reply));
}

}  // namespace gpunion::federation
