// Federation broker: the global region directory and capacity-gossip sink
// of the legacy HUB topology (FederationTopology::kHub, kept for A/B
// benching — the default mesh topology replicates this directory at every
// gateway instead and has no broker at all).
//
// The broker is deliberately thin (SHARY's matchmaker, not a scheduler): it
// holds the last capacity digest each region gossiped, answers placement
// queries with a *ranking* of candidate regions, and never reserves
// capacity or talks to nodes.  Admission stays with the target region's
// gateway — the broker may rank on stale data, and the target's refusal is
// the backstop that makes that safe.
//
// Scalability contract: the broker receives O(regions) digest messages per
// gossip interval and O(forwards) ranking queries — never per-node traffic.
// That is the hub-fan-in cut that motivates the federation layer: a
// region's thousands of heartbeats stay inside the region.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "federation/proto.h"
#include "net/transport.h"
#include "sim/environment.h"
#include "util/stats.h"

namespace gpunion::federation {

struct BrokerConfig {
  std::string id = "federation-broker";
  /// Regions whose digest is older than this are dropped from rankings
  /// entirely (presumed unreachable).  Staleness *below* the cutoff is not
  /// filtered: the broker ranks on what it has and lets target-side
  /// admission catch the drift.
  util::Duration digest_hard_ttl = 120.0;
};

/// One region as the broker sees it.
struct RegionEntry {
  std::string region;
  std::string gateway_id;
  sched::CapacitySummary capacity;
  std::uint64_t digest_seq = 0;
  util::SimTime digest_generated_at = 0;
  util::SimTime received_at = 0;
  std::uint64_t digests_received = 0;
};

struct BrokerStats {
  std::uint64_t digests_received = 0;
  std::uint64_t stale_digests_dropped = 0;  // out-of-order seq, ignored
  std::uint64_t ranking_requests = 0;
  /// Digest age (now - received_at) of every region considered at every
  /// ranking query — the staleness the federation actually decided on.
  util::SampleSet digest_age_at_query;
};

class FederationBroker {
 public:
  FederationBroker(sim::Environment& env, net::Transport& wan,
                   BrokerConfig config = {});

  /// Registers the broker endpoint on the WAN.
  void start();

  const std::string& id() const { return config_.id; }
  const std::map<std::string, RegionEntry>& regions() const {
    return regions_;
  }
  const BrokerStats& stats() const { return stats_; }
  const BrokerConfig& config() const { return config_; }

 private:
  void handle_message(net::Message&& msg);
  void handle_digest(const DigestMessage& digest);
  void handle_ranking_request(const RankingRequest& request);

  sim::Environment& env_;
  sim::LaneId lane_;
  net::Transport& wan_;
  BrokerConfig config_;
  std::map<std::string, RegionEntry> regions_;  // ordered: deterministic
  BrokerStats stats_;
  bool started_ = false;
};

}  // namespace gpunion::federation
