// Replicated region directory: each gateway's own copy of the federation.
//
// The brokerless (mesh) topology replaces the FederationBroker's single
// global directory with one replica per RegionGateway, kept convergent by
// peer-to-peer push gossip: every digest interval a gateway stamps its own
// entry from the local Directory::capacity_summary() and pushes its whole
// directory to a rotating subset of peers.  Receivers merge per entry by
// version dominance, so placement queries are answered from the local
// replica — zero broker round-trips in steady state — and any region
// (or the legacy hub) can die without blinding the others.
//
// Versioning: each entry carries the ORIGIN's (generated_at, version)
// stamp.  generated_at is the dominance key — a restarted gateway resets
// its version counter but stamps fresh times, so it re-enters rankings
// immediately (the same restart-safety rule the hub broker applies);
// version breaks exact-time ties.  The WAN-cost ranking measures
// staleness against the origin's generated_at stamp (all campuses share
// the simulation clock); received_at is purely local bookkeeping — when
// this replica last learned something new about the region — kept for
// debugging gossip propagation.  The per-replica version vector
// (region -> version) is exposed for convergence checks: once gossip
// quiesces, every replica's vector is identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sched/directory.h"
#include "util/time.h"

namespace gpunion::federation {

/// One region as a replica sees it.  Also the wire format relayed inside
/// DirectoryGossip messages (re-gossiped entries keep the ORIGIN's stamps,
/// never the relay's, so dominance is decided against the origin clock).
struct DirectoryEntry {
  std::string region;
  std::string gateway_id;
  sched::CapacitySummary capacity;
  std::uint64_t version = 0;       // origin's digest sequence number
  util::SimTime generated_at = 0;  // origin's stamp at digest time
  util::SimTime received_at = 0;   // local: newest version landed here
};

struct RegionDirectoryStats {
  std::uint64_t self_updates = 0;
  std::uint64_t merges_applied = 0;  // strictly newer entries accepted
  std::uint64_t merges_ignored = 0;  // replays / reorderings dropped
};

class RegionDirectory {
 public:
  explicit RegionDirectory(std::string self_region)
      : self_region_(std::move(self_region)) {}

  /// Re-stamps this replica's own entry (the one truth gossip can never
  /// override: merge() refuses entries for self_region).
  void update_self(const std::string& gateway_id,
                   sched::CapacitySummary capacity, std::uint64_t version,
                   util::SimTime now);

  /// Merges one gossiped entry; true when it was strictly newer than the
  /// entry on file (dominance: generated_at first, version tie-break).
  bool merge(const DirectoryEntry& incoming, util::SimTime now);

  /// Drops every entry (a crashed gateway's replica restarts empty; the
  /// next update_self stamp and an anti-entropy pull repopulate it).  The
  /// merge stats survive — they describe the replica's lifetime, not its
  /// current contents.
  void clear() { entries_.clear(); }

  const DirectoryEntry* entry(const std::string& region) const;
  /// Ordered by region name: deterministic gossip payloads and rankings.
  const std::map<std::string, DirectoryEntry>& entries() const {
    return entries_;
  }
  /// region -> version, for convergence assertions: replicas that have
  /// quiesced under gossip hold identical vectors.
  std::map<std::string, std::uint64_t> version_vector() const;

  const std::string& self_region() const { return self_region_; }
  const RegionDirectoryStats& stats() const { return stats_; }

 private:
  std::string self_region_;
  std::map<std::string, DirectoryEntry> entries_;
  RegionDirectoryStats stats_;
};

}  // namespace gpunion::federation
