#include "federation/gateway.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>

#include "util/logging.h"

namespace gpunion::federation {

namespace {

/// "A>B>C" — the hop chain as recorded in JobProvenance::route.
std::string join_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (const auto& hop : chain) {
    if (!out.empty()) out += '>';
    out += hop;
  }
  return out;
}

/// Inverse of join_chain, for rebuilding hosted-job chains from provenance.
std::vector<std::string> split_chain(const std::string& route) {
  std::vector<std::string> chain;
  std::string hop;
  for (char c : route) {
    if (c == '>') {
      if (!hop.empty()) chain.push_back(std::move(hop));
      hop.clear();
    } else {
      hop += c;
    }
  }
  if (!hop.empty()) chain.push_back(std::move(hop));
  return chain;
}

/// Stats journal key (one gateway per region database).
constexpr const char* kStatsJournalKey = "gateway.stats";

}  // namespace

RegionGateway::RegionGateway(sim::Environment& env,
                             sched::Coordinator& coordinator,
                             storage::CheckpointStore& store,
                             db::Database& database, net::Transport& wan,
                             std::string region_name, std::string broker_id,
                             RegionPolicy policy, FederationTopology topology,
                             WanPathFn wan_path, sim::LaneId lane)
    : env_(env),
      lane_(lane),
      coordinator_(coordinator),
      store_(store),
      database_(database),
      wan_(wan),
      region_(std::move(region_name)),
      gateway_id_("gw-" + region_),
      broker_id_(std::move(broker_id)),
      policy_(policy),
      topology_(topology),
      wan_path_(std::move(wan_path)),
      tick_timer_(env, policy.digest_interval, [this] { tick(); }, lane),
      directory_(region_),
      rng_(env.fork_rng("gateway:" + region_)) {
  assert(!region_.empty() && "region requires a name");
}

RegionGateway::~RegionGateway() = default;

void RegionGateway::start() {
  assert(!started_ && "RegionGateway::start called twice");
  started_ = true;
  wan_.register_endpoint(
      gateway_id_,
      [this](net::Message&& msg) { handle_message(std::move(msg)); }, lane_);
  tick();  // first digest goes out immediately, not one interval late
  tick_timer_.start();
}

void RegionGateway::add_peer(const std::string& region,
                             const std::string& gateway_id) {
  if (region == region_) return;
  peers_[region] = gateway_id;
}

void RegionGateway::tick() {
  if (crashed_) return;
  publish_digest();
  sweep_remote_jobs();
  scan_for_forwards();
  // Once a tick, snapshot the counters; the fine-grained sites (withdraw,
  // transfer settle, admission) journal eagerly, so this only bounds the
  // loss window for pure-gossip counters to one digest interval.
  persist_stats();
}

util::Duration RegionGateway::jittered(util::Duration base) {
  if (policy_.retry_jitter <= 0) return base;
  return base * (1.0 + policy_.retry_jitter * (2.0 * rng_.next_double() - 1.0));
}

// ---------------------------------------------------------------------------
// Durability + crash recovery
// ---------------------------------------------------------------------------

void RegionGateway::persist_forward(const std::string& job_id,
                                    const OutboundForward& forward) {
  // Until the withdraw, the coordinator's own durable row still covers the
  // job; from the moment it succeeds, this row is the job's only home.
  if (!forward.withdrawn) return;
  db::ForwardStateRecord row;
  row.job_id = job_id;
  row.spec = forward.spec;
  row.start_progress = forward.start_progress;
  row.checkpoint_bytes = forward.checkpoint_bytes;
  row.state = static_cast<int>(forward.state);
  row.handoff_id = forward.handoff_id;
  row.transfer_attempts = forward.transfer_attempts;
  row.attempts = forward.attempts;
  row.origin_region = forward.origin_region;
  row.origin_gateway = forward.origin_gateway;
  row.chain = forward.chain;
  row.awaiting_gateway = forward.awaiting_gateway;
  row.recorded_at = env_.now();
  row.trace_id = forward.trace.trace_id;
  row.trace_parent_span = forward.trace.parent_span;
  database_.put_forward_state(std::move(row));
  persist_stats();
}

void RegionGateway::erase_forward(const std::string& job_id) {
  database_.erase_forward_state(job_id);
  persist_stats();
}

void RegionGateway::persist_stats() {
  // Counters in declaration order, plus next_request_id_ as the final
  // element: handoff ids must stay unique across restarts (the receiver
  // dedups on (sender, handoff_id); reusing one would make a genuinely new
  // hand-off look like a processed duplicate and silently drop the job).
  // directory_age_at_rank is a SampleSet and deliberately non-durable.
  database_.put_journal(
      kStatsJournalKey,
      {static_cast<std::int64_t>(stats_.ranking_requests),
       static_cast<std::int64_t>(stats_.local_rankings),
       static_cast<std::int64_t>(stats_.forwards_attempted),
       static_cast<std::int64_t>(stats_.forwards_admitted),
       static_cast<std::int64_t>(stats_.forwards_refused),
       static_cast<std::int64_t>(stats_.forward_timeouts),
       static_cast<std::int64_t>(stats_.reroutes),
       static_cast<std::int64_t>(stats_.forwards_returned),
       static_cast<std::int64_t>(stats_.forwards_aborted),
       static_cast<std::int64_t>(stats_.transfers_delivered),
       static_cast<std::int64_t>(stats_.transfer_retries),
       static_cast<std::int64_t>(stats_.transfers_bounced),
       static_cast<std::int64_t>(stats_.checkpoints_shipped),
       static_cast<std::int64_t>(stats_.checkpoint_bytes_shipped),
       static_cast<std::int64_t>(stats_.remote_completions),
       static_cast<std::int64_t>(stats_.remote_failures),
       static_cast<std::int64_t>(stats_.chain_loops_avoided),
       static_cast<std::int64_t>(stats_.interactive_rtt_filtered),
       static_cast<std::int64_t>(stats_.remote_admitted),
       static_cast<std::int64_t>(stats_.remote_jobs_taken),
       static_cast<std::int64_t>(stats_.remote_refused_policy),
       static_cast<std::int64_t>(stats_.remote_refused_cap),
       static_cast<std::int64_t>(stats_.remote_refused_capacity),
       static_cast<std::int64_t>(stats_.remote_refused_duplicate),
       static_cast<std::int64_t>(stats_.transfers_received),
       static_cast<std::int64_t>(stats_.transfers_unreserved),
       static_cast<std::int64_t>(stats_.cross_campus_migrations_in),
       static_cast<std::int64_t>(stats_.reservations_expired),
       static_cast<std::int64_t>(stats_.digests_published),
       static_cast<std::int64_t>(stats_.gossips_sent),
       static_cast<std::int64_t>(stats_.gossips_received),
       static_cast<std::int64_t>(stats_.anti_entropy_pulls),
       static_cast<std::int64_t>(stats_.anti_entropy_served),
       static_cast<std::int64_t>(stats_.anti_entropy_entries),
       static_cast<std::int64_t>(next_request_id_)});
}

void RegionGateway::crash() {
  assert(started_ && "crash before start");
  assert(!crashed_ && "gateway crashed twice");
  crashed_ = true;
  ++epoch_;
  tick_timer_.stop();
  outbound_.clear();
  retry_after_.clear();
  pending_inbound_.clear();  // TTL reservations: senders' offers re-run
  remote_jobs_.clear();
  chains_.clear();
  handled_handoffs_.clear();
  directory_.clear();
  stats_ = GatewayStats{};
  digest_seq_ = 0;  // dominance keys on generated_at, so fresh stamps win
  next_request_id_ = 1;  // recover() restores the durable high-water mark
  gossip_cursor_ = 0;
  // peers_ survives deliberately: federation membership is provisioning
  // config (the platform seeds it at deploy time), re-installed with the
  // restarted process.  The WAN endpoint stays registered — the crashed_
  // gate in handle_message models the down process dropping packets.
}

void RegionGateway::recover() {
  assert(crashed_ && "recover without crash");
  crashed_ = false;
  ++epoch_;
  ++recovery_stats_.recoveries;
  rebuild_from_db();
  // Same order as start(): announce ourselves immediately (the fresh digest
  // re-enters peers' rankings without waiting an interval), then resume the
  // cadence.
  tick();
  tick_timer_.start();
  if (policy_.anti_entropy_pull && topology_ == FederationTopology::kMesh) {
    request_anti_entropy();
  }
}

void RegionGateway::rebuild_from_db() {
  // Stats journal (34 counters + the request-id high-water mark; an older
  // journal from before a counter was added restores nothing — counters
  // restart from zero, which only skews reporting, never correctness).
  if (const std::vector<std::int64_t>* j = database_.journal(kStatsJournalKey);
      j != nullptr && j->size() >= 35) {
    std::size_t i = 0;
    stats_.ranking_requests = static_cast<std::uint64_t>((*j)[i++]);
    stats_.local_rankings = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forwards_attempted = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forwards_admitted = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forwards_refused = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forward_timeouts = static_cast<std::uint64_t>((*j)[i++]);
    stats_.reroutes = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forwards_returned = static_cast<std::uint64_t>((*j)[i++]);
    stats_.forwards_aborted = static_cast<std::uint64_t>((*j)[i++]);
    stats_.transfers_delivered = static_cast<std::uint64_t>((*j)[i++]);
    stats_.transfer_retries = static_cast<std::uint64_t>((*j)[i++]);
    stats_.transfers_bounced = static_cast<std::uint64_t>((*j)[i++]);
    stats_.checkpoints_shipped = static_cast<std::uint64_t>((*j)[i++]);
    stats_.checkpoint_bytes_shipped = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_completions = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_failures = static_cast<std::uint64_t>((*j)[i++]);
    stats_.chain_loops_avoided = static_cast<std::uint64_t>((*j)[i++]);
    stats_.interactive_rtt_filtered = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_admitted = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_jobs_taken = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_refused_policy = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_refused_cap = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_refused_capacity = static_cast<std::uint64_t>((*j)[i++]);
    stats_.remote_refused_duplicate = static_cast<std::uint64_t>((*j)[i++]);
    stats_.transfers_received = static_cast<std::uint64_t>((*j)[i++]);
    stats_.transfers_unreserved = static_cast<std::uint64_t>((*j)[i++]);
    stats_.cross_campus_migrations_in = static_cast<std::uint64_t>((*j)[i++]);
    stats_.reservations_expired = static_cast<std::uint64_t>((*j)[i++]);
    stats_.digests_published = static_cast<std::uint64_t>((*j)[i++]);
    stats_.gossips_sent = static_cast<std::uint64_t>((*j)[i++]);
    stats_.gossips_received = static_cast<std::uint64_t>((*j)[i++]);
    stats_.anti_entropy_pulls = static_cast<std::uint64_t>((*j)[i++]);
    stats_.anti_entropy_served = static_cast<std::uint64_t>((*j)[i++]);
    stats_.anti_entropy_entries = static_cast<std::uint64_t>((*j)[i++]);
    next_request_id_ =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>((*j)[i++]));
  }
  // Hand-off dedup table: without it, an origin's at-least-once transfer
  // retry arriving after our restart would be re-admitted and the job
  // would run twice.
  for (const db::HandoffRecord& row : database_.handoffs()) {
    handled_handoffs_[row.job_id] = {row.from_gateway, row.handoff_id};
    ++recovery_stats_.handoffs_rebuilt;
  }
  // Hosted guests: live coordinator jobs whose provenance says another
  // region submitted them and this one executes them.  Guests that reached
  // a terminal phase during the outage are already archived — their
  // RemoteOutcome notification is lost (stats-only at the origin).
  for (const auto& [job_id, record] : coordinator_.jobs()) {
    const db::JobProvenance* prov = database_.provenance(job_id);
    if (prov == nullptr) continue;
    if (prov->executing_region != region_ || prov->origin_region == region_) {
      continue;
    }
    remote_jobs_[job_id] = RemoteJob{"gw-" + prov->origin_region,
                                     prov->origin_region, prov->recorded_at};
    std::vector<std::string> chain = split_chain(prov->route);
    if (chain.empty()) chain = {prov->origin_region, region_};
    chains_[job_id] = std::move(chain);
    ++recovery_stats_.remote_jobs_rebuilt;
  }
  // In-flight outbound forwards: each row is the ONLY copy of a withdrawn
  // job.  A hand-off already accepted (awaiting its transfer ack) resumes —
  // the receiver is idempotent across retries, so re-sending the same
  // handoff_id is safe at any point.  One still waiting on an offer reply
  // is repatriated: the pre-crash offer's fate is unknowable, but the
  // target only held a TTL reservation, so resubmitting locally cannot run
  // the job twice.
  for (db::ForwardStateRecord& row : database_.forward_states()) {
    OutboundForward forward;
    forward.state = static_cast<OutboundForward::State>(row.state);
    forward.request_id = next_request_id_++;
    forward.spec = std::move(row.spec);
    forward.start_progress = row.start_progress;
    forward.checkpoint_bytes = row.checkpoint_bytes;
    forward.transfer_attempts = row.transfer_attempts;
    forward.handoff_id = row.handoff_id;
    forward.origin_region = std::move(row.origin_region);
    forward.origin_gateway = std::move(row.origin_gateway);
    forward.chain = std::move(row.chain);
    forward.awaiting_gateway = std::move(row.awaiting_gateway);
    forward.attempts = row.attempts;
    forward.withdrawn = true;
    forward.trace.trace_id = row.trace_id;
    forward.trace.parent_span = row.trace_parent_span;
    auto [it, inserted] = outbound_.emplace(row.job_id, std::move(forward));
    assert(inserted && "duplicate forward-state row");
    // crash() wiped the reservation set; every rebuilt forward is still in
    // flight, so re-reserve before anything can resubmit the id.
    coordinator_.reserve_id(row.job_id);
    if (it->second.state == OutboundForward::State::kAwaitingTransferAck) {
      ++recovery_stats_.forwards_resumed;
      send_transfer(row.job_id);
    } else {
      ++recovery_stats_.forwards_repatriated;
      return_job_home(row.job_id);
    }
  }
}

void RegionGateway::request_anti_entropy() {
  if (peers_.empty()) return;  // federation of one
  auto it = peers_.begin();
  std::advance(it, static_cast<long>(pull_cursor_ % peers_.size()));
  pull_cursor_ = (pull_cursor_ + 1) % peers_.size();
  ++stats_.anti_entropy_pulls;
  send(it->second, kDirectoryPullRequest,
       DirectoryPullRequest{region_, gateway_id_}, kDigestBytes);
}

void RegionGateway::handle_directory_pull(const DirectoryPullRequest& request) {
  ++stats_.anti_entropy_served;
  // The rejoiner is alive; (re)learn it as a peer.
  if (request.from_region != region_) {
    peers_[request.from_region] = request.reply_to;
  }
  DirectoryPullResponse response;
  response.from_region = region_;
  response.from_gateway = gateway_id_;
  response.entries.reserve(directory_.entries().size());
  for (const auto& [region, entry] : directory_.entries()) {
    response.entries.push_back(entry);
  }
  const std::uint64_t bytes =
      kGossipEntryBytes * std::max<std::size_t>(1, response.entries.size());
  send(request.reply_to, kDirectoryPullResponse, std::move(response), bytes);
}

void RegionGateway::handle_directory_pull_response(
    const DirectoryPullResponse& response) {
  if (response.from_region != region_) {
    peers_[response.from_region] = response.from_gateway;
  }
  for (const DirectoryEntry& entry : response.entries) {
    if (directory_.merge(entry, env_.now())) {
      ++stats_.anti_entropy_entries;
      if (entry.region != region_) peers_[entry.region] = entry.gateway_id;
    }
  }
}

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

void RegionGateway::publish_digest() {
  sched::CapacitySummary capacity =
      coordinator_.directory().capacity_summary();
  ++digest_seq_;
  ++stats_.digests_published;
  if (topology_ == FederationTopology::kHub) {
    DigestMessage digest;
    digest.region = region_;
    digest.gateway_id = gateway_id_;
    digest.capacity = capacity;
    digest.seq = digest_seq_;
    digest.generated_at = env_.now();
    send(broker_id_, kCapacityDigest, std::move(digest), kDigestBytes);
    return;
  }
  // Mesh: stamp the replica's own entry and push the whole directory to a
  // rotating subset of peers.  Relayed entries keep their ORIGIN's stamps,
  // so a region two hops away still converges on the freshest digest no
  // matter which path it arrived by.
  directory_.update_self(gateway_id_, capacity, digest_seq_, env_.now());
  // peers_ never holds the local region (every insertion site filters it).
  // Peers whose directory entry has aged past the hard TTL are presumed
  // unreachable and deprioritized: when fanout < peers, a permanently
  // dark gateway must not keep eating pushes that live replicas need.
  // They are not abandoned — leftover fanout slots still reach them, and
  // a healed region re-enters everyone's fresh list the moment its own
  // pushes resume (its first gossip refreshes our entry for it).
  std::vector<const std::string*> peer_gateways;
  std::vector<const std::string*> stale_peers;
  peer_gateways.reserve(peers_.size());
  for (const auto& [region, gateway] : peers_) {
    const DirectoryEntry* entry = directory_.entry(region);
    // A peer we have NEVER heard from counts as stale too (it may have
    // been dark since before its first gossip could land); at bootstrap
    // everyone is entry-less, the fresh list is empty and the rotation
    // covers the whole stale list, so nobody is starved.
    const bool stale = entry == nullptr ||
                       env_.now() - entry->generated_at >
                           policy_.directory_hard_ttl;
    (stale ? stale_peers : peer_gateways).push_back(&gateway);
  }
  peer_gateways.insert(peer_gateways.end(), stale_peers.begin(),
                       stale_peers.end());
  if (peer_gateways.empty()) return;  // federation of one
  DirectoryGossip gossip;
  gossip.from_region = region_;
  gossip.from_gateway = gateway_id_;
  gossip.entries.reserve(directory_.entries().size());
  for (const auto& [region, entry] : directory_.entries()) {
    gossip.entries.push_back(entry);
  }
  // The self entry was stamped above, so entries is never empty.
  const std::uint64_t bytes = kGossipEntryBytes * gossip.entries.size();
  const std::size_t fanout =
      std::min<std::size_t>(std::max(1, policy_.gossip_fanout),
                            peer_gateways.size());
  for (std::size_t i = 0; i < fanout; ++i) {
    const std::string& target =
        *peer_gateways[(gossip_cursor_ + i) % peer_gateways.size()];
    send(target, kDirectoryGossip, gossip, bytes);
    ++stats_.gossips_sent;
  }
  gossip_cursor_ = (gossip_cursor_ + fanout) % peer_gateways.size();
}

void RegionGateway::handle_directory_gossip(const DirectoryGossip& gossip) {
  ++stats_.gossips_received;
  // The sender is alive and reachable; (re)learn it as a peer even when
  // every relayed entry is stale.
  if (gossip.from_region != region_) {
    peers_[gossip.from_region] = gossip.from_gateway;
  }
  for (const DirectoryEntry& entry : gossip.entries) {
    if (directory_.merge(entry, env_.now())) {
      // Peer discovery: a region first heard of through a relay becomes a
      // gossip target itself.
      if (entry.region != region_) peers_[entry.region] = entry.gateway_id;
    }
  }
}

// ---------------------------------------------------------------------------
// Outbound: forward local jobs that cannot be served here
// ---------------------------------------------------------------------------

bool RegionGateway::locally_placeable(const workload::JobSpec& job) {
  // The placement engine's own gating (policy, strategy fractional
  // preference, reliability degradation) is the single source of truth:
  // forwarding out a job the engine could place wastes a WAN round-trip,
  // and admitting one it can never place parks the job pending forever.
  return coordinator_.placement_engine().any_eligible(job, env_.now());
}

void RegionGateway::scan_for_forwards() {
  if (!policy_.forward_training && !policy_.forward_interactive) return;
  // Expired backoff entries are dead weight either way: the next check is
  // a fresh decision.  Pruning here bounds the map to the backoff window.
  for (auto it = retry_after_.begin(); it != retry_after_.end();) {
    if (env_.now() >= it->second) {
      it = retry_after_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<std::string> candidates;
  for (const auto& [job_id, record] : coordinator_.jobs()) {
    if (record.phase != sched::JobPhase::kPending) continue;
    if (outbound_.contains(job_id)) continue;
    const bool interactive =
        record.spec.type == workload::JobType::kInteractive;
    if (interactive ? !policy_.forward_interactive
                    : !policy_.forward_training) {
      continue;
    }
    if (env_.now() - record.submitted_at < policy_.forward_after) continue;
    if (retry_after_.contains(job_id)) continue;  // backoff still running
    // Only jobs the local campus cannot serve right now leave it: a node
    // that fits the job's shape means the local scheduler will get there
    // shortly and a WAN round-trip would only add latency.
    if (locally_placeable(record.spec)) continue;
    candidates.push_back(job_id);
  }
  for (const auto& job_id : candidates) initiate_forward(job_id);
}

void RegionGateway::resolve_origin(const std::string& job_id,
                                   OutboundForward& forward) {
  // A chained forward (this region was itself hosting the job for another
  // campus) keeps the true origin on the wire and in provenance, and
  // extends the hop chain instead of restarting it.
  if (auto hosted = remote_jobs_.find(job_id); hosted != remote_jobs_.end()) {
    forward.origin_region = hosted->second.origin_region;
    forward.origin_gateway = hosted->second.origin_gateway;
    // admit_transfer records the chain before the RemoteJob entry and
    // chains_ entries outlive hosting, so a hosted job always has one
    // (ending with this region).
    auto chain = chains_.find(job_id);
    assert(chain != chains_.end() && "hosted job without a chain");
    forward.chain = chain->second;
  } else {
    forward.origin_region = region_;
    forward.origin_gateway = gateway_id_;
    forward.chain = {region_};
  }
}

bool RegionGateway::ranking_excluded(const workload::JobSpec& job,
                                     const std::string& region,
                                     const std::string& target_gateway,
                                     const std::vector<std::string>& chain) {
  if (std::find(chain.begin(), chain.end(), region) != chain.end()) {
    ++stats_.chain_loops_avoided;  // path-vector rule: chains stay acyclic
    return true;
  }
  if (job.type == workload::JobType::kInteractive) {
    const WanPathModel path =
        wan_path_ ? wan_path_(gateway_id_, target_gateway) : WanPathModel{};
    if (path.rtt > policy_.max_interactive_rtt) {
      ++stats_.interactive_rtt_filtered;  // a laggy notebook helps nobody
      return true;
    }
  }
  return false;
}

std::vector<RegionScore> RegionGateway::rank_locally(
    const workload::JobSpec& job, std::uint64_t checkpoint_bytes,
    const std::vector<std::string>& chain) {
  ++stats_.local_rankings;
  std::vector<RegionScore> ranking;
  const util::SimTime now = env_.now();
  const auto& req = job.requirements;
  for (const auto& [region, entry] : directory_.entries()) {
    if (region == region_) continue;
    if (ranking_excluded(job, region, entry.gateway_id, chain)) continue;
    const util::Duration age = now - entry.generated_at;
    if (age > policy_.directory_hard_ttl) continue;  // presumed unreachable
    // Hardware envelope: could this region *ever* host the shape?  The
    // same never-feasible filter the hub broker applies; free-capacity
    // staleness is deliberately tolerated (target-side admission settles
    // it), the envelope only changes on (re)registration.
    if (entry.capacity.max_node_gpus < req.gpu_count) continue;
    if (entry.capacity.max_gpu_memory_gb < req.gpu_memory_gb) continue;
    if (entry.capacity.max_compute_capability <
        req.min_compute_capability) {
      continue;
    }
    const WanPathModel path =
        wan_path_ ? wan_path_(gateway_id_, entry.gateway_id) : WanPathModel{};
    stats_.directory_age_at_rank.add(age);
    RegionScore score;
    score.region = region;
    score.gateway_id = entry.gateway_id;
    score.free_gpus = entry.capacity.free_gpus;
    score.free_shared_slots = entry.capacity.free_shared_slots;
    score.digest_age = age;
    score.rtt = path.rtt;
    // Expected seconds until the job makes progress in that region:
    // control round-trip + checkpoint shipping at the modeled WAN rate +
    // distrust of stale digests + the expected wait when the replica
    // shows nothing free for this shape.
    const double ship_rate = std::max(path.gbps, 1e-6) * (1e9 / 8.0);
    const bool digest_fits =
        entry.capacity.free_gpus >= req.gpu_count ||
        (req.shareable && req.gpu_count == 1 &&
         entry.capacity.free_shared_slots > 0);
    score.expected_cost =
        path.rtt + static_cast<double>(checkpoint_bytes) / ship_rate +
        policy_.stale_cost_weight * age +
        (digest_fits ? 0.0 : policy_.busy_wait_penalty);
    ranking.push_back(std::move(score));
  }
  // Cheapest expected progress first; region name breaks exact ties so
  // identical replicas rank deterministically.
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RegionScore& a, const RegionScore& b) {
                     if (a.expected_cost != b.expected_cost) {
                       return a.expected_cost < b.expected_cost;
                     }
                     return a.region < b.region;
                   });
  return ranking;
}

void RegionGateway::filter_ranking(std::vector<RegionScore>& ranking,
                                   const workload::JobSpec& job,
                                   const std::vector<std::string>& chain) {
  // Hub rankings come from the broker, which knows neither the job's hop
  // chain nor the latency budget; the client-side filter applies the SAME
  // eligibility predicate the mesh ranking uses, so the two topologies
  // cannot drift (acyclic chains, usable sessions).
  std::erase_if(ranking, [&](const RegionScore& score) {
    return ranking_excluded(job, score.region, score.gateway_id, chain);
  });
}

void RegionGateway::initiate_forward(const std::string& job_id) {
  const sched::JobRecord* record = coordinator_.job(job_id);
  assert(record != nullptr);

  if (topology_ == FederationTopology::kMesh) {
    // Placement query answered from the local replica: no broker, no WAN
    // round-trip, nothing whose death leaves this region unable to ask.
    OutboundForward forward;
    forward.request_id = next_request_id_++;
    resolve_origin(job_id, forward);
    std::uint64_t checkpoint_bytes = 0;
    if (record->checkpointed_progress > 0) {
      auto bytes = store_.restore_bytes(job_id);
      checkpoint_bytes = bytes.ok() ? *bytes : 0;
    }
    forward.ranking =
        rank_locally(record->spec, checkpoint_bytes, forward.chain);
    if (forward.ranking.empty()) {
      // Nobody to ask.  The job never left the local queue; just back off.
      retry_after_[job_id] = env_.now() + jittered(policy_.forward_retry_backoff);
      ++stats_.forwards_aborted;
      return;
    }
    auto withdrawn = coordinator_.withdraw(job_id);
    if (!withdrawn.ok()) {
      ++stats_.forwards_aborted;
      return;
    }
    forward.spec = std::move(withdrawn->spec);
    forward.start_progress = withdrawn->checkpointed_progress;
    if (forward.start_progress > 0) {
      forward.checkpoint_bytes = checkpoint_bytes;
      // Progress without a restorable checkpoint chain cannot move campuses.
      if (forward.checkpoint_bytes == 0) forward.start_progress = 0;
    }
    forward.withdrawn = true;
    // The id is in federation flight from here until the hand-off settles:
    // a tenant resubmitting it through the API must be refused, or the
    // returning copy would collide (and be silently lost).
    coordinator_.reserve_id(job_id);
    forward.trace = withdrawn->trace;
    if (auto* tr = coordinator_.config().tracer;
        tr != nullptr && tr->enabled() && forward.trace.valid()) {
      tr->record(forward.trace, obs::stage::kFedWithdraw, gateway_id_,
                 env_.now(), env_.now());
    }
    auto [it, inserted] = outbound_.emplace(job_id, std::move(forward));
    assert(inserted);
    (void)it;
    try_next_region(job_id);
    return;
  }

  OutboundForward forward;
  forward.state = OutboundForward::State::kAwaitingRanking;
  forward.request_id = next_request_id_++;
  auto [it, inserted] = outbound_.emplace(job_id, std::move(forward));
  assert(inserted);

  RankingRequest request;
  request.origin_region = region_;
  request.reply_to = gateway_id_;
  request.request_id = it->second.request_id;
  request.gpu_count = record->spec.requirements.gpu_count;
  request.gpu_memory_gb = record->spec.requirements.gpu_memory_gb;
  request.min_compute_capability =
      record->spec.requirements.min_compute_capability;
  send(broker_id_, kRankingRequest, std::move(request), kDigestBytes);
  ++stats_.ranking_requests;
  arm_timeout(job_id, it->second.generation, policy_.forward_timeout);
}

void RegionGateway::handle_ranking_response(const RankingResponse& response) {
  // Rankings are few and in flight briefly; a linear match keeps the state
  // machine to one map.
  auto it = outbound_.begin();
  for (; it != outbound_.end(); ++it) {
    if (it->second.state == OutboundForward::State::kAwaitingRanking &&
        it->second.request_id == response.request_id) {
      break;
    }
  }
  if (it == outbound_.end()) return;  // timed out and cleaned up; ignore
  const std::string job_id = it->first;
  OutboundForward& forward = it->second;
  ++forward.generation;  // invalidate the pending timeout

  forward.ranking = response.ranking;
  resolve_origin(job_id, forward);
  // Filter BEFORE withdrawing: when every broker candidate is unusable
  // (already in the job's chain, or beyond an interactive RTT budget the
  // broker knows nothing about), the job must never leave the local queue
  // — a withdraw/resubmit round-trip would reset its queue seniority for
  // nothing.  The mesh path gets this for free (rank_locally filters).
  if (const sched::JobRecord* record = coordinator_.job(job_id)) {
    filter_ranking(forward.ranking, record->spec, forward.chain);
  }
  if (forward.ranking.empty()) {
    // Nobody to ask.  The job never left the local queue; just back off.
    retry_after_[job_id] = env_.now() + jittered(policy_.forward_retry_backoff);
    ++stats_.forwards_aborted;
    outbound_.erase(it);
    return;
  }

  auto withdrawn = coordinator_.withdraw(job_id);
  if (!withdrawn.ok()) {
    // The job got dispatched (or cancelled) while the ranking was in
    // flight — the local campus won the race, nothing to forward.
    ++stats_.forwards_aborted;
    outbound_.erase(it);
    return;
  }
  forward.spec = std::move(withdrawn->spec);
  forward.start_progress = withdrawn->checkpointed_progress;
  if (forward.start_progress > 0) {
    auto bytes = store_.restore_bytes(job_id);
    forward.checkpoint_bytes = bytes.ok() ? *bytes : 0;
    // Progress without a restorable checkpoint chain cannot move campuses.
    if (forward.checkpoint_bytes == 0) forward.start_progress = 0;
  }
  forward.withdrawn = true;
  // In federation flight: block the id from reuse until the hand-off
  // settles (see the mesh path).
  coordinator_.reserve_id(job_id);
  forward.trace = withdrawn->trace;
  if (auto* tr = coordinator_.config().tracer;
      tr != nullptr && tr->enabled() && forward.trace.valid()) {
    tr->record(forward.trace, obs::stage::kFedWithdraw, gateway_id_,
               env_.now(), env_.now());
  }
  try_next_region(job_id);
}

void RegionGateway::try_next_region(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  if (forward.next_region >= forward.ranking.size() ||
      forward.attempts >= policy_.max_forward_attempts) {
    return_job_home(job_id);
    return;
  }
  const RegionScore& target = forward.ranking[forward.next_region++];
  ++forward.attempts;
  if (forward.attempts > 1) ++stats_.reroutes;
  forward.state = OutboundForward::State::kAwaitingReply;
  forward.awaiting_gateway = target.gateway_id;
  forward.offer_sent_at = env_.now();
  ++forward.generation;
  // The durable row mirrors the withdrawn job BEFORE the offer leaves: a
  // crash from here on recovers it (resumed or repatriated), so the
  // withdraw can never become a loss.
  persist_forward(job_id, forward);

  ForwardRequest request;
  request.origin_region = forward.origin_region;
  request.reply_to = gateway_id_;  // the forwarding hop drives the offer
  request.job = forward.spec;
  send(target.gateway_id, kForwardRequest, std::move(request), kControlBytes);
  ++stats_.forwards_attempted;
  arm_timeout(job_id, forward.generation, policy_.forward_timeout);
}

void RegionGateway::return_job_home(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  // The flight is over — the id must be unreserved BEFORE the resubmit, or
  // the coordinator's own guard would refuse its returning job.
  coordinator_.release_id(job_id);
  // The checkpoint chain was never forgotten, so resubmitting with the
  // withdrawn progress restores locally once capacity frees up.  The trace
  // continues: the local re-submit span parents to the last forward span.
  auto resubmitted = coordinator_.submit(std::move(forward.spec),
                                         forward.start_progress,
                                         forward.trace);
  if (!resubmitted.is_ok()) {
    GPUNION_ELOG("gateway") << region_ << " could not return " << job_id
                            << " to the local queue: " << resubmitted;
  }
  ++stats_.forwards_returned;
  retry_after_[job_id] = env_.now() + jittered(policy_.forward_retry_backoff);
  outbound_.erase(it);
  // The resubmit above re-created the coordinator's durable row; only now
  // may the forward row go (never a moment with neither).
  erase_forward(job_id);
}

void RegionGateway::arm_timeout(const std::string& job_id,
                                std::uint64_t generation,
                                util::Duration delay) {
  // The epoch guard outranks the generation guard: a rebuilt forward walks
  // generations from zero again, so a pre-crash timeout could otherwise
  // collide with a post-recovery generation number.
  env_.schedule_after_on(lane_, delay, [this, job_id, generation,
                                        epoch = epoch_] {
    if (epoch != epoch_) return;  // armed before a crash/restart
    auto it = outbound_.find(job_id);
    if (it == outbound_.end() || it->second.generation != generation) return;
    switch (it->second.state) {
      case OutboundForward::State::kAwaitingRanking:
        // Broker unreachable; the job never left the local queue.
        ++stats_.forward_timeouts;
        retry_after_[job_id] = env_.now() + jittered(policy_.forward_retry_backoff);
        outbound_.erase(it);
        return;
      case OutboundForward::State::kAwaitingReply:
        // Unanswered offer: treat like a refusal.  A late accept is
        // ignored (awaiting_gateway moved on), and the target's
        // reservation expires on its own, so the job cannot run twice.
        ++stats_.forward_timeouts;
        ++it->second.generation;
        if (auto* tr = coordinator_.config().tracer;
            tr != nullptr && tr->enabled() && it->second.trace.valid()) {
          const util::SimTime sent = it->second.offer_sent_at >= 0
                                         ? it->second.offer_sent_at
                                         : env_.now();
          tr->record(it->second.trace, obs::stage::kFedOffer, gateway_id_,
                     sent, env_.now(),
                     "timeout,gateway=" + it->second.awaiting_gateway);
        }
        it->second.offer_sent_at = -1;
        try_next_region(job_id);
        return;
      case OutboundForward::State::kAwaitingTransferAck:
        // The transfer (or its ack) was lost.  Resend, with backoff, for
        // as long as it takes: the target re-acks idempotently if the job
        // actually landed, and gateways — like coordinators — are campus
        // infrastructure that outlives node churn, so at-least-once
        // delivery here is what keeps a job from ever running twice
        // (giving up and resubmitting locally could duplicate a job whose
        // ack was merely delayed).
        ++stats_.transfer_retries;
        send_transfer(job_id);
        return;
    }
  });
}

void RegionGateway::handle_forward_accept(const ForwardAccept& accept) {
  auto it = outbound_.find(accept.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingReply ||
      it->second.awaiting_gateway != "gw-" + accept.region) {
    return;  // late accept from a target we already gave up on
  }
  OutboundForward& forward = it->second;
  if (auto* tr = coordinator_.config().tracer;
      tr != nullptr && tr->enabled() && forward.trace.valid()) {
    const util::SimTime sent =
        forward.offer_sent_at >= 0 ? forward.offer_sent_at : env_.now();
    tr->record(forward.trace, obs::stage::kFedOffer, gateway_id_, sent,
               env_.now(), "accepted,region=" + accept.region);
  }
  forward.offer_sent_at = -1;
  forward.state = OutboundForward::State::kAwaitingTransferAck;
  forward.handoff_id = next_request_id_++;
  ++stats_.forwards_admitted;
  send_transfer(accept.job_id);
}

void RegionGateway::send_transfer(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  ++forward.transfer_attempts;
  ++forward.generation;
  // Durable before the wire: the attempt counter and handoff id must
  // survive a crash, or the resumed hand-off could reuse a stale attempt
  // number and mis-settle against the ack for this very send.
  persist_forward(job_id, forward);
  JobTransfer transfer;
  transfer.origin_region = forward.origin_region;
  transfer.origin_gateway = forward.origin_gateway;
  transfer.reply_to = gateway_id_;  // acks settle THIS hop's state machine
  transfer.attempt = forward.transfer_attempts;
  transfer.handoff_id = forward.handoff_id;
  transfer.chain = forward.chain;  // hop provenance, ending with this region
  transfer.job = forward.spec;  // keep the original for retries / returns
  transfer.start_progress = forward.start_progress;
  transfer.checkpoint_bytes = forward.checkpoint_bytes;
  if (auto* tr = coordinator_.config().tracer;
      tr != nullptr && tr->enabled() && forward.trace.valid()) {
    // The transfer span's id crosses the WAN while the span is still open:
    // the receiver's fed_admit span parents to it, and the ack closes it
    // here.  Allocated lazily so a crash-recovery resume gets one too.
    if (forward.transfer_span == 0) forward.transfer_span = tr->open_span();
    if (forward.transfer_sent_at < 0) forward.transfer_sent_at = env_.now();
    transfer.trace.trace_id = forward.trace.trace_id;
    transfer.trace.parent_span = forward.transfer_span;
  }
  // The shipment pays for its checkpoint payload on the WAN channel.
  send(forward.awaiting_gateway, kJobTransfer, std::move(transfer),
       kControlBytes + forward.checkpoint_bytes);
  // Exponential backoff (capped): a burst of shipments can back the FIFO
  // WAN channel up past one timeout, and re-shipping multi-GB payloads
  // into the very backlog that delayed them only feeds the spiral.
  // Jitter de-correlates a burst of gateways all resending into the same
  // recovering region at once; the first attempt's deadline stays exact
  // (it is a protocol timeout, not a backoff).
  const int exponent = std::min(3, forward.transfer_attempts - 1);
  const util::Duration deadline =
      policy_.transfer_ack_timeout * static_cast<double>(1 << exponent);
  arm_timeout(job_id, forward.generation,
              exponent > 0 ? jittered(deadline) : deadline);
}

void RegionGateway::handle_transfer_ack(const JobTransferAck& ack) {
  auto it = outbound_.find(ack.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingTransferAck ||
      it->second.awaiting_gateway != "gw-" + ack.region) {
    return;  // duplicate / late ack; already settled
  }
  OutboundForward& forward = it->second;
  auto close_transfer_span = [&](const std::string& detail) {
    auto* tr = coordinator_.config().tracer;
    if (tr == nullptr || !tr->enabled() || !forward.trace.valid() ||
        forward.transfer_span == 0) {
      return;
    }
    const util::SimTime sent = forward.transfer_sent_at >= 0
                                   ? forward.transfer_sent_at
                                   : env_.now();
    tr->close_span(forward.transfer_span, forward.trace.trace_id,
                   forward.trace.parent_span, obs::stage::kFedTransfer,
                   gateway_id_, sent, env_.now(), detail);
    // Later local spans (a bounced job's re-submit) parent to the transfer.
    forward.trace.parent_span = forward.transfer_span;
    forward.transfer_span = 0;
  };
  if (!ack.accepted) {
    // Only the verdict on the NEWEST attempt counts: an older attempt's
    // refusal may be superseded by a retry already in flight, and taking
    // the job home while that retry can still land would run it twice.
    if (ack.attempt != forward.transfer_attempts) return;
    ++forward.generation;  // invalidate the pending resend
    // The target's reservation lapsed and its live re-admission said no
    // (or its coordinator refused the submit): take the job back.
    ++stats_.transfers_bounced;
    close_transfer_span("bounced,region=" + ack.region);
    return_job_home(ack.job_id);
    return;
  }
  // An accept from ANY attempt settles the hand-off (the receiver is
  // idempotent across retries).
  ++forward.generation;  // invalidate the pending resend
  close_transfer_span("region=" + ack.region + ",attempts=" +
                      std::to_string(forward.transfer_attempts));
  ++stats_.transfers_delivered;
  if (forward.checkpoint_bytes > 0) {
    ++stats_.checkpoints_shipped;
    stats_.checkpoint_bytes_shipped += forward.checkpoint_bytes;
  }
  std::vector<std::string> chain = forward.chain;
  chain.push_back(ack.region);
  database_.record_provenance(db::JobProvenance{
      ack.job_id, forward.origin_region, ack.region, env_.now(),
      join_chain(chain)});
  if (forward.checkpoint_bytes > 0) {
    store_.forget(ack.job_id);  // the chain lives in the new region now
  }
  retry_after_.erase(ack.job_id);
  outbound_.erase(it);
  // Delivered: the job now lives in the remote region, whose coordinator
  // holds the id.  Locally the id may be reused (a fresh submit under it
  // is a new job; the remote copy completes under the remote books).
  coordinator_.release_id(ack.job_id);
  // The hand-off is settled and provenance recorded; the durable forward
  // row has served its purpose.
  erase_forward(ack.job_id);
}

void RegionGateway::handle_forward_refuse(const ForwardRefuse& refuse) {
  auto it = outbound_.find(refuse.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingReply ||
      it->second.awaiting_gateway != "gw-" + refuse.region) {
    return;
  }
  ++stats_.forwards_refused;
  ++it->second.generation;
  if (auto* tr = coordinator_.config().tracer;
      tr != nullptr && tr->enabled() && it->second.trace.valid()) {
    const util::SimTime sent =
        it->second.offer_sent_at >= 0 ? it->second.offer_sent_at : env_.now();
    tr->record(it->second.trace, obs::stage::kFedOffer, gateway_id_, sent,
               env_.now(), "refused,region=" + refuse.region);
  }
  it->second.offer_sent_at = -1;
  GPUNION_DLOG("gateway") << region_ << " forward of " << refuse.job_id
                          << " refused by " << refuse.region << " ("
                          << refuse.reason << ")";
  try_next_region(refuse.job_id);
}

void RegionGateway::handle_remote_outcome(const RemoteOutcome& outcome) {
  if (outcome.completed) {
    ++stats_.remote_completions;
  } else {
    ++stats_.remote_failures;
  }
}

// ---------------------------------------------------------------------------
// Inbound: admission of jobs forwarded here
// ---------------------------------------------------------------------------

std::string RegionGateway::admission_verdict(const workload::JobSpec& job) {
  if (!policy_.accept_remote) return "policy";
  if (remote_jobs_active() >= policy_.max_remote_jobs) return "admission-cap";
  // An id this coordinator already knows (live or archived) could not be
  // resubmitted here; refusing routes the job to a region that can.
  if (coordinator_.job(job.id) != nullptr) return "duplicate-id";
  // Admission is checked against the LIVE directory, never a digest: this
  // is the region's defence against anyone's stale gossip view.  The
  // shape check is per-node (locally_placeable), so a job no node here
  // could ever host is refused instead of starving in the queue.
  if (!locally_placeable(job)) return "capacity";
  if (policy_.min_free_gpus_reserve > 0) {
    sched::CapacitySummary summary =
        coordinator_.directory().capacity_summary();
    // A shareable job that can land in an already-open shared slot leaves
    // every free whole GPU untouched, so the reserve does not apply.
    const bool slot_bound = job.requirements.shareable &&
                            job.requirements.gpu_count == 1 &&
                            summary.free_shared_slots > 0;
    if (!slot_bound && summary.free_gpus - policy_.min_free_gpus_reserve <
                           job.requirements.gpu_count) {
      return "capacity";
    }
  }
  return "";
}

void RegionGateway::handle_forward_request(const ForwardRequest& request) {
  // Settle finished remote jobs first: between ticks, a completed guest
  // would otherwise hold its admission-cap slot and refuse a forward that
  // real capacity could take.
  sweep_remote_jobs();
  // A re-offer while the previous accept's reservation is still alive
  // (our accept was lost) refreshes the reservation and re-accepts — it
  // is the same admission, not a second one.
  if (auto held = pending_inbound_.find(request.job.id);
      held != pending_inbound_.end()) {
    held->second = env_.now() + policy_.reservation_ttl;
    send(request.reply_to, kForwardAccept,
         ForwardAccept{region_, request.job.id}, kDigestBytes);
    return;
  }
  const std::string verdict = admission_verdict(request.job);
  if (verdict.empty()) {
    pending_inbound_[request.job.id] = env_.now() + policy_.reservation_ttl;
    ++stats_.remote_admitted;
    send(request.reply_to, kForwardAccept,
         ForwardAccept{region_, request.job.id}, kDigestBytes);
    return;
  }
  if (verdict == "policy") {
    ++stats_.remote_refused_policy;
  } else if (verdict == "admission-cap") {
    ++stats_.remote_refused_cap;
  } else if (verdict == "duplicate-id") {
    ++stats_.remote_refused_duplicate;
  } else {
    ++stats_.remote_refused_capacity;
  }
  send(request.reply_to, kForwardRefuse,
       ForwardRefuse{region_, request.job.id, verdict}, kDigestBytes);
}

void RegionGateway::handle_job_transfer(const JobTransfer& transfer) {
  ++stats_.transfers_received;
  const std::string& job_id = transfer.job.id;
  // Idempotent: a retried duplicate of a hand-off we already processed —
  // even if the job has since completed here or chained onward and no
  // coordinator record remains — is re-acked, never re-admitted.  The
  // (sender, handoff_id) pair identifies the exact hand-off, so a
  // genuinely NEW hand-off of a job that came back and left again is not
  // mistaken for a duplicate.
  if (auto handled = handled_handoffs_.find(job_id);
      handled != handled_handoffs_.end() &&
      handled->second ==
          std::make_pair(transfer.reply_to, transfer.handoff_id)) {
    send(transfer.reply_to, kJobTransferAck,
         JobTransferAck{region_, job_id, transfer.attempt, true}, kDigestBytes);
    return;
  }
  // A coordinator-known id we did NOT take via this hand-off is refused:
  // acking someone else's id would silently drop the forwarded job.
  if (coordinator_.job(job_id) != nullptr) {
    send(transfer.reply_to, kJobTransferAck,
         JobTransferAck{region_, job_id, transfer.attempt, false}, kDigestBytes);
    return;
  }
  auto reservation = pending_inbound_.find(job_id);
  if (reservation != pending_inbound_.end()) {
    pending_inbound_.erase(reservation);
  } else {
    // The reservation lapsed (slow WAN) or the accept raced a timeout.
    // Re-run live admission so the cap and capacity policy still hold; a
    // refusal is safe because the sender keeps the job until our ack.
    // Sweep first — refusing an already-shipped multi-GB transfer over a
    // guest that finished since the last tick would waste the shipment.
    sweep_remote_jobs();
    if (!admission_verdict(transfer.job).empty()) {
      send(transfer.reply_to, kJobTransferAck,
           JobTransferAck{region_, job_id, transfer.attempt, false}, kDigestBytes);
      return;
    }
    ++stats_.transfers_unreserved;
  }
  const bool taken = admit_transfer(transfer);
  if (taken) {
    handled_handoffs_[job_id] = {transfer.reply_to, transfer.handoff_id};
    // Dedup durable BEFORE the ack leaves: once the sender sees an accept
    // it drops the job, so a crash here must leave behind the row that
    // re-acks (never re-admits) the sender's at-least-once retries.
    database_.put_handoff(db::HandoffRecord{job_id, transfer.reply_to,
                                            transfer.handoff_id, env_.now()});
    persist_stats();
  }
  send(transfer.reply_to, kJobTransferAck,
       JobTransferAck{region_, job_id, transfer.attempt, taken}, kDigestBytes);
}

bool RegionGateway::admit_transfer(const JobTransfer& transfer) {
  const workload::JobSpec& job = transfer.job;
  double progress = transfer.start_progress;
  if (progress > 0) {
    // Seed the local checkpoint store with the shipped state as a fresh
    // full snapshot, so the coordinator's normal dispatch path restores
    // from it exactly like a within-campus migration.
    auto written = store_.write(job.id, job.state.state_bytes,
                                /*dirty_fraction=*/1.0, progress, env_.now());
    if (!written.ok()) {
      GPUNION_WLOG("gateway")
          << region_ << " could not seed checkpoint for forwarded " << job.id
          << " (" << written.status() << "); restarting from scratch";
      progress = 0;
    }
  }
  // The admit span parents to the sender's (still-open) fed_transfer span —
  // this is the edge that stitches the trace across the WAN.
  obs::TraceContext ctx = transfer.trace;
  if (auto* tr = coordinator_.config().tracer;
      tr != nullptr && tr->enabled() && ctx.valid()) {
    tr->record(ctx, obs::stage::kFedAdmit, gateway_id_, env_.now(),
               env_.now(), "from=" + transfer.reply_to);
  }
  auto submitted = coordinator_.submit(job, progress, ctx);
  if (!submitted.is_ok()) {
    // The refused ack sends the job back to its origin's queue.
    GPUNION_WLOG("gateway") << region_ << " could not submit forwarded "
                            << job.id << ": " << submitted;
    return false;
  }
  ++stats_.remote_jobs_taken;
  // The hop chain grows by this region; a legacy sender without one is
  // reconstructed as a direct origin -> here hand-off.
  std::vector<std::string> chain = transfer.chain;
  if (chain.empty()) chain.push_back(transfer.origin_region);
  chain.push_back(region_);
  database_.record_provenance(db::JobProvenance{
      job.id, transfer.origin_region, region_, env_.now(),
      join_chain(chain)});
  chains_[job.id] = std::move(chain);
  remote_jobs_[job.id] =
      RemoteJob{transfer.origin_gateway, transfer.origin_region, env_.now()};
  if (progress > 0) ++stats_.cross_campus_migrations_in;
  return true;
}

void RegionGateway::sweep_remote_jobs() {
  for (auto it = pending_inbound_.begin(); it != pending_inbound_.end();) {
    if (env_.now() >= it->second) {
      ++stats_.reservations_expired;
      it = pending_inbound_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = remote_jobs_.begin(); it != remote_jobs_.end();) {
    const std::string& job_id = it->first;
    const sched::JobRecord* record = coordinator_.job(job_id);
    if (record == nullptr) {
      if (outbound_.contains(job_id)) {
        // Withdrawn for a chained forward that is still in flight; if it
        // fails, return_job_home resubmits here and we are hosting again.
        ++it;
        continue;
      }
      // The job left this region for good (chained forward landed
      // elsewhere): no longer ours to report on.
      it = remote_jobs_.erase(it);
      continue;
    }
    if (!sched::job_phase_terminal(record->phase)) {
      ++it;
      continue;
    }
    RemoteOutcome outcome;
    outcome.region = region_;
    outcome.job_id = job_id;
    outcome.completed = record->phase == sched::JobPhase::kCompleted;
    send(it->second.origin_gateway, kRemoteOutcome, std::move(outcome),
         kDigestBytes);
    it = remote_jobs_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

void RegionGateway::handle_message(net::Message&& msg) {
  if (crashed_) return;  // the process is down; packets fall on the floor
  switch (msg.kind) {
    case kRankingResponse:
      handle_ranking_response(
          std::any_cast<const RankingResponse&>(msg.payload));
      break;
    case kForwardRequest:
      handle_forward_request(
          std::any_cast<const ForwardRequest&>(msg.payload));
      break;
    case kForwardAccept:
      handle_forward_accept(std::any_cast<const ForwardAccept&>(msg.payload));
      break;
    case kForwardRefuse:
      handle_forward_refuse(std::any_cast<const ForwardRefuse&>(msg.payload));
      break;
    case kJobTransfer:
      handle_job_transfer(std::any_cast<const JobTransfer&>(msg.payload));
      break;
    case kJobTransferAck:
      handle_transfer_ack(std::any_cast<const JobTransferAck&>(msg.payload));
      break;
    case kRemoteOutcome:
      handle_remote_outcome(std::any_cast<const RemoteOutcome&>(msg.payload));
      break;
    case kDirectoryGossip:
      handle_directory_gossip(
          std::any_cast<const DirectoryGossip&>(msg.payload));
      break;
    case kDirectoryPullRequest:
      handle_directory_pull(
          std::any_cast<const DirectoryPullRequest&>(msg.payload));
      break;
    case kDirectoryPullResponse:
      handle_directory_pull_response(
          std::any_cast<const DirectoryPullResponse&>(msg.payload));
      break;
    default:
      GPUNION_WLOG("gateway") << gateway_id_ << " unexpected message kind "
                              << msg.kind;
  }
}

void RegionGateway::send(const std::string& to, int kind, std::any payload,
                         std::uint64_t bytes) {
  net::Message msg;
  msg.from = gateway_id_;
  msg.to = to;
  msg.kind = kind;
  msg.traffic_class = net::TrafficClass::kFederation;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  (void)wan_.send(std::move(msg));
}

}  // namespace gpunion::federation
